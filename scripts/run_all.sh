#!/usr/bin/env bash
# Regenerate the paper's full evaluation — the equivalent of the
# original artifact's run-k.sh / run-n.sh / exp.sh pipeline.
#
#   scripts/run_all.sh [--full]
#
# Writes CSVs, tables, Chrome traces and report.html to bench-results/.
set -euo pipefail
cd "$(dirname "$0")/.."

FULL="${1:-}"
cargo build --release -p topk-bench

./target/release/topk-bench verify --quick
./target/release/topk-bench all $FULL --out bench-results
./target/release/topk-bench report --out bench-results

echo
echo "done — open bench-results/report.html, and see EXPERIMENTS.md for"
echo "the paper-vs-measured comparison."
