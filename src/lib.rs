//! # gpu-topk — a Rust reproduction of "Parallel Top-K Algorithms on
//! GPU: A Comprehensive Study and New Methods" (SC '23)
//!
//! This façade crate re-exports the whole workspace:
//!
//! * [`gpu_sim`] — the deterministic GPU simulator substrate (device
//!   model, kernels-as-closures, metered memory, cost model, profiler).
//! * [`topk_core`] — the paper's contributions: **AIR Top-K** (§3) and
//!   **GridSelect** (§4), plus keys/bitonic/verify machinery.
//! * [`topk_baselines`] — the eight previous algorithms of Table 1.
//! * [`topk_engine`] — the multi-device serving layer: bounded query
//!   queue, same-shape batch coalescing, per-query fallible results.
//! * [`topk_obs`] — the observability substrate: metrics registry with
//!   Prometheus text exposition, and tracing span ids that link every
//!   query to its kernel launches.
//! * [`datagen`] — the synthetic distributions of §5.1 and the
//!   ANN-workload substitute for the §5.5 real-data experiments.
//!
//! ## Quickstart
//!
//! ```
//! use gpu_topk::prelude::*;
//!
//! // A simulated A100, the paper's main testbed.
//! let mut gpu = Gpu::new(DeviceSpec::a100());
//!
//! // 100k uniform floats, find the 10 smallest (with indices).
//! let data = datagen::generate(Distribution::Uniform, 100_000, 42);
//! let input = gpu.htod("scores", &data);
//!
//! let air = AirTopK::default();
//! let out = air.select(&mut gpu, &input, 10);
//!
//! let values = out.values.to_vec();
//! let indices = out.indices.to_vec();
//! verify_topk(&data, 10, &values, &indices).expect("correct top-K");
//! println!("top-10 in {:.1} simulated µs", gpu.elapsed_us());
//! ```

pub use ::datagen;
pub use ::gpu_sim;
pub use ::topk_baselines;
pub use ::topk_core;
pub use ::topk_cpu;
pub use ::topk_engine;
pub use ::topk_hybrid;
pub use ::topk_obs;
#[cfg(feature = "wgpu")]
pub use ::topk_wgpu;

/// Everything needed to run a selection, in one import.
pub mod prelude {
    pub use crate::datagen::{self, AnnDataset, AnnKind, Distribution};
    pub use crate::gpu_sim::{
        DeviceSpec, Footprint, Gpu, KernelContract, LaunchConfig, SanitizerCounts,
        SanitizerFinding, SanitizerMode, SanitizerReport,
    };
    pub use crate::topk_baselines::{
        BitonicTopK, BlockSelect, BucketSelect, QuickSelect, RadixSelect, SampleSelect, SortTopK,
        WarpSelect,
    };
    pub use crate::topk_core::{
        expected_recall, measured_recall, verify_topk, verify_topk_typed, AirConfig, AirTopK,
        BucketedTopK, Category, DeviceMatrix, GridSelect, GridSelectConfig, QueueKind, SelectK,
        SelectLargest, TopKAlgorithm, TopKError, TopKOutput, TwoStageTopK, UnfusedRadix,
        WarpSelector,
    };
    pub use crate::topk_cpu::{heap_topk, parallel_topk};
    pub use crate::topk_engine::{
        chrome_trace, ApproxRung, BreakerConfig, DrainReport, EngineConfig, EngineSnapshot,
        FaultKind, FaultPlan, QueryResult, RetryPolicy, ScriptedFault, Served, TopKEngine,
    };
    pub use crate::topk_hybrid::DrTopK;
    pub use crate::topk_obs::MetricsRegistry;
}

use prelude::*;

/// Every algorithm in the study: the 8 baselines of Table 1 followed by
/// the paper's two contributions. Order matches how the paper lists
/// them.
pub fn all_algorithms() -> Vec<Box<dyn TopKAlgorithm>> {
    let mut algs = topk_baselines::all_baselines();
    algs.push(Box::new(AirTopK::default()));
    algs.push(Box::new(GridSelect::default()));
    algs
}

/// Look up an algorithm by its paper name (case-insensitive, ignoring
/// spaces and dashes), e.g. `"air top-k"`, `"AIRTopK"`, `"radixselect"`.
pub fn algorithm_by_name(name: &str) -> Option<Box<dyn TopKAlgorithm>> {
    let norm = |s: &str| {
        s.chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .map(|c| c.to_ascii_lowercase())
            .collect::<String>()
    };
    let want = norm(name);
    all_algorithms()
        .into_iter()
        .find(|a| norm(a.name()) == want)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_ten_algorithms() {
        let algs = all_algorithms();
        assert_eq!(algs.len(), 10);
        assert_eq!(algs[8].name(), "AIR Top-K");
        assert_eq!(algs[9].name(), "GridSelect");
    }

    #[test]
    fn lookup_is_forgiving() {
        assert!(algorithm_by_name("AIR Top-K").is_some());
        assert!(algorithm_by_name("airtopk").is_some());
        assert!(algorithm_by_name("GRIDSELECT").is_some());
        assert!(algorithm_by_name("bitonic top-k").is_some());
        assert!(algorithm_by_name("nope").is_none());
    }
}
