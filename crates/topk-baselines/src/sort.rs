//! Sort baseline: full radix sort, take the first K.
//!
//! Imitates CUB's `DeviceRadixSort::SortPairs` — the "most
//! straightforward" approach the paper lists first (§1): sort all
//! (key, index) pairs, then read off the first K. The paper's §2.2
//! observation holds here by construction: running time is essentially
//! independent of K (Fig. 6's flat Sort curves), because all the work
//! is in the sort.
//!
//! The sort is a 4-pass LSD counting sort with 8-bit digits; each pass
//! is three kernels (per-block histograms → per-segment scan → stable
//! scatter), which is the classic pre-onesweep CUB structure. Batched
//! problems run as a *segmented* sort (CUB's
//! `DeviceSegmentedRadixSort`): one launch set covers every segment,
//! so Sort amortises launches across a batch the way the real library
//! does, rather than looping. Scatter traffic is charged as coalesced
//! plus extra compute — CUB's shared-memory binning makes its writes
//! nearly coalesced, and modelling them as random 32-byte transactions
//! would unfairly slow this baseline by ~4× relative to its measured
//! behaviour.

use gpu_sim::{Backend, BackendExt, DeviceBuffer, Footprint, KernelContract, LaunchConfig};
use topk_core::error::TopKError;
use topk_core::keys::RadixKey;
use topk_core::scratch::ScratchGuard;
use topk_core::traits::{check_args, check_batch, Category, TopKAlgorithm, TopKOutput};

/// Digit width of the LSD sort (CUB uses 8 on these key sizes).
const SORT_BITS: u32 = 8;
const RADIX: usize = 1 << SORT_BITS;
const PASSES: u32 = 32 / SORT_BITS;

/// Elements each block handles per pass.
const CHUNK: usize = 256 * 8;

/// The CUB-like full-sort baseline.
#[derive(Debug, Clone, Default)]
pub struct SortTopK;

/// Fully sort a batch of equal-length segments (keys as ordered bits,
/// payload = within-segment index), returning packed `(keys, idx)`
/// buffers of `batch × n` sorted per segment — the simulator's
/// `DeviceSegmentedRadixSort::SortPairs`.
fn segmented_sort(
    gpu: &mut dyn Backend,
    inputs: &[DeviceBuffer<f32>],
) -> Result<(DeviceBuffer<u32>, DeviceBuffer<u32>), TopKError> {
    let mut ws = ScratchGuard::new();
    let mut pp = ScratchGuard::new();
    let r = segmented_sort_passes(gpu, &mut ws, &mut pp, inputs);
    ws.release(gpu);
    if r.is_err() {
        pp.release(gpu);
    }
    r
}

/// Pass loop of [`segmented_sort`]: histogram/scan workspace in `ws`
/// (always released), ping-pong pairs in `pp` (released on error; on
/// success the non-surviving pair is freed directly and the sorted
/// pair is handed to the caller).
fn segmented_sort_passes(
    gpu: &mut dyn Backend,
    ws: &mut ScratchGuard,
    pp: &mut ScratchGuard,
    inputs: &[DeviceBuffer<f32>],
) -> Result<(DeviceBuffer<u32>, DeviceBuffer<u32>), TopKError> {
    let n = inputs[0].len();
    let batch = inputs.len();
    let total = batch * n;

    // Ping-pong key/payload pairs (packed, segment-major).
    let keys = [
        pp.alloc::<u32>(gpu, "sort_keys0", total)?,
        pp.alloc::<u32>(gpu, "sort_keys1", total)?,
    ];
    let vals = [
        pp.alloc::<u32>(gpu, "sort_idx0", total)?,
        pp.alloc::<u32>(gpu, "sort_idx1", total)?,
    ];

    let bpp = n.div_ceil(CHUNK).max(1); // blocks per segment
    let grid = batch * bpp;
    let launch = LaunchConfig::grid_1d(grid, 256);
    // (segment, digit-major, block-minor) histogram matrix: one
    // exclusive scan per segment yields every block's stable base.
    let hist = ws.alloc::<u32>(gpu, "sort_hist", batch * RADIX * bpp)?;
    let offsets = ws.alloc::<u32>(gpu, "sort_offsets", batch * RADIX * bpp)?;

    for pass in 0..PASSES {
        let src = (pass as usize) % 2;
        let dst = 1 - src;
        let shift = pass * SORT_BITS;
        let first = pass == 0;

        hist.fill(0); // device memset between passes

        // Kernel 1: per-block digit histograms.
        {
            let keys_src = keys[src].clone();
            let hist = hist.clone();
            let mut contract = KernelContract::new("radix_sort_histogram")
                // Each block's histogram slots stay inside its own
                // segment's hist slice; counts are merged atomically.
                .atomics(&hist, Footprint::per_group(bpp, RADIX * bpp))
                .reads(&keys_src, Footprint::all())
                .uses_shared_mem(RADIX * 4);
            for input in inputs {
                contract = contract.reads(input, Footprint::all());
            }
            gpu.try_launch_checked(&contract, launch, move |ctx| {
                let seg = ctx.block_idx / bpp;
                let blk = ctx.block_idx % bpp;
                let start = blk * CHUNK;
                let end = (start + CHUNK).min(n);
                let mut local = ctx.shared_alloc::<u32>(RADIX);
                for i in start..end {
                    let bits = if first {
                        ctx.ld(&inputs[seg], i).to_ordered()
                    } else {
                        ctx.ld(&keys_src, seg * n + i)
                    };
                    let d = ((bits >> shift) & (RADIX as u32 - 1)) as usize;
                    local[d] += 1;
                    ctx.ops(3);
                }
                let hbase = seg * RADIX * bpp;
                for (d, &c) in local.iter().enumerate() {
                    if c != 0 {
                        ctx.atomic_add(&hist, hbase + d * bpp + blk, c);
                    }
                }
                ctx.ops(RADIX as u64);
            })?;
        }

        // Kernel 2: exclusive scan, one block per segment.
        {
            let hist = hist.clone();
            let offsets = offsets.clone();
            let contract = KernelContract::new("radix_sort_scan")
                .reads(&hist, Footprint::per_block(RADIX * bpp))
                .writes(&offsets, Footprint::per_block(RADIX * bpp));
            gpu.try_launch_checked(&contract, LaunchConfig::grid_1d(batch, 256), move |ctx| {
                let seg = ctx.block_idx;
                let base = seg * RADIX * bpp;
                let mut acc = 0u32;
                for slot in 0..RADIX * bpp {
                    let h = ctx.ld(&hist, base + slot);
                    ctx.st(&offsets, base + slot, acc);
                    acc += h;
                }
                ctx.ops((RADIX * bpp) as u64 * 2);
            })?;
        }

        // Kernel 3: stable scatter within each segment.
        {
            let keys_src = keys[src].clone();
            let vals_src = vals[src].clone();
            let keys_dst = keys[dst].clone();
            let vals_dst = vals[dst].clone();
            let offsets = offsets.clone();
            let mut contract = KernelContract::new("radix_sort_scatter")
                .reads(&keys_src, Footprint::all())
                .reads(&vals_src, Footprint::all())
                .reads(&offsets, Footprint::per_group(bpp, RADIX * bpp))
                // Blocks of one segment scatter into the segment's slice
                // at positions the scan made disjoint dynamically.
                .writes_shared(&keys_dst, Footprint::per_group(bpp, n))
                .writes_shared(&vals_dst, Footprint::per_group(bpp, n))
                .uses_shared_mem(RADIX * 4);
            for input in inputs {
                contract = contract.reads(input, Footprint::all());
            }
            gpu.try_launch_checked(&contract, launch, move |ctx| {
                let seg = ctx.block_idx / bpp;
                let blk = ctx.block_idx % bpp;
                let start = blk * CHUNK;
                let end = (start + CHUNK).min(n);
                let obase = seg * RADIX * bpp;
                let mut cursors = ctx.shared_alloc::<u32>(RADIX);
                for (d, c) in cursors.iter_mut().enumerate() {
                    *c = ctx.ld(&offsets, obase + d * bpp + blk);
                }
                for i in start..end {
                    let (bits, payload) = if first {
                        (ctx.ld(&inputs[seg], i).to_ordered(), i as u32)
                    } else {
                        (
                            ctx.ld(&keys_src, seg * n + i),
                            ctx.ld(&vals_src, seg * n + i),
                        )
                    };
                    let d = ((bits >> shift) & (RADIX as u32 - 1)) as usize;
                    let pos = cursors[d] as usize;
                    cursors[d] += 1;
                    // CUB bins in shared memory first, so global writes
                    // are (near-)coalesced: charge streaming stores plus
                    // the binning compute.
                    ctx.st(&keys_dst, seg * n + pos, bits);
                    ctx.st(&vals_dst, seg * n + pos, payload);
                    ctx.ops(6);
                }
            })?;
        }
    }

    let sorted = (PASSES as usize) % 2;
    gpu.free(&keys[1 - sorted]);
    gpu.free(&vals[1 - sorted]);
    Ok((keys[sorted].clone(), vals[sorted].clone()))
}

/// Extract the first K of each sorted segment into per-problem outputs.
fn extract(
    gpu: &mut dyn Backend,
    sorted_keys: &DeviceBuffer<u32>,
    sorted_idx: &DeviceBuffer<u32>,
    n: usize,
    batch: usize,
    k: usize,
) -> Result<Vec<TopKOutput>, TopKError> {
    let mut ws = ScratchGuard::new();
    let r = (|| {
        let out_val = ws.alloc::<f32>(gpu, "sort_out_val", batch * k)?;
        let out_idx = ws.alloc::<u32>(gpu, "sort_out_idx", batch * k)?;
        let (sk, si) = (sorted_keys.clone(), sorted_idx.clone());
        let (ov, oi) = (out_val.clone(), out_idx.clone());
        let contract = KernelContract::new("extract_topk")
            .reads(&sk, Footprint::all())
            .reads(&si, Footprint::all())
            .writes(&ov, Footprint::tiles(256))
            .writes(&oi, Footprint::tiles(256));
        gpu.try_launch_checked(
            &contract,
            LaunchConfig::for_elements(batch * k, 256, 1, usize::MAX),
            move |ctx| {
                let start = ctx.block_idx * 256;
                let end = (start + 256).min(batch * k);
                for slot in start..end {
                    let (seg, i) = (slot / k, slot % k);
                    let bits = ctx.ld(&sk, seg * n + i);
                    let idx = ctx.ld(&si, seg * n + i);
                    ctx.st(&ov, slot, f32::from_ordered(bits));
                    ctx.st(&oi, slot, idx);
                    ctx.ops(2);
                }
            },
        )?;
        Ok((0..batch)
            .map(|p| {
                let values = DeviceBuffer::<f32>::zeroed("sort_values", k);
                let indices = DeviceBuffer::<u32>::zeroed("sort_indices", k);
                for i in 0..k {
                    values.set(i, out_val.get(p * k + i));
                    indices.set(i, out_idx.get(p * k + i));
                }
                TopKOutput::new(values, indices)
            })
            .collect())
    })();
    ws.release(gpu);
    r
}

impl TopKAlgorithm for SortTopK {
    fn name(&self) -> &'static str {
        "Sort"
    }

    fn category(&self) -> Category {
        Category::Sorting
    }

    fn try_select(
        &self,
        gpu: &mut dyn Backend,
        input: &DeviceBuffer<f32>,
        k: usize,
    ) -> Result<TopKOutput, TopKError> {
        self.try_select_batch(gpu, std::slice::from_ref(input), k)?
            .pop()
            .ok_or_else(|| TopKError::UnsupportedShape {
                algorithm: self.name(),
                detail: "batch of one produced no output".into(),
            })
    }

    fn try_select_batch(
        &self,
        gpu: &mut dyn Backend,
        inputs: &[DeviceBuffer<f32>],
        k: usize,
    ) -> Result<Vec<TopKOutput>, TopKError> {
        let n = check_batch(self, inputs)?;
        check_args(self, n, k)?;
        let batch = inputs.len();
        let (sorted_keys, sorted_idx) = segmented_sort(gpu, inputs)?;
        let outs = extract(gpu, &sorted_keys, &sorted_idx, n, batch, k);
        gpu.free(&sorted_keys);
        gpu.free(&sorted_idx);
        outs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{generate, Distribution};
    use gpu_sim::{DeviceSpec, Gpu};
    use topk_core::verify::verify_topk;

    fn run_case(data: &[f32], k: usize) {
        let mut g = Gpu::new(DeviceSpec::a100());
        let input = g.htod("in", data);
        let out = SortTopK.select(&mut g, &input, k);
        verify_topk(data, k, &out.values.to_vec(), &out.indices.to_vec())
            .unwrap_or_else(|e| panic!("Sort failed: {e}"));
    }

    #[test]
    fn sorts_and_extracts() {
        run_case(&[5.0, 1.0, 4.0, 1.5, -2.0, 8.0, 0.0], 3);
    }

    #[test]
    fn output_is_fully_sorted_ascending() {
        let data = generate(Distribution::Normal, 5000, 3);
        let mut g = Gpu::new(DeviceSpec::a100());
        let input = g.htod("in", &data);
        let out = SortTopK.select(&mut g, &input, 100);
        let v = out.values.to_vec();
        assert!(
            v.windows(2).all(|w| w[0] <= w[1]),
            "Sort's top-K is ordered"
        );
    }

    #[test]
    fn all_distributions() {
        for dist in Distribution::benchmark_set() {
            let data = generate(dist, 20_000, 9);
            run_case(&data, 1);
            run_case(&data, 2048);
            run_case(&data, 20_000);
        }
    }

    #[test]
    fn stability_ties_negative_zero() {
        let mut data = vec![1.0f32; 100];
        data.push(-0.0);
        data.push(0.0);
        run_case(&data, 50);
    }

    #[test]
    fn cost_is_k_independent() {
        // §2.2 / Fig. 6: Sort's cost doesn't depend on K.
        let data = generate(Distribution::Uniform, 50_000, 1);
        let time = |k: usize| {
            let mut g = Gpu::new(DeviceSpec::a100());
            let input = g.htod("in", &data);
            g.reset_profile();
            let _ = SortTopK.select(&mut g, &input, k);
            g.elapsed_us()
        };
        let t8 = time(8);
        let t4096 = time(4096);
        assert!((t4096 - t8).abs() / t8 < 0.05, "t8={t8} t4096={t4096}");
    }

    #[test]
    fn segmented_batch_is_correct_and_amortises_launches() {
        let datas: Vec<Vec<f32>> = (0..6)
            .map(|i| generate(Distribution::Uniform, 8_000, i))
            .collect();
        let mut g = Gpu::new(DeviceSpec::a100());
        let inputs: Vec<_> = datas
            .iter()
            .enumerate()
            .map(|(i, d)| g.htod(&format!("p{i}"), d))
            .collect();
        g.reset_profile();
        let outs = SortTopK.select_batch(&mut g, &inputs, 64);
        // 4 passes x 3 kernels + extract = 13 launches for the whole
        // batch, like DeviceSegmentedRadixSort — not 6 x 13.
        assert_eq!(g.timeline().kernel_count(), 13);
        for (d, o) in datas.iter().zip(&outs) {
            verify_topk(d, 64, &o.values.to_vec(), &o.indices.to_vec()).unwrap();
        }
    }

    #[test]
    fn batch_of_one_matches_single() {
        let data = generate(Distribution::Normal, 3000, 7);
        let mut g = Gpu::new(DeviceSpec::a100());
        let input = g.htod("in", &data);
        let a = SortTopK.select(&mut g, &input, 10);
        let b = SortTopK
            .select_batch(&mut g, std::slice::from_ref(&input), 10)
            .pop()
            .unwrap();
        assert_eq!(a.values.to_vec(), b.values.to_vec());
        assert_eq!(a.indices.to_vec(), b.indices.to_vec());
    }
}
