//! RadixSelect baseline: classic MSD radix top-K with the host in the
//! loop (DrTopK's base implementation, after Alabi et al. 2012).
//!
//! Functionally the same digit-by-digit narrowing as AIR Top-K, but
//! organised the way every pre-AIR GPU implementation was (§3.1):
//! per iteration the device computes a histogram
//! (`CalculateOccurrence`, the kernel named in Fig. 8), the *host*
//! copies it back over PCIe, computes the prefix sum, picks the target
//! digit, uploads parameters, and launches a separate filter kernel —
//! synchronising twice per digit. Candidates are always written to
//! buffers (no adaptive strategy), and each of the ⌈32/8⌉ = 4
//! iterations reloads the data once for the histogram and once for the
//! filter. All of that is what AIR Top-K's iteration fusion removes,
//! and what this baseline exists to measure.

use crate::common::{load_candidate, stream_launch, SelectionState, STREAM_CHUNK};
use gpu_sim::{Backend, BackendExt, DeviceBuffer, Footprint, KernelContract};
use topk_core::error::TopKError;
use topk_core::keys::RadixKey;
use topk_core::traits::{check_args, Category, TopKAlgorithm, TopKOutput};

const SELECT_BITS: u32 = 8;
const RADIX: usize = 1 << SELECT_BITS;
const PASSES: u32 = 32 / SELECT_BITS;

/// Host-driven MSD radix select (DrTopK-style).
#[derive(Debug, Clone, Default)]
pub struct RadixSelect;

impl TopKAlgorithm for RadixSelect {
    fn name(&self) -> &'static str {
        "RadixSelect"
    }

    fn category(&self) -> Category {
        Category::PartitionBased
    }

    fn try_select(
        &self,
        gpu: &mut dyn Backend,
        input: &DeviceBuffer<f32>,
        k: usize,
    ) -> Result<TopKOutput, TopKError> {
        check_args(self, input.len(), k)?;
        let n = input.len();
        let mut st = SelectionState::new(gpu, n, k)?;
        let hist = match gpu.try_alloc::<u32>("rs_hist", RADIX) {
            Ok(h) => h,
            Err(e) => {
                st.free_all(gpu);
                return Err(e.into());
            }
        };
        let r = run_passes(gpu, input, &mut st, &hist);
        gpu.free(&hist);
        match r {
            Ok(()) => {
                st.free_workspace(gpu);
                Ok(st.into_output())
            }
            Err(e) => {
                st.free_all(gpu);
                Err(e)
            }
        }
    }
}

/// The host-in-the-loop pass sequence; cleanup happens in `try_select`
/// so an error cannot strand workspace bytes.
fn run_passes(
    gpu: &mut dyn Backend,
    input: &DeviceBuffer<f32>,
    st: &mut SelectionState,
    hist: &DeviceBuffer<u32>,
) -> Result<(), TopKError> {
    {
        for pass in 0..PASSES {
            let shift = 32 - (pass + 1) * SELECT_BITS;
            let n_cur = st.n_cur;
            let launch = stream_launch(n_cur);

            // Kernel 1: CalculateOccurrence — the digit histogram.
            hist.fill(0);
            {
                let keys = st.cand_keys[st.cur].clone();
                let idxs = st.cand_idx[st.cur].clone();
                let materialised = st.materialised;
                let input = input.clone();
                let hist = hist.clone();
                let contract = KernelContract::new("CalculateOccurrence")
                    .reads(&input, Footprint::all())
                    .reads(&keys, Footprint::all())
                    .reads(&idxs, Footprint::all())
                    .atomics(&hist, Footprint::fixed(0, RADIX))
                    .uses_shared_mem(RADIX * 4);
                gpu.try_launch_checked(&contract, launch, move |ctx| {
                    let start = ctx.block_idx * STREAM_CHUNK;
                    let end = (start + STREAM_CHUNK).min(n_cur);
                    let mut local = ctx.shared_alloc::<u32>(RADIX);
                    for i in start..end {
                        let (bits, _) = load_candidate(ctx, &input, &keys, &idxs, materialised, i);
                        local[((bits >> shift) & (RADIX as u32 - 1)) as usize] += 1;
                        ctx.ops(3);
                    }
                    for (d, &c) in local.iter().enumerate() {
                        if c != 0 {
                            ctx.atomic_add(&hist, d, c);
                        }
                    }
                    ctx.ops(RADIX as u64);
                })?;
            }

            // Host round-trip: copy the histogram back (implicit
            // device sync), scan it, choose the target digit.
            let h = gpu.dtoh(hist);
            gpu.host_compute("prefix sum + target digit", 2.0);
            let mut acc = 0u32;
            let mut target = (RADIX - 1) as u32;
            let mut below = 0u32;
            for (d, &c) in h.iter().enumerate() {
                if acc + c >= st.k_rem as u32 {
                    target = d as u32;
                    below = acc;
                    break;
                }
                acc += c;
            }
            let next_n = h[target as usize] as usize;
            let next_k = st.k_rem - below as usize;

            // Kernel 2: Filter — emit sure results, buffer candidates.
            // (The device re-derives write positions from its own
            // atomic cursors; the host uploads the target digit.)
            let params = gpu.try_alloc::<u32>("rs_params", 2)?;
            gpu.htod_into(&params, &[target, 0]);
            let is_last = pass + 1 == PASSES;
            let launched = {
                let keys = st.cand_keys[st.cur].clone();
                let idxs = st.cand_idx[st.cur].clone();
                let nkeys = st.cand_keys[1 - st.cur].clone();
                let nidx = st.cand_idx[1 - st.cur].clone();
                let materialised = st.materialised;
                let input = input.clone();
                let out_val = st.out_val.clone();
                let out_idx = st.out_idx.clone();
                let out_cursor = st.out_cursor.clone();
                let params = params.clone();
                // Tie quota on the final digit: result slots left after
                // the sure (strictly-below) results are taken out.
                let tie_quota = next_k as u32;
                let contract = KernelContract::new("Filter")
                    .reads(&input, Footprint::all())
                    .reads(&keys, Footprint::all())
                    .reads(&idxs, Footprint::all())
                    .coordinates(&params, Footprint::fixed(0, 2))
                    .atomics(&out_cursor, Footprint::elem(0))
                    .writes_shared(&out_val, Footprint::all())
                    .writes_shared(&out_idx, Footprint::all())
                    .writes_shared(&nkeys, Footprint::all())
                    .writes_shared(&nidx, Footprint::all());
                gpu.try_launch_checked(&contract, launch, move |ctx| {
                    let start = ctx.block_idx * STREAM_CHUNK;
                    let end = (start + STREAM_CHUNK).min(n_cur);
                    let target = ctx.ld(&params, 0);
                    for i in start..end {
                        let (bits, idx) =
                            load_candidate(ctx, &input, &keys, &idxs, materialised, i);
                        let d = (bits >> shift) & (RADIX as u32 - 1);
                        ctx.ops(3);
                        if d < target {
                            let pos = ctx.atomic_add(&out_cursor, 0, 1) as usize;
                            ctx.st_scatter(&out_val, pos, f32::from_ordered(bits));
                            ctx.st_scatter(&out_idx, pos, idx);
                        } else if d == target {
                            if is_last {
                                // Full key equals the kth value: admit
                                // by rank (ties).
                                let rank = ctx.atomic_add(&params, 1, 1);
                                if rank < tie_quota {
                                    let pos = ctx.atomic_add(&out_cursor, 0, 1) as usize;
                                    ctx.st_scatter(&out_val, pos, f32::from_ordered(bits));
                                    ctx.st_scatter(&out_idx, pos, idx);
                                }
                            } else {
                                let pos = ctx.atomic_add(&params, 1, 1) as usize;
                                ctx.st_scatter(&nkeys, pos, bits);
                                ctx.st_scatter(&nidx, pos, idx);
                            }
                        }
                    }
                })
                .map(|_| ())
            };
            if let Err(e) = launched {
                gpu.free(&params);
                return Err(e.into());
            }
            gpu.free(&params);

            if is_last {
                break;
            }
            // The host also reads back the surviving-candidate count to
            // decide whether to continue — another sync in the real
            // implementation (we already know `next_n` from the
            // histogram, as DrTopK does).
            st.cur = 1 - st.cur;
            st.materialised = true;
            st.n_cur = next_n;
            st.k_rem = next_k;

            if st.k_rem == st.n_cur {
                // Everything left is a result; copy and stop.
                crate::common::emit_all_candidates(gpu, input, st)?;
                break;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{generate, Distribution};
    use gpu_sim::{DeviceSpec, Gpu};
    use topk_core::verify::verify_topk;

    fn run_case(data: &[f32], k: usize) {
        let mut g = Gpu::new(DeviceSpec::a100());
        let input = g.htod("in", data);
        let out = RadixSelect.select(&mut g, &input, k);
        verify_topk(data, k, &out.values.to_vec(), &out.indices.to_vec())
            .unwrap_or_else(|e| panic!("RadixSelect failed: {e} (n={}, k={k})", data.len()));
    }

    #[test]
    fn basic_cases() {
        run_case(&[5.0, 1.0, 4.0, 1.5, -2.0, 8.0, 0.0], 3);
        run_case(&[1.0], 1);
    }

    #[test]
    fn all_distributions_shapes() {
        for dist in Distribution::benchmark_set() {
            let data = generate(dist, 30_000, 5);
            for k in [1usize, 17, 2048, 29_999, 30_000] {
                run_case(&data, k);
            }
        }
    }

    #[test]
    fn ties_and_identical() {
        run_case(&vec![2.5f32; 512], 100);
        let mut data = vec![1.0f32; 400];
        data.extend(vec![0.5f32; 400]);
        run_case(&data, 600);
    }

    #[test]
    fn host_roundtrips_every_iteration() {
        // The defining inefficiency vs. AIR: DtoH copies + syncs.
        let data = generate(Distribution::Uniform, 100_000, 1);
        let mut g = Gpu::new(DeviceSpec::a100());
        let input = g.htod("in", &data);
        g.reset_profile();
        let _ = RadixSelect.select(&mut g, &input, 1000);
        assert!(
            g.timeline().memcpy_us() > 0.0,
            "RadixSelect must transfer histograms over PCIe"
        );
        assert!(
            g.timeline().idle_us() > 4.0 * g.spec().host_sync_us,
            "at least one sync per pass"
        );
        // More kernel launches than AIR needs, even when the k = n
        // early exit cuts the loop short.
        assert!(g.timeline().kernel_count() >= 5);
    }
}
