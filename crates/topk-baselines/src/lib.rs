//! # topk-baselines — the eight previous algorithms of Table 1
//!
//! Faithful reimplementations (on the [`gpu_sim`] substrate) of the
//! open-source GPU top-K implementations the SC '23 paper benchmarks
//! against:
//!
//! | Algorithm | Library imitated | Category |
//! |-----------|------------------|----------|
//! | [`Sort`](sort) | CUB `DeviceRadixSort` | Sorting |
//! | [`WarpSelect`](warpselect) | Faiss | Partial sorting |
//! | [`BlockSelect`](blockselect) | Faiss | Partial sorting |
//! | [`Bitonic Top-K`](bitonic_topk) | DrTopK | Partial sorting |
//! | [`QuickSelect`](quickselect) | GpuSelection | Partition-based |
//! | [`BucketSelect`](bucketselect) | GpuSelection | Partition-based |
//! | [`SampleSelect`](sampleselect) | GpuSelection | Partition-based |
//! | [`RadixSelect`](radixselect) | DrTopK | Partition-based |
//!
//! The defining behavioural traits the paper leans on are preserved:
//! the partition-based baselines keep the **host in the loop** (every
//! iteration round-trips a histogram over PCIe and synchronises — the
//! white space in Fig. 8); WarpSelect runs **one warp** and BlockSelect
//! **one thread block**, so neither can saturate a 108-SM device
//! (§5.3); Bitonic Top-K and the Faiss selects hit their documented
//! K limits (256 / 2048); and every baseline solves batched problems
//! one at a time unless the original library is batched (the Faiss
//! selects launch one block per query).

pub mod bitonic_topk;
pub mod blockselect;
pub mod bucketselect;
pub mod common;
pub mod quickselect;
pub mod radixselect;
pub mod sampleselect;
pub mod sort;
pub mod warpselect;

pub use bitonic_topk::BitonicTopK;
pub use blockselect::BlockSelect;
pub use bucketselect::BucketSelect;
pub use quickselect::QuickSelect;
pub use radixselect::RadixSelect;
pub use sampleselect::SampleSelect;
pub use sort::SortTopK;
pub use warpselect::WarpSelect;

/// Construct one instance of every baseline, in Table 1 order.
pub fn all_baselines() -> Vec<Box<dyn topk_core::TopKAlgorithm>> {
    vec![
        Box::new(SortTopK),
        Box::new(WarpSelect),
        Box::new(BlockSelect),
        Box::new(BitonicTopK),
        Box::new(QuickSelect::default()),
        Box::new(BucketSelect),
        Box::new(SampleSelect),
        Box::new(RadixSelect),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use topk_core::Category;

    #[test]
    fn table_1_inventory() {
        let algs = all_baselines();
        assert_eq!(algs.len(), 8);
        let names: Vec<_> = algs.iter().map(|a| a.name()).collect();
        assert_eq!(
            names,
            vec![
                "Sort",
                "WarpSelect",
                "BlockSelect",
                "Bitonic Top-K",
                "QuickSelect",
                "BucketSelect",
                "SampleSelect",
                "RadixSelect"
            ]
        );
        let cats: Vec<_> = algs.iter().map(|a| a.category()).collect();
        assert_eq!(cats[0], Category::Sorting);
        assert_eq!(cats[1], Category::PartialSorting);
        assert_eq!(cats[2], Category::PartialSorting);
        assert_eq!(cats[3], Category::PartialSorting);
        for c in &cats[4..] {
            assert_eq!(*c, Category::PartitionBased);
        }
    }

    #[test]
    fn k_limits_match_the_paper() {
        let algs = all_baselines();
        let by_name = |n: &str| algs.iter().find(|a| a.name() == n).unwrap();
        assert_eq!(by_name("WarpSelect").max_k(), Some(2048));
        assert_eq!(by_name("BlockSelect").max_k(), Some(2048));
        assert_eq!(by_name("Bitonic Top-K").max_k(), Some(256));
        assert_eq!(by_name("Sort").max_k(), None);
        assert_eq!(by_name("RadixSelect").max_k(), None);
    }
}
