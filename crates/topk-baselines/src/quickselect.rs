//! QuickSelect baseline (GpuSelection / Dashti et al. 2013).
//!
//! Single-pivot partition-based selection: pick a pivot, three-way
//! partition the candidates on the device, recurse into the side that
//! contains the Kth element (§2.2). Each iteration needs the host to
//! read back the partition counts (a sync + PCIe round-trip) before it
//! can decide which side to keep — so like all GpuSelection methods it
//! pays per-iteration host engagement, and unlike RadixSelect its
//! iteration count is data-dependent (`O(N²)` worst case, §2.2).

use crate::common::{
    emit_all_candidates, final_small_select, load_candidate, stream_launch, SelectionState,
    STREAM_CHUNK,
};
use gpu_sim::{Backend, BackendExt, DeviceBuffer, Footprint, KernelContract};
use topk_core::error::TopKError;
use topk_core::keys::RadixKey;
use topk_core::traits::{check_args, Category, TopKAlgorithm, TopKOutput};

/// Below this many candidates, finish with one on-device sort.
const SMALL_CUTOFF: usize = 4096;

/// How the per-iteration pivot is chosen.
///
/// §2.2: "QuickSelect, in the worst case, can remove only one element
/// per iteration. So N iterations of processing approximately N
/// elements lead to O(N²) worst-case complexity." That worst case is
/// reachable with [`PivotStrategy::First`] on sorted input — see the
/// `sorted_input_worst_case_is_quadratic` test. The default `Middle`
/// behaves like GpuSelection's implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PivotStrategy {
    /// Middle candidate (good on random and sorted data).
    #[default]
    Middle,
    /// First candidate — degenerates to O(N²) on sorted input, the
    /// §2.2 worst case.
    First,
    /// Median of the first, middle and last candidates (classic
    /// quicksort hardening).
    MedianOfThree,
}

/// The GpuSelection QuickSelect baseline.
#[derive(Debug, Clone, Default)]
pub struct QuickSelect {
    /// Pivot policy (default: middle element).
    pub pivot: PivotStrategy,
}

impl TopKAlgorithm for QuickSelect {
    fn name(&self) -> &'static str {
        "QuickSelect"
    }

    fn category(&self) -> Category {
        Category::PartitionBased
    }

    fn try_select(
        &self,
        gpu: &mut dyn Backend,
        input: &DeviceBuffer<f32>,
        k: usize,
    ) -> Result<TopKOutput, TopKError> {
        check_args(self, input.len(), k)?;
        let n = input.len();
        let mut st = SelectionState::new(gpu, n, k)?;
        // counts[0] = below pivot, counts[1] = equal, plus two write
        // cursors for the partition outputs.
        let counts = match gpu.try_alloc::<u32>("qs_counts", 4) {
            Ok(c) => c,
            Err(e) => {
                st.free_all(gpu);
                return Err(e.into());
            }
        };
        let r = self.run_loop(gpu, input, &mut st, &counts);
        gpu.free(&counts);
        match r {
            Ok(()) => {
                st.free_workspace(gpu);
                Ok(st.into_output())
            }
            Err(e) => {
                st.free_all(gpu);
                Err(e)
            }
        }
    }
}

impl QuickSelect {
    /// The host-driven iteration loop; every exit path leaves cleanup
    /// to `try_select` so an error cannot strand workspace bytes.
    fn run_loop(
        &self,
        gpu: &mut dyn Backend,
        input: &DeviceBuffer<f32>,
        st: &mut SelectionState,
        counts: &DeviceBuffer<u32>,
    ) -> Result<(), TopKError> {
        let mut first = true;
        loop {
            if st.k_rem == 0 {
                break;
            }
            if st.n_cur == st.k_rem {
                emit_all_candidates(gpu, input, st)?;
                break;
            }
            if !first && st.n_cur <= SMALL_CUTOFF.max(st.k_rem) {
                final_small_select(gpu, input, st)?;
                break;
            }
            first = false;

            // Pick the pivot: a tiny gather kernel plus a 4-byte DtoH
            // (the per-iteration sync this method cannot avoid).
            let pivot_buf = gpu.try_alloc::<u32>("qs_pivot", 1)?;
            let launched = {
                let keys = st.cand_keys[st.cur].clone();
                let idxs = st.cand_idx[st.cur].clone();
                let materialised = st.materialised;
                let input = input.clone();
                let pivot_buf = pivot_buf.clone();
                let n_cur = st.n_cur;
                let strategy = self.pivot;
                let contract = KernelContract::new("quickselect_pick_pivot")
                    .reads(&input, Footprint::all())
                    .reads(&keys, Footprint::all())
                    .reads(&idxs, Footprint::all())
                    .writes(&pivot_buf, Footprint::elem(0))
                    .requires_grid_at_most(1);
                gpu.try_launch_checked(
                    &contract,
                    gpu_sim::LaunchConfig::grid_1d(1, 32),
                    move |ctx| {
                        let at = |ctx: &mut gpu_sim::BlockCtx, i: usize| {
                            load_candidate(ctx, &input, &keys, &idxs, materialised, i).0
                        };
                        let bits = match strategy {
                            PivotStrategy::Middle => at(ctx, n_cur / 2),
                            PivotStrategy::First => at(ctx, 0),
                            PivotStrategy::MedianOfThree => {
                                let (a, b, c) =
                                    (at(ctx, 0), at(ctx, n_cur / 2), at(ctx, n_cur - 1));
                                ctx.ops(3);
                                // median(a, b, c)
                                a.min(b).max(a.max(b).min(c))
                            }
                        };
                        ctx.st(&pivot_buf, 0, bits);
                    },
                )
                .map(|_| ())
            };
            if let Err(e) = launched {
                gpu.free(&pivot_buf);
                return Err(e.into());
            }
            let pivot = gpu.dtoh(&pivot_buf)[0];
            gpu.free(&pivot_buf);

            // Three-way partition: `< pivot` goes to the ping-pong
            // buffer front (it may become the recursed side), `== pivot`
            // is only counted, `> pivot` to the buffer back.
            counts.fill(0);
            let n_cur = st.n_cur;
            {
                let keys = st.cand_keys[st.cur].clone();
                let idxs = st.cand_idx[st.cur].clone();
                let nkeys = st.cand_keys[1 - st.cur].clone();
                let nidx = st.cand_idx[1 - st.cur].clone();
                let materialised = st.materialised;
                let input = input.clone();
                let counts = counts.clone();
                let contract = KernelContract::new("quickselect_partition")
                    .reads(&input, Footprint::all())
                    .reads(&keys, Footprint::all())
                    .reads(&idxs, Footprint::all())
                    .atomics(&counts, Footprint::fixed(0, 4))
                    .writes_shared(&nkeys, Footprint::all())
                    .writes_shared(&nidx, Footprint::all());
                gpu.try_launch_checked(&contract, stream_launch(n_cur), move |ctx| {
                    let start = ctx.block_idx * STREAM_CHUNK;
                    let end = (start + STREAM_CHUNK).min(n_cur);
                    for i in start..end {
                        let (bits, idx) =
                            load_candidate(ctx, &input, &keys, &idxs, materialised, i);
                        ctx.ops(2);
                        if bits < pivot {
                            ctx.atomic_add(&counts, 0, 1);
                            let pos = ctx.atomic_add(&counts, 2, 1) as usize;
                            ctx.st_scatter(&nkeys, pos, bits);
                            ctx.st_scatter(&nidx, pos, idx);
                        } else if bits == pivot {
                            ctx.atomic_add(&counts, 1, 1);
                        } else {
                            let pos = n_cur - 1 - ctx.atomic_add(&counts, 3, 1) as usize;
                            ctx.st_scatter(&nkeys, pos, bits);
                            ctx.st_scatter(&nidx, pos, idx);
                        }
                    }
                })?;
            }
            let c = gpu.dtoh(counts);
            gpu.host_compute("choose side", 0.5);
            let below = c[0] as usize;
            let equal = c[1] as usize;
            let above = n_cur - below - equal;

            if st.k_rem <= below {
                // Kth is strictly below the pivot: recurse left.
                st.cur = 1 - st.cur;
                st.materialised = true;
                st.n_cur = below;
            } else if st.k_rem <= below + equal {
                // The left side plus some pivot-equal elements are the
                // answer: emit left, then admit `k_rem - below` pivots.
                let take_eq = st.k_rem - below;
                let keys = st.cand_keys[st.cur].clone();
                let idxs = st.cand_idx[st.cur].clone();
                let nkeys = st.cand_keys[1 - st.cur].clone();
                let nidx = st.cand_idx[1 - st.cur].clone();
                let materialised = st.materialised;
                let input = input.clone();
                let out_val = st.out_val.clone();
                let out_idx = st.out_idx.clone();
                let out_cursor = st.out_cursor.clone();
                let counts = counts.clone();
                gpu.htod_into(&counts, &[0, 0, 0, 0]);
                let contract = KernelContract::new("quickselect_emit")
                    .reads(&input, Footprint::all())
                    .reads(&keys, Footprint::all())
                    .reads(&idxs, Footprint::all())
                    .reads(&nkeys, Footprint::all())
                    .reads(&nidx, Footprint::all())
                    .atomics(&counts, Footprint::elem(0))
                    .atomics(&out_cursor, Footprint::elem(0))
                    .writes_shared(&out_val, Footprint::all())
                    .writes_shared(&out_idx, Footprint::all());
                gpu.try_launch_checked(&contract, stream_launch(n_cur), move |ctx| {
                    let start = ctx.block_idx * STREAM_CHUNK;
                    let end = (start + STREAM_CHUNK).min(n_cur);
                    for i in start..end {
                        // Left side was already compacted into nkeys;
                        // but ties must be re-found in the source.
                        let (bits, idx) =
                            load_candidate(ctx, &input, &keys, &idxs, materialised, i);
                        if bits == pivot {
                            let rank = ctx.atomic_add(&counts, 0, 1);
                            if rank < take_eq as u32 {
                                let pos = ctx.atomic_add(&out_cursor, 0, 1) as usize;
                                ctx.st_scatter(&out_val, pos, f32::from_ordered(bits));
                                ctx.st_scatter(&out_idx, pos, idx);
                            }
                        }
                        ctx.ops(2);
                    }
                    // Block 0 additionally streams out the compacted
                    // left side.
                    if ctx.block_idx == 0 {
                        for i in 0..below {
                            let bits = ctx.ld(&nkeys, i);
                            let idx = ctx.ld(&nidx, i);
                            let pos = ctx.atomic_add(&out_cursor, 0, 1) as usize;
                            ctx.st_scatter(&out_val, pos, f32::from_ordered(bits));
                            ctx.st_scatter(&out_idx, pos, idx);
                        }
                    }
                })?;
                st.k_rem = 0;
                break;
            } else {
                // Kth is above: the whole left side and all pivot ties
                // are results; recurse right.
                {
                    let nkeys = st.cand_keys[1 - st.cur].clone();
                    let nidx = st.cand_idx[1 - st.cur].clone();
                    let keys = st.cand_keys[st.cur].clone();
                    let idxs = st.cand_idx[st.cur].clone();
                    let materialised = st.materialised;
                    let input = input.clone();
                    let out_val = st.out_val.clone();
                    let out_idx = st.out_idx.clone();
                    let out_cursor = st.out_cursor.clone();
                    let contract = KernelContract::new("quickselect_emit_left")
                        .reads(&input, Footprint::all())
                        .reads(&keys, Footprint::all())
                        .reads(&idxs, Footprint::all())
                        .reads(&nkeys, Footprint::all())
                        .reads(&nidx, Footprint::all())
                        .atomics(&out_cursor, Footprint::elem(0))
                        .writes_shared(&out_val, Footprint::all())
                        .writes_shared(&out_idx, Footprint::all());
                    gpu.try_launch_checked(
                        &contract,
                        stream_launch(n_cur.max(below)),
                        move |ctx| {
                            let start = ctx.block_idx * STREAM_CHUNK;
                            // Emit compacted left side.
                            let end = (start + STREAM_CHUNK).min(below);
                            for i in start..end {
                                let bits = ctx.ld(&nkeys, i);
                                let idx = ctx.ld(&nidx, i);
                                let pos = ctx.atomic_add(&out_cursor, 0, 1) as usize;
                                ctx.st_scatter(&out_val, pos, f32::from_ordered(bits));
                                ctx.st_scatter(&out_idx, pos, idx);
                            }
                            // Emit pivot ties from the source.
                            let end = (start + STREAM_CHUNK).min(n_cur);
                            for i in start..end {
                                let (bits, idx) =
                                    load_candidate(ctx, &input, &keys, &idxs, materialised, i);
                                if bits == pivot {
                                    let pos = ctx.atomic_add(&out_cursor, 0, 1) as usize;
                                    ctx.st_scatter(&out_val, pos, f32::from_ordered(bits));
                                    ctx.st_scatter(&out_idx, pos, idx);
                                }
                                ctx.ops(2);
                            }
                        },
                    )?;
                }
                st.k_rem -= below + equal;
                // The right side sits at the *back* of the ping-pong
                // buffer. Compact it to the front of the other buffer
                // (copying in place would race between blocks when the
                // right side exceeds half the candidates).
                let nkeys = st.cand_keys[1 - st.cur].clone();
                let nidx = st.cand_idx[1 - st.cur].clone();
                let dkeys = st.cand_keys[st.cur].clone();
                let didx = st.cand_idx[st.cur].clone();
                let contract = KernelContract::new("quickselect_compact")
                    .reads(&nkeys, Footprint::all())
                    .reads(&nidx, Footprint::all())
                    .writes(&dkeys, Footprint::tiles(STREAM_CHUNK))
                    .writes(&didx, Footprint::tiles(STREAM_CHUNK));
                gpu.try_launch_checked(&contract, stream_launch(above), move |ctx| {
                    let start = ctx.block_idx * STREAM_CHUNK;
                    let end = (start + STREAM_CHUNK).min(above);
                    for i in start..end {
                        let bits = ctx.ld(&nkeys, n_cur - above + i);
                        let idx = ctx.ld(&nidx, n_cur - above + i);
                        ctx.st(&dkeys, i, bits);
                        ctx.st(&didx, i, idx);
                    }
                })?;
                st.materialised = true;
                st.n_cur = above;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{generate, Distribution};
    use gpu_sim::{DeviceSpec, Gpu};
    use topk_core::verify::verify_topk;

    fn run_case(data: &[f32], k: usize) {
        let mut g = Gpu::new(DeviceSpec::a100());
        let input = g.htod("in", data);
        let out = QuickSelect::default().select(&mut g, &input, k);
        verify_topk(data, k, &out.values.to_vec(), &out.indices.to_vec())
            .unwrap_or_else(|e| panic!("QuickSelect failed: {e} (n={}, k={k})", data.len()));
    }

    #[test]
    fn basic_cases() {
        run_case(&[5.0, 1.0, 4.0, 1.5, -2.0, 8.0, 0.0], 3);
        run_case(&[1.0], 1);
    }

    #[test]
    fn all_distributions_shapes() {
        for dist in Distribution::benchmark_set() {
            let data = generate(dist, 50_000, 5);
            for k in [1usize, 100, 5000, 49_999, 50_000] {
                run_case(&data, k);
            }
        }
    }

    #[test]
    fn identical_values_terminate() {
        run_case(&vec![7.0f32; 20_000], 1234);
    }

    #[test]
    fn ties_straddle_pivot() {
        let mut data = vec![1.0f32; 10_000];
        data.extend(vec![2.0f32; 10_000]);
        run_case(&data, 15_000);
    }

    #[test]
    fn all_pivot_strategies_are_correct() {
        let data = generate(Distribution::Normal, 30_000, 4);
        for pivot in [
            PivotStrategy::Middle,
            PivotStrategy::First,
            PivotStrategy::MedianOfThree,
        ] {
            let alg = QuickSelect { pivot };
            let mut g = Gpu::new(DeviceSpec::a100());
            let input = g.htod("in", &data);
            let out = alg.select(&mut g, &input, 500);
            verify_topk(&data, 500, &out.values.to_vec(), &out.indices.to_vec())
                .unwrap_or_else(|e| panic!("{pivot:?}: {e}"));
        }
    }

    #[test]
    fn sorted_input_worst_case_is_quadratic() {
        // §2.2: "QuickSelect, in the worst case, can remove only one
        // element per iteration." First-element pivots on ascending
        // input hit exactly that: every iteration strips one element.
        let n = 6000;
        let data: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let iterations = |pivot: PivotStrategy| {
            let mut g = Gpu::new(DeviceSpec::a100());
            let input = g.htod("in", &data);
            g.reset_profile();
            let out = QuickSelect { pivot }.select(&mut g, &input, 10);
            verify_topk(&data, 10, &out.values.to_vec(), &out.indices.to_vec()).unwrap();
            g.timeline().kernel_count()
        };
        let bad = iterations(PivotStrategy::First);
        let good = iterations(PivotStrategy::Middle);
        assert!(
            bad > 50 * good,
            "first-pivot on sorted data must degrade: {bad} vs {good} kernels"
        );
    }

    #[test]
    fn host_syncs_per_iteration() {
        let data = generate(Distribution::Uniform, 200_000, 1);
        let mut g = Gpu::new(DeviceSpec::a100());
        let input = g.htod("in", &data);
        g.reset_profile();
        let _ = QuickSelect::default().select(&mut g, &input, 100);
        assert!(g.timeline().memcpy_us() > 0.0);
        assert!(g.timeline().idle_us() > g.spec().host_sync_us);
    }
}
