//! BucketSelect baseline (GpuSelection / Alabi et al. 2012).
//!
//! Partition-based selection whose pivots come from the data's value
//! range: each iteration reduces min/max over the candidates, splits
//! `[min, max]` into 256 equal-width buckets, histograms the
//! candidates, and recurses into the bucket containing the Kth element
//! (§2.2: "the pivots of BucketSelect are decided by the minimum and
//! the maximum of candidates"). Needing those statistics is exactly the
//! cost RadixSelect avoids — two extra host round-trips per iteration
//! here (min/max, then the bucket histogram).
//!
//! Bucketing is done on the order-preserving key bits, which keeps the
//! math exact (no float-division edge cases) while preserving the
//! equal-width-by-value character.

use crate::common::{
    emit_all_candidates, final_small_select, load_candidate, stream_launch, SelectionState,
    STREAM_CHUNK,
};
use gpu_sim::{Backend, BackendExt, DeviceBuffer, Footprint, KernelContract};
use topk_core::error::TopKError;
use topk_core::keys::RadixKey;
use topk_core::traits::{check_args, Category, TopKAlgorithm, TopKOutput};

const BUCKETS: usize = 256;
/// Below this many candidates, finish with one on-device sort.
const SMALL_CUTOFF: usize = 4096;

/// The GpuSelection BucketSelect baseline.
#[derive(Debug, Clone, Default)]
pub struct BucketSelect;

/// Map key bits into a bucket of `[min, max]` split into `BUCKETS`
/// equal-width ranges.
#[inline]
fn bucket_of(bits: u32, min: u32, max: u32) -> usize {
    let span = (max - min) as u64 + 1;
    (((bits - min) as u64 * BUCKETS as u64) / span) as usize
}

impl TopKAlgorithm for BucketSelect {
    fn name(&self) -> &'static str {
        "BucketSelect"
    }

    fn category(&self) -> Category {
        Category::PartitionBased
    }

    fn try_select(
        &self,
        gpu: &mut dyn Backend,
        input: &DeviceBuffer<f32>,
        k: usize,
    ) -> Result<TopKOutput, TopKError> {
        check_args(self, input.len(), k)?;
        let n = input.len();
        let mut st = SelectionState::new(gpu, n, k)?;
        let mut extras = topk_core::scratch::ScratchGuard::new();
        let stats = (|| {
            Ok::<_, TopKError>((
                extras.alloc::<u32>(gpu, "bs_minmax", 2)?,
                extras.alloc::<u32>(gpu, "bs_hist", BUCKETS)?,
            ))
        })();
        let (minmax, hist) = match stats {
            Ok(pair) => pair,
            Err(e) => {
                extras.release(gpu);
                st.free_all(gpu);
                return Err(e);
            }
        };
        let r = run_loop(gpu, input, &mut st, &minmax, &hist);
        extras.release(gpu);
        match r {
            Ok(()) => {
                st.free_workspace(gpu);
                Ok(st.into_output())
            }
            Err(e) => {
                st.free_all(gpu);
                Err(e)
            }
        }
    }
}

/// The host-driven iteration loop; cleanup happens in `try_select` so
/// an error cannot strand workspace bytes.
fn run_loop(
    gpu: &mut dyn Backend,
    input: &DeviceBuffer<f32>,
    st: &mut SelectionState,
    minmax: &DeviceBuffer<u32>,
    hist: &DeviceBuffer<u32>,
) -> Result<(), TopKError> {
    {
        let mut first = true;
        loop {
            if st.k_rem == 0 {
                break;
            }
            if st.n_cur == st.k_rem {
                emit_all_candidates(gpu, input, st)?;
                break;
            }
            if !first && st.n_cur <= SMALL_CUTOFF.max(st.k_rem) {
                final_small_select(gpu, input, st)?;
                break;
            }
            first = false;

            let n_cur = st.n_cur;
            // Kernel 1: min/max reduction (atomic, fine for a model).
            minmax.set(0, u32::MAX);
            minmax.set(1, 0);
            {
                let keys = st.cand_keys[st.cur].clone();
                let idxs = st.cand_idx[st.cur].clone();
                let materialised = st.materialised;
                let input = input.clone();
                let minmax = minmax.clone();
                let contract = KernelContract::new("bucket_minmax")
                    .reads(&input, Footprint::all())
                    .reads(&keys, Footprint::all())
                    .reads(&idxs, Footprint::all())
                    .atomics(&minmax, Footprint::fixed(0, 2));
                gpu.try_launch_checked(&contract, stream_launch(n_cur), move |ctx| {
                    let start = ctx.block_idx * STREAM_CHUNK;
                    let end = (start + STREAM_CHUNK).min(n_cur);
                    let mut lo = u32::MAX;
                    let mut hi = 0u32;
                    for i in start..end {
                        let (bits, _) = load_candidate(ctx, &input, &keys, &idxs, materialised, i);
                        lo = lo.min(bits);
                        hi = hi.max(bits);
                        ctx.ops(2);
                    }
                    ctx.atomic_min_raw(&minmax, 0, lo);
                    ctx.atomic_max_raw(&minmax, 1, hi);
                })?;
            }
            let mm = gpu.dtoh(minmax);
            let (lo, hi) = (mm[0], mm[1]);
            if lo == hi {
                // Every candidate is identical: any K of them work.
                final_small_select(gpu, input, st)?;
                break;
            }

            // Kernel 2: equal-width bucket histogram.
            hist.fill(0);
            {
                let keys = st.cand_keys[st.cur].clone();
                let idxs = st.cand_idx[st.cur].clone();
                let materialised = st.materialised;
                let input = input.clone();
                let hist = hist.clone();
                let contract = KernelContract::new("bucket_histogram")
                    .reads(&input, Footprint::all())
                    .reads(&keys, Footprint::all())
                    .reads(&idxs, Footprint::all())
                    .atomics(&hist, Footprint::fixed(0, BUCKETS))
                    .uses_shared_mem(BUCKETS * 4);
                gpu.try_launch_checked(&contract, stream_launch(n_cur), move |ctx| {
                    let start = ctx.block_idx * STREAM_CHUNK;
                    let end = (start + STREAM_CHUNK).min(n_cur);
                    let mut local = ctx.shared_alloc::<u32>(BUCKETS);
                    for i in start..end {
                        let (bits, _) = load_candidate(ctx, &input, &keys, &idxs, materialised, i);
                        local[bucket_of(bits, lo, hi)] += 1;
                        ctx.ops(5);
                    }
                    for (d, &c) in local.iter().enumerate() {
                        if c != 0 {
                            ctx.atomic_add(&hist, d, c);
                        }
                    }
                    ctx.ops(BUCKETS as u64);
                })?;
            }
            let h = gpu.dtoh(hist);
            gpu.host_compute("bucket prefix sum", 1.0);
            let mut acc = 0u32;
            let mut target = BUCKETS - 1;
            let mut below = 0u32;
            for (d, &c) in h.iter().enumerate() {
                if acc + c >= st.k_rem as u32 {
                    target = d;
                    below = acc;
                    break;
                }
                acc += c;
            }
            let next_n = h[target] as usize;

            // Kernel 3: filter — emit sure results, keep the target
            // bucket as the next candidate set.
            let cursors = gpu.try_alloc::<u32>("bs_cursors", 1)?;
            cursors.fill(0); // memset before the filter's first atomic bump
            let launched = {
                let keys = st.cand_keys[st.cur].clone();
                let idxs = st.cand_idx[st.cur].clone();
                let nkeys = st.cand_keys[1 - st.cur].clone();
                let nidx = st.cand_idx[1 - st.cur].clone();
                let materialised = st.materialised;
                let input = input.clone();
                let out_val = st.out_val.clone();
                let out_idx = st.out_idx.clone();
                let out_cursor = st.out_cursor.clone();
                let cursors = cursors.clone();
                let contract = KernelContract::new("bucket_filter")
                    .reads(&input, Footprint::all())
                    .reads(&keys, Footprint::all())
                    .reads(&idxs, Footprint::all())
                    .atomics(&out_cursor, Footprint::elem(0))
                    .atomics(&cursors, Footprint::elem(0))
                    .writes_shared(&out_val, Footprint::all())
                    .writes_shared(&out_idx, Footprint::all())
                    .writes_shared(&nkeys, Footprint::all())
                    .writes_shared(&nidx, Footprint::all());
                gpu.try_launch_checked(&contract, stream_launch(n_cur), move |ctx| {
                    let start = ctx.block_idx * STREAM_CHUNK;
                    let end = (start + STREAM_CHUNK).min(n_cur);
                    for i in start..end {
                        let (bits, idx) =
                            load_candidate(ctx, &input, &keys, &idxs, materialised, i);
                        let bkt = bucket_of(bits, lo, hi);
                        ctx.ops(5);
                        if bkt < target {
                            let pos = ctx.atomic_add(&out_cursor, 0, 1) as usize;
                            ctx.st_scatter(&out_val, pos, f32::from_ordered(bits));
                            ctx.st_scatter(&out_idx, pos, idx);
                        } else if bkt == target {
                            let pos = ctx.atomic_add(&cursors, 0, 1) as usize;
                            ctx.st_scatter(&nkeys, pos, bits);
                            ctx.st_scatter(&nidx, pos, idx);
                        }
                    }
                })
                .map(|_| ())
            };
            if let Err(e) = launched {
                gpu.free(&cursors);
                return Err(e.into());
            }
            gpu.free(&cursors);

            st.cur = 1 - st.cur;
            st.materialised = true;
            st.n_cur = next_n;
            st.k_rem -= below as usize;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{generate, Distribution};
    use gpu_sim::{DeviceSpec, Gpu};
    use topk_core::verify::verify_topk;

    fn run_case(data: &[f32], k: usize) {
        let mut g = Gpu::new(DeviceSpec::a100());
        let input = g.htod("in", data);
        let out = BucketSelect.select(&mut g, &input, k);
        verify_topk(data, k, &out.values.to_vec(), &out.indices.to_vec())
            .unwrap_or_else(|e| panic!("BucketSelect failed: {e} (n={}, k={k})", data.len()));
    }

    #[test]
    fn bucket_of_is_total_and_ordered() {
        let (lo, hi) = (100u32, 1099);
        assert_eq!(bucket_of(lo, lo, hi), 0);
        assert_eq!(bucket_of(hi, lo, hi), BUCKETS - 1);
        let mut prev = 0;
        for b in (lo..=hi).step_by(10) {
            let k = bucket_of(b, lo, hi);
            assert!(k >= prev && k < BUCKETS);
            prev = k;
        }
        // Full-range extremes must not overflow.
        assert_eq!(bucket_of(0, 0, u32::MAX), 0);
        assert_eq!(bucket_of(u32::MAX, 0, u32::MAX), BUCKETS - 1);
    }

    #[test]
    fn basic_cases() {
        run_case(&[5.0, 1.0, 4.0, 1.5, -2.0, 8.0, 0.0], 3);
        run_case(&[1.0], 1);
    }

    #[test]
    fn all_distributions_shapes() {
        for dist in Distribution::benchmark_set() {
            let data = generate(dist, 50_000, 5);
            for k in [1usize, 100, 5000, 50_000] {
                run_case(&data, k);
            }
        }
    }

    #[test]
    fn identical_values_and_dense_ties() {
        run_case(&vec![7.0f32; 20_000], 1234);
        let mut data = vec![1.0f32; 9_000];
        data.extend(generate(Distribution::Uniform, 1_000, 1));
        run_case(&data, 5000);
    }

    #[test]
    fn two_roundtrips_per_iteration() {
        let data = generate(Distribution::Uniform, 200_000, 1);
        let mut g = Gpu::new(DeviceSpec::a100());
        let input = g.htod("in", &data);
        g.reset_profile();
        let _ = BucketSelect.select(&mut g, &input, 100);
        // min/max + histogram copies at least once each.
        let dtoh = g
            .timeline()
            .events()
            .iter()
            .filter(|e| matches!(e.kind, gpu_sim::EventKind::MemcpyDtoH))
            .count();
        assert!(dtoh >= 2, "BucketSelect needs statistics round-trips");
    }
}
