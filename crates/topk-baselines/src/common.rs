//! Shared machinery for the host-driven partition baselines.
//!
//! QuickSelect, BucketSelect and SampleSelect from the GpuSelection
//! library all follow the same skeleton: keep a shrinking candidate
//! set on the device, round-trip per-iteration statistics to the host,
//! and finish with a small on-device sort once the candidate set is
//! tiny. This module holds the shared pieces: the ping-pong candidate
//! buffers, the output cursor, and the final small-select kernel.

use gpu_sim::{Backend, BackendExt, DeviceBuffer, Footprint, KernelContract, LaunchConfig};
use topk_core::bitonic::bitonic_sort;
use topk_core::error::TopKError;
use topk_core::keys::RadixKey;
use topk_core::scratch::ScratchGuard;
use topk_core::traits::TopKOutput;

/// Device-side working state for a host-driven selection loop.
pub struct SelectionState {
    /// Candidate values (ordered-bit keys), ping-pong pair.
    pub cand_keys: [DeviceBuffer<u32>; 2],
    /// Candidate input indices, ping-pong pair.
    pub cand_idx: [DeviceBuffer<u32>; 2],
    /// Which buffer currently holds the candidates.
    pub cur: usize,
    /// Number of live candidates (host-known — these algorithms sync
    /// every iteration, unlike AIR Top-K).
    pub n_cur: usize,
    /// When false, the candidates are still the raw input and
    /// `cand_*` must not be read.
    pub materialised: bool,
    /// Result slots still to fill.
    pub k_rem: usize,
    /// Output buffers (values + indices) plus a device write cursor.
    pub out_val: DeviceBuffer<f32>,
    pub out_idx: DeviceBuffer<u32>,
    pub out_cursor: DeviceBuffer<u32>,
}

impl SelectionState {
    /// Allocate working state for one problem. If any allocation
    /// fails, everything allocated so far is released before the error
    /// is returned.
    pub fn new(gpu: &mut dyn Backend, n: usize, k: usize) -> Result<Self, TopKError> {
        let mut guard = ScratchGuard::new();
        let r = (|| {
            Ok(SelectionState {
                cand_keys: [
                    guard.alloc::<u32>(gpu, "cand_keys0", n)?,
                    guard.alloc::<u32>(gpu, "cand_keys1", n)?,
                ],
                cand_idx: [
                    guard.alloc::<u32>(gpu, "cand_idx0", n)?,
                    guard.alloc::<u32>(gpu, "cand_idx1", n)?,
                ],
                cur: 0,
                n_cur: n,
                materialised: false,
                k_rem: k,
                out_val: guard.alloc::<f32>(gpu, "out_val", k)?,
                out_idx: guard.alloc::<u32>(gpu, "out_idx", k)?,
                out_cursor: {
                    // The emit kernels bump this cursor with atomics
                    // before anything ever stores to it; memset it like
                    // the CUDA originals do so the first bump reads a
                    // defined zero.
                    let cursor = guard.alloc::<u32>(gpu, "out_cursor", 1)?;
                    cursor.fill(0);
                    cursor
                },
            })
        })();
        if r.is_err() {
            guard.release(gpu);
        }
        r
    }

    /// Release the candidate workspace (outputs survive).
    pub fn free_workspace(&self, gpu: &mut dyn Backend) {
        for b in &self.cand_keys {
            gpu.free(b);
        }
        for b in &self.cand_idx {
            gpu.free(b);
        }
        gpu.free(&self.out_cursor);
    }

    /// Release *everything*, outputs included — the error-path
    /// companion of [`SelectionState::free_workspace`], so a failed
    /// query leaves `mem_allocated` exactly where it started.
    pub fn free_all(self, gpu: &mut dyn Backend) {
        self.free_workspace(gpu);
        gpu.free(&self.out_val);
        gpu.free(&self.out_idx);
    }

    /// Take the outputs.
    pub fn into_output(self) -> TopKOutput {
        TopKOutput::new(self.out_val, self.out_idx)
    }
}

/// Grid shape used by the streaming kernels of the baselines.
pub fn stream_launch(n: usize) -> LaunchConfig {
    LaunchConfig::for_elements(n, 256, 8, usize::MAX)
}

/// Elements per block under [`stream_launch`].
pub const STREAM_CHUNK: usize = 256 * 8;

/// Load candidate `i` as `(ordered_key, input_index)`, reading either
/// the raw input (first iteration) or the materialised candidate
/// buffers.
#[inline(always)]
pub fn load_candidate(
    ctx: &mut gpu_sim::BlockCtx<'_>,
    input: &DeviceBuffer<f32>,
    st_keys: &DeviceBuffer<u32>,
    st_idx: &DeviceBuffer<u32>,
    materialised: bool,
    i: usize,
) -> (u32, u32) {
    if materialised {
        (ctx.ld(st_keys, i), ctx.ld(st_idx, i))
    } else {
        (ctx.ld(input, i).to_ordered(), i as u32)
    }
}

/// Finish a selection by sorting the (small) remaining candidate set
/// in a single block and emitting the `k_rem` smallest — the terminal
/// step of the GpuSelection algorithms once recursion bottoms out.
/// Also correct (just slow) for degenerate inputs where every
/// candidate is equal and pivot-based progress stalls.
pub fn final_small_select(
    gpu: &mut dyn Backend,
    input: &DeviceBuffer<f32>,
    st: &SelectionState,
) -> Result<(), TopKError> {
    let n_cur = st.n_cur;
    let k_rem = st.k_rem;
    if k_rem == 0 {
        return Ok(());
    }
    let cur = st.cur;
    let keys = st.cand_keys[cur].clone();
    let idxs = st.cand_idx[cur].clone();
    let materialised = st.materialised;
    let out_val = st.out_val.clone();
    let out_idx = st.out_idx.clone();
    let out_cursor = st.out_cursor.clone();
    let input = input.clone();

    let contract = KernelContract::new("final_small_select")
        .reads(&input, Footprint::all())
        .reads(&keys, Footprint::all())
        .reads(&idxs, Footprint::all())
        .atomics(&out_cursor, Footprint::elem(0))
        .writes_shared(&out_val, Footprint::all())
        .writes_shared(&out_idx, Footprint::all())
        .requires_grid_at_most(1);
    gpu.try_launch_checked(&contract, LaunchConfig::grid_1d(1, 256), move |ctx| {
        let padded = n_cur.next_power_of_two().max(1);
        let mut k_buf = vec![u32::MAX; padded];
        let mut i_buf = vec![0u32; padded];
        for i in 0..n_cur {
            let (kk, ii) = load_candidate(ctx, &input, &keys, &idxs, materialised, i);
            k_buf[i] = kk;
            i_buf[i] = ii;
        }
        let ops = bitonic_sort(&mut k_buf, &mut i_buf, true);
        ctx.ops(ops);
        let base = ctx.atomic_add(&out_cursor, 0, k_rem as u32) as usize;
        for i in 0..k_rem {
            ctx.st_scatter(&out_val, base + i, f32::from_ordered(k_buf[i]));
            ctx.st_scatter(&out_idx, base + i, i_buf[i]);
        }
    })?;
    Ok(())
}

/// Copy every remaining candidate straight to the output — used when
/// the loop discovers `k_rem == n_cur`.
pub fn emit_all_candidates(
    gpu: &mut dyn Backend,
    input: &DeviceBuffer<f32>,
    st: &SelectionState,
) -> Result<(), TopKError> {
    let n_cur = st.n_cur;
    if n_cur == 0 {
        return Ok(());
    }
    let keys = st.cand_keys[st.cur].clone();
    let idxs = st.cand_idx[st.cur].clone();
    let materialised = st.materialised;
    let out_val = st.out_val.clone();
    let out_idx = st.out_idx.clone();
    let out_cursor = st.out_cursor.clone();
    let input = input.clone();

    let contract = KernelContract::new("emit_candidates")
        .reads(&input, Footprint::all())
        .reads(&keys, Footprint::all())
        .reads(&idxs, Footprint::all())
        .atomics(&out_cursor, Footprint::elem(0))
        .writes_shared(&out_val, Footprint::all())
        .writes_shared(&out_idx, Footprint::all());
    gpu.try_launch_checked(&contract, stream_launch(n_cur), move |ctx| {
        let start = ctx.block_idx * STREAM_CHUNK;
        let end = (start + STREAM_CHUNK).min(n_cur);
        if start >= end {
            return;
        }
        // The block reserves its whole contiguous output span with one
        // cursor bump instead of one atomic per element; every element
        // already goes to the output, so the order within the span is
        // free to follow the scan order.
        let base = ctx.atomic_add(&out_cursor, 0, (end - start) as u32) as usize;
        for i in start..end {
            let (kk, ii) = load_candidate(ctx, &input, &keys, &idxs, materialised, i);
            ctx.st_scatter(&out_val, base + (i - start), f32::from_ordered(kk));
            ctx.st_scatter(&out_idx, base + (i - start), ii);
        }
    })?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{DeviceSpec, Gpu};
    use topk_core::verify::verify_topk;

    #[test]
    fn final_small_select_alone_solves_topk() {
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let data = vec![4.0f32, -1.0, 3.5, 0.0, 9.0, -1.0, 2.0];
        let input = gpu.htod("in", &data);
        let st = SelectionState::new(&mut gpu, data.len(), 3).unwrap();
        final_small_select(&mut gpu, &input, &st).unwrap();
        let out = st.into_output();
        verify_topk(&data, 3, &out.values.to_vec(), &out.indices.to_vec()).unwrap();
    }

    #[test]
    fn emit_all_candidates_with_k_equals_n() {
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let data = vec![2.0f32, 1.0, 3.0];
        let input = gpu.htod("in", &data);
        let st = SelectionState::new(&mut gpu, 3, 3).unwrap();
        emit_all_candidates(&mut gpu, &input, &st).unwrap();
        let out = st.into_output();
        verify_topk(&data, 3, &out.values.to_vec(), &out.indices.to_vec()).unwrap();
    }

    #[test]
    fn stream_launch_covers_input() {
        let cfg = stream_launch(10_000);
        assert!(cfg.grid_dim * STREAM_CHUNK >= 10_000);
        assert_eq!(stream_launch(1).grid_dim, 1);
    }
}
