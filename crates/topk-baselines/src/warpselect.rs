//! WarpSelect baseline (Faiss, Johnson et al. 2021).
//!
//! A single warp maintains the top-K list; every thread keeps a small
//! private queue in registers, and whenever *any* thread queue fills,
//! the warp sorts all 32 queues bitonically and merges them into the
//! list (§2.2, §4). Supports on-the-fly processing and K ≤ 2048.
//!
//! Its defining limitation in this benchmark is parallelism: one warp
//! per problem. At batch 1 this uses 1/64th of one SM's warp slots —
//! Fig. 7's sharply rising WarpSelect curves are that starvation. With
//! a batch, Faiss launches one warp per query, so batch-100 recovers
//! two orders of magnitude (still only 100 warps on a device that
//! wants ~1700 to saturate).

use gpu_sim::{Backend, DeviceBuffer};
use topk_core::error::TopKError;
use topk_core::gridselect::{select_partial_core, GridSelectConfig, QueueKind, MAX_K};
use topk_core::traits::{check_args, check_batch, Category, TopKAlgorithm, TopKOutput};

/// Per-thread queue length. Faiss's `NumThreadQ` is 2 for the K range
/// this benchmark exercises (k ≤ 1024) and grows only for the largest
/// K — and the small queue is exactly why WarpSelect flushes so often:
/// with 32 independent 2-slot queues, *some* lane fills after only a
/// handful of qualified elements (§4's motivation for the shared
/// queue).
pub const THREAD_QUEUE_LEN: usize = 2;

/// The Faiss WarpSelect baseline: one warp per problem, per-thread
/// queues.
#[derive(Debug, Clone, Default)]
pub struct WarpSelect;

impl WarpSelect {
    fn core_config(&self) -> GridSelectConfig {
        GridSelectConfig {
            warps_per_block: 1,
            max_blocks_per_problem: 1,
            items_per_thread: 32,
            queue: QueueKind::PerThread {
                len: THREAD_QUEUE_LEN,
            },
        }
    }
}

impl TopKAlgorithm for WarpSelect {
    fn name(&self) -> &'static str {
        "WarpSelect"
    }

    fn category(&self) -> Category {
        Category::PartialSorting
    }

    fn max_k(&self) -> Option<usize> {
        Some(MAX_K)
    }

    fn try_select(
        &self,
        gpu: &mut dyn Backend,
        input: &DeviceBuffer<f32>,
        k: usize,
    ) -> Result<TopKOutput, TopKError> {
        check_args(self, input.len(), k)?;
        select_partial_core(
            gpu,
            "warpselect_kernel",
            std::slice::from_ref(input),
            k,
            &self.core_config(),
        )?
        .pop()
        .ok_or_else(|| TopKError::UnsupportedShape {
            algorithm: self.name(),
            detail: "batch of one produced no output".into(),
        })
    }

    fn try_select_batch(
        &self,
        gpu: &mut dyn Backend,
        inputs: &[DeviceBuffer<f32>],
        k: usize,
    ) -> Result<Vec<TopKOutput>, TopKError> {
        // Faiss processes a whole query tile in one launch: one warp
        // (block) per problem.
        let n = check_batch(self, inputs)?;
        check_args(self, n, k)?;
        select_partial_core(gpu, "warpselect_kernel", inputs, k, &self.core_config())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{generate, Distribution};
    use gpu_sim::{DeviceSpec, Gpu};
    use topk_core::verify::verify_topk;

    fn run_case(data: &[f32], k: usize) {
        let mut g = Gpu::new(DeviceSpec::a100());
        let input = g.htod("in", data);
        let out = WarpSelect.select(&mut g, &input, k);
        verify_topk(data, k, &out.values.to_vec(), &out.indices.to_vec())
            .unwrap_or_else(|e| panic!("WarpSelect failed: {e}"));
    }

    #[test]
    fn correct_on_all_distributions() {
        for dist in Distribution::benchmark_set() {
            let data = generate(dist, 10_000, 3);
            for k in [1usize, 32, 500, 2048] {
                run_case(&data, k);
            }
        }
    }

    #[test]
    fn single_warp_launch_shape() {
        let mut g = Gpu::new(DeviceSpec::a100());
        let data = generate(Distribution::Uniform, 50_000, 1);
        let input = g.htod("in", &data);
        g.reset_profile();
        let _ = WarpSelect.select(&mut g, &input, 64);
        let r = &g.reports()[0];
        assert_eq!(r.cfg.grid_dim, 1);
        assert_eq!(r.cfg.block_dim, 32, "exactly one warp");
        assert_eq!(g.reports().len(), 1, "single kernel, no merge stage");
    }

    #[test]
    fn batch_launches_one_warp_per_problem() {
        let mut g = Gpu::new(DeviceSpec::a100());
        let datas: Vec<Vec<f32>> = (0..8)
            .map(|i| generate(Distribution::Uniform, 2000, i))
            .collect();
        let inputs: Vec<_> = datas
            .iter()
            .enumerate()
            .map(|(i, d)| g.htod(&format!("q{i}"), d))
            .collect();
        g.reset_profile();
        let outs = WarpSelect.select_batch(&mut g, &inputs, 16);
        assert_eq!(g.reports()[0].cfg.grid_dim, 8);
        for (d, o) in datas.iter().zip(&outs) {
            verify_topk(d, 16, &o.values.to_vec(), &o.indices.to_vec()).unwrap();
        }
    }

    #[test]
    fn k_cap_is_2048() {
        assert_eq!(WarpSelect.max_k(), Some(2048));
    }
}
