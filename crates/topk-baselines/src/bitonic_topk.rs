//! Bitonic Top-K baseline (Shanbhag et al. 2018, via DrTopK).
//!
//! A partial-sorting method that halves the data each round: sort
//! every K-long run, then merge adjacent run pairs keeping the smaller
//! half, until K elements remain (§2.2: "by constructing and selecting
//! ascending-descending sorted (bitonic) sequences, Bitonic Top-K
//! reduces the workload by half in each iteration").
//!
//! Cost character reproduced here: `O(N log²K)` compare-exchanges, so
//! it slows with K (Fig. 6's rising partial-sort curves) — and the
//! heavy shared-memory use limits K to 256 (§2.2).

use gpu_sim::{Backend, BackendExt, DeviceBuffer, Footprint, KernelContract, LaunchConfig};
use topk_core::bitonic::{bitonic_sort, merge_into_topk};
use topk_core::error::TopKError;
use topk_core::keys::RadixKey;
use topk_core::scratch::ScratchGuard;
use topk_core::traits::{check_args, Category, TopKAlgorithm, TopKOutput};

/// K limit from the paper (§2.2): 256 for Bitonic Top-K.
pub const MAX_K: usize = 256;

/// Runs each block merges per round.
const PAIRS_PER_BLOCK: usize = 8;

/// The DrTopK Bitonic Top-K baseline.
#[derive(Debug, Clone, Default)]
pub struct BitonicTopK;

impl TopKAlgorithm for BitonicTopK {
    fn name(&self) -> &'static str {
        "Bitonic Top-K"
    }

    fn category(&self) -> Category {
        Category::PartialSorting
    }

    fn max_k(&self) -> Option<usize> {
        Some(MAX_K)
    }

    fn try_select(
        &self,
        gpu: &mut dyn Backend,
        input: &DeviceBuffer<f32>,
        k: usize,
    ) -> Result<TopKOutput, TopKError> {
        check_args(self, input.len(), k)?;
        let mut ws = ScratchGuard::new();
        let mut outs = ScratchGuard::new();
        let r = run_rounds(gpu, &mut ws, &mut outs, input, k);
        ws.release(gpu);
        if r.is_err() {
            outs.release(gpu);
        }
        r
    }
}

/// The full halving pipeline; workspace in `ws`, outputs in `outs`.
fn run_rounds(
    gpu: &mut dyn Backend,
    ws: &mut ScratchGuard,
    outs: &mut ScratchGuard,
    input: &DeviceBuffer<f32>,
    k: usize,
) -> Result<TopKOutput, TopKError> {
    {
        let n = input.len();
        let run = k.next_power_of_two();
        // Pad to a whole number of runs with sentinels.
        let runs0 = n.div_ceil(run);
        let padded = runs0 * run;

        let half = runs0.div_ceil(2).max(1) * run;
        let keys = [
            ws.alloc::<u32>(gpu, "bt_keys0", padded)?,
            ws.alloc::<u32>(gpu, "bt_keys1", half)?,
        ];
        let idxs = [
            ws.alloc::<u32>(gpu, "bt_idx0", padded)?,
            ws.alloc::<u32>(gpu, "bt_idx1", half)?,
        ];

        // Round 0: load, convert, locally sort each K-run.
        {
            let keys0 = keys[0].clone();
            let idx0 = idxs[0].clone();
            let input = input.clone();
            let launch = LaunchConfig::for_elements(runs0, 256, 1, usize::MAX);
            let contract = KernelContract::new("bitonic_local_sort")
                .reads(&input, Footprint::all())
                .writes(&keys0, Footprint::tiles(256 * run))
                .writes(&idx0, Footprint::tiles(256 * run));
            gpu.try_launch_checked(&contract, launch, move |ctx| {
                let start_run = ctx.block_idx * 256;
                let end_run = (start_run + 256).min(runs0);
                for r in start_run..end_run {
                    let base = r * run;
                    let mut kb = vec![u32::MAX; run];
                    let mut ib = vec![0u32; run];
                    for (j, (kslot, islot)) in kb.iter_mut().zip(ib.iter_mut()).enumerate() {
                        let i = base + j;
                        if i < n {
                            *kslot = ctx.ld(&input, i).to_ordered();
                            *islot = i as u32;
                        }
                    }
                    let ops = bitonic_sort(&mut kb, &mut ib, true);
                    ctx.ops(ops + run as u64);
                    for j in 0..run {
                        ctx.st(&keys0, base + j, kb[j]);
                        ctx.st(&idx0, base + j, ib[j]);
                    }
                }
                // The block-wide barrier between the cooperative sort
                // stages and the block retiring (uniform across blocks).
                ctx.block_sync();
            })?;
        }

        // Halving rounds: merge adjacent run pairs, keep the low half.
        let mut runs = runs0;
        let mut src = 0usize;
        while runs > 1 {
            let pairs = runs / 2;
            let odd = runs % 2 == 1;
            let out_runs = pairs + odd as usize;
            let dst = 1 - src;
            let keys_s = keys[src].clone();
            let idxs_s = idxs[src].clone();
            let keys_d = keys[dst].clone();
            let idxs_d = idxs[dst].clone();
            let launch = LaunchConfig::for_elements(out_runs, 32, PAIRS_PER_BLOCK, usize::MAX);
            let contract = KernelContract::new("bitonic_merge_round")
                // Each block reads its pair window and writes the
                // surviving low halves of its own output tile.
                .reads(&keys_s, Footprint::tiles(2 * 32 * PAIRS_PER_BLOCK * run))
                .reads(&idxs_s, Footprint::tiles(2 * 32 * PAIRS_PER_BLOCK * run))
                .writes(&keys_d, Footprint::tiles(32 * PAIRS_PER_BLOCK * run))
                .writes(&idxs_d, Footprint::tiles(32 * PAIRS_PER_BLOCK * run));
            gpu.try_launch_checked(&contract, launch, move |ctx| {
                let start = ctx.block_idx * 32 * PAIRS_PER_BLOCK;
                let end = (start + 32 * PAIRS_PER_BLOCK).min(out_runs);
                for p in start..end {
                    let a = 2 * p * run;
                    let mut kb: Vec<u32> = (0..run).map(|j| ctx.ld(&keys_s, a + j)).collect();
                    let mut ib: Vec<u32> = (0..run).map(|j| ctx.ld(&idxs_s, a + j)).collect();
                    if 2 * p + 1 < runs {
                        let b = (2 * p + 1) * run;
                        let mut qk: Vec<u32> = (0..run).map(|j| ctx.ld(&keys_s, b + j)).collect();
                        let mut qi: Vec<u32> = (0..run).map(|j| ctx.ld(&idxs_s, b + j)).collect();
                        let ops = merge_into_topk(&mut kb, &mut ib, &mut qk, &mut qi);
                        ctx.ops(ops);
                    }
                    let out_base = p * run;
                    for j in 0..run {
                        ctx.st(&keys_d, out_base + j, kb[j]);
                        ctx.st(&idxs_d, out_base + j, ib[j]);
                    }
                }
                // Barrier separating the merge stages from retirement.
                ctx.block_sync();
            })?;
            runs = out_runs;
            src = dst;
        }

        // Emit the K smallest of the surviving run.
        let out_val = outs.alloc::<f32>(gpu, "bt_out_val", k)?;
        let out_idx = outs.alloc::<u32>(gpu, "bt_out_idx", k)?;
        {
            let keys_s = keys[src].clone();
            let idxs_s = idxs[src].clone();
            let ov = out_val.clone();
            let oi = out_idx.clone();
            let contract = KernelContract::new("bitonic_emit")
                .reads(&keys_s, Footprint::fixed(0, k))
                .reads(&idxs_s, Footprint::fixed(0, k))
                .writes(&ov, Footprint::fixed(0, k))
                .writes(&oi, Footprint::fixed(0, k))
                .requires_grid_at_most(1);
            gpu.try_launch_checked(&contract, LaunchConfig::grid_1d(1, 256), move |ctx| {
                for i in 0..k {
                    let bits = ctx.ld(&keys_s, i);
                    let idx = ctx.ld(&idxs_s, i);
                    ctx.st(&ov, i, f32::from_ordered(bits));
                    ctx.st(&oi, i, idx);
                }
            })?;
        }

        Ok(TopKOutput::new(out_val, out_idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{generate, Distribution};
    use gpu_sim::{DeviceSpec, Gpu};
    use topk_core::verify::verify_topk;

    fn run_case(data: &[f32], k: usize) {
        let mut g = Gpu::new(DeviceSpec::a100());
        let input = g.htod("in", data);
        let out = BitonicTopK.select(&mut g, &input, k);
        verify_topk(data, k, &out.values.to_vec(), &out.indices.to_vec())
            .unwrap_or_else(|e| panic!("BitonicTopK failed: {e} (n={}, k={k})", data.len()));
    }

    #[test]
    fn basic_and_edges() {
        run_case(&[5.0, 1.0, 4.0, 1.5, -2.0, 8.0, 0.0], 3);
        run_case(&[1.0], 1);
        run_case(&[2.0, 1.0], 2);
    }

    #[test]
    fn all_distributions_and_k_values() {
        for dist in Distribution::benchmark_set() {
            let data = generate(dist, 10_000, 4);
            for k in [1usize, 8, 100, 256] {
                run_case(&data, k);
            }
        }
    }

    #[test]
    fn non_power_of_two_n_and_ties() {
        let data = generate(Distribution::Uniform, 777, 1);
        run_case(&data, 33);
        run_case(&vec![5.0f32; 1000], 256);
    }

    #[test]
    fn k_cap_is_256() {
        assert_eq!(BitonicTopK.max_k(), Some(256));
    }

    #[test]
    fn cost_grows_with_k() {
        // Fig. 6: partial-sort cost rises with K (log² factor).
        let data = generate(Distribution::Uniform, 100_000, 1);
        let time = |k: usize| {
            let mut g = Gpu::new(DeviceSpec::a100());
            let input = g.htod("in", &data);
            g.reset_profile();
            let _ = BitonicTopK.select(&mut g, &input, k);
            g.elapsed_us()
        };
        assert!(time(256) > time(8));
    }
}
