//! SampleSelect baseline (GpuSelection / Ribizel & Anzt 2020).
//!
//! Partition-based selection with data-derived splitters: sample a
//! small subset of the candidates, sort it on the device, use the
//! sorted samples as bucket boundaries, histogram all candidates into
//! those buckets by binary search, and recurse into the bucket holding
//! the Kth element (§2.2: "SampleSelect samples a small fraction of
//! elements and sorts them to find more suitable pivots"). The
//! sampling makes buckets balanced even on skewed data, at the price of
//! the sample-sort step and — like every GpuSelection method — a host
//! round-trip per iteration.

use crate::common::{
    emit_all_candidates, final_small_select, load_candidate, stream_launch, SelectionState,
    STREAM_CHUNK,
};
use gpu_sim::{Backend, BackendExt, DeviceBuffer, Footprint, KernelContract, LaunchConfig};
use topk_core::bitonic::bitonic_sort;
use topk_core::error::TopKError;
use topk_core::keys::RadixKey;
use topk_core::scratch::ScratchGuard;
use topk_core::traits::{check_args, Category, TopKAlgorithm, TopKOutput};

/// Number of samples (and buckets = SAMPLES + 1) per iteration.
const SAMPLES: usize = 255;
/// Below this many candidates, finish with one on-device sort.
const SMALL_CUTOFF: usize = 4096;

/// The GpuSelection SampleSelect baseline.
#[derive(Debug, Clone, Default)]
pub struct SampleSelect;

impl TopKAlgorithm for SampleSelect {
    fn name(&self) -> &'static str {
        "SampleSelect"
    }

    fn category(&self) -> Category {
        Category::PartitionBased
    }

    fn try_select(
        &self,
        gpu: &mut dyn Backend,
        input: &DeviceBuffer<f32>,
        k: usize,
    ) -> Result<TopKOutput, TopKError> {
        check_args(self, input.len(), k)?;
        let n = input.len();
        let mut st = SelectionState::new(gpu, n, k)?;
        let mut extras = ScratchGuard::new();
        let stats = (|| {
            Ok::<_, TopKError>((
                extras.alloc::<u32>(gpu, "ss_splitters", SAMPLES)?,
                extras.alloc::<u32>(gpu, "ss_hist", SAMPLES + 1)?,
            ))
        })();
        let (splitters, hist) = match stats {
            Ok(pair) => pair,
            Err(e) => {
                extras.release(gpu);
                st.free_all(gpu);
                return Err(e);
            }
        };
        let r = run_loop(gpu, input, &mut st, &splitters, &hist);
        extras.release(gpu);
        match r {
            Ok(()) => {
                st.free_workspace(gpu);
                Ok(st.into_output())
            }
            Err(e) => {
                st.free_all(gpu);
                Err(e)
            }
        }
    }
}

/// The host-driven iteration loop; cleanup happens in `try_select` so
/// an error cannot strand workspace bytes.
fn run_loop(
    gpu: &mut dyn Backend,
    input: &DeviceBuffer<f32>,
    st: &mut SelectionState,
    splitters: &DeviceBuffer<u32>,
    hist: &DeviceBuffer<u32>,
) -> Result<(), TopKError> {
    {
        let mut prev_n = usize::MAX;
        let mut first = true;
        loop {
            if st.k_rem == 0 {
                break;
            }
            if st.n_cur == st.k_rem {
                emit_all_candidates(gpu, input, st)?;
                break;
            }
            // Degenerate distributions (all candidates equal) stop
            // shrinking; fall back to the terminal sort. Also used for
            // genuinely small candidate sets.
            if (!first && st.n_cur <= SMALL_CUTOFF.max(st.k_rem)) || st.n_cur >= prev_n {
                final_small_select(gpu, input, st)?;
                break;
            }
            first = false;
            prev_n = st.n_cur;
            let n_cur = st.n_cur;

            // Kernel 1: strided sampling + on-device sort of the
            // sample (one block; the sample is tiny).
            {
                let keys = st.cand_keys[st.cur].clone();
                let idxs = st.cand_idx[st.cur].clone();
                let materialised = st.materialised;
                let input = input.clone();
                let splitters = splitters.clone();
                let contract = KernelContract::new("sample_sort_splitters")
                    .reads(&input, Footprint::all())
                    .reads(&keys, Footprint::all())
                    .reads(&idxs, Footprint::all())
                    .writes(&splitters, Footprint::fixed(0, SAMPLES))
                    .requires_grid_at_most(1);
                gpu.try_launch_checked(&contract, LaunchConfig::grid_1d(1, 256), move |ctx| {
                    let stride = (n_cur / SAMPLES).max(1);
                    let mut kb = vec![u32::MAX; SAMPLES.next_power_of_two()];
                    let mut payload = vec![0u32; kb.len()];
                    for (s, slot) in kb.iter_mut().enumerate().take(SAMPLES) {
                        let i = (s * stride).min(n_cur - 1);
                        let (bits, _) = load_candidate(ctx, &input, &keys, &idxs, materialised, i);
                        *slot = bits;
                    }
                    let ops = bitonic_sort(&mut kb, &mut payload, true);
                    ctx.ops(ops);
                    for (s, &key) in kb.iter().enumerate().take(SAMPLES) {
                        ctx.st(&splitters, s, key);
                    }
                })?;
            }

            // Kernel 2: histogram by binary search over the splitters.
            hist.fill(0);
            {
                let keys = st.cand_keys[st.cur].clone();
                let idxs = st.cand_idx[st.cur].clone();
                let materialised = st.materialised;
                let input = input.clone();
                let splitters = splitters.clone();
                let hist = hist.clone();
                let contract = KernelContract::new("sample_histogram")
                    .reads(&input, Footprint::all())
                    .reads(&keys, Footprint::all())
                    .reads(&idxs, Footprint::all())
                    .reads(&splitters, Footprint::fixed(0, SAMPLES))
                    .atomics(&hist, Footprint::fixed(0, SAMPLES + 1))
                    .uses_shared_mem((SAMPLES * 2 + 1) * 4);
                gpu.try_launch_checked(&contract, stream_launch(n_cur), move |ctx| {
                    let start = ctx.block_idx * STREAM_CHUNK;
                    let end = (start + STREAM_CHUNK).min(n_cur);
                    // Splitters are read once into shared memory by a
                    // real kernel; model the same.
                    let mut spl = ctx.shared_alloc::<u32>(SAMPLES);
                    for (s, slot) in spl.iter_mut().enumerate() {
                        *slot = ctx.ld(&splitters, s);
                    }
                    let mut local = ctx.shared_alloc::<u32>(SAMPLES + 1);
                    for i in start..end {
                        let (bits, _) = load_candidate(ctx, &input, &keys, &idxs, materialised, i);
                        let bkt = spl.partition_point(|&s| s < bits);
                        local[bkt] += 1;
                        ctx.ops(10); // log2(256) comparisons
                    }
                    for (d, &c) in local.iter().enumerate() {
                        if c != 0 {
                            ctx.atomic_add(&hist, d, c);
                        }
                    }
                    ctx.ops((SAMPLES + 1) as u64);
                })?;
            }
            let h = gpu.dtoh(hist);
            gpu.host_compute("sample prefix sum", 1.0);
            let mut acc = 0u32;
            let mut target = SAMPLES;
            let mut below = 0u32;
            for (d, &c) in h.iter().enumerate() {
                if acc + c >= st.k_rem as u32 {
                    target = d;
                    below = acc;
                    break;
                }
                acc += c;
            }
            let next_n = h[target] as usize;

            // Kernel 3: filter into (results, next candidates).
            let cursor = gpu.try_alloc::<u32>("ss_cursor", 1)?;
            cursor.fill(0); // memset before the filter's first atomic bump
            let launched = {
                let keys = st.cand_keys[st.cur].clone();
                let idxs = st.cand_idx[st.cur].clone();
                let nkeys = st.cand_keys[1 - st.cur].clone();
                let nidx = st.cand_idx[1 - st.cur].clone();
                let materialised = st.materialised;
                let input = input.clone();
                let out_val = st.out_val.clone();
                let out_idx = st.out_idx.clone();
                let out_cursor = st.out_cursor.clone();
                let cursor = cursor.clone();
                let splitters = splitters.clone();
                let contract = KernelContract::new("sample_filter")
                    .reads(&input, Footprint::all())
                    .reads(&keys, Footprint::all())
                    .reads(&idxs, Footprint::all())
                    .reads(&splitters, Footprint::fixed(0, SAMPLES))
                    .atomics(&out_cursor, Footprint::elem(0))
                    .atomics(&cursor, Footprint::elem(0))
                    .writes_shared(&out_val, Footprint::all())
                    .writes_shared(&out_idx, Footprint::all())
                    .writes_shared(&nkeys, Footprint::all())
                    .writes_shared(&nidx, Footprint::all())
                    .uses_shared_mem(SAMPLES * 4);
                gpu.try_launch_checked(&contract, stream_launch(n_cur), move |ctx| {
                    let start = ctx.block_idx * STREAM_CHUNK;
                    let end = (start + STREAM_CHUNK).min(n_cur);
                    let mut spl = ctx.shared_alloc::<u32>(SAMPLES);
                    for (s, slot) in spl.iter_mut().enumerate() {
                        *slot = ctx.ld(&splitters, s);
                    }
                    for i in start..end {
                        let (bits, idx) =
                            load_candidate(ctx, &input, &keys, &idxs, materialised, i);
                        let bkt = spl.partition_point(|&s| s < bits);
                        ctx.ops(10);
                        if bkt < target {
                            let pos = ctx.atomic_add(&out_cursor, 0, 1) as usize;
                            ctx.st_scatter(&out_val, pos, f32::from_ordered(bits));
                            ctx.st_scatter(&out_idx, pos, idx);
                        } else if bkt == target {
                            let pos = ctx.atomic_add(&cursor, 0, 1) as usize;
                            ctx.st_scatter(&nkeys, pos, bits);
                            ctx.st_scatter(&nidx, pos, idx);
                        }
                    }
                })
                .map(|_| ())
            };
            if let Err(e) = launched {
                gpu.free(&cursor);
                return Err(e.into());
            }
            gpu.free(&cursor);

            st.cur = 1 - st.cur;
            st.materialised = true;
            st.n_cur = next_n;
            st.k_rem -= below as usize;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{generate, Distribution};
    use gpu_sim::{DeviceSpec, Gpu};
    use topk_core::verify::verify_topk;

    fn run_case(data: &[f32], k: usize) {
        let mut g = Gpu::new(DeviceSpec::a100());
        let input = g.htod("in", data);
        let out = SampleSelect.select(&mut g, &input, k);
        verify_topk(data, k, &out.values.to_vec(), &out.indices.to_vec())
            .unwrap_or_else(|e| panic!("SampleSelect failed: {e} (n={}, k={k})", data.len()));
    }

    #[test]
    fn basic_cases() {
        run_case(&[5.0, 1.0, 4.0, 1.5, -2.0, 8.0, 0.0], 3);
        run_case(&[1.0], 1);
    }

    #[test]
    fn all_distributions_shapes() {
        for dist in Distribution::benchmark_set() {
            let data = generate(dist, 50_000, 5);
            for k in [1usize, 100, 5000, 50_000] {
                run_case(&data, k);
            }
        }
    }

    #[test]
    fn identical_values_terminate() {
        run_case(&vec![0.5f32; 30_000], 7);
    }

    #[test]
    fn skewed_data_still_converges() {
        // 99% duplicates + 1% spread: splitters collapse, the stall
        // guard must kick in.
        let mut data = vec![1.0f32; 49_500];
        data.extend(generate(Distribution::Uniform, 500, 2));
        run_case(&data, 49_700);
    }
}
