//! BlockSelect baseline (Faiss).
//!
//! WarpSelect extended to a full thread block of 4 warps (§4): four
//! times the parallelism, one block-wide result merge at the end. The
//! paper observes it beats WarpSelect consistently, and uses it as the
//! baseline for GridSelect — which differs exactly by (a) the shared
//! queue and (b) launching *many* blocks instead of one (§5.3: one
//! block occupies one of the A100's 108 SMs, hence the up-to-882×
//! headroom GridSelect recovers).

use gpu_sim::{Backend, DeviceBuffer};
use topk_core::error::TopKError;
use topk_core::gridselect::{select_partial_core, GridSelectConfig, QueueKind, MAX_K};
use topk_core::traits::{check_args, check_batch, Category, TopKAlgorithm, TopKOutput};

/// Warps per block, as in Faiss ("up to 4 warps", §4).
pub const WARPS: usize = 4;

/// The Faiss BlockSelect baseline: one 4-warp block per problem,
/// per-thread queues.
#[derive(Debug, Clone, Default)]
pub struct BlockSelect;

impl BlockSelect {
    fn core_config(&self) -> GridSelectConfig {
        GridSelectConfig {
            warps_per_block: WARPS,
            max_blocks_per_problem: 1,
            items_per_thread: 32,
            queue: QueueKind::PerThread {
                len: crate::warpselect::THREAD_QUEUE_LEN,
            },
        }
    }
}

impl TopKAlgorithm for BlockSelect {
    fn name(&self) -> &'static str {
        "BlockSelect"
    }

    fn category(&self) -> Category {
        Category::PartialSorting
    }

    fn max_k(&self) -> Option<usize> {
        Some(MAX_K)
    }

    fn try_select(
        &self,
        gpu: &mut dyn Backend,
        input: &DeviceBuffer<f32>,
        k: usize,
    ) -> Result<TopKOutput, TopKError> {
        check_args(self, input.len(), k)?;
        select_partial_core(
            gpu,
            "blockselect_kernel",
            std::slice::from_ref(input),
            k,
            &self.core_config(),
        )?
        .pop()
        .ok_or_else(|| TopKError::UnsupportedShape {
            algorithm: self.name(),
            detail: "batch of one produced no output".into(),
        })
    }

    fn try_select_batch(
        &self,
        gpu: &mut dyn Backend,
        inputs: &[DeviceBuffer<f32>],
        k: usize,
    ) -> Result<Vec<TopKOutput>, TopKError> {
        let n = check_batch(self, inputs)?;
        check_args(self, n, k)?;
        select_partial_core(gpu, "blockselect_kernel", inputs, k, &self.core_config())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{generate, Distribution};
    use gpu_sim::{DeviceSpec, Gpu};
    use topk_core::verify::verify_topk;

    fn run_case(data: &[f32], k: usize) {
        let mut g = Gpu::new(DeviceSpec::a100());
        let input = g.htod("in", data);
        let out = BlockSelect.select(&mut g, &input, k);
        verify_topk(data, k, &out.values.to_vec(), &out.indices.to_vec())
            .unwrap_or_else(|e| panic!("BlockSelect failed: {e}"));
    }

    #[test]
    fn correct_on_all_distributions() {
        for dist in Distribution::benchmark_set() {
            let data = generate(dist, 12_000, 7);
            for k in [1usize, 100, 2048] {
                run_case(&data, k);
            }
        }
    }

    #[test]
    fn one_block_of_four_warps() {
        let mut g = Gpu::new(DeviceSpec::a100());
        let data = generate(Distribution::Uniform, 50_000, 1);
        let input = g.htod("in", &data);
        g.reset_profile();
        let _ = BlockSelect.select(&mut g, &input, 64);
        let r = &g.reports()[0];
        assert_eq!(r.cfg.grid_dim, 1);
        assert_eq!(r.cfg.block_dim, 4 * 32);
    }

    #[test]
    fn faster_than_warpselect_at_large_n() {
        // Fig. 6/7: "BlockSelect outperforms WarpSelect consistently."
        let data = generate(Distribution::Uniform, 500_000, 2);
        let time = |alg: &dyn TopKAlgorithm| {
            let mut g = Gpu::new(DeviceSpec::a100());
            let input = g.htod("in", &data);
            g.reset_profile();
            let _ = alg.select(&mut g, &input, 128);
            g.elapsed_us()
        };
        let tw = time(&WarpSelect);
        let tb = time(&BlockSelect);
        assert!(tb < tw, "BlockSelect {tb} vs WarpSelect {tw}");
    }

    #[test]
    fn tiny_inputs() {
        run_case(&[3.0, 1.0], 1);
        run_case(&[3.0], 1);
    }

    use crate::warpselect::WarpSelect;
}
