//! Cost-model drift detection: predicted vs. observed latency per
//! plan-table bucket.
//!
//! The tuner prices every dispatch through the analytic cost model
//! (`gpu_sim::sequence_cost` over `PlannedLaunch` sequences) and
//! refines a per-family EMA calibration from observed batch latencies
//! — but until now nothing *reported* how wrong the model currently
//! is. [`DriftTracker`] closes that gap: at every successful batch the
//! engine reads the plan the dispatch used (counter-neutrally, via
//! [`topk_core::tuner::Tuner::peek`]) and folds the observed/predicted
//! ratio into a per-[`PlanKey`] row. A ratio near 1.0 means the model
//! is honest; sustained drift shows up in the
//! `topk_tuner_drift_ratio` gauges and in every flight-recorder
//! post-mortem *before* it costs tail latency.

use crate::flight::PmDrift;
use std::collections::BTreeMap;
use topk_core::tuner::{Plan, PlanKey};

/// Accumulated drift state for one plan-table bucket.
#[derive(Debug, Clone, Default)]
pub struct DriftEntry {
    /// Winning configuration label (`air:11`, `grid`, …) of the most
    /// recent dispatch.
    pub algo: String,
    /// Observations folded in.
    pub samples: u64,
    /// Sum of observed/predicted ratios (mean = sum / samples).
    pub sum_ratio: f64,
    /// Calibrated prediction of the most recent dispatch, µs.
    pub predicted_us: f64,
    /// Most recent observed batch latency, µs.
    pub observed_us: f64,
}

impl DriftEntry {
    /// Mean observed/predicted ratio (0.0 before the first sample).
    pub fn mean_ratio(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.sum_ratio / self.samples as f64
        }
    }
}

/// Stable text label for a plan-key bucket, e.g. `n2^14 k2^5 b2^3 d0`.
pub fn plan_key_label(key: &PlanKey) -> String {
    format!(
        "n2^{} k2^{} b2^{} d{}",
        key.n_log2, key.k_log2, key.batch_log2, key.dist_class
    )
}

/// Predicted-vs-observed accounting over every plan bucket the engine
/// has dispatched. Purely host-side: observing never touches a device
/// clock, so profiling cannot perturb the schedule it measures.
#[derive(Debug, Default)]
pub struct DriftTracker {
    entries: BTreeMap<PlanKey, DriftEntry>,
}

impl DriftTracker {
    /// Empty tracker.
    pub fn new() -> Self {
        DriftTracker::default()
    }

    /// Fold one observation: the plan a dispatch used (peeked from the
    /// tuner's table) against the batch latency the device reported.
    pub fn observe(&mut self, key: PlanKey, plan: &Plan, observed_us: f64) {
        if !(observed_us.is_finite() && observed_us > 0.0 && plan.predicted_us > 0.0) {
            return;
        }
        let e = self.entries.entry(key).or_default();
        e.algo = plan.algo.encode();
        e.samples += 1;
        e.sum_ratio += observed_us / plan.predicted_us;
        e.predicted_us = plan.predicted_us;
        e.observed_us = observed_us;
    }

    /// Number of tracked buckets.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no bucket has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate tracked buckets in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&PlanKey, &DriftEntry)> {
        self.entries.iter()
    }

    /// The drift table as post-mortem rows, in key order.
    pub fn rows(&self) -> Vec<PmDrift> {
        self.entries
            .iter()
            .map(|(key, e)| PmDrift {
                key: plan_key_label(key),
                algo: e.algo.clone(),
                samples: e.samples,
                predicted_us: e.predicted_us,
                observed_us: e.observed_us,
                mean_ratio: e.mean_ratio(),
            })
            .collect()
    }

    /// Render the drift table as an aligned text block (one row per
    /// bucket) — the human-readable companion of the JSON rows.
    pub fn render_text(&self) -> String {
        let mut out = String::from(
            "Plan bucket            Algo        Samples   Predicted us   Observed us   Ratio\n",
        );
        for (key, e) in &self.entries {
            out.push_str(&format!(
                "{:<22} {:<11} {:>7} {:>14.2} {:>13.2} {:>7.3}\n",
                plan_key_label(key),
                e.algo,
                e.samples,
                e.predicted_us,
                e.observed_us,
                e.mean_ratio(),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topk_core::tuner::TunedAlgo;

    fn key(n: u8, k: u8) -> PlanKey {
        PlanKey {
            n_log2: n,
            k_log2: k,
            batch_log2: 0,
            dist_class: 0,
        }
    }

    fn plan(predicted_us: f64) -> Plan {
        Plan {
            algo: TunedAlgo::Air { bits_per_pass: 11 },
            predicted_us,
            raw_us: predicted_us,
        }
    }

    #[test]
    fn drift_accumulates_mean_ratio_per_bucket() {
        let mut t = DriftTracker::new();
        t.observe(key(14, 5), &plan(100.0), 110.0);
        t.observe(key(14, 5), &plan(100.0), 130.0);
        t.observe(key(20, 10), &plan(500.0), 400.0);
        assert_eq!(t.len(), 2);
        let rows = t.rows();
        assert_eq!(rows[0].key, "n2^14 k2^5 b2^0 d0");
        assert_eq!(rows[0].samples, 2);
        assert!((rows[0].mean_ratio - 1.2).abs() < 1e-9);
        assert!((rows[1].mean_ratio - 0.8).abs() < 1e-9);
        let text = t.render_text();
        assert!(text.contains("n2^20"), "{text}");
        assert!(text.contains("air:11"));
    }

    #[test]
    fn degenerate_observations_are_ignored() {
        let mut t = DriftTracker::new();
        t.observe(key(10, 3), &plan(0.0), 10.0);
        t.observe(key(10, 3), &plan(10.0), f64::NAN);
        t.observe(key(10, 3), &plan(10.0), -1.0);
        assert!(t.is_empty());
        assert_eq!(DriftEntry::default().mean_ratio(), 0.0);
    }
}
