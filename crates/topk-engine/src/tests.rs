use super::*;
use datagen::{generate, Distribution};
use gpu_sim::{FaultKind, ScriptedFault};
use proptest::prelude::*;
use topk_core::{verify_topk, TopKAlgorithm};

fn a100_engine(devices: usize, window: usize) -> TopKEngine {
    TopKEngine::new(EngineConfig::a100_pool(devices).with_window(window))
}

/// Kernel launches SelectK needs for one query of this shape on a
/// fresh device — the per-query cost coalescing is meant to amortise.
fn single_query_launches(data: &[f32], k: usize) -> usize {
    let mut gpu = Gpu::new(DeviceSpec::a100());
    let input = gpu.htod("ref", data);
    gpu.reset_profile();
    let out = SelectK::default().try_select(&mut gpu, &input, k).unwrap();
    gpu.free(&out.values);
    gpu.free(&out.indices);
    gpu.reports().len()
}

#[test]
fn mixed_200_query_workload_across_two_devices() {
    // The acceptance workload: 200 queries of four shapes, drained on
    // a 2-device pool with an 8-wide coalescing window.
    let shapes: [(usize, usize); 4] = [(1 << 15, 32), (1 << 14, 100), (1 << 15, 1), (4096, 512)];
    let mut engine = a100_engine(2, 8);
    let mut expected = Vec::new();
    for q in 0..200 {
        let (n, k) = shapes[q % shapes.len()];
        let data = generate(Distribution::Uniform, n, q as u64);
        let id = engine.submit(data.clone(), k).unwrap();
        assert_eq!(id, q);
        expected.push((data, k));
    }
    assert_eq!(engine.pending(), 200);
    let report = engine.drain();
    assert_eq!(engine.pending(), 0);
    assert_eq!(report.results.len(), 200);

    // Every query verifies against its own data.
    for (r, (data, k)) in report.results.iter().zip(&expected) {
        let out = r
            .outcome
            .as_ref()
            .unwrap_or_else(|e| panic!("query {}: {e}", r.id));
        assert_eq!(out.k, *k);
        verify_topk(data, *k, &out.values, &out.indices)
            .unwrap_or_else(|e| panic!("query {}: {e}", r.id));
    }

    // Both devices did real work.
    let busy = report
        .devices
        .iter()
        .filter(|d| !d.batches.is_empty())
        .count();
    assert!(busy >= 2, "only {busy} of 2 devices ran batches");

    // At least one same-shape batch was coalesced into a fused launch
    // set: the batch's kernel reports show far fewer launches than
    // running its queries one by one would need.
    let fused = report
        .devices
        .iter()
        .flat_map(|d| &d.batches)
        .find(|b| b.size >= 2)
        .expect("an 8-wide window over 50 same-shape queries must coalesce");
    assert!(report.fused_batches() > 0);
    let per_query = single_query_launches(&expected[0].0, fused.k).max(1);
    assert!(
        fused.kernel_launches() < fused.size * per_query,
        "batch of {} used {} launches, sequential would use {}",
        fused.size,
        fused.kernel_launches(),
        fused.size * per_query
    );
    // The report range indexes real kernel reports on that device.
    let dev = &report.devices[fused.device];
    let (lo, hi) = fused.report_range;
    assert!(hi <= dev.kernel_reports.len() && lo < hi);

    // Metrics are consistent with the arrival-at-zero model.
    for r in &report.results {
        assert!(r.queue_wait_us >= 0.0 && r.latency_us >= r.queue_wait_us);
    }
    let max_wait = report
        .results
        .iter()
        .map(|r| r.queue_wait_us)
        .fold(0.0, f64::max);
    assert!(max_wait > 0.0, "later batches must observe queue wait");
    assert!(report.queries_per_sec() > 0.0);
    assert!(report.makespan_us() > 0.0);
}

#[test]
fn window_one_disables_coalescing() {
    let mut engine = a100_engine(2, 1);
    let data = generate(Distribution::Normal, 8192, 5);
    for _ in 0..6 {
        engine.submit(data.clone(), 16).unwrap();
    }
    let report = engine.drain();
    assert_eq!(report.fused_batches(), 0);
    for r in &report.results {
        assert_eq!(r.batch_size, 1);
        let out = r.outcome.as_ref().unwrap();
        verify_topk(&data, 16, &out.values, &out.indices).unwrap();
    }
}

#[test]
fn coalescing_respects_window_and_shape() {
    // 5 queries of shape A (window 2 -> batches of 2,2,1) interleaved
    // with 4 of shape B (-> 2,2).
    let a = generate(Distribution::Uniform, 4096, 1);
    let b = generate(Distribution::Uniform, 2048, 2);
    let mut engine = a100_engine(1, 2);
    for i in 0..8 {
        let (data, k) = if i % 2 == 0 { (&a, 7) } else { (&b, 9) };
        engine.submit(data.clone(), k).unwrap();
    }
    engine.submit(a.clone(), 7).unwrap(); // 5th shape-A query
    let report = engine.drain();
    let mut sizes: Vec<(usize, usize, usize)> = report
        .devices
        .iter()
        .flat_map(|d| &d.batches)
        .map(|b| (b.n, b.k, b.size))
        .collect();
    sizes.sort_unstable();
    assert_eq!(
        sizes,
        vec![
            (2048, 9, 2),
            (2048, 9, 2),
            (4096, 7, 1),
            (4096, 7, 2),
            (4096, 7, 2)
        ]
    );
    for r in &report.results {
        assert!(r.outcome.is_ok());
    }
}

#[test]
fn bad_queries_fail_individually_without_poisoning_good_ones() {
    let mut engine = a100_engine(2, 4);
    let good = generate(Distribution::Uniform, 1000, 3);
    let id_good = engine.submit(good.clone(), 10).unwrap();
    let id_zero_k = engine.submit(good.clone(), 0).unwrap();
    let id_k_too_big = engine.submit(good.clone(), 1001).unwrap();
    let id_empty = engine.submit(Vec::new(), 5).unwrap();
    let report = engine.drain();

    let by_id = |id: usize| report.results.iter().find(|r| r.id == id).unwrap();
    let out = by_id(id_good).outcome.as_ref().unwrap();
    verify_topk(&good, 10, &out.values, &out.indices).unwrap();
    for id in [id_zero_k, id_k_too_big, id_empty] {
        assert!(
            matches!(by_id(id).outcome, Err(TopKError::InvalidK { .. })),
            "query {id} should fail with InvalidK, got {:?}",
            by_id(id).outcome
        );
    }
}

#[test]
fn submission_queue_is_bounded() {
    let mut engine = TopKEngine::new(
        EngineConfig::a100_pool(1)
            .with_queue_capacity(2)
            .with_window(4),
    );
    engine.submit(vec![1.0, 2.0], 1).unwrap();
    engine.submit(vec![3.0, 4.0], 1).unwrap();
    assert_eq!(
        engine.submit(vec![5.0, 6.0], 1),
        Err(EngineError::QueueFull { capacity: 2 })
    );
    // Draining frees capacity again.
    let report = engine.drain();
    assert_eq!(report.results.len(), 2);
    engine.submit(vec![5.0, 6.0], 1).unwrap();
    let report = engine.drain();
    assert_eq!(report.results[0].id, 2);
}

#[test]
fn devices_stay_leak_free_across_batches() {
    // After a drain every device must be back at zero allocated bytes:
    // inputs, workspace and outputs are all returned to the allocator
    // — including on batches that fail.
    let mut engine = a100_engine(1, 2);
    for i in 0..4 {
        engine
            .submit(generate(Distribution::Uniform, 4096, i), 32)
            .unwrap();
    }
    engine
        .submit(generate(Distribution::Uniform, 512, 9), 600)
        .unwrap(); // fails: k > n
    let report = engine.drain();
    for dev in &report.devices {
        assert_eq!(dev.mem_allocated_after, 0, "device {} leaked", dev.device);
        assert!(dev.mem_high_water > 0);
        for b in &dev.batches {
            assert!(b.end_us >= b.start_us);
        }
    }
    assert_eq!(
        report.results.iter().filter(|r| r.outcome.is_err()).count(),
        1
    );
}

#[test]
fn repeated_drains_do_not_duplicate_kernel_reports() {
    // Devices persist across drains; a drain's DeviceReport must slice
    // out only *its* launches, not the device's lifetime history.
    let mut engine = a100_engine(1, 2);
    let data = generate(Distribution::Uniform, 4096, 11);

    engine.submit(data.clone(), 16).unwrap();
    engine.submit(data.clone(), 16).unwrap();
    let first = engine.drain();
    let first_launches = first.devices[0].kernel_reports.len();
    assert!(first_launches > 0);

    engine.submit(data.clone(), 16).unwrap();
    engine.submit(data.clone(), 16).unwrap();
    let second = engine.drain();
    let dev = &second.devices[0];

    // Same workload, same launch count: the second drain must not drag
    // the first drain's reports along.
    assert_eq!(
        dev.kernel_reports.len(),
        first_launches,
        "second drain duplicated earlier report history"
    );
    // Ranges are rebased to the drain's slice and tile it exactly.
    let mut covered = 0;
    for b in &dev.batches {
        assert_eq!(b.report_range.0, covered);
        covered = b.report_range.1;
    }
    assert_eq!(covered, dev.kernel_reports.len());
    // Times are drain-relative even though the device clock carried
    // over: the first batch starts at 0.
    assert_eq!(dev.batches[0].start_us, 0.0);
    assert!(dev.clock_start_us > 0.0, "persistent clock must carry over");
    assert!((dev.elapsed_us - dev.batches.last().unwrap().end_us).abs() < 1e-9);
}

#[test]
fn spans_link_queries_to_their_kernel_launches() {
    let mut engine = a100_engine(2, 4);
    let data = generate(Distribution::Uniform, 8192, 21);
    for _ in 0..8 {
        engine.submit(data.clone(), 64).unwrap();
    }
    let report = engine.drain();

    // Every query has a distinct nonzero span.
    let mut spans: Vec<u64> = report.results.iter().map(|r| r.span).collect();
    spans.sort_unstable();
    spans.dedup();
    assert_eq!(spans.len(), report.results.len());
    assert!(spans.iter().all(|&s| s != 0));

    for dev in &report.devices {
        for b in &dev.batches {
            assert_ne!(b.span, 0);
            // Every launch in the batch's range is tagged with it.
            for kr in &dev.kernel_reports[b.report_range.0..b.report_range.1] {
                assert_eq!(kr.span, b.span, "launch {} mis-tagged", kr.name);
            }
        }
    }
    // Each query's batch_span resolves to exactly one batch, and that
    // batch ran on the query's device.
    for r in &report.results {
        let owners: Vec<&BatchRecord> = report
            .devices
            .iter()
            .flat_map(|d| &d.batches)
            .filter(|b| b.span == r.batch_span)
            .collect();
        assert_eq!(owners.len(), 1, "query {} batch_span ambiguous", r.id);
        assert_eq!(owners[0].device, r.device);
    }
}

#[test]
fn drain_reports_latency_percentiles() {
    let mut engine = a100_engine(2, 4);
    for i in 0..16 {
        engine
            .submit(
                generate(Distribution::Uniform, 2048 + 512 * (i % 3), i as u64),
                16,
            )
            .unwrap();
    }
    let report = engine.drain();
    let p50 = report.p50_latency_us();
    let p99 = report.p99_latency_us();
    let max = report
        .results
        .iter()
        .map(|r| r.latency_us)
        .fold(0.0, f64::max);
    assert!(p50 > 0.0);
    assert!(p50 <= p99, "p50 {p50} > p99 {p99}");
    assert!(p99 <= max);
    // Nearest-rank over an even count: p100 is the max exactly.
    assert_eq!(report.percentile_latency_us(1.0), max);
    // Empty drains report zero, not NaN.
    assert_eq!(engine.drain().p50_latency_us(), 0.0);
}

#[test]
fn metrics_and_snapshot_reflect_a_mixed_drain() {
    let mut engine = TopKEngine::new(
        EngineConfig::a100_pool(2)
            .with_window(4)
            .with_queue_capacity(32),
    );
    let good = generate(Distribution::Uniform, 100_000, 7);
    for _ in 0..6 {
        engine.submit(good.clone(), 32).unwrap();
    }
    engine.submit(good.clone(), 0).unwrap(); // InvalidK
    assert_eq!(engine.snapshot().queue_depth, 7);
    let report = engine.drain();
    assert!(report.algo.air_passes > 0, "drain must count AIR passes");

    let snap = engine.snapshot();
    assert_eq!(snap.queue_depth, 0);
    assert_eq!(snap.queries_submitted, 7);
    assert_eq!(snap.queries_completed, 6);
    assert_eq!(snap.queries_failed, 1);
    assert_eq!(snap.drains, 1);
    let invalid_k = snap
        .errors
        .iter()
        .find(|(k, _)| *k == "invalid_k")
        .map(|(_, n)| *n)
        .unwrap();
    assert_eq!(invalid_k, 1);
    assert_eq!(snap.devices.len(), 2);
    let util_sum: f64 = snap.devices.iter().map(|d| d.utilization).sum();
    assert!(util_sum > 0.0 && util_sum <= 2.0 + 1e-9);
    assert!(snap.devices.iter().any(|d| d.kernel_launches > 0));

    let text = engine.render_prometheus();
    assert!(text.contains("topk_engine_queries_total 7"), "{text}");
    assert!(text.contains("topk_engine_query_errors_total{kind=\"invalid_k\"} 1"));
    assert!(text.contains("topk_engine_query_latency_us_bucket{le=\"1\"}"));
    assert!(text.contains("topk_engine_query_latency_us_count 7"));
    assert!(text.contains("# TYPE topk_engine_query_latency_us histogram"));
    assert!(text.contains("topk_engine_device_utilization{device=\"0\"}"));
    // The AIR counters made it through the snapshot delta.
    assert!(!text.contains("topk_air_passes_total 0\n"), "{text}");
}

/// Sequential reference: each query on its own fresh device through
/// the same dispatcher, single-query path.
fn sequential_reference(data: &[f32], k: usize) -> Result<QueryOutput, TopKError> {
    let mut gpu = Gpu::new(DeviceSpec::a100());
    let input = gpu.try_htod("seq", data)?;
    let out = SelectK::default().try_select(&mut gpu, &input, k)?;
    let values = gpu.dtoh(&out.values);
    let indices = gpu.dtoh(&out.indices);
    Ok(QueryOutput { values, indices, k })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Satellite: for arbitrary query mixes, the engine's answers match
    // running each query sequentially on a fresh device — same top-K
    // multiset (verify_topk on both, then bitwise-equal sorted values).
    #[test]
    fn engine_matches_sequential_fresh_device_runs(
        seeds in prop::collection::vec((0u64..1000, 1usize..5), 1..10),
        window in 1usize..5,
        devices in 1usize..4,
    ) {
        let queries: Vec<(Vec<f32>, usize)> = seeds
            .iter()
            .map(|&(seed, kf)| {
                let n = 256 + (seed as usize % 4) * 711;
                let data = generate(Distribution::Uniform, n, seed);
                let k = (n * kf / 5).max(1);
                (data, k)
            })
            .collect();
        let mut engine = TopKEngine::new(
            EngineConfig::a100_pool(devices).with_window(window),
        );
        for (data, k) in &queries {
            engine.submit(data.clone(), *k).unwrap();
        }
        let report = engine.drain();
        prop_assert_eq!(report.results.len(), queries.len());
        for (r, (data, k)) in report.results.iter().zip(&queries) {
            let got = r.outcome.as_ref().unwrap();
            prop_assert!(verify_topk(data, *k, &got.values, &got.indices).is_ok());
            let want = sequential_reference(data, *k).unwrap();
            prop_assert!(verify_topk(data, *k, &want.values, &want.indices).is_ok());
            let mut a: Vec<u32> = got.values.iter().map(|v| v.to_bits()).collect();
            let mut b: Vec<u32> = want.values.iter().map(|v| v.to_bits()).collect();
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b);
        }
    }
}

// ---------------------------------------------------------------------------
// Resilience: fault injection, retry/failover, breaker, degradation.
// ---------------------------------------------------------------------------

#[test]
fn worker_panic_is_isolated_and_survivors_finish() {
    // A scripted driver crash on device 0's first launch must not
    // abort the drain: the panic is captured, the device is retired,
    // and the surviving device answers every query.
    let plan = FaultPlan::seeded(7).with_scripted(ScriptedFault {
        device: 0,
        kind: FaultKind::WorkerPanic,
        nth: 0,
    });
    let mut engine = TopKEngine::new(EngineConfig::a100_pool(2).with_window(1).with_faults(plan));
    let mut expected = Vec::new();
    for q in 0..6 {
        let data = generate(Distribution::Uniform, 4096, q as u64);
        engine.submit(data.clone(), 64).unwrap();
        expected.push(data);
    }
    let report = engine.drain();

    assert_eq!(
        report.results.len(),
        6,
        "every query reaches a terminal result"
    );
    assert!(report.devices[0].failed, "panicked device is retired");
    assert!(!report.devices[1].failed);
    for (r, data) in report.results.iter().zip(&expected) {
        let got = r.outcome.as_ref().expect("survivor serves every query");
        verify_topk(data, 64, &got.values, &got.indices).unwrap();
        assert_eq!(r.device, 1, "answers come from the surviving device");
    }
    assert!(
        report.failovers >= 1,
        "the panicked batch re-lands on the survivor: {report:?}"
    );
    assert!(report.devices[0]
        .fault_events
        .iter()
        .any(|fe| fe.kind == FaultKind::WorkerPanic));
}

#[test]
fn transient_fault_is_retried_on_the_same_device() {
    // One transient compute fault on a single-device pool: the batch
    // is retried after backoff and succeeds on the same device.
    let plan = FaultPlan::seeded(11).with_scripted(ScriptedFault {
        device: 0,
        kind: FaultKind::TransientCompute,
        nth: 0,
    });
    let mut engine = TopKEngine::new(EngineConfig::a100_pool(1).with_faults(plan));
    let data = generate(Distribution::Uniform, 8192, 3);
    engine.submit(data.clone(), 32).unwrap();
    let report = engine.drain();

    let r = &report.results[0];
    let got = r.outcome.as_ref().expect("retry recovers the query");
    verify_topk(&data, 32, &got.values, &got.indices).unwrap();
    assert_eq!(r.served, Served::Gpu { retries: 1 });
    assert_eq!(report.retries, 1);
    assert_eq!(report.failovers, 0);
    assert_eq!(report.cpu_fallbacks, 0);
}

#[test]
fn breaker_quarantines_after_consecutive_faults() {
    // Three consecutive launch failures on device 0 trip the breaker;
    // the drain still answers everything via device 1.
    let mut plan = FaultPlan::seeded(13);
    for nth in 0..3 {
        plan = plan.with_scripted(ScriptedFault {
            device: 0,
            kind: FaultKind::LaunchFail,
            nth,
        });
    }
    let cfg = EngineConfig::a100_pool(2)
        .with_window(1)
        .with_faults(plan)
        .with_breaker(BreakerConfig {
            threshold: 3,
            cooldown_us: 50_000.0,
        });
    let mut engine = TopKEngine::new(cfg);
    for q in 0..8 {
        let data = generate(Distribution::Uniform, 4096, 100 + q as u64);
        engine.submit(data, 64).unwrap();
    }
    let report = engine.drain();

    assert_eq!(report.results.len(), 8);
    assert!(report.results.iter().all(|r| r.outcome.is_ok()));
    assert!(
        report.quarantines >= 1,
        "breaker trips after {} consecutive faults: {report:?}",
        3
    );
    assert!(report.devices[0].quarantined);
    assert!(!report.devices[0].failed, "quarantine is not retirement");
    let snap = engine.snapshot();
    assert!(snap.quarantines >= 1);
    assert_eq!(snap.devices[0].health, "quarantined");
}

#[test]
fn pool_exhaustion_degrades_to_cpu_fallback() {
    // A hang retires the only device; the query degrades to the host
    // heap path and still returns a verified answer.
    let plan = FaultPlan::seeded(17).with_scripted(ScriptedFault {
        device: 0,
        kind: FaultKind::DeviceHang,
        nth: 0,
    });
    let mut engine = TopKEngine::new(EngineConfig::a100_pool(1).with_faults(plan));
    let data = generate(Distribution::Uniform, 4096, 9);
    engine.submit(data.clone(), 48).unwrap();
    let report = engine.drain();

    let r = &report.results[0];
    assert!(matches!(r.served, Served::CpuFallback { .. }));
    let got = r.outcome.as_ref().expect("CPU fallback serves the query");
    verify_topk(&data, 48, &got.values, &got.indices).unwrap();
    assert_eq!(report.cpu_fallbacks, 1);
    assert!(report.devices[0].failed, "hung device is retired");
}

#[test]
fn disabled_cpu_fallback_yields_typed_terminal_error() {
    let plan = FaultPlan::seeded(19).with_scripted(ScriptedFault {
        device: 0,
        kind: FaultKind::DeviceHang,
        nth: 0,
    });
    let mut engine = TopKEngine::new(
        EngineConfig::a100_pool(1)
            .with_faults(plan)
            .with_cpu_fallback(false),
    );
    let data = generate(Distribution::Uniform, 2048, 21);
    engine.submit(data, 16).unwrap();
    let report = engine.drain();

    let r = &report.results[0];
    assert_eq!(r.served, Served::Failed);
    let err = r.outcome.as_ref().unwrap_err();
    assert!(
        err.is_device_fault(),
        "terminal error keeps the fault: {err}"
    );
}

#[test]
fn missed_deadline_is_a_terminal_deadline_error() {
    // A 1µs deadline cannot be met by any rung of the ladder.
    let mut engine = TopKEngine::new(EngineConfig::a100_pool(1));
    let data = generate(Distribution::Uniform, 4096, 2);
    engine.submit_with_deadline(data, 32, 1).unwrap();
    let report = engine.drain();

    let r = &report.results[0];
    assert_eq!(r.served, Served::Failed);
    assert!(matches!(
        r.outcome,
        Err(TopKError::DeadlineExceeded { deadline_us: 1 })
    ));
    assert_eq!(report.deadline_misses, 1);
}

#[test]
fn chaos_digest_is_identical_across_same_seed_runs() {
    let run = || {
        let plan = FaultPlan::chaos(42, 0.08);
        let mut engine =
            TopKEngine::new(EngineConfig::a100_pool(3).with_window(4).with_faults(plan));
        for q in 0..24 {
            let n = 1024 + (q % 5) * 777;
            let data = generate(Distribution::Uniform, n, q as u64);
            engine.submit(data, (q % 7) + 1).unwrap();
        }
        engine.drain().chaos_digest()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same seed must reproduce the drain bit-for-bit");
    assert!(a.lines().last().unwrap().starts_with("digest "));
}

// ---------------------------------------------------------------------------
// Latency-statistic hardening (empty / single / all-errored reports).
// ---------------------------------------------------------------------------

#[test]
fn latency_stats_on_empty_drain_are_zero_not_nan() {
    let mut engine = a100_engine(1, 4);
    let report = engine.drain();
    assert!(report.results.is_empty());
    assert_eq!(report.mean_latency_us(), 0.0);
    for q in [0.0, 0.5, 0.99, 1.0] {
        let p = report.percentile_latency_us(q);
        assert_eq!(p, 0.0, "p{q} on an empty report");
        assert!(!p.is_nan());
    }
}

#[test]
fn latency_stats_on_single_result_report() {
    let mut engine = a100_engine(1, 4);
    let data = generate(Distribution::Uniform, 2048, 5);
    engine.submit(data, 16).unwrap();
    let report = engine.drain();
    assert_eq!(report.results.len(), 1);
    let lat = report.results[0].latency_us;
    assert!(lat.is_finite() && lat > 0.0);
    assert_eq!(report.mean_latency_us(), lat);
    for q in [0.0, 0.5, 0.99, 1.0] {
        assert_eq!(report.percentile_latency_us(q), lat);
    }
}

#[test]
fn latency_stats_ignore_errored_results() {
    // All queries errored (hang, no fallback): the stats must stay
    // finite zeros rather than averaging error placeholders.
    let plan = FaultPlan::seeded(23).with_scripted(ScriptedFault {
        device: 0,
        kind: FaultKind::DeviceHang,
        nth: 0,
    });
    let mut engine = TopKEngine::new(
        EngineConfig::a100_pool(1)
            .with_window(1)
            .with_faults(plan)
            .with_cpu_fallback(false),
    );
    for q in 0..3 {
        let data = generate(Distribution::Uniform, 1024, 50 + q as u64);
        engine.submit(data, 8).unwrap();
    }
    let report = engine.drain();
    assert!(report.results.iter().all(|r| r.outcome.is_err()));
    assert_eq!(report.mean_latency_us(), 0.0);
    let p = report.percentile_latency_us(0.5);
    assert_eq!(p, 0.0);
    assert!(!p.is_nan());
}

#[test]
fn sanitized_drain_is_clean_and_digest_matches_unsanitized() {
    let run = |sanitize: bool| {
        let mut cfg = EngineConfig::a100_pool(2).with_window(4);
        if sanitize {
            cfg = cfg.with_sanitizer(SanitizerMode::full());
        }
        let mut engine = TopKEngine::new(cfg);
        for q in 0..12 {
            let n = if q % 2 == 0 { 2048 } else { 4096 };
            let data = generate(Distribution::Uniform, n, 900 + q as u64);
            engine.submit(data, 32).unwrap();
        }
        let report = engine.drain();
        assert!(report.results.iter().all(|r| r.outcome.is_ok()));
        (report.sanitizer, report.chaos_digest(), engine)
    };

    let (san_off, digest_off, _) = run(false);
    let (san_on, digest_on, engine_on) = run(true);
    assert_eq!(san_off.total(), 0, "off mode never counts");
    assert_eq!(
        san_on.total(),
        0,
        "serving path must be sanitizer-clean: {:?}",
        engine_on.sanitizer_findings()
    );
    assert_eq!(
        digest_off, digest_on,
        "sanitizer must not perturb the chaos digest"
    );
}

// ---------------------------------------------------------------------------
// The accuracy ladder: recall targets, approximate rungs, recall accounting.
// ---------------------------------------------------------------------------

#[test]
fn default_recall_target_never_approximates() {
    // Without an explicit target, chaos may retry/failover/fallback but
    // must never trade accuracy: the approximate rungs stay untouched.
    let plan = FaultPlan::chaos(42, 0.08);
    let mut engine = TopKEngine::new(EngineConfig::a100_pool(3).with_window(4).with_faults(plan));
    for q in 0..24 {
        let n = 1024 + (q % 5) * 777;
        let data = generate(Distribution::Uniform, n, q as u64);
        engine.submit(data, (q % 7) + 1).unwrap();
    }
    let report = engine.drain();
    assert_eq!(report.approx_two_stage + report.approx_bucketed, 0);
    assert!(report
        .results
        .iter()
        .all(|r| !matches!(r.served, Served::Approx { .. })));
    for r in &report.results {
        if r.outcome.is_ok() {
            assert_eq!(r.est_recall, 1.0, "exact rungs report full recall");
        }
    }
    assert_eq!(report.p50_recall(), 1.0);
    assert!(report
        .chaos_digest()
        .contains("approx_two_stage=0 approx_bucketed=0 recall_p50=1.0000"));
}

#[test]
fn capacity_loss_triggers_approx_rungs_with_recall_accounting() {
    // A hang retires one of two devices: from then on the healthy half
    // of the pool is gone (healthy*2 <= pool), and queries that opted
    // into recall 0.9 degrade to an approximate rung — recorded in
    // Served, in the per-rung counts and in the flight recorder.
    let plan = FaultPlan::seeded(29).with_scripted(ScriptedFault {
        device: 0,
        kind: FaultKind::DeviceHang,
        nth: 0,
    });
    let mut engine = TopKEngine::new(
        EngineConfig::a100_pool(2)
            .with_window(1)
            .with_faults(plan)
            .with_recall_target(0.9),
    );
    let mut inputs = Vec::new();
    for q in 0..8 {
        let data = generate(Distribution::Uniform, 1 << 14, 300 + q as u64);
        engine.submit(data.clone(), 64).unwrap();
        inputs.push(data);
    }
    let report = engine.drain();

    assert!(report.results.iter().all(|r| r.outcome.is_ok()));
    let approx: Vec<&QueryResult> = report
        .results
        .iter()
        .filter(|r| matches!(r.served, Served::Approx { .. }))
        .collect();
    assert!(
        !approx.is_empty(),
        "capacity loss must engage the approximate rungs: {report:?}"
    );
    assert_eq!(
        report.approx_two_stage + report.approx_bucketed,
        approx.len() as u64
    );
    for r in &approx {
        assert!(
            r.est_recall >= 0.9 && r.est_recall < 1.0,
            "q{} est_recall {} outside (target, 1.0)",
            r.id,
            r.est_recall
        );
        // The answer really is an approximation of this query's data:
        // measured value-multiset recall clears the analytic target's
        // neighbourhood.
        let out = r.outcome.as_ref().unwrap();
        let measured = topk_core::measured_recall(&inputs[r.id], 64, &out.values);
        assert!(
            measured >= 0.6,
            "q{} measured recall {measured} implausibly low",
            r.id
        );
    }
    // Aggregates see the trade.
    assert!(report.p99_recall() < 1.0);
    assert!(report.p99_recall() >= 0.9);
    // The transition was flight-recorded with its cause.
    let degrade = engine
        .flight_recorder()
        .events()
        .find(|e| e.kind == "degrade_rung")
        .expect("rung transition must be flight-recorded");
    assert!(
        degrade.detail.contains("cause=capacity_loss"),
        "detail: {}",
        degrade.detail
    );
    assert!(degrade.detail.contains("recall_target=0.9000"));
    // Metrics exported the rung counters and the recall histogram.
    let text = engine.render_prometheus();
    assert!(text.contains("topk_engine_approx_served_total"), "{text}");
    assert!(text.contains("topk_engine_est_recall_count"), "{text}");
}

/// The chaos acceptance scenario: 4 devices, scripted worker panics
/// retire two of them, every query carries a tight deadline.
/// Exact-only serving must demonstrably miss deadlines;
/// `recall_target = 0.95` must serve *every* query inside its deadline
/// via the approximate rungs at ≥ 0.95 aggregate measured recall,
/// reproducibly.
fn chaos_scenario(recall_target: f64, deadline_us: Option<u64>) -> (DrainReport, Vec<Vec<f32>>) {
    let plan = FaultPlan::seeded(31)
        .with_scripted(ScriptedFault {
            device: 0,
            kind: FaultKind::WorkerPanic,
            nth: 0,
        })
        .with_scripted(ScriptedFault {
            device: 1,
            kind: FaultKind::WorkerPanic,
            nth: 0,
        });
    let mut cfg = EngineConfig::a100_pool(4)
        .with_window(2)
        .with_faults(plan)
        .with_recall_target(recall_target);
    if let Some(dl) = deadline_us {
        cfg = cfg.with_deadline_us(dl);
    }
    let mut engine = TopKEngine::new(cfg);
    let mut inputs = Vec::new();
    for q in 0..32 {
        let data = generate(Distribution::Uniform, 1 << 16, 500 + q as u64);
        engine.submit(data.clone(), 128).unwrap();
        inputs.push(data);
    }
    (engine.drain(), inputs)
}

#[test]
fn chaos_degradation_serves_every_query_within_deadline() {
    // Deadline-free pilots bound the two serving modes; the simulator
    // is deterministic, so these are exact, not flaky estimates.
    let (exact_pilot, _) = chaos_scenario(1.0, None);
    let (approx_pilot, _) = chaos_scenario(0.95, None);
    assert!(approx_pilot
        .results
        .iter()
        .any(|r| matches!(r.served, Served::Approx { .. })));
    let max_lat = |rep: &DrainReport| rep.results.iter().map(|r| r.latency_us).fold(0.0, f64::max);
    let exact_max = max_lat(&exact_pilot);
    let approx_max = max_lat(&approx_pilot);
    assert!(
        approx_max * 1.1 < exact_max,
        "approximation must buy real headroom: approx {approx_max} vs exact {exact_max}"
    );
    // A deadline the approximate ladder clears but exact serving
    // cannot.
    let deadline = (approx_max * 1.05).ceil() as u64;

    // Exact-only: the deadline verdict lands on real queries.
    let (exact_run, _) = chaos_scenario(1.0, Some(deadline));
    assert!(
        exact_run.deadline_misses > 0 || exact_run.results.iter().any(|r| r.outcome.is_err()),
        "exact-only serving must demonstrably fail this scenario"
    );

    // recall 0.95: zero terminal failures, zero deadline misses, every
    // answer inside its deadline, served largely by approximate rungs.
    let (approx_run, inputs) = chaos_scenario(0.95, Some(deadline));
    assert_eq!(approx_run.deadline_misses, 0, "{approx_run:?}");
    for r in &approx_run.results {
        assert!(
            r.outcome.is_ok(),
            "q{} failed: {:?}",
            r.id,
            r.outcome.as_ref().err()
        );
        assert_ne!(r.served, Served::Failed);
        assert!(r.latency_us <= deadline as f64);
    }
    assert!(approx_run.approx_two_stage + approx_run.approx_bucketed > 0);

    // Aggregate *measured* recall (value-multiset vs. the true top-K)
    // clears the target, not just the analytic estimate.
    let mut measured_sum = 0.0;
    for r in &approx_run.results {
        let out = r.outcome.as_ref().unwrap();
        measured_sum += topk_core::measured_recall(&inputs[r.id], 128, &out.values);
    }
    let measured_mean = measured_sum / approx_run.results.len() as f64;
    assert!(
        measured_mean >= 0.95,
        "aggregate measured recall {measured_mean} below target"
    );
    // Analytic accounting agrees it was a trade, not a collapse.
    assert!(approx_run.mean_est_recall() >= 0.95);
    assert!(approx_run.p99_recall() >= 0.95);

    // Same-seed reproducibility, recall accounting included: the
    // digest now carries per-rung counts and recall percentiles.
    let (rerun, _) = chaos_scenario(0.95, Some(deadline));
    assert_eq!(
        approx_run.chaos_digest(),
        rerun.chaos_digest(),
        "same-seed chaos digests must be bit-identical"
    );
    assert!(approx_run.chaos_digest().contains("recall_p50="));
}

#[test]
fn coalesce_merges_recall_targets_to_the_strictest_member() {
    // A fused batch may only approximate if *every* member consented:
    // one exact-only query in the batch pins it to the exact path.
    let plan = FaultPlan::seeded(37).with_scripted(ScriptedFault {
        device: 0,
        kind: FaultKind::DeviceHang,
        nth: 0,
    });
    let mut engine = TopKEngine::new(EngineConfig::a100_pool(2).with_window(8).with_faults(plan));
    let data = generate(Distribution::Uniform, 1 << 14, 77);
    for _ in 0..4 {
        engine.submit_with_recall(data.clone(), 32, 0.9).unwrap();
    }
    // The strict member joins the same (N, K) batch.
    engine.submit(data.clone(), 32).unwrap();
    let report = engine.drain();
    assert!(report.results.iter().all(|r| r.outcome.is_ok()));
    // All five queries coalesce (window 8, same shape) into batches
    // that contain the exact-only member — nothing may approximate.
    for r in &report.results {
        if r.batch_size == 5 {
            assert!(
                !matches!(r.served, Served::Approx { .. }),
                "q{} approximated in a batch with an exact-only member",
                r.id
            );
        }
    }
}

#[test]
fn sanitizer_counts_are_drain_relative() {
    let mut engine =
        TopKEngine::new(EngineConfig::a100_pool(1).with_sanitizer(SanitizerMode::full()));
    let data = generate(Distribution::Uniform, 1024, 7);
    engine.submit(data.clone(), 16).unwrap();
    let first = engine.drain();
    engine.submit(data, 16).unwrap();
    let second = engine.drain();
    // Clean drains: both deltas are zero even though the device (and
    // its cumulative counters) persists between them.
    assert_eq!(first.sanitizer.total(), 0);
    assert_eq!(second.sanitizer.total(), 0);
    assert_eq!(second.devices[0].sanitizer, SanitizerCounts::default());
}
