//! # topk-engine — multi-device top-K serving layer
//!
//! The ROADMAP's north star is a system serving heavy top-K traffic,
//! not a benchmark loop: many concurrent queries of mixed shapes, a
//! pool of devices, and per-query accounting. This crate supplies that
//! layer on top of the fallible selection core:
//!
//! * [`TopKEngine`] owns a **bounded submission queue**
//!   ([`TopKEngine::submit`] refuses work beyond
//!   [`EngineConfig::queue_capacity`]) and a **pool of simulated
//!   devices**, one worker thread per device.
//! * [`TopKEngine::drain`] **coalesces** queued queries with the same
//!   `(N, K)` shape into fused [`try_select_batch`] launches of up to
//!   [`EngineConfig::coalescing_window`] queries — the paper's §5.1
//!   batch-100 measurements show why: batching amortises launch
//!   overhead and fills the grid, so a fused launch beats `B`
//!   back-to-back single selections.
//! * Every batch routes through the [`SelectK`] **adaptive
//!   dispatcher**: each query's distribution sketch (computed at
//!   submission, merged per batch) and the batch's real `(N, K, B)`
//!   shape are priced through the cost-model-guided tuner
//!   ([`topk_core::tuner`]), measured batch latencies feed back via
//!   `SelectK::observe`, and the warmed plan table persists across
//!   drains ([`TopKEngine::plan_table_text`]). Every query comes back
//!   as its own [`QueryResult`] carrying a `Result` (errors are
//!   per-query data, never panics) plus simulated **queue-wait** and
//!   **latency** metrics read off the device clock.
//!
//! Scheduling is an **event-driven simulated-time loop**: each step
//! dispatches the runnable batch with the earliest start time onto the
//! device whose simulated clock frees up first. Block-level execution
//! inside every launch still fans out across the host `BlockPool`, so
//! the host stays parallel while the schedule itself is a pure function
//! of the submitted workload — which is what makes chaos runs
//! bit-for-bit reproducible.
//!
//! ## Resilience
//!
//! The engine is built to *prove* the terminal-result invariant: every
//! submitted query reaches exactly one terminal [`QueryResult`], no
//! matter which simulated device fails, hangs or slows down
//! (`DESIGN.md` §Fault model & resilience):
//!
//! * [`EngineConfig::with_faults`] installs a seeded
//!   [`gpu_sim::FaultPlan`] on every pool device; injected faults
//!   surface as typed [`TopKError`]s through the fallible core.
//! * Device faults are retried under a bounded [`RetryPolicy`] with
//!   simulated backoff; a retry may land on another device
//!   (**failover**).
//! * A per-device circuit breaker ([`BreakerConfig`]) quarantines a
//!   device after N consecutive faults and re-probes it after a
//!   cooldown; a worker panic or a device hang marks the device
//!   **failed** for good, and `drain` never aborts — the panic is
//!   captured and the batch rescheduled.
//! * When the retry budget or the device pool is exhausted, queries
//!   degrade to the `topk-cpu` reference path (unless
//!   [`EngineConfig::with_cpu_fallback`] disables it, in which case
//!   they fail with a typed error).
//! * [`QueryResult::served`] records which rung of that ladder
//!   produced the answer; [`DrainReport::chaos_digest`] renders the
//!   whole drain as a deterministic text summary CI can diff across
//!   same-seed runs.
//!
//! ```
//! use gpu_sim::DeviceSpec;
//! use topk_engine::{EngineConfig, TopKEngine};
//! use topk_core::verify_topk;
//!
//! let mut engine = TopKEngine::new(EngineConfig::new(vec![
//!     DeviceSpec::a100(),
//!     DeviceSpec::a100(),
//! ]));
//! let data: Vec<f32> = (0..10_000).map(|i| ((i * 37) % 9973) as f32).collect();
//! for _ in 0..4 {
//!     engine.submit(data.clone(), 8).unwrap();
//! }
//! let report = engine.drain();
//! assert_eq!(report.results.len(), 4);
//! for r in &report.results {
//!     let out = r.outcome.as_ref().unwrap();
//!     verify_topk(&data, 8, &out.values, &out.indices).unwrap();
//! }
//! ```
//!
//! ## Observability
//!
//! The engine is instrumented end to end (see `DESIGN.md` §Observability):
//!
//! * [`TopKEngine::metrics`] exposes a [`topk_obs::MetricsRegistry`]
//!   with latency/queue-wait histograms, per-[`TopKError::kind`] error
//!   counters, and the algorithm-level counters from
//!   [`topk_core::obs`]; render it with
//!   [`TopKEngine::render_prometheus`].
//! * Every [`TopKEngine::submit`] mints a tracing span id; the batch
//!   it joins tags its kernel launches with its lead query's span
//!   ([`gpu_sim::KernelReport::span`]), so each [`QueryResult`] links
//!   back to the launches that served it via
//!   [`QueryResult::batch_span`].
//! * [`chrome_trace`] renders a [`DrainReport`] as a Chrome
//!   `chrome://tracing` / Perfetto JSON file with one kernel track and
//!   one query track per device.
//! * [`TopKEngine::snapshot`] returns an [`EngineSnapshot`] of queue
//!   depth, per-device utilisation and error totals.
//!
//! [`try_select_batch`]: topk_core::TopKAlgorithm::try_select_batch

pub mod flight;
pub mod metrics;
pub mod profiler;
pub mod trace;

pub use flight::{FlightEvent, FlightRecorder};
pub use metrics::EngineMetrics;
pub use profiler::{DriftEntry, DriftTracker};
pub use trace::chrome_trace;

// Fault-injection vocabulary, re-exported so engine users can build a
// [`FaultPlan`] without depending on `gpu-sim` directly.
pub use gpu_sim::{
    FaultEvent, FaultInjector, FaultKind, FaultPlan, SanitizerCounts, SanitizerMode, ScriptedFault,
};

use crate::flight::PmDevice;
use gpu_sim::{Backend, BackendExt, DeviceSpec, EventKind, Gpu, KernelReport, SimError};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use topk_core::tuner::{DistSketch, PlanKey, ProblemShape, TunedAlgo, Tuner};
use topk_core::{
    AlgoSnapshot, BucketedTopK, ScratchGuard, SelectK, TopKAlgorithm, TopKError, TwoStageTopK,
};

/// Post-mortem JSON documents retained per engine; once full, further
/// triggers only bump [`TopKEngine::post_mortems_dropped`] — an
/// anomaly storm must not turn the recorder into a memory leak.
pub const POST_MORTEM_CAP: usize = 16;

/// Safety factor applied to cost predictions when deciding whether a
/// batch's earliest member deadline is at risk: a predicted finish
/// within `deadline / DEADLINE_SAFETY` of the deadline already counts
/// as risky, absorbing cost-model error before it becomes a miss.
pub const DEADLINE_SAFETY: f64 = 1.5;

/// Bounded-retry policy for device faults, with simulated exponential
/// backoff between attempts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Attempts beyond the first before a job degrades. `0` disables
    /// retrying entirely.
    pub max_retries: u32,
    /// Simulated backoff before the first retry, µs.
    pub backoff_us: f64,
    /// Backoff growth factor per further retry.
    pub backoff_multiplier: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            backoff_us: 100.0,
            backoff_multiplier: 2.0,
        }
    }
}

/// Per-device circuit breaker: after `threshold` *consecutive* faults
/// the device is quarantined for `cooldown_us` of simulated time, then
/// re-probed (half-open) by the next batch scheduled onto it — a
/// success closes the breaker, another fault re-opens it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Consecutive device faults that trip the breaker.
    pub threshold: u32,
    /// Simulated quarantine length, µs.
    pub cooldown_us: f64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            threshold: 3,
            cooldown_us: 5_000.0,
        }
    }
}

/// Closure signature a [`BackendFactory`] wraps: device spec in,
/// boxed backend out.
pub type BackendCtor = dyn Fn(&DeviceSpec) -> Box<dyn Backend> + Send + Sync;

/// Constructor for the pool's device backends, letting an engine run
/// on any [`Backend`] implementation (the simulator by default; a
/// `wgpu` device, a mock, …). Cheap to clone — the closure is shared.
#[derive(Clone)]
pub struct BackendFactory(Arc<BackendCtor>);

impl BackendFactory {
    /// Wrap a constructor closure.
    pub fn new(f: impl Fn(&DeviceSpec) -> Box<dyn Backend> + Send + Sync + 'static) -> Self {
        BackendFactory(Arc::new(f))
    }

    /// Build one backend for `spec`.
    pub fn build(&self, spec: &DeviceSpec) -> Box<dyn Backend> {
        (self.0)(spec)
    }
}

impl std::fmt::Debug for BackendFactory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BackendFactory(..)")
    }
}

/// Engine shape: which devices to pool, how to queue/coalesce, and how
/// to behave when devices fault.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// One simulated device per entry.
    pub devices: Vec<DeviceSpec>,
    /// Maximum queries [`TopKEngine::submit`] accepts before a drain.
    pub queue_capacity: usize,
    /// Maximum same-`(N, K)` queries fused into one batch launch.
    /// `1` disables coalescing.
    pub coalescing_window: usize,
    /// Seeded chaos schedule installed on every pool device at
    /// construction; `None` (the default) injects nothing.
    pub fault_plan: Option<FaultPlan>,
    /// Retry policy for device faults.
    pub retry: RetryPolicy,
    /// Circuit-breaker policy for unhealthy devices.
    pub breaker: BreakerConfig,
    /// Default per-query deadline applied at [`TopKEngine::submit`],
    /// µs of simulated time after drain start; `None` means no
    /// deadline. [`TopKEngine::submit_with_deadline`] overrides it per
    /// query.
    pub deadline_us: Option<u64>,
    /// Whether queries degrade to the `topk-cpu` reference path when
    /// the retry budget or the device pool is exhausted (default
    /// `true`); when `false` they fail with a typed error instead.
    pub cpu_fallback: bool,
    /// Sanitizer analyses armed on every pool device (default all-off).
    /// The sanitizer never perturbs simulated costs, so serving
    /// latencies and [`DrainReport::chaos_digest`] are unchanged;
    /// findings surface in [`DeviceReport::sanitizer`] and
    /// [`DrainReport::sanitizer`].
    pub sanitizer: SanitizerMode,
    /// How pool devices are constructed; `None` (the default) builds a
    /// [`gpu_sim::Gpu`] simulator per [`DeviceSpec`] entry.
    pub backend_factory: Option<BackendFactory>,
    /// Events the always-on [`FlightRecorder`] ring buffer retains
    /// (default 256, min 16). Recording is host-side bookkeeping only
    /// and never perturbs simulated time.
    pub flight_capacity: usize,
    /// Default per-query recall target applied at
    /// [`TopKEngine::submit`]. `1.0` (the default) means exact-only:
    /// the scheduler never considers the approximate rungs. Values
    /// below 1.0 let a batch whose deadline is at risk — or whose
    /// device pool has been halved by chaos — degrade to the
    /// two-stage or bucketed approximate algorithms, as long as the
    /// chosen configuration's analytic expected recall stays at or
    /// above the target.
    pub default_recall_target: f64,
}

impl EngineConfig {
    /// Config over the given devices with default queue capacity
    /// (1024), coalescing window (8), no fault injection, default
    /// retry/breaker policies, no deadline, CPU fallback enabled.
    pub fn new(devices: Vec<DeviceSpec>) -> Self {
        EngineConfig {
            devices,
            queue_capacity: 1024,
            coalescing_window: 8,
            fault_plan: None,
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
            deadline_us: None,
            cpu_fallback: true,
            sanitizer: SanitizerMode::off(),
            backend_factory: None,
            flight_capacity: 256,
            default_recall_target: 1.0,
        }
    }

    /// `devices` identical A100s — the paper's testbed, pooled.
    pub fn a100_pool(devices: usize) -> Self {
        EngineConfig::new(vec![DeviceSpec::a100(); devices.max(1)])
    }

    /// Builder-style override of the coalescing window.
    #[must_use]
    pub fn with_window(mut self, window: usize) -> Self {
        self.coalescing_window = window.max(1);
        self
    }

    /// Builder-style override of the queue capacity.
    #[must_use]
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Install a seeded fault plan on every pool device.
    #[must_use]
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Builder-style override of the retry policy.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Builder-style override of the circuit-breaker policy.
    #[must_use]
    pub fn with_breaker(mut self, breaker: BreakerConfig) -> Self {
        self.breaker = breaker;
        self
    }

    /// Apply a default deadline (simulated µs after drain start) to
    /// every subsequently submitted query.
    #[must_use]
    pub fn with_deadline_us(mut self, deadline_us: u64) -> Self {
        self.deadline_us = Some(deadline_us);
        self
    }

    /// Enable or disable degradation to the CPU reference path.
    #[must_use]
    pub fn with_cpu_fallback(mut self, enabled: bool) -> Self {
        self.cpu_fallback = enabled;
        self
    }

    /// Arm sanitizer analyses on every pool device.
    #[must_use]
    pub fn with_sanitizer(mut self, mode: SanitizerMode) -> Self {
        self.sanitizer = mode;
        self
    }

    /// Builder-style override of the flight-recorder ring capacity.
    #[must_use]
    pub fn with_flight_capacity(mut self, capacity: usize) -> Self {
        self.flight_capacity = capacity.max(16);
        self
    }

    /// Apply a default per-query recall target to every subsequently
    /// submitted query (clamped to `[0, 1]`). Below 1.0, queries may
    /// be served by the approximate rungs when the scheduler sees
    /// deadline risk or pool-capacity loss.
    #[must_use]
    pub fn with_recall_target(mut self, target: f64) -> Self {
        self.default_recall_target = target.clamp(0.0, 1.0);
        self
    }

    /// Construct pool devices through `factory` instead of the default
    /// [`gpu_sim::Gpu`] simulator — one call per [`DeviceSpec`] entry.
    #[must_use]
    pub fn with_backend_factory(
        mut self,
        factory: impl Fn(&DeviceSpec) -> Box<dyn Backend> + Send + Sync + 'static,
    ) -> Self {
        self.backend_factory = Some(BackendFactory::new(factory));
        self
    }
}

/// Errors of the serving layer itself (selection errors travel inside
/// each query's [`QueryResult::outcome`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The bounded submission queue is full; drain before resubmitting.
    QueueFull {
        /// The configured queue capacity that was hit.
        capacity: usize,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::QueueFull { capacity } => {
                write!(f, "submission queue full (capacity {capacity})")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Host-side answer to one query.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    /// The K selected (smallest) values.
    pub values: Vec<f32>,
    /// Original input positions of the selected values.
    pub indices: Vec<u32>,
    /// The K this query asked for.
    pub k: usize,
}

/// How a query's terminal result was produced — which rung of the
/// degradation ladder (GPU → retry → failover → CPU fallback → typed
/// error) answered it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Served {
    /// Served by the first device the query's batch was scheduled on
    /// (`retries` > 0 means the same device faulted and recovered).
    Gpu {
        /// Attempts beyond the first before the answer landed.
        retries: u32,
    },
    /// Served by a *different* device than first scheduled, after the
    /// original faulted.
    Failover {
        /// Attempts beyond the first before the answer landed.
        retries: u32,
    },
    /// Served on a device, but by an *approximate* algorithm: the
    /// scheduler traded recall for latency because the query's batch
    /// carried a recall target below 1.0 and either its deadline was
    /// at risk or chaos had halved the pool.
    /// [`QueryResult::est_recall`] carries the configuration's
    /// analytic expected recall (≥ the batch's target by
    /// construction).
    Approx {
        /// Which approximate algorithm answered.
        rung: ApproxRung,
        /// Attempts beyond the first before the answer landed.
        retries: u32,
    },
    /// Served by the host-side `topk-cpu` reference path after the
    /// retry budget or the device pool was exhausted.
    CpuFallback {
        /// GPU attempts made before degrading.
        retries: u32,
    },
    /// No answer: the query's [`QueryResult::outcome`] carries the
    /// terminal [`TopKError`].
    Failed,
}

/// The approximate rungs of the degradation ladder, in descending
/// preference order: two-stage (per-partition top-k′ then an exact
/// reduce — higher recall, two launches) before bucketed (one fused
/// launch keeping a few candidates per contiguous bucket — cheapest,
/// loosest).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApproxRung {
    /// [`topk_core::TwoStageTopK`]: partition top-k′ + exact reduce.
    TwoStage,
    /// [`topk_core::BucketedTopK`]: single-pass per-bucket selection.
    Bucketed,
}

impl ApproxRung {
    /// Stable snake_case label, suitable as a metric/trace label.
    pub fn label(&self) -> &'static str {
        match self {
            ApproxRung::TwoStage => "approx_two_stage",
            ApproxRung::Bucketed => "approx_bucketed",
        }
    }
}

impl Served {
    /// Stable snake_case label, suitable as a metric/trace label.
    pub fn label(&self) -> &'static str {
        match self {
            Served::Gpu { .. } => "gpu",
            Served::Failover { .. } => "failover",
            Served::Approx { rung, .. } => rung.label(),
            Served::CpuFallback { .. } => "cpu_fallback",
            Served::Failed => "failed",
        }
    }

    /// Attempts beyond the first (0 for [`Served::Failed`]).
    pub fn retries(&self) -> u32 {
        match self {
            Served::Gpu { retries }
            | Served::Failover { retries }
            | Served::Approx { retries, .. }
            | Served::CpuFallback { retries } => *retries,
            Served::Failed => 0,
        }
    }
}

/// One drained query: outcome plus serving metrics.
///
/// All queries are modelled as arriving at simulated time zero of the
/// drain, so `latency_us = queue_wait_us + service time` on the device
/// that ran the query's batch.
#[derive(Debug, Clone)]
#[must_use = "per-query outcomes report errors through their Result"]
pub struct QueryResult {
    /// Submission id, as returned by [`TopKEngine::submit`].
    pub id: usize,
    /// Tracing span id minted for this query at submission.
    pub span: u64,
    /// Span the fused batch's kernel launches were tagged with (the
    /// lead query's span) — join against
    /// [`gpu_sim::KernelReport::span`] to find this query's launches.
    pub batch_span: u64,
    /// Which pool device served the query.
    pub device: usize,
    /// How many queries shared the fused launch (1 = not coalesced).
    pub batch_size: usize,
    /// Simulated µs the query waited while earlier batches ran.
    pub queue_wait_us: f64,
    /// Simulated µs from arrival to completion (wait + service).
    pub latency_us: f64,
    /// Which rung of the degradation ladder produced the answer.
    pub served: Served,
    /// Estimated recall of the answer: the analytic expected recall of
    /// the approximate configuration that served it, `1.0` for every
    /// exact rung (GPU, failover, CPU fallback), `0.0` for failed
    /// queries. Aggregated by [`DrainReport::percentile_recall`].
    pub est_recall: f64,
    /// The selection result, or why it failed.
    pub outcome: Result<QueryOutput, TopKError>,
}

/// Stage-level latency attribution: where a batch's (or a whole
/// drain's) simulated time went. Filled from the device [`Timeline`]
/// when the backend keeps one, otherwise reconstructed from the
/// batch's [`KernelReport`]s; either way the attribution is pure
/// post-hoc bookkeeping and never perturbs the schedule it measures.
///
/// [`Timeline`]: gpu_sim::Timeline
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageBreakdown {
    /// Simulated µs spent queued before the batch (for a drain
    /// aggregate: summed over queries) — scheduling, earlier batches,
    /// backoff and quarantine waits.
    pub queue_wait_us: f64,
    /// Host↔device copy time, µs.
    pub transfer_us: f64,
    /// Selection-kernel execution time (histogram/filter/scan passes),
    /// µs.
    pub kernel_us: f64,
    /// Merge-kernel execution time (GridSelect-style block-merge
    /// phases), µs.
    pub merge_us: f64,
    /// Simulated backoff injected between fault retries, µs. Zero on
    /// per-batch rows; accumulated on the drain aggregate.
    pub retry_penalty_us: f64,
    /// Launch overhead, host sync and host compute, µs.
    pub other_us: f64,
}

impl StageBreakdown {
    /// Device-side service time: everything except queueing and retry
    /// backoff.
    pub fn device_us(&self) -> f64 {
        self.transfer_us + self.kernel_us + self.merge_us + self.other_us
    }

    /// The attribution as `(stage label, µs)` rows, in a stable order
    /// — ready for metric labels and trace args.
    pub fn rows(&self) -> [(&'static str, f64); 6] {
        [
            ("queue_wait", self.queue_wait_us),
            ("transfer", self.transfer_us),
            ("kernel", self.kernel_us),
            ("merge", self.merge_us),
            ("retry_penalty", self.retry_penalty_us),
            ("other", self.other_us),
        ]
    }
}

/// One coalesced batch as executed on a device.
#[derive(Debug, Clone)]
pub struct BatchRecord {
    /// Device that executed the batch.
    pub device: usize,
    /// Number of queries fused into the launch set.
    pub size: usize,
    /// Problem length shared by the batch.
    pub n: usize,
    /// K shared by the batch.
    pub k: usize,
    /// Span the batch's kernel launches were tagged with (the lead
    /// query's span).
    pub span: u64,
    /// Half-open index range into the device's
    /// [`DeviceReport::kernel_reports`] covering this batch's launches.
    /// Ranges are relative to *this drain's* reports — a persistent
    /// device's earlier history is not included.
    pub report_range: (usize, usize),
    /// Drain-relative device clock when the batch started, µs.
    pub start_us: f64,
    /// Drain-relative device clock when the batch finished, µs.
    pub end_us: f64,
    /// Where the batch's device time went (transfer vs. kernel vs.
    /// merge vs. overhead); `queue_wait_us` is the batch's start time.
    pub stages: StageBreakdown,
}

impl BatchRecord {
    /// Kernel launches this batch performed.
    pub fn kernel_launches(&self) -> usize {
        self.report_range.1 - self.report_range.0
    }
}

/// Everything one pool device did during a drain.
#[derive(Debug, Clone)]
pub struct DeviceReport {
    /// Pool index of the device.
    pub device: usize,
    /// Batches the device claimed and executed.
    pub batches: Vec<BatchRecord>,
    /// Device clock advance over this drain, µs. Devices persist
    /// across drains, so this is the drain's *delta*, not the device's
    /// lifetime clock.
    pub elapsed_us: f64,
    /// Device clock when this drain began, µs. Kernel-report and
    /// timeline timestamps are absolute device time; subtract this to
    /// get drain-relative times.
    pub clock_start_us: f64,
    /// Peak simulated device-memory use over the device's lifetime,
    /// bytes.
    pub mem_high_water: usize,
    /// Bytes still allocated after the last batch — nonzero means a
    /// query path leaked device memory.
    pub mem_allocated_after: usize,
    /// Every kernel launch *of this drain*, in execution order
    /// (batches index into this via [`BatchRecord::report_range`]).
    /// Earlier drains' launches on the same persistent device are
    /// deliberately excluded.
    pub kernel_reports: Vec<KernelReport>,
    /// Whether the device is marked failed (worker panic or device
    /// hang) — it takes no further work for the engine's lifetime. A
    /// failed device may legitimately hold leaked scratch bytes from
    /// its mid-flight batch.
    pub failed: bool,
    /// Whether the device was still inside a circuit-breaker
    /// quarantine when the drain finished.
    pub quarantined: bool,
    /// Injected faults that fired on this device *during this drain*,
    /// in firing order. Empty without a
    /// [`EngineConfig::fault_plan`].
    pub fault_events: Vec<FaultEvent>,
    /// Sanitizer occurrences flagged on this device *during this
    /// drain* (zero without [`EngineConfig::sanitizer`]). Deduplicated
    /// findings accumulate on the device; read them via the engine's
    /// [`TopKEngine::sanitizer_findings`].
    pub sanitizer: SanitizerCounts,
}

/// Result of [`TopKEngine::drain`]: per-query results in submission
/// order plus per-device execution reports.
#[derive(Debug, Clone)]
#[must_use = "drain reports carry every query's Result"]
pub struct DrainReport {
    /// One entry per drained query, sorted by submission id.
    pub results: Vec<QueryResult>,
    /// One entry per pool device.
    pub devices: Vec<DeviceReport>,
    /// Algorithm-level event deltas over the drain (AIR pass /
    /// adaptive / early-stop decisions, GridSelect merges) from
    /// [`topk_core::obs`]. Process-wide: concurrent engines in one
    /// process see each other's events.
    pub algo: AlgoSnapshot,
    /// Batch re-executions after a device fault (attempts beyond each
    /// job's first).
    pub retries: u64,
    /// Queries ultimately served by a different device than first
    /// scheduled.
    pub failovers: u64,
    /// Queries served by the CPU reference path.
    pub cpu_fallbacks: u64,
    /// Queries served by the two-stage approximate rung
    /// ([`Served::Approx`] with [`ApproxRung::TwoStage`]).
    pub approx_two_stage: u64,
    /// Queries served by the bucketed approximate rung
    /// ([`Served::Approx`] with [`ApproxRung::Bucketed`]).
    pub approx_bucketed: u64,
    /// Queries terminally failed with
    /// [`TopKError::DeadlineExceeded`].
    pub deadline_misses: u64,
    /// Circuit-breaker quarantines tripped during this drain.
    pub quarantines: u64,
    /// Sanitizer occurrences over all pool devices during this drain
    /// (sum of every [`DeviceReport::sanitizer`]). Deliberately *not*
    /// folded into [`DrainReport::chaos_digest`]: digests stay
    /// comparable between sanitized and unsanitized runs, which is how
    /// CI proves the sanitizer is cost-invisible.
    pub sanitizer: SanitizerCounts,
    /// Drain-wide stage-level latency attribution: per-batch device
    /// stages summed over every batch, `queue_wait_us` summed over
    /// every query, and the simulated retry backoff in
    /// `retry_penalty_us`. Deliberately *not* folded into
    /// [`DrainReport::chaos_digest`], so digests stay comparable with
    /// profiling consumers on or off.
    pub stages: StageBreakdown,
}

impl DrainReport {
    /// Simulated makespan: the busiest device's clock, µs.
    pub fn makespan_us(&self) -> f64 {
        self.devices
            .iter()
            .map(|d| d.elapsed_us)
            .fold(0.0, f64::max)
    }

    /// Simulated throughput over the whole drain (all queries,
    /// including failed ones, over the makespan).
    pub fn queries_per_sec(&self) -> f64 {
        let span = self.makespan_us();
        if span <= 0.0 {
            return 0.0;
        }
        self.results.len() as f64 / (span * 1e-6)
    }

    /// Batches that actually fused ≥ 2 queries into one launch set.
    pub fn fused_batches(&self) -> usize {
        self.devices
            .iter()
            .flat_map(|d| &d.batches)
            .filter(|b| b.size >= 2)
            .count()
    }

    /// Mean simulated latency over successful queries, µs. `0.0` when
    /// no query succeeded — empty and all-errored drains report zero,
    /// never NaN.
    pub fn mean_latency_us(&self) -> f64 {
        let ok: Vec<f64> = self
            .results
            .iter()
            .filter(|r| r.outcome.is_ok() && r.latency_us.is_finite())
            .map(|r| r.latency_us)
            .collect();
        if ok.is_empty() {
            return 0.0;
        }
        ok.iter().sum::<f64>() / ok.len() as f64
    }

    /// Exact latency percentile over successful queries (nearest-rank,
    /// `q ∈ [0, 1]`), µs. `0.0` when no query succeeded — empty and
    /// all-errored drains report zero, never NaN, so the value is
    /// always safe to export to Prometheus. Unlike the histogram
    /// estimate in [`EngineMetrics`], this is computed from the raw
    /// per-query latencies.
    pub fn percentile_latency_us(&self, q: f64) -> f64 {
        let mut ok: Vec<f64> = self
            .results
            .iter()
            .filter(|r| r.outcome.is_ok() && r.latency_us.is_finite())
            .map(|r| r.latency_us)
            .collect();
        if ok.is_empty() {
            return 0.0;
        }
        ok.sort_by(f64::total_cmp);
        let rank = (q.clamp(0.0, 1.0) * ok.len() as f64).ceil().max(1.0) as usize;
        ok[rank.min(ok.len()) - 1]
    }

    /// Median simulated latency over successful queries, µs.
    pub fn p50_latency_us(&self) -> f64 {
        self.percentile_latency_us(0.50)
    }

    /// 99th-percentile simulated latency over successful queries, µs.
    pub fn p99_latency_us(&self) -> f64 {
        self.percentile_latency_us(0.99)
    }

    /// Estimated-recall floor met by a `q` fraction of successful
    /// queries (nearest-rank over the *descending* recall
    /// distribution): `percentile_recall(0.99)` is the recall all but
    /// the worst 1% of queries meet or exceed. Exact-only drains
    /// report `1.0`; drains with no successful query report `0.0`
    /// (never NaN).
    pub fn percentile_recall(&self, q: f64) -> f64 {
        let mut ok: Vec<f64> = self
            .results
            .iter()
            .filter(|r| r.outcome.is_ok() && r.est_recall.is_finite())
            .map(|r| r.est_recall)
            .collect();
        if ok.is_empty() {
            return 0.0;
        }
        ok.sort_by(|a, b| b.total_cmp(a));
        let rank = (q.clamp(0.0, 1.0) * ok.len() as f64).ceil().max(1.0) as usize;
        ok[rank.min(ok.len()) - 1]
    }

    /// Median estimated recall over successful queries.
    pub fn p50_recall(&self) -> f64 {
        self.percentile_recall(0.50)
    }

    /// Estimated-recall floor all but the worst 1% of successful
    /// queries meet.
    pub fn p99_recall(&self) -> f64 {
        self.percentile_recall(0.99)
    }

    /// Mean estimated recall over successful queries (`0.0` when none
    /// succeeded, never NaN).
    pub fn mean_est_recall(&self) -> f64 {
        let ok: Vec<f64> = self
            .results
            .iter()
            .filter(|r| r.outcome.is_ok() && r.est_recall.is_finite())
            .map(|r| r.est_recall)
            .collect();
        if ok.is_empty() {
            return 0.0;
        }
        ok.iter().sum::<f64>() / ok.len() as f64
    }

    /// A deterministic text summary of the whole drain: one line per
    /// query (id, serving rung, outcome kind, an FNV-1a hash of the
    /// answer bits and latency), one line per device (failure /
    /// quarantine state and the injected-fault schedule), and a final
    /// combined digest line. Two drains of the same workload under the
    /// same [`gpu_sim::FaultPlan`] seed must render identical digests
    /// — CI enforces exactly that by diffing two runs.
    pub fn chaos_digest(&self) -> String {
        fn fnv(h: &mut u64, bytes: &[u8]) {
            for &b in bytes {
                *h ^= b as u64;
                *h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
        let mut out = String::new();
        let mut total = FNV_OFFSET;
        for r in &self.results {
            let mut qh = FNV_OFFSET;
            let kind = match &r.outcome {
                Ok(o) => {
                    for v in &o.values {
                        fnv(&mut qh, &v.to_bits().to_le_bytes());
                    }
                    for i in &o.indices {
                        fnv(&mut qh, &i.to_le_bytes());
                    }
                    "ok"
                }
                Err(e) => {
                    fnv(&mut qh, e.kind().as_bytes());
                    e.kind()
                }
            };
            fnv(&mut qh, &r.latency_us.to_bits().to_le_bytes());
            let line = format!(
                "q{} served={} retries={} {} {:016x}\n",
                r.id,
                r.served.label(),
                r.served.retries(),
                kind,
                qh
            );
            fnv(&mut total, line.as_bytes());
            out.push_str(&line);
        }
        for d in &self.devices {
            let faults: Vec<String> = d
                .fault_events
                .iter()
                .map(|f| format!("{}@{}", f.kind.label(), f.seq))
                .collect();
            let line = format!(
                "d{} failed={} quarantined={} faults=[{}]\n",
                d.device,
                d.failed,
                d.quarantined,
                faults.join(",")
            );
            fnv(&mut total, line.as_bytes());
            out.push_str(&line);
        }
        out.push_str(&format!(
            "retries={} failovers={} cpu_fallbacks={} deadline_misses={} quarantines={}\n",
            self.retries,
            self.failovers,
            self.cpu_fallbacks,
            self.deadline_misses,
            self.quarantines
        ));
        // Recall accounting rides in the digest too: fixed-precision
        // renders of deterministic analytic values, so same-seed runs
        // still match bit-for-bit.
        out.push_str(&format!(
            "approx_two_stage={} approx_bucketed={} recall_p50={:.4} recall_p99={:.4}\n",
            self.approx_two_stage,
            self.approx_bucketed,
            self.p50_recall(),
            self.p99_recall()
        ));
        out.push_str(&format!("digest {total:016x}\n"));
        out
    }
}

/// A submitted, not-yet-drained query.
struct Pending {
    id: usize,
    span: u64,
    data: Vec<f32>,
    k: usize,
    /// Per-query deadline, µs of simulated time after drain start.
    deadline_us: Option<u64>,
    /// Per-query recall target (`1.0` = exact-only).
    recall_target: f64,
    /// Distribution sketch computed at submission; routes the query's
    /// batch through the adaptive dispatcher.
    sketch: DistSketch,
}

/// A group of same-shape queries destined for one fused launch set.
/// The batch's kernel launches are tagged with `span` (the lead
/// query's span id).
struct Batch {
    n: usize,
    k: usize,
    span: u64,
    /// Most conservative member sketch (fewest shared prefix bits):
    /// every row in the fused launch has at least this much skew, which
    /// is the property the per-row radix passes depend on.
    sketch: DistSketch,
    /// Strictest member recall target (the max): an approximate rung
    /// may serve the fused batch only if every member tolerates it.
    recall_target: f64,
    queries: Vec<Pending>,
}

/// A schedulable unit of the drain: one batch plus its retry state.
struct Job {
    batch: Batch,
    /// Completed service attempts (0 before the first).
    attempts: u32,
    /// Earliest drain-relative simulated time the job may start
    /// (backoff after a fault).
    not_before_us: f64,
    /// Device of the first attempt — a final success elsewhere is a
    /// failover.
    first_device: Option<usize>,
    /// The most recent device fault, reported if the job exhausts the
    /// ladder without a CPU fallback.
    last_error: Option<TopKError>,
}

/// Circuit-breaker state of one pool device. Persists across drains,
/// like the device itself.
#[derive(Debug, Clone, Default)]
struct HealthState {
    /// Device faults since the last success.
    consecutive_faults: u32,
    /// Absolute device-clock time until which the device is
    /// quarantined.
    quarantined_until_us: f64,
    /// Permanently failed (worker panic or device hang).
    failed: bool,
    /// Lifetime device faults.
    total_faults: u64,
    /// Lifetime quarantine trips.
    quarantines: u64,
}

/// Point-in-time state of one pool device, accumulated across drains.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeviceSnapshot {
    /// Pool index of the device.
    pub device: usize,
    /// Simulated µs the device spent executing batches, over all
    /// drains so far.
    pub busy_us: f64,
    /// `busy_us` over the sum of drain makespans: 1.0 means this
    /// device was the critical path of every drain; low values mean it
    /// sat idle while siblings worked. 0.0 before the first drain.
    pub utilization: f64,
    /// Batches the device has executed.
    pub batches: u64,
    /// Kernel launches the device has performed.
    pub kernel_launches: u64,
    /// Health of the device: `"ok"`, `"quarantined"` or `"failed"`.
    pub health: &'static str,
    /// Lifetime injected/organic device faults observed on it.
    pub faults: u64,
}

/// Point-in-time state of the whole engine — the scrape-friendly
/// companion to the event-stream metrics in [`EngineMetrics`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EngineSnapshot {
    /// Queries waiting for the next drain.
    pub queue_depth: usize,
    /// Queries accepted by [`TopKEngine::submit`] so far.
    pub queries_submitted: u64,
    /// Queries drained with an `Ok` outcome.
    pub queries_completed: u64,
    /// Queries drained with an `Err` outcome.
    pub queries_failed: u64,
    /// Submissions refused with [`EngineError::QueueFull`].
    pub queue_rejections: u64,
    /// Drains performed.
    pub drains: u64,
    /// Error totals keyed by [`TopKError::kind`], one entry per kind
    /// (zeros included, in [`TopKError::KINDS`] order).
    pub errors: Vec<(&'static str, u64)>,
    /// Batch re-executions after device faults, over all drains.
    pub retries: u64,
    /// Queries served by a different device than first scheduled.
    pub failovers: u64,
    /// Queries served by the CPU reference path.
    pub cpu_fallbacks: u64,
    /// Queries served by the two-stage approximate rung, over all
    /// drains.
    pub approx_two_stage: u64,
    /// Queries served by the bucketed approximate rung, over all
    /// drains.
    pub approx_bucketed: u64,
    /// Queries terminally failed on their deadline.
    pub deadline_misses: u64,
    /// Circuit-breaker quarantine trips.
    pub quarantines: u64,
    /// Tuner plan-table hits over every drain — batches priced from a
    /// warm plan without re-running the cost model.
    pub tuner_plan_hits: u64,
    /// Tuner plan-table misses over every drain (cold buckets priced
    /// through the full cost model).
    pub tuner_plan_misses: u64,
    /// Tuner replans: observations drifted far enough from a bucket's
    /// prediction that the plan was re-derived.
    pub tuner_refinements: u64,
    /// One entry per pool device.
    pub devices: Vec<DeviceSnapshot>,
}

/// Cumulative per-device tallies behind [`DeviceSnapshot`].
#[derive(Debug, Clone, Copy, Default)]
struct DeviceStats {
    busy_us: f64,
    batches: u64,
    kernel_launches: u64,
}

/// Multi-device top-K serving engine. See the crate docs for the
/// serving model. Devices are created up front and **persist across
/// drains**: clocks, memory high-water marks and profiling history
/// carry over, as they would on a long-lived server.
pub struct TopKEngine {
    config: EngineConfig,
    pending: Vec<Pending>,
    next_id: usize,
    gpus: Vec<Box<dyn Backend>>,
    health: Vec<HealthState>,
    /// The adaptive dispatcher. Persists across drains so its plan
    /// table warms up and its calibration keeps learning from observed
    /// batch latencies.
    selector: SelectK,
    metrics: EngineMetrics,
    /// Always-on bounded event ring; see [`crate::flight`].
    flight: FlightRecorder,
    /// Predicted-vs-observed cost accounting per plan bucket; persists
    /// across drains like the tuner it audits.
    drift: DriftTracker,
    /// Post-mortem JSON documents dumped by anomaly triggers, oldest
    /// first, capped at [`POST_MORTEM_CAP`].
    post_mortems: Vec<String>,
    post_mortems_dropped: u64,
    tuner_plan_hits: u64,
    tuner_plan_misses: u64,
    tuner_refinements: u64,
    // Cumulative tallies for EngineSnapshot.
    queries_submitted: u64,
    queries_completed: u64,
    queries_failed: u64,
    queue_rejections: u64,
    drains: u64,
    errors: [u64; TopKError::KINDS.len()],
    retries: u64,
    failovers: u64,
    cpu_fallbacks: u64,
    approx_two_stage: u64,
    approx_bucketed: u64,
    deadline_misses: u64,
    quarantines: u64,
    wall_us: f64,
    device_stats: Vec<DeviceStats>,
}

impl TopKEngine {
    /// Engine over `config`'s device pool. When the config carries a
    /// [`FaultPlan`], every device gets its seeded injector here.
    ///
    /// # Panics
    /// If the pool is empty.
    pub fn new(config: EngineConfig) -> Self {
        assert!(!config.devices.is_empty(), "engine needs >= 1 device");
        let mut gpus: Vec<Box<dyn Backend>> = config
            .devices
            .iter()
            .map(|spec| match &config.backend_factory {
                Some(factory) => factory.build(spec),
                None => Box::new(Gpu::new(spec.clone())) as Box<dyn Backend>,
            })
            .collect();
        if let Some(plan) = &config.fault_plan {
            for (dev, gpu) in gpus.iter_mut().enumerate() {
                gpu.set_fault_injector(plan.injector_for(dev));
            }
        }
        if config.sanitizer.enabled() {
            for gpu in &mut gpus {
                gpu.enable_sanitizer(config.sanitizer);
            }
        }
        let device_stats = vec![DeviceStats::default(); config.devices.len()];
        let health = vec![HealthState::default(); config.devices.len()];
        let flight = FlightRecorder::new(config.flight_capacity);
        TopKEngine {
            config,
            pending: Vec::new(),
            next_id: 0,
            gpus,
            health,
            selector: SelectK::default(),
            metrics: EngineMetrics::new(),
            flight,
            drift: DriftTracker::new(),
            post_mortems: Vec::new(),
            post_mortems_dropped: 0,
            tuner_plan_hits: 0,
            tuner_plan_misses: 0,
            tuner_refinements: 0,
            queries_submitted: 0,
            queries_completed: 0,
            queries_failed: 0,
            queue_rejections: 0,
            drains: 0,
            errors: [0; TopKError::KINDS.len()],
            retries: 0,
            failovers: 0,
            cpu_fallbacks: 0,
            approx_two_stage: 0,
            approx_bucketed: 0,
            deadline_misses: 0,
            quarantines: 0,
            wall_us: 0.0,
            device_stats,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The engine's adaptive dispatcher (its tuner carries the plan
    /// table and calibration state accumulated over drains).
    pub fn selector(&self) -> &SelectK {
        &self.selector
    }

    /// The dispatcher's current plan table rendered as text (see
    /// [`topk_core::tuner::PlanTable::to_text`]) — a warm table can be
    /// persisted and loaded into a future deployment.
    pub fn plan_table_text(&self) -> Option<String> {
        self.selector.tuner().map(|t| t.table_text())
    }

    /// Deduplicated sanitizer findings over the engine's lifetime, one
    /// list per pool device (empty lists when
    /// [`EngineConfig::sanitizer`] is off).
    pub fn sanitizer_findings(&self) -> Vec<Vec<gpu_sim::SanitizerFinding>> {
        self.gpus
            .iter()
            .map(|g| g.sanitizer_report().map_or_else(Vec::new, |r| r.findings))
            .collect()
    }

    /// Queries waiting for the next [`TopKEngine::drain`].
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// The engine's metrics (histograms, counters, gauges).
    pub fn metrics(&self) -> &EngineMetrics {
        &self.metrics
    }

    /// Render every engine metric in the Prometheus text exposition
    /// format — the scrape endpoint's body.
    pub fn render_prometheus(&self) -> String {
        self.metrics.render_prometheus()
    }

    /// The always-on flight recorder: the last
    /// [`EngineConfig::flight_capacity`] engine events.
    pub fn flight_recorder(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Post-mortem JSON documents dumped so far (oldest first), one
    /// per anomaly trigger — terminal query failure, deadline miss,
    /// breaker trip or device retirement. At most [`POST_MORTEM_CAP`]
    /// are retained; see [`TopKEngine::post_mortems_dropped`].
    pub fn post_mortems(&self) -> &[String] {
        &self.post_mortems
    }

    /// Drain the retained post-mortems (e.g. after writing them to
    /// disk), freeing their slots for future triggers.
    pub fn take_post_mortems(&mut self) -> Vec<String> {
        std::mem::take(&mut self.post_mortems)
    }

    /// Triggers that fired after the post-mortem store was full.
    pub fn post_mortems_dropped(&self) -> u64 {
        self.post_mortems_dropped
    }

    /// Cost-model drift accounting: predicted vs. observed latency per
    /// plan-table bucket, accumulated over every drain.
    pub fn drift(&self) -> &DriftTracker {
        &self.drift
    }

    /// The drift table rendered as an aligned text block.
    pub fn drift_table_text(&self) -> String {
        self.drift.render_text()
    }

    /// The tuner's per-family EMA calibration factors (empty when the
    /// dispatcher runs without a tuner).
    pub fn calibration(&self) -> Vec<(&'static str, f64)> {
        self.selector
            .tuner()
            .map(|t| t.calibration_snapshot())
            .unwrap_or_default()
    }

    /// Point-in-time engine state: queue depth, per-device utilisation
    /// and error totals.
    pub fn snapshot(&self) -> EngineSnapshot {
        EngineSnapshot {
            queue_depth: self.pending.len(),
            queries_submitted: self.queries_submitted,
            queries_completed: self.queries_completed,
            queries_failed: self.queries_failed,
            queue_rejections: self.queue_rejections,
            drains: self.drains,
            errors: TopKError::KINDS
                .iter()
                .zip(self.errors)
                .map(|(&k, n)| (k, n))
                .collect(),
            retries: self.retries,
            failovers: self.failovers,
            cpu_fallbacks: self.cpu_fallbacks,
            approx_two_stage: self.approx_two_stage,
            approx_bucketed: self.approx_bucketed,
            deadline_misses: self.deadline_misses,
            quarantines: self.quarantines,
            tuner_plan_hits: self.tuner_plan_hits,
            tuner_plan_misses: self.tuner_plan_misses,
            tuner_refinements: self.tuner_refinements,
            devices: self
                .device_stats
                .iter()
                .enumerate()
                .map(|(dev, s)| DeviceSnapshot {
                    device: dev,
                    busy_us: s.busy_us,
                    utilization: if self.wall_us > 0.0 {
                        s.busy_us / self.wall_us
                    } else {
                        0.0
                    },
                    batches: s.batches,
                    kernel_launches: s.kernel_launches,
                    health: self.health_label(dev),
                    faults: self.health[dev].total_faults,
                })
                .collect(),
        }
    }

    fn health_label(&self, dev: usize) -> &'static str {
        let h = &self.health[dev];
        if h.failed {
            "failed"
        } else if h.quarantined_until_us > self.gpus[dev].elapsed_us() {
            "quarantined"
        } else {
            "ok"
        }
    }

    /// Enqueue a top-K query (smallest `k` of `data`, with indices).
    ///
    /// Returns the query's submission id — [`DrainReport::results`] is
    /// sorted by it. Shape problems (`k == 0`, `k > data.len()`) are
    /// *not* rejected here; they come back as that query's
    /// [`TopKError`] so a bad query cannot poison the queue.
    pub fn submit(&mut self, data: Vec<f32>, k: usize) -> Result<usize, EngineError> {
        let deadline = self.config.deadline_us;
        let recall = self.config.default_recall_target;
        self.submit_inner(data, k, deadline, recall)
    }

    /// [`TopKEngine::submit`] with an explicit per-query deadline (µs
    /// of simulated time after the drain starts), overriding
    /// [`EngineConfig::deadline_us`]. A query that cannot be answered
    /// inside its deadline terminates with
    /// [`TopKError::DeadlineExceeded`].
    pub fn submit_with_deadline(
        &mut self,
        data: Vec<f32>,
        k: usize,
        deadline_us: u64,
    ) -> Result<usize, EngineError> {
        let recall = self.config.default_recall_target;
        self.submit_inner(data, k, Some(deadline_us), recall)
    }

    /// [`TopKEngine::submit`] with an explicit per-query recall target
    /// (clamped to `[0, 1]`), overriding
    /// [`EngineConfig::default_recall_target`]. Below 1.0 the query
    /// consents to being served by an approximate rung whose analytic
    /// expected recall is at least `recall_target`, but only when the
    /// scheduler sees deadline risk or pool-capacity loss — a healthy
    /// pool still serves it exactly.
    pub fn submit_with_recall(
        &mut self,
        data: Vec<f32>,
        k: usize,
        recall_target: f64,
    ) -> Result<usize, EngineError> {
        let deadline = self.config.deadline_us;
        self.submit_inner(data, k, deadline, recall_target)
    }

    fn submit_inner(
        &mut self,
        data: Vec<f32>,
        k: usize,
        deadline_us: Option<u64>,
        recall_target: f64,
    ) -> Result<usize, EngineError> {
        if self.pending.len() >= self.config.queue_capacity {
            self.queue_rejections += 1;
            self.metrics.queue_rejections.inc();
            self.flight.record(
                "queue_reject",
                None,
                None,
                0.0,
                format!("capacity={}", self.config.queue_capacity),
            );
            return Err(EngineError::QueueFull {
                capacity: self.config.queue_capacity,
            });
        }
        let id = self.next_id;
        self.next_id += 1;
        let span = topk_obs::next_span_id();
        // One O(n) min/max pass over the host data buys the dispatcher
        // a distribution sketch: skewed queries route away from AIR's
        // degenerate histogram passes.
        let sketch = DistSketch::from_sample(&data);
        self.flight.record(
            "submit",
            None,
            Some(span),
            0.0,
            format!("id={id} n={} k={k}", data.len()),
        );
        self.pending.push(Pending {
            id,
            span,
            data,
            k,
            deadline_us,
            recall_target: recall_target.clamp(0.0, 1.0),
            sketch,
        });
        self.queries_submitted += 1;
        self.metrics.queries_submitted.inc();
        self.metrics.queue_depth.set(self.pending.len() as f64);
        Ok(id)
    }

    /// Run every queued query across the device pool and return all
    /// results plus per-device reports.
    ///
    /// The drain never aborts: a batch whose execution panics (e.g. an
    /// injected driver crash) has the panic captured, the device
    /// marked failed, and its queries rescheduled; every submitted
    /// query reaches exactly one terminal [`QueryResult`].
    pub fn drain(&mut self) -> DrainReport {
        let algo_before = topk_core::obs::counters().snapshot();
        let mut jobs: Vec<Job> = coalesce(
            std::mem::take(&mut self.pending),
            self.config.coalescing_window,
        )
        .into_iter()
        .map(|batch| Job {
            batch,
            attempts: 0,
            not_before_us: 0.0,
            first_device: None,
            last_error: None,
        })
        .collect();
        for job in &jobs {
            self.flight.record(
                "coalesce",
                None,
                Some(job.batch.span),
                0.0,
                format!(
                    "size={} n={} k={}",
                    job.batch.queries.len(),
                    job.batch.n,
                    job.batch.k
                ),
            );
        }

        let n_dev = self.gpus.len();
        let drain_t0: Vec<f64> = self.gpus.iter().map(|g| g.elapsed_us()).collect();
        let report_lo: Vec<usize> = self.gpus.iter().map(|g| g.reports().len()).collect();
        let fault_lo: Vec<usize> = self.gpus.iter().map(|g| g.fault_events().len()).collect();
        let san_lo: Vec<SanitizerCounts> = self
            .gpus
            .iter()
            .map(|g| {
                g.sanitizer_report()
                    .map_or_else(SanitizerCounts::default, |r| r.counts)
            })
            .collect();
        let quarantines_before: u64 = self.health.iter().map(|h| h.quarantines).sum();

        // Take the persistent selector out of `self` for the duration
        // of the drain (the loop needs `&mut self.gpus[dev]` alongside
        // it); restored before returning.
        let selector = std::mem::replace(&mut self.selector, SelectK::static_prior());
        let mut results: Vec<QueryResult> = Vec::new();
        let mut records: Vec<Vec<BatchRecord>> = vec![Vec::new(); n_dev];
        let mut retries: u64 = 0;
        let mut retry_penalty_us: f64 = 0.0;

        while !jobs.is_empty() {
            // Earliest-runnable job first; stable on ties so the
            // schedule is a pure function of the workload.
            let ji = (0..jobs.len())
                .min_by(|&a, &b| jobs[a].not_before_us.total_cmp(&jobs[b].not_before_us))
                .expect("jobs is non-empty");
            let mut job = jobs.remove(ji);

            // The non-failed device that can start the job soonest.
            // Quarantined devices compete with their quarantine-end
            // time: being scheduled after cooldown *is* the half-open
            // re-probe.
            let mut best: Option<(usize, f64)> = None;
            for (dev, &t0) in drain_t0.iter().enumerate() {
                if self.health[dev].failed {
                    continue;
                }
                let rel_clock = self.gpus[dev].elapsed_us() - t0;
                let quarantine_rel = (self.health[dev].quarantined_until_us - t0).max(0.0);
                let start = rel_clock.max(job.not_before_us).max(quarantine_rel);
                if best.is_none_or(|(_, s)| start < s) {
                    best = Some((dev, start));
                }
            }
            let Some((dev, start_at)) = best else {
                // Pool exhausted: every device failed. Degrade at the
                // latest clock any device reached.
                let now = (0..n_dev)
                    .map(|d| self.gpus[d].elapsed_us() - drain_t0[d])
                    .fold(job.not_before_us, f64::max);
                let step_seq = self.flight.recorded();
                degrade_job(job, now, &self.config, &mut results, &mut self.flight);
                self.maybe_post_mortem(
                    step_seq, &selector, &records, &drain_t0, &fault_lo, &san_lo,
                );
                continue;
            };

            job.attempts += 1;
            if job.first_device.is_none() {
                job.first_device = Some(dev);
            }
            let step_seq = self.flight.recorded();
            self.flight.record(
                "launch",
                Some(dev),
                Some(job.batch.span),
                start_at,
                format!(
                    "attempt={} size={} n={} k={}",
                    job.attempts,
                    job.batch.queries.len(),
                    job.batch.n,
                    job.batch.k
                ),
            );

            // Accuracy-ladder decision for this attempt: batches whose
            // recall target is below 1.0 may degrade to an approximate
            // rung when the deadline is at risk or chaos has halved
            // the healthy pool. Re-decided per attempt — a retry after
            // a fault sees the shrunken pool.
            let healthy = (0..n_dev)
                .filter(|&d| {
                    !self.health[d].failed
                        && self.health[d].quarantined_until_us <= self.gpus[d].elapsed_us()
                })
                .count();
            let rung = decide_rung(
                &job.batch,
                self.gpus[dev].spec(),
                &selector,
                start_at,
                healthy,
                n_dev,
            );
            if let Some(choice) = &rung {
                self.flight.record(
                    "degrade_rung",
                    Some(dev),
                    Some(job.batch.span),
                    start_at,
                    format!(
                        "rung={} cause={} recall_target={:.4} est_recall={:.4}",
                        choice.rung().label(),
                        choice.cause,
                        job.batch.recall_target,
                        choice.est_recall
                    ),
                );
            }

            // Advance the device to the job's start (backoff and
            // quarantine waits are simulated idle time).
            let rel_clock = self.gpus[dev].elapsed_us() - drain_t0[dev];
            if start_at > rel_clock {
                self.gpus[dev].host_compute("scheduler wait", start_at - rel_clock);
            }
            let start_us = self.gpus[dev].elapsed_us() - drain_t0[dev];
            let batch_report_lo = self.gpus[dev].reports().len() - report_lo[dev];
            let timeline_lo = self.gpus[dev].timeline().map(|t| t.events().len());
            self.gpus[dev].set_span(job.batch.span);
            let outcome = {
                let gpu = self.gpus[dev].as_mut();
                let batch = &job.batch;
                let approx = rung.as_ref().map(|c| c.algo);
                catch_unwind(AssertUnwindSafe(|| {
                    run_batch(gpu, &selector, batch, approx)
                }))
            };
            self.gpus[dev].clear_span();
            let end_us = self.gpus[dev].elapsed_us() - drain_t0[dev];
            let stages = batch_stages(
                self.gpus[dev].as_ref(),
                timeline_lo,
                (
                    report_lo[dev] + batch_report_lo,
                    self.gpus[dev].reports().len(),
                ),
                start_us,
            );
            records[dev].push(BatchRecord {
                device: dev,
                size: job.batch.queries.len(),
                n: job.batch.n,
                k: job.batch.k,
                span: job.batch.span,
                report_range: (
                    batch_report_lo,
                    self.gpus[dev].reports().len() - report_lo[dev],
                ),
                start_us,
                end_us,
                stages,
            });

            match outcome {
                Ok(Ok(outs)) => {
                    self.health[dev].consecutive_faults = 0;
                    // Close the tuning loop: the batch's measured
                    // service time recalibrates its plan bucket —
                    // exact attempts only, so approximate timings
                    // never pollute the exact cost model they were
                    // chosen to undercut.
                    if rung.is_none() {
                        let shape =
                            ProblemShape::new(job.batch.n, job.batch.k, job.batch.queries.len())
                                .with_sketch(job.batch.sketch);
                        // Drift accounting reads the plan this dispatch
                        // was priced with *before* observe() can replan
                        // the bucket — counter-neutrally, so plan-table
                        // hit/miss metrics are unperturbed.
                        if let Some(plan) = selector.tuner().and_then(|t| t.peek(&shape)) {
                            self.drift
                                .observe(PlanKey::of(&shape), &plan, end_us - start_us);
                        }
                        selector.observe(self.gpus[dev].spec(), &shape, end_us - start_us);
                    }
                    self.flight.record(
                        "batch_ok",
                        Some(dev),
                        Some(job.batch.span),
                        end_us,
                        format!("size={} attempt={}", job.batch.queries.len(), job.attempts),
                    );
                    if job.first_device != Some(dev) {
                        self.flight.record(
                            "failover",
                            Some(dev),
                            Some(job.batch.span),
                            end_us,
                            format!("first_device={}", job.first_device.unwrap_or(dev)),
                        );
                    }
                    let attempt_retries = job.attempts - 1;
                    // Approximation is the serving rung even when the
                    // attempt also failed over: the accuracy trade is
                    // the fact the caller must see.
                    let served_ok = match &rung {
                        Some(choice) => Served::Approx {
                            rung: choice.rung(),
                            retries: attempt_retries,
                        },
                        None if job.first_device == Some(dev) => Served::Gpu {
                            retries: attempt_retries,
                        },
                        None => Served::Failover {
                            retries: attempt_retries,
                        },
                    };
                    let est_recall = rung.as_ref().map_or(1.0, |c| c.est_recall);
                    for (q, out) in job.batch.queries.iter().zip(outs) {
                        let (served, est_recall, outcome) = match q.deadline_us {
                            // The answer exists but arrived late: the
                            // deadline verdict wins.
                            Some(dl) if end_us > dl as f64 => {
                                self.flight.record(
                                    "deadline_miss",
                                    Some(dev),
                                    Some(q.span),
                                    end_us,
                                    format!("id={} deadline_us={dl}", q.id),
                                );
                                (
                                    Served::Failed,
                                    0.0,
                                    Err(TopKError::DeadlineExceeded { deadline_us: dl }),
                                )
                            }
                            _ => (served_ok, est_recall, Ok(out)),
                        };
                        results.push(QueryResult {
                            id: q.id,
                            span: q.span,
                            batch_span: job.batch.span,
                            device: dev,
                            batch_size: job.batch.queries.len(),
                            queue_wait_us: start_us,
                            latency_us: end_us,
                            served,
                            est_recall,
                            outcome,
                        });
                    }
                }
                Ok(Err(e)) if !e.is_device_fault() => {
                    // The query's own fault (bad k, bad shape): it
                    // would fail identically on any device, so it is
                    // terminal and does not count against the device.
                    for q in &job.batch.queries {
                        self.flight.record(
                            "query_failed",
                            Some(dev),
                            Some(q.span),
                            end_us,
                            format!("id={} kind={}", q.id, e.kind()),
                        );
                        results.push(QueryResult {
                            id: q.id,
                            span: q.span,
                            batch_span: job.batch.span,
                            device: dev,
                            batch_size: job.batch.queries.len(),
                            queue_wait_us: start_us,
                            latency_us: end_us,
                            served: Served::Failed,
                            est_recall: 0.0,
                            outcome: Err(e.clone()),
                        });
                    }
                }
                Ok(Err(e)) => {
                    // Device fault: update the breaker, then retry,
                    // fail over or degrade.
                    let severe = matches!(&e, TopKError::Sim(SimError::DeviceHang { .. }));
                    let clock = self.gpus[dev].elapsed_us();
                    self.flight.record(
                        "device_fault",
                        Some(dev),
                        Some(job.batch.span),
                        end_us,
                        format!("kind={} severe={severe}", e.kind()),
                    );
                    let was_failed = self.health[dev].failed;
                    let was_quarantines = self.health[dev].quarantines;
                    note_fault(&mut self.health[dev], severe, &self.config.breaker, clock);
                    if self.health[dev].failed && !was_failed {
                        self.flight.record(
                            "device_failed",
                            Some(dev),
                            None,
                            end_us,
                            format!("kind={}", e.kind()),
                        );
                    } else if self.health[dev].quarantines > was_quarantines {
                        self.flight.record(
                            "breaker_open",
                            Some(dev),
                            None,
                            end_us,
                            format!(
                                "consecutive={} cooldown_us={:.0}",
                                self.health[dev].consecutive_faults,
                                self.config.breaker.cooldown_us
                            ),
                        );
                    }
                    job.last_error = Some(e);
                    requeue_or_degrade(
                        job,
                        end_us,
                        &self.config,
                        &mut jobs,
                        &mut results,
                        &mut retries,
                        &mut retry_penalty_us,
                        &mut self.flight,
                    );
                }
                Err(_panic) => {
                    // Worker panic (injected driver crash or a real
                    // bug): isolate it — mark the device failed and
                    // reschedule the batch. The device keeps whatever
                    // scratch its mid-flight batch held; it is out of
                    // the pool for good.
                    let clock = self.gpus[dev].elapsed_us();
                    self.flight.record(
                        "worker_panic",
                        Some(dev),
                        Some(job.batch.span),
                        end_us,
                        String::new(),
                    );
                    let was_failed = self.health[dev].failed;
                    note_fault(&mut self.health[dev], true, &self.config.breaker, clock);
                    if !was_failed {
                        self.flight.record(
                            "device_failed",
                            Some(dev),
                            None,
                            end_us,
                            "worker panic".to_string(),
                        );
                    }
                    requeue_or_degrade(
                        job,
                        end_us,
                        &self.config,
                        &mut jobs,
                        &mut results,
                        &mut retries,
                        &mut retry_penalty_us,
                        &mut self.flight,
                    );
                }
            }
            self.maybe_post_mortem(step_seq, &selector, &records, &drain_t0, &fault_lo, &san_lo);
        }

        let devices: Vec<DeviceReport> = records
            .into_iter()
            .enumerate()
            .map(|(dev, batches)| {
                let gpu = &self.gpus[dev];
                DeviceReport {
                    device: dev,
                    batches,
                    elapsed_us: gpu.elapsed_us() - drain_t0[dev],
                    clock_start_us: drain_t0[dev],
                    mem_high_water: gpu.mem_high_water(),
                    mem_allocated_after: gpu.mem_allocated(),
                    kernel_reports: gpu.reports()[report_lo[dev]..].to_vec(),
                    failed: self.health[dev].failed,
                    quarantined: self.health[dev].quarantined_until_us > gpu.elapsed_us(),
                    fault_events: gpu.fault_events()[fault_lo[dev]..].to_vec(),
                    sanitizer: gpu
                        .sanitizer_report()
                        .map_or_else(SanitizerCounts::default, |r| r.counts)
                        .delta_since(&san_lo[dev]),
                }
            })
            .collect();

        results.sort_by_key(|r| r.id);
        let algo = topk_core::obs::counters()
            .snapshot()
            .delta_since(&algo_before);
        let failovers = results
            .iter()
            .filter(|r| matches!(r.served, Served::Failover { .. }))
            .count() as u64;
        let cpu_fallbacks = results
            .iter()
            .filter(|r| matches!(r.served, Served::CpuFallback { .. }))
            .count() as u64;
        let approx_two_stage = results
            .iter()
            .filter(|r| {
                matches!(
                    r.served,
                    Served::Approx {
                        rung: ApproxRung::TwoStage,
                        ..
                    }
                )
            })
            .count() as u64;
        let approx_bucketed = results
            .iter()
            .filter(|r| {
                matches!(
                    r.served,
                    Served::Approx {
                        rung: ApproxRung::Bucketed,
                        ..
                    }
                )
            })
            .count() as u64;
        let deadline_misses = results
            .iter()
            .filter(|r| matches!(r.outcome, Err(TopKError::DeadlineExceeded { .. })))
            .count() as u64;
        let quarantines =
            self.health.iter().map(|h| h.quarantines).sum::<u64>() - quarantines_before;
        let mut sanitizer = SanitizerCounts::default();
        for d in &devices {
            sanitizer.add(&d.sanitizer);
        }
        // Stage attribution: device stages summed over batches,
        // queue-wait summed over queries, retry backoff from the
        // requeue path.
        let mut stages = StageBreakdown::default();
        for b in devices.iter().flat_map(|d| &d.batches) {
            stages.transfer_us += b.stages.transfer_us;
            stages.kernel_us += b.stages.kernel_us;
            stages.merge_us += b.stages.merge_us;
            stages.other_us += b.stages.other_us;
        }
        stages.queue_wait_us = results
            .iter()
            .map(|r| r.queue_wait_us)
            .filter(|w| w.is_finite())
            .sum();
        stages.retry_penalty_us = retry_penalty_us;
        let report = DrainReport {
            results,
            devices,
            algo,
            retries,
            failovers,
            cpu_fallbacks,
            approx_two_stage,
            approx_bucketed,
            deadline_misses,
            quarantines,
            sanitizer,
            stages,
        };
        self.selector = selector;
        self.record_drain(&report);
        report
    }

    /// If a trigger-kind event landed at or after `step_seq`, snapshot
    /// the flight recorder — plus per-device state, the drift table and
    /// the tuner calibration — into a post-mortem JSON document.
    /// Bounded: once [`POST_MORTEM_CAP`] documents are retained,
    /// further triggers only count
    /// [`TopKEngine::post_mortems_dropped`].
    fn maybe_post_mortem(
        &mut self,
        step_seq: u64,
        selector: &SelectK,
        records: &[Vec<BatchRecord>],
        drain_t0: &[f64],
        fault_lo: &[usize],
        san_lo: &[SanitizerCounts],
    ) {
        let Some((trigger, trigger_seq)) =
            self.flight.trigger_since(step_seq).map(|e| (e.kind, e.seq))
        else {
            return;
        };
        if self.post_mortems.len() >= POST_MORTEM_CAP {
            self.post_mortems_dropped += 1;
            return;
        }
        let clock_us = (0..self.gpus.len())
            .map(|d| self.gpus[d].elapsed_us() - drain_t0[d])
            .fold(0.0, f64::max);
        let devices: Vec<PmDevice> = (0..self.gpus.len())
            .map(|d| {
                let gpu = &self.gpus[d];
                PmDevice {
                    device: d,
                    health: self.health_label(d),
                    elapsed_us: gpu.elapsed_us() - drain_t0[d],
                    batches: records[d].len(),
                    faults: self.health[d].total_faults,
                    fault_events: gpu.fault_events()[fault_lo[d]..]
                        .iter()
                        .map(|f| format!("{}@{}", f.kind.label(), f.seq))
                        .collect(),
                    sanitizer_occurrences: gpu
                        .sanitizer_report()
                        .map_or_else(SanitizerCounts::default, |r| r.counts)
                        .delta_since(&san_lo[d])
                        .total(),
                }
            })
            .collect();
        let calibration = selector
            .tuner()
            .map(|t| t.calibration_snapshot())
            .unwrap_or_default();
        let json = flight::render_post_mortem(
            trigger,
            trigger_seq,
            clock_us,
            &self.flight,
            &devices,
            &self.drift.rows(),
            &calibration,
        );
        self.post_mortems.push(json);
    }

    /// Fold one drain's outcome into the metrics registry and the
    /// cumulative snapshot tallies.
    fn record_drain(&mut self, report: &DrainReport) {
        self.drains += 1;
        self.wall_us += report.makespan_us();
        for r in &report.results {
            self.metrics.record_query(r);
            match &r.outcome {
                Ok(_) => self.queries_completed += 1,
                Err(e) => {
                    self.queries_failed += 1;
                    let kind = e.kind();
                    let slot = TopKError::KINDS
                        .iter()
                        .position(|&k| k == kind)
                        .expect("kind() values come from KINDS");
                    self.errors[slot] += 1;
                }
            }
        }
        for d in &report.devices {
            let stats = &mut self.device_stats[d.device];
            stats.busy_us += d.elapsed_us;
            stats.batches += d.batches.len() as u64;
            stats.kernel_launches += d.kernel_reports.len() as u64;
            for b in &d.batches {
                self.metrics.record_batch(b);
            }
            self.metrics
                .kernel_launches
                .add(d.kernel_reports.len() as u64);
        }
        let wall = self.wall_us;
        for (dev, stats) in self.device_stats.iter().enumerate() {
            let util = if wall > 0.0 {
                stats.busy_us / wall
            } else {
                0.0
            };
            self.metrics.set_device_utilization(dev, util);
        }
        self.retries += report.retries;
        self.failovers += report.failovers;
        self.cpu_fallbacks += report.cpu_fallbacks;
        self.approx_two_stage += report.approx_two_stage;
        self.approx_bucketed += report.approx_bucketed;
        self.deadline_misses += report.deadline_misses;
        self.quarantines += report.quarantines;
        self.metrics.record_resilience(report);
        let quarantined = (0..self.gpus.len())
            .filter(|&d| self.health_label(d) == "quarantined")
            .count();
        let failed = self.health.iter().filter(|h| h.failed).count();
        self.metrics.set_health_gauges(quarantined, failed);
        self.metrics.record_algo(&report.algo);
        self.tuner_plan_hits += report.algo.tuner_plan_hits;
        self.tuner_plan_misses += report.algo.tuner_plan_misses;
        self.tuner_refinements += report.algo.tuner_refinements;
        // Continuous profiling exports: per-kernel roofline rows, the
        // drain's stage attribution, cost-model drift and the tuner's
        // calibration state — all derived from data the drain already
        // collected, so exporting them costs no simulated time.
        for d in &report.devices {
            let rows = gpu_sim::roofline(&self.config.devices[d.device], &d.kernel_reports);
            self.metrics.record_roofline(d.device, &rows);
        }
        self.metrics.record_stages(&report.stages);
        for (key, entry) in self.drift.iter() {
            self.metrics
                .record_drift(&profiler::plan_key_label(key), entry);
        }
        for (family, factor) in self.calibration() {
            self.metrics.record_calibration(family, factor);
        }
        self.metrics.drains.inc();
        self.metrics.queue_depth.set(0.0);
    }
}

/// An approximate rung the scheduler chose for one batch attempt.
#[derive(Debug, Clone, Copy)]
struct RungChoice {
    /// The approximate configuration to execute (always a
    /// [`TunedAlgo::TwoStage`] or [`TunedAlgo::Bucketed`]).
    algo: TunedAlgo,
    /// Analytic expected recall of that configuration — ≥ the batch's
    /// recall target by construction.
    est_recall: f64,
    /// What triggered the degradation: `"deadline_risk"` or
    /// `"capacity_loss"`.
    cause: &'static str,
}

impl RungChoice {
    fn rung(&self) -> ApproxRung {
        match self.algo {
            TunedAlgo::Bucketed { .. } => ApproxRung::Bucketed,
            _ => ApproxRung::TwoStage,
        }
    }
}

/// Decide which rung of the accuracy ladder a batch attempt runs on.
///
/// Exact (`None`) is the default. A batch is considered for the
/// approximate rungs only when its coalesced (strictest-member) recall
/// target is below 1.0 *and* the scheduler sees trouble ahead:
///
/// * **deadline risk** — the predicted exact-path cost (the tuner's
///   cached plan for this shape bucket, or the cheapest cold
///   prediction over the exact candidate set), scaled by
///   [`DEADLINE_SAFETY`], overruns the batch's earliest member
///   deadline from `start_us`; or
/// * **capacity loss** — at most half the pool is healthy
///   (non-failed, non-quarantined), so queue pressure concentrates on
///   the survivors.
///
/// The ladder is exact → two-stage → bucketed:
/// [`Tuner::approx_candidates`] offers two-stage first (higher
/// recall), and the decision descends to bucketed only when the
/// two-stage prediction *still* overruns the deadline. Every offered
/// candidate already clears the recall target analytically, so the
/// choice can never violate it. Purely a function of simulated state —
/// same workload and fault seed, same rungs.
fn decide_rung(
    batch: &Batch,
    spec: &DeviceSpec,
    selector: &SelectK,
    start_us: f64,
    healthy: usize,
    pool: usize,
) -> Option<RungChoice> {
    if batch.recall_target >= 1.0 {
        return None;
    }
    let shape = ProblemShape::new(batch.n, batch.k, batch.queries.len()).with_sketch(batch.sketch);
    let capacity_loss = healthy * 2 <= pool;
    let earliest_deadline = batch.queries.iter().filter_map(|q| q.deadline_us).min();
    let exact_us = selector.tuner().and_then(|t| {
        t.peek(&shape).map(|p| p.predicted_us).or_else(|| {
            Tuner::candidates(spec, &shape)
                .into_iter()
                .filter_map(|a| t.predict_us(spec, &shape, a))
                .min_by(f64::total_cmp)
        })
    });
    let misses = |predicted: Option<f64>| match (earliest_deadline, predicted) {
        (Some(dl), Some(us)) => start_us + us * DEADLINE_SAFETY > dl as f64,
        _ => false,
    };
    let deadline_risk = misses(exact_us);
    if !deadline_risk && !capacity_loss {
        return None;
    }
    let cause = if deadline_risk {
        "deadline_risk"
    } else {
        "capacity_loss"
    };
    let mut chosen = None;
    for algo in Tuner::approx_candidates(spec, &shape, batch.recall_target) {
        chosen = Some(algo);
        let predicted = selector
            .tuner()
            .and_then(|t| t.predict_us(spec, &shape, algo));
        if !misses(predicted) {
            break;
        }
    }
    let algo = chosen?;
    let est_recall = match algo {
        TunedAlgo::Bucketed { per_bucket } => {
            BucketedTopK::new(per_bucket as usize).expected_recall(batch.k)
        }
        TunedAlgo::TwoStage {
            partitions,
            k_prime,
        } => TwoStageTopK::new(partitions as usize, k_prime as usize).expected_recall(batch.k),
        _ => 1.0,
    };
    Some(RungChoice {
        algo,
        est_recall,
        cause,
    })
}

/// Fold one device fault into the breaker state: severe faults (hang,
/// panic) fail the device outright; otherwise `threshold` consecutive
/// faults trip a quarantine until `cooldown_us` past `clock_us`.
fn note_fault(health: &mut HealthState, severe: bool, breaker: &BreakerConfig, clock_us: f64) {
    health.total_faults += 1;
    health.consecutive_faults += 1;
    if severe {
        health.failed = true;
    } else if health.consecutive_faults >= breaker.threshold {
        health.quarantined_until_us = clock_us + breaker.cooldown_us;
        health.quarantines += 1;
    }
}

/// After a device fault: requeue the job with backoff if it has retry
/// budget left (expiring queries whose deadline the backoff already
/// overruns), otherwise degrade it.
#[allow(clippy::too_many_arguments)]
fn requeue_or_degrade(
    mut job: Job,
    now_us: f64,
    config: &EngineConfig,
    jobs: &mut Vec<Job>,
    results: &mut Vec<QueryResult>,
    retries: &mut u64,
    retry_penalty_us: &mut f64,
    flight: &mut FlightRecorder,
) {
    if job.attempts > config.retry.max_retries {
        degrade_job(job, now_us, config, results, flight);
        return;
    }
    let backoff = config.retry.backoff_us
        * config
            .retry
            .backoff_multiplier
            .powi(job.attempts.saturating_sub(1) as i32);
    job.not_before_us = now_us + backoff.max(0.0);

    // A retry cannot start before `not_before_us`; queries whose
    // deadline is already behind it are hopeless — terminate them now
    // instead of burning a device attempt on them.
    let not_before = job.not_before_us;
    let (expired, live): (Vec<Pending>, Vec<Pending>) = job
        .batch
        .queries
        .into_iter()
        .partition(|q| q.deadline_us.is_some_and(|dl| (dl as f64) < not_before));
    job.batch.queries = live;
    for q in expired {
        let dl = q.deadline_us.expect("partition keeps only deadlined");
        flight.record(
            "deadline_miss",
            job.first_device,
            Some(q.span),
            now_us,
            format!("id={} deadline_us={dl} expired during backoff", q.id),
        );
        results.push(QueryResult {
            id: q.id,
            span: q.span,
            batch_span: job.batch.span,
            device: job.first_device.unwrap_or(0),
            batch_size: 1,
            queue_wait_us: now_us,
            latency_us: now_us,
            served: Served::Failed,
            est_recall: 0.0,
            outcome: Err(TopKError::DeadlineExceeded { deadline_us: dl }),
        });
    }
    if job.batch.queries.is_empty() {
        return;
    }
    *retries += 1;
    *retry_penalty_us += backoff.max(0.0);
    flight.record(
        "retry",
        job.first_device,
        Some(job.batch.span),
        now_us,
        format!(
            "attempt={} backoff_us={:.1}",
            job.attempts,
            backoff.max(0.0)
        ),
    );
    jobs.push(job);
}

/// Simulated host cost of the CPU reference selection, µs: a fixed
/// dispatch overhead plus a linear scan term. Deliberately far slower
/// per element than a healthy device — degradation trades latency for
/// a terminal answer.
fn cpu_select_us(n: usize) -> f64 {
    20.0 + n as f64 * 0.002
}

/// Last rung of the ladder: serve every query of the job on the CPU
/// reference path (when enabled and the shape allows), otherwise
/// terminate it with the job's last device error or
/// [`TopKError::PoolExhausted`].
fn degrade_job(
    job: Job,
    now_us: f64,
    config: &EngineConfig,
    results: &mut Vec<QueryResult>,
    flight: &mut FlightRecorder,
) {
    let device = job.first_device.unwrap_or(0);
    let batch_size = job.batch.queries.len();
    for q in &job.batch.queries {
        let (served, latency_us, outcome) = if !config.cpu_fallback {
            let err = job.last_error.clone().unwrap_or(TopKError::PoolExhausted {
                attempts: job.attempts,
            });
            (Served::Failed, now_us, Err(err))
        } else if let Some(err) = TopKError::check_k("cpu-fallback", q.data.len(), q.k, None) {
            (Served::Failed, now_us, Err(err))
        } else {
            let end = now_us + cpu_select_us(q.data.len());
            match q.deadline_us {
                Some(dl) if end > dl as f64 => (
                    Served::Failed,
                    end,
                    Err(TopKError::DeadlineExceeded { deadline_us: dl }),
                ),
                _ => {
                    let (values, indices) = topk_cpu::heap_topk(&q.data, q.k);
                    (
                        Served::CpuFallback {
                            retries: job.attempts,
                        },
                        end,
                        Ok(QueryOutput {
                            values,
                            indices,
                            k: q.k,
                        }),
                    )
                }
            }
        };
        match &outcome {
            Err(TopKError::DeadlineExceeded { deadline_us }) => {
                flight.record(
                    "deadline_miss",
                    Some(device),
                    Some(q.span),
                    latency_us,
                    format!("id={} deadline_us={deadline_us}", q.id),
                );
            }
            Err(e) => {
                flight.record(
                    "query_failed",
                    Some(device),
                    Some(q.span),
                    latency_us,
                    format!("id={} kind={}", q.id, e.kind()),
                );
            }
            Ok(_) => {
                flight.record(
                    "fallback",
                    Some(device),
                    Some(q.span),
                    latency_us,
                    format!("id={} cpu attempts={}", q.id, job.attempts),
                );
            }
        }
        results.push(QueryResult {
            id: q.id,
            span: q.span,
            batch_span: job.batch.span,
            device,
            batch_size,
            queue_wait_us: now_us,
            latency_us,
            served,
            // The CPU reference path is exact; failures carry none.
            est_recall: if outcome.is_ok() { 1.0 } else { 0.0 },
            outcome,
        });
    }
}

/// Attribute one batch's device time to stages. The primary source is
/// the device [`Timeline`](gpu_sim::Timeline) slice the batch appended
/// (`timeline_lo..`); backends that keep no timeline fall back to the
/// batch's kernel reports (`abs_report_range` indexes the device's
/// lifetime report list), which still split kernel vs. merge exec time
/// and launch overhead but cannot see transfers.
fn batch_stages(
    gpu: &dyn Backend,
    timeline_lo: Option<usize>,
    abs_report_range: (usize, usize),
    queue_wait_us: f64,
) -> StageBreakdown {
    let mut s = StageBreakdown {
        queue_wait_us,
        ..StageBreakdown::default()
    };
    let is_merge = |name: &str| name.contains("merge");
    match (timeline_lo, gpu.timeline()) {
        (Some(lo), Some(tl)) => {
            for e in &tl.events()[lo..] {
                match &e.kind {
                    EventKind::Kernel(name) => {
                        if is_merge(name) {
                            s.merge_us += e.dur_us;
                        } else {
                            s.kernel_us += e.dur_us;
                        }
                    }
                    EventKind::MemcpyHtoD | EventKind::MemcpyDtoH => s.transfer_us += e.dur_us,
                    _ => s.other_us += e.dur_us,
                }
            }
        }
        _ => {
            for r in &gpu.reports()[abs_report_range.0..abs_report_range.1] {
                if is_merge(&r.name) {
                    s.merge_us += r.cost.exec_us;
                } else {
                    s.kernel_us += r.cost.exec_us;
                }
                s.other_us += r.cost.launch_us;
            }
        }
    }
    s
}

/// Group queries into same-`(N, K)` batches of at most `window`,
/// preserving submission order within and across batches.
fn coalesce(pending: Vec<Pending>, window: usize) -> Vec<Batch> {
    let window = window.max(1);
    let mut batches: Vec<Batch> = Vec::new();
    // Open (not yet full) batch per shape.
    let mut open: HashMap<(usize, usize), usize> = HashMap::new();
    for q in pending {
        let shape = (q.data.len(), q.k);
        match open.get(&shape) {
            Some(&bi) if batches[bi].queries.len() < window => {
                // The fused batch routes on its least-skewed member:
                // every row then has at least the claimed prefix.
                batches[bi].sketch.shared_prefix_bits = batches[bi]
                    .sketch
                    .shared_prefix_bits
                    .min(q.sketch.shared_prefix_bits);
                // …and degrades on its strictest member: the fused
                // launch may only approximate if every query agreed.
                batches[bi].recall_target = batches[bi].recall_target.max(q.recall_target);
                batches[bi].queries.push(q);
            }
            _ => {
                open.insert(shape, batches.len());
                batches.push(Batch {
                    n: shape.0,
                    k: shape.1,
                    span: q.span,
                    sketch: q.sketch,
                    recall_target: q.recall_target,
                    queries: vec![q],
                });
            }
        }
    }
    batches
}

/// Upload, select (fused when the batch has > 1 query), download.
/// Device-side inputs and outputs are freed on every non-panicking
/// path — including injected-fault errors — so the next batch on this
/// device sees honest `mem_allocated`.
///
/// `approx` carries the scheduler's accuracy-ladder decision: `None`
/// routes through the exact adaptive dispatcher; a
/// [`TunedAlgo::TwoStage`] or [`TunedAlgo::Bucketed`] executes that
/// approximate configuration directly.
fn run_batch(
    gpu: &mut dyn Backend,
    selector: &SelectK,
    batch: &Batch,
    approx: Option<TunedAlgo>,
) -> Result<Vec<QueryOutput>, TopKError> {
    let mut ws = ScratchGuard::new();
    let r = batch_passes(gpu, &mut ws, selector, batch, approx);
    ws.release(gpu);
    r
}

fn batch_passes(
    gpu: &mut dyn Backend,
    ws: &mut ScratchGuard,
    selector: &SelectK,
    batch: &Batch,
    approx: Option<TunedAlgo>,
) -> Result<Vec<QueryOutput>, TopKError> {
    let mut inputs = Vec::with_capacity(batch.queries.len());
    for q in &batch.queries {
        let buf = gpu.try_htod(&format!("query{}", q.id), &q.data)?;
        ws.adopt(&buf);
        inputs.push(buf);
    }
    let outs = match approx {
        Some(TunedAlgo::Bucketed { per_bucket }) => {
            let algo = BucketedTopK::new(per_bucket as usize);
            if inputs.len() == 1 {
                vec![algo.try_select(gpu, &inputs[0], batch.k)?]
            } else {
                algo.try_select_batch(gpu, &inputs, batch.k)?
            }
        }
        Some(TunedAlgo::TwoStage {
            partitions,
            k_prime,
        }) => {
            let algo = TwoStageTopK::new(partitions as usize, k_prime as usize);
            if inputs.len() == 1 {
                vec![algo.try_select(gpu, &inputs[0], batch.k)?]
            } else {
                algo.try_select_batch(gpu, &inputs, batch.k)?
            }
        }
        _ if inputs.len() == 1 => {
            vec![selector.try_select_with_sketch(gpu, &inputs[0], batch.k, batch.sketch)?]
        }
        _ => selector.try_select_batch_with_sketch(gpu, &inputs, batch.k, batch.sketch)?,
    };
    // Read back through the fallible path (an injected corruption must
    // surface, not panic), but keep freeing every output buffer even
    // when an earlier readback failed.
    let mut host = Vec::with_capacity(outs.len());
    let mut first_err: Option<TopKError> = None;
    for out in outs {
        if first_err.is_none() {
            let read = gpu
                .try_dtoh(&out.values)
                .and_then(|values| gpu.try_dtoh(&out.indices).map(|indices| (values, indices)));
            match read {
                Ok((values, indices)) => host.push(QueryOutput {
                    values,
                    indices,
                    k: out.k,
                }),
                Err(e) => first_err = Some(e.into()),
            }
        }
        gpu.free(&out.values);
        gpu.free(&out.indices);
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(host),
    }
}

#[cfg(test)]
mod tests;
