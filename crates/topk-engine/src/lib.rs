//! # topk-engine — multi-device top-K serving layer
//!
//! The ROADMAP's north star is a system serving heavy top-K traffic,
//! not a benchmark loop: many concurrent queries of mixed shapes, a
//! pool of devices, and per-query accounting. This crate supplies that
//! layer on top of the fallible selection core:
//!
//! * [`TopKEngine`] owns a **bounded submission queue**
//!   ([`TopKEngine::submit`] refuses work beyond
//!   [`EngineConfig::queue_capacity`]) and a **pool of simulated
//!   devices**, one worker thread per device.
//! * [`TopKEngine::drain`] **coalesces** queued queries with the same
//!   `(N, K)` shape into fused [`try_select_batch`] launches of up to
//!   [`EngineConfig::coalescing_window`] queries — the paper's §5.1
//!   batch-100 measurements show why: batching amortises launch
//!   overhead and fills the grid, so a fused launch beats `B`
//!   back-to-back single selections.
//! * Every batch routes through the [`SelectK`] auto-dispatcher, and
//!   every query comes back as its own [`QueryResult`] carrying a
//!   `Result` (errors are per-query data, never panics) plus simulated
//!   **queue-wait** and **latency** metrics read off the device clock.
//!
//! Scheduling follows the workspace's `BlockPool` idiom: workers pull
//! the next unclaimed batch from a shared cursor, so an imbalanced mix
//! (one huge query among many small ones) does not serialise the pool.
//!
//! ```
//! use gpu_sim::DeviceSpec;
//! use topk_engine::{EngineConfig, TopKEngine};
//! use topk_core::verify_topk;
//!
//! let mut engine = TopKEngine::new(EngineConfig::new(vec![
//!     DeviceSpec::a100(),
//!     DeviceSpec::a100(),
//! ]));
//! let data: Vec<f32> = (0..10_000).map(|i| ((i * 37) % 9973) as f32).collect();
//! for _ in 0..4 {
//!     engine.submit(data.clone(), 8).unwrap();
//! }
//! let report = engine.drain();
//! assert_eq!(report.results.len(), 4);
//! for r in &report.results {
//!     let out = r.outcome.as_ref().unwrap();
//!     verify_topk(&data, 8, &out.values, &out.indices).unwrap();
//! }
//! ```
//!
//! [`try_select_batch`]: topk_core::TopKAlgorithm::try_select_batch

use gpu_sim::{DeviceSpec, Gpu, KernelReport};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use topk_core::{ScratchGuard, SelectK, TopKAlgorithm, TopKError};

/// Engine shape: which devices to pool and how to queue/coalesce.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// One worker thread (and one simulated device) per entry.
    pub devices: Vec<DeviceSpec>,
    /// Maximum queries [`TopKEngine::submit`] accepts before a drain.
    pub queue_capacity: usize,
    /// Maximum same-`(N, K)` queries fused into one batch launch.
    /// `1` disables coalescing.
    pub coalescing_window: usize,
}

impl EngineConfig {
    /// Config over the given devices with default queue capacity
    /// (1024) and coalescing window (8).
    pub fn new(devices: Vec<DeviceSpec>) -> Self {
        EngineConfig {
            devices,
            queue_capacity: 1024,
            coalescing_window: 8,
        }
    }

    /// `devices` identical A100s — the paper's testbed, pooled.
    pub fn a100_pool(devices: usize) -> Self {
        EngineConfig::new(vec![DeviceSpec::a100(); devices.max(1)])
    }

    /// Builder-style override of the coalescing window.
    #[must_use]
    pub fn with_window(mut self, window: usize) -> Self {
        self.coalescing_window = window.max(1);
        self
    }

    /// Builder-style override of the queue capacity.
    #[must_use]
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }
}

/// Errors of the serving layer itself (selection errors travel inside
/// each query's [`QueryResult::outcome`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The bounded submission queue is full; drain before resubmitting.
    QueueFull {
        /// The configured queue capacity that was hit.
        capacity: usize,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::QueueFull { capacity } => {
                write!(f, "submission queue full (capacity {capacity})")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Host-side answer to one query.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    /// The K selected (smallest) values.
    pub values: Vec<f32>,
    /// Original input positions of the selected values.
    pub indices: Vec<u32>,
    /// The K this query asked for.
    pub k: usize,
}

/// One drained query: outcome plus serving metrics.
///
/// All queries are modelled as arriving at simulated time zero of the
/// drain, so `latency_us = queue_wait_us + service time` on the device
/// that ran the query's batch.
#[derive(Debug, Clone)]
#[must_use = "per-query outcomes report errors through their Result"]
pub struct QueryResult {
    /// Submission id, as returned by [`TopKEngine::submit`].
    pub id: usize,
    /// Which pool device served the query.
    pub device: usize,
    /// How many queries shared the fused launch (1 = not coalesced).
    pub batch_size: usize,
    /// Simulated µs the query waited while earlier batches ran.
    pub queue_wait_us: f64,
    /// Simulated µs from arrival to completion (wait + service).
    pub latency_us: f64,
    /// The selection result, or why it failed.
    pub outcome: Result<QueryOutput, TopKError>,
}

/// One coalesced batch as executed on a device.
#[derive(Debug, Clone)]
pub struct BatchRecord {
    /// Device that executed the batch.
    pub device: usize,
    /// Number of queries fused into the launch set.
    pub size: usize,
    /// Problem length shared by the batch.
    pub n: usize,
    /// K shared by the batch.
    pub k: usize,
    /// Half-open index range into the device's
    /// [`DeviceReport::kernel_reports`] covering this batch's launches.
    pub report_range: (usize, usize),
    /// Device clock when the batch started, µs.
    pub start_us: f64,
    /// Device clock when the batch finished, µs.
    pub end_us: f64,
}

impl BatchRecord {
    /// Kernel launches this batch performed.
    pub fn kernel_launches(&self) -> usize {
        self.report_range.1 - self.report_range.0
    }
}

/// Everything one pool device did during a drain.
#[derive(Debug, Clone)]
pub struct DeviceReport {
    /// Pool index of the device.
    pub device: usize,
    /// Batches the device claimed and executed.
    pub batches: Vec<BatchRecord>,
    /// Device clock after its last batch, µs.
    pub elapsed_us: f64,
    /// Peak simulated device-memory use across all batches, bytes.
    pub mem_high_water: usize,
    /// Bytes still allocated after the last batch — nonzero means a
    /// query path leaked device memory.
    pub mem_allocated_after: usize,
    /// Every kernel launch, in execution order (batches index into
    /// this via [`BatchRecord::report_range`]).
    pub kernel_reports: Vec<KernelReport>,
}

/// Result of [`TopKEngine::drain`]: per-query results in submission
/// order plus per-device execution reports.
#[derive(Debug, Clone)]
#[must_use = "drain reports carry every query's Result"]
pub struct DrainReport {
    /// One entry per drained query, sorted by submission id.
    pub results: Vec<QueryResult>,
    /// One entry per pool device.
    pub devices: Vec<DeviceReport>,
}

impl DrainReport {
    /// Simulated makespan: the busiest device's clock, µs.
    pub fn makespan_us(&self) -> f64 {
        self.devices
            .iter()
            .map(|d| d.elapsed_us)
            .fold(0.0, f64::max)
    }

    /// Simulated throughput over the whole drain (all queries,
    /// including failed ones, over the makespan).
    pub fn queries_per_sec(&self) -> f64 {
        let span = self.makespan_us();
        if span <= 0.0 {
            return 0.0;
        }
        self.results.len() as f64 / (span * 1e-6)
    }

    /// Batches that actually fused ≥ 2 queries into one launch set.
    pub fn fused_batches(&self) -> usize {
        self.devices
            .iter()
            .flat_map(|d| &d.batches)
            .filter(|b| b.size >= 2)
            .count()
    }

    /// Mean simulated latency over successful queries, µs.
    pub fn mean_latency_us(&self) -> f64 {
        let ok: Vec<f64> = self
            .results
            .iter()
            .filter(|r| r.outcome.is_ok())
            .map(|r| r.latency_us)
            .collect();
        if ok.is_empty() {
            return 0.0;
        }
        ok.iter().sum::<f64>() / ok.len() as f64
    }
}

/// A submitted, not-yet-drained query.
struct Pending {
    id: usize,
    data: Vec<f32>,
    k: usize,
}

/// A group of same-shape queries destined for one fused launch set.
struct Batch {
    n: usize,
    k: usize,
    queries: Vec<Pending>,
}

/// Multi-device top-K serving engine. See the crate docs for the
/// serving model; construction is cheap (devices are created inside
/// the drain's worker threads).
pub struct TopKEngine {
    config: EngineConfig,
    pending: Vec<Pending>,
    next_id: usize,
}

impl TopKEngine {
    /// Engine over `config`'s device pool.
    ///
    /// # Panics
    /// If the pool is empty.
    pub fn new(config: EngineConfig) -> Self {
        assert!(!config.devices.is_empty(), "engine needs >= 1 device");
        TopKEngine {
            config,
            pending: Vec::new(),
            next_id: 0,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Queries waiting for the next [`TopKEngine::drain`].
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Enqueue a top-K query (smallest `k` of `data`, with indices).
    ///
    /// Returns the query's submission id — [`DrainReport::results`] is
    /// sorted by it. Shape problems (`k == 0`, `k > data.len()`) are
    /// *not* rejected here; they come back as that query's
    /// [`TopKError`] so a bad query cannot poison the queue.
    pub fn submit(&mut self, data: Vec<f32>, k: usize) -> Result<usize, EngineError> {
        if self.pending.len() >= self.config.queue_capacity {
            return Err(EngineError::QueueFull {
                capacity: self.config.queue_capacity,
            });
        }
        let id = self.next_id;
        self.next_id += 1;
        self.pending.push(Pending { id, data, k });
        Ok(id)
    }

    /// Run every queued query across the device pool and return all
    /// results plus per-device reports.
    pub fn drain(&mut self) -> DrainReport {
        let batches = coalesce(
            std::mem::take(&mut self.pending),
            self.config.coalescing_window,
        );
        let cursor = AtomicUsize::new(0);

        let mut per_device: Vec<(Vec<QueryResult>, DeviceReport)> = crossbeam::scope(|s| {
            let batches = &batches;
            let cursor = &cursor;
            let handles: Vec<_> = self
                .config
                .devices
                .iter()
                .cloned()
                .enumerate()
                .map(|(dev, spec)| s.spawn(move |_| run_device(dev, spec, batches, cursor)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("engine worker panicked"))
                .collect()
        })
        .expect("engine scope failed");

        per_device.sort_by_key(|(_, d)| d.device);
        let mut results = Vec::new();
        let mut devices = Vec::new();
        for (rs, report) in per_device {
            results.extend(rs);
            devices.push(report);
        }
        results.sort_by_key(|r| r.id);
        DrainReport { results, devices }
    }
}

/// Group queries into same-`(N, K)` batches of at most `window`,
/// preserving submission order within and across batches.
fn coalesce(pending: Vec<Pending>, window: usize) -> Vec<Batch> {
    let window = window.max(1);
    let mut batches: Vec<Batch> = Vec::new();
    // Open (not yet full) batch per shape.
    let mut open: HashMap<(usize, usize), usize> = HashMap::new();
    for q in pending {
        let shape = (q.data.len(), q.k);
        match open.get(&shape) {
            Some(&bi) if batches[bi].queries.len() < window => batches[bi].queries.push(q),
            _ => {
                open.insert(shape, batches.len());
                batches.push(Batch {
                    n: shape.0,
                    k: shape.1,
                    queries: vec![q],
                });
            }
        }
    }
    batches
}

/// One pool worker: claim batches off the shared cursor until none are
/// left, executing each on this worker's own device.
fn run_device(
    dev: usize,
    spec: DeviceSpec,
    batches: &[Batch],
    cursor: &AtomicUsize,
) -> (Vec<QueryResult>, DeviceReport) {
    let mut gpu = Gpu::new(spec);
    let selector = SelectK::default();
    let mut results = Vec::new();
    let mut records = Vec::new();

    loop {
        let bi = cursor.fetch_add(1, Ordering::Relaxed);
        let Some(batch) = batches.get(bi) else { break };
        let start_us = gpu.elapsed_us();
        let report_lo = gpu.reports().len();
        let outcome = run_batch(&mut gpu, &selector, batch);
        let end_us = gpu.elapsed_us();
        records.push(BatchRecord {
            device: dev,
            size: batch.queries.len(),
            n: batch.n,
            k: batch.k,
            report_range: (report_lo, gpu.reports().len()),
            start_us,
            end_us,
        });
        match outcome {
            Ok(outs) => {
                for (q, out) in batch.queries.iter().zip(outs) {
                    results.push(QueryResult {
                        id: q.id,
                        device: dev,
                        batch_size: batch.queries.len(),
                        queue_wait_us: start_us,
                        latency_us: end_us,
                        outcome: Ok(out),
                    });
                }
            }
            Err(e) => {
                for q in &batch.queries {
                    results.push(QueryResult {
                        id: q.id,
                        device: dev,
                        batch_size: batch.queries.len(),
                        queue_wait_us: start_us,
                        latency_us: end_us,
                        outcome: Err(e.clone()),
                    });
                }
            }
        }
    }

    let report = DeviceReport {
        device: dev,
        batches: records,
        elapsed_us: gpu.elapsed_us(),
        mem_high_water: gpu.mem_high_water(),
        mem_allocated_after: gpu.mem_allocated(),
        kernel_reports: gpu.reports().to_vec(),
    };
    (results, report)
}

/// Upload, select (fused when the batch has > 1 query), download.
/// Device-side inputs and outputs are freed on every path so the next
/// batch on this device sees honest `mem_allocated`.
fn run_batch(
    gpu: &mut Gpu,
    selector: &SelectK,
    batch: &Batch,
) -> Result<Vec<QueryOutput>, TopKError> {
    let mut ws = ScratchGuard::new();
    let r = batch_passes(gpu, &mut ws, selector, batch);
    ws.release(gpu);
    r
}

fn batch_passes(
    gpu: &mut Gpu,
    ws: &mut ScratchGuard,
    selector: &SelectK,
    batch: &Batch,
) -> Result<Vec<QueryOutput>, TopKError> {
    let mut inputs = Vec::with_capacity(batch.queries.len());
    for q in &batch.queries {
        let buf = gpu.try_htod(&format!("query{}", q.id), &q.data)?;
        ws.adopt(&buf);
        inputs.push(buf);
    }
    let outs = if inputs.len() == 1 {
        vec![selector.try_select(gpu, &inputs[0], batch.k)?]
    } else {
        selector.try_select_batch(gpu, &inputs, batch.k)?
    };
    let mut host = Vec::with_capacity(outs.len());
    for out in outs {
        let values = gpu.dtoh(&out.values);
        let indices = gpu.dtoh(&out.indices);
        gpu.free(&out.values);
        gpu.free(&out.indices);
        host.push(QueryOutput {
            values,
            indices,
            k: out.k,
        });
    }
    Ok(host)
}

#[cfg(test)]
mod tests;
