//! # topk-engine — multi-device top-K serving layer
//!
//! The ROADMAP's north star is a system serving heavy top-K traffic,
//! not a benchmark loop: many concurrent queries of mixed shapes, a
//! pool of devices, and per-query accounting. This crate supplies that
//! layer on top of the fallible selection core:
//!
//! * [`TopKEngine`] owns a **bounded submission queue**
//!   ([`TopKEngine::submit`] refuses work beyond
//!   [`EngineConfig::queue_capacity`]) and a **pool of simulated
//!   devices**, one worker thread per device.
//! * [`TopKEngine::drain`] **coalesces** queued queries with the same
//!   `(N, K)` shape into fused [`try_select_batch`] launches of up to
//!   [`EngineConfig::coalescing_window`] queries — the paper's §5.1
//!   batch-100 measurements show why: batching amortises launch
//!   overhead and fills the grid, so a fused launch beats `B`
//!   back-to-back single selections.
//! * Every batch routes through the [`SelectK`] auto-dispatcher, and
//!   every query comes back as its own [`QueryResult`] carrying a
//!   `Result` (errors are per-query data, never panics) plus simulated
//!   **queue-wait** and **latency** metrics read off the device clock.
//!
//! Scheduling follows the workspace's `BlockPool` idiom: workers pull
//! the next unclaimed batch from a shared cursor, so an imbalanced mix
//! (one huge query among many small ones) does not serialise the pool.
//!
//! ```
//! use gpu_sim::DeviceSpec;
//! use topk_engine::{EngineConfig, TopKEngine};
//! use topk_core::verify_topk;
//!
//! let mut engine = TopKEngine::new(EngineConfig::new(vec![
//!     DeviceSpec::a100(),
//!     DeviceSpec::a100(),
//! ]));
//! let data: Vec<f32> = (0..10_000).map(|i| ((i * 37) % 9973) as f32).collect();
//! for _ in 0..4 {
//!     engine.submit(data.clone(), 8).unwrap();
//! }
//! let report = engine.drain();
//! assert_eq!(report.results.len(), 4);
//! for r in &report.results {
//!     let out = r.outcome.as_ref().unwrap();
//!     verify_topk(&data, 8, &out.values, &out.indices).unwrap();
//! }
//! ```
//!
//! ## Observability
//!
//! The engine is instrumented end to end (see `DESIGN.md` §Observability):
//!
//! * [`TopKEngine::metrics`] exposes a [`topk_obs::MetricsRegistry`]
//!   with latency/queue-wait histograms, per-[`TopKError::kind`] error
//!   counters, and the algorithm-level counters from
//!   [`topk_core::obs`]; render it with
//!   [`TopKEngine::render_prometheus`].
//! * Every [`TopKEngine::submit`] mints a tracing span id; the batch
//!   it joins tags its kernel launches with its lead query's span
//!   ([`gpu_sim::KernelReport::span`]), so each [`QueryResult`] links
//!   back to the launches that served it via
//!   [`QueryResult::batch_span`].
//! * [`chrome_trace`] renders a [`DrainReport`] as a Chrome
//!   `chrome://tracing` / Perfetto JSON file with one kernel track and
//!   one query track per device.
//! * [`TopKEngine::snapshot`] returns an [`EngineSnapshot`] of queue
//!   depth, per-device utilisation and error totals.
//!
//! [`try_select_batch`]: topk_core::TopKAlgorithm::try_select_batch

pub mod metrics;
pub mod trace;

pub use metrics::EngineMetrics;
pub use trace::chrome_trace;

use gpu_sim::{DeviceSpec, Gpu, KernelReport};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use topk_core::{AlgoSnapshot, ScratchGuard, SelectK, TopKAlgorithm, TopKError};

/// Engine shape: which devices to pool and how to queue/coalesce.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// One worker thread (and one simulated device) per entry.
    pub devices: Vec<DeviceSpec>,
    /// Maximum queries [`TopKEngine::submit`] accepts before a drain.
    pub queue_capacity: usize,
    /// Maximum same-`(N, K)` queries fused into one batch launch.
    /// `1` disables coalescing.
    pub coalescing_window: usize,
}

impl EngineConfig {
    /// Config over the given devices with default queue capacity
    /// (1024) and coalescing window (8).
    pub fn new(devices: Vec<DeviceSpec>) -> Self {
        EngineConfig {
            devices,
            queue_capacity: 1024,
            coalescing_window: 8,
        }
    }

    /// `devices` identical A100s — the paper's testbed, pooled.
    pub fn a100_pool(devices: usize) -> Self {
        EngineConfig::new(vec![DeviceSpec::a100(); devices.max(1)])
    }

    /// Builder-style override of the coalescing window.
    #[must_use]
    pub fn with_window(mut self, window: usize) -> Self {
        self.coalescing_window = window.max(1);
        self
    }

    /// Builder-style override of the queue capacity.
    #[must_use]
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }
}

/// Errors of the serving layer itself (selection errors travel inside
/// each query's [`QueryResult::outcome`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The bounded submission queue is full; drain before resubmitting.
    QueueFull {
        /// The configured queue capacity that was hit.
        capacity: usize,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::QueueFull { capacity } => {
                write!(f, "submission queue full (capacity {capacity})")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Host-side answer to one query.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    /// The K selected (smallest) values.
    pub values: Vec<f32>,
    /// Original input positions of the selected values.
    pub indices: Vec<u32>,
    /// The K this query asked for.
    pub k: usize,
}

/// One drained query: outcome plus serving metrics.
///
/// All queries are modelled as arriving at simulated time zero of the
/// drain, so `latency_us = queue_wait_us + service time` on the device
/// that ran the query's batch.
#[derive(Debug, Clone)]
#[must_use = "per-query outcomes report errors through their Result"]
pub struct QueryResult {
    /// Submission id, as returned by [`TopKEngine::submit`].
    pub id: usize,
    /// Tracing span id minted for this query at submission.
    pub span: u64,
    /// Span the fused batch's kernel launches were tagged with (the
    /// lead query's span) — join against
    /// [`gpu_sim::KernelReport::span`] to find this query's launches.
    pub batch_span: u64,
    /// Which pool device served the query.
    pub device: usize,
    /// How many queries shared the fused launch (1 = not coalesced).
    pub batch_size: usize,
    /// Simulated µs the query waited while earlier batches ran.
    pub queue_wait_us: f64,
    /// Simulated µs from arrival to completion (wait + service).
    pub latency_us: f64,
    /// The selection result, or why it failed.
    pub outcome: Result<QueryOutput, TopKError>,
}

/// One coalesced batch as executed on a device.
#[derive(Debug, Clone)]
pub struct BatchRecord {
    /// Device that executed the batch.
    pub device: usize,
    /// Number of queries fused into the launch set.
    pub size: usize,
    /// Problem length shared by the batch.
    pub n: usize,
    /// K shared by the batch.
    pub k: usize,
    /// Span the batch's kernel launches were tagged with (the lead
    /// query's span).
    pub span: u64,
    /// Half-open index range into the device's
    /// [`DeviceReport::kernel_reports`] covering this batch's launches.
    /// Ranges are relative to *this drain's* reports — a persistent
    /// device's earlier history is not included.
    pub report_range: (usize, usize),
    /// Drain-relative device clock when the batch started, µs.
    pub start_us: f64,
    /// Drain-relative device clock when the batch finished, µs.
    pub end_us: f64,
}

impl BatchRecord {
    /// Kernel launches this batch performed.
    pub fn kernel_launches(&self) -> usize {
        self.report_range.1 - self.report_range.0
    }
}

/// Everything one pool device did during a drain.
#[derive(Debug, Clone)]
pub struct DeviceReport {
    /// Pool index of the device.
    pub device: usize,
    /// Batches the device claimed and executed.
    pub batches: Vec<BatchRecord>,
    /// Device clock advance over this drain, µs. Devices persist
    /// across drains, so this is the drain's *delta*, not the device's
    /// lifetime clock.
    pub elapsed_us: f64,
    /// Device clock when this drain began, µs. Kernel-report and
    /// timeline timestamps are absolute device time; subtract this to
    /// get drain-relative times.
    pub clock_start_us: f64,
    /// Peak simulated device-memory use over the device's lifetime,
    /// bytes.
    pub mem_high_water: usize,
    /// Bytes still allocated after the last batch — nonzero means a
    /// query path leaked device memory.
    pub mem_allocated_after: usize,
    /// Every kernel launch *of this drain*, in execution order
    /// (batches index into this via [`BatchRecord::report_range`]).
    /// Earlier drains' launches on the same persistent device are
    /// deliberately excluded.
    pub kernel_reports: Vec<KernelReport>,
}

/// Result of [`TopKEngine::drain`]: per-query results in submission
/// order plus per-device execution reports.
#[derive(Debug, Clone)]
#[must_use = "drain reports carry every query's Result"]
pub struct DrainReport {
    /// One entry per drained query, sorted by submission id.
    pub results: Vec<QueryResult>,
    /// One entry per pool device.
    pub devices: Vec<DeviceReport>,
    /// Algorithm-level event deltas over the drain (AIR pass /
    /// adaptive / early-stop decisions, GridSelect merges) from
    /// [`topk_core::obs`]. Process-wide: concurrent engines in one
    /// process see each other's events.
    pub algo: AlgoSnapshot,
}

impl DrainReport {
    /// Simulated makespan: the busiest device's clock, µs.
    pub fn makespan_us(&self) -> f64 {
        self.devices
            .iter()
            .map(|d| d.elapsed_us)
            .fold(0.0, f64::max)
    }

    /// Simulated throughput over the whole drain (all queries,
    /// including failed ones, over the makespan).
    pub fn queries_per_sec(&self) -> f64 {
        let span = self.makespan_us();
        if span <= 0.0 {
            return 0.0;
        }
        self.results.len() as f64 / (span * 1e-6)
    }

    /// Batches that actually fused ≥ 2 queries into one launch set.
    pub fn fused_batches(&self) -> usize {
        self.devices
            .iter()
            .flat_map(|d| &d.batches)
            .filter(|b| b.size >= 2)
            .count()
    }

    /// Mean simulated latency over successful queries, µs.
    pub fn mean_latency_us(&self) -> f64 {
        let ok: Vec<f64> = self
            .results
            .iter()
            .filter(|r| r.outcome.is_ok())
            .map(|r| r.latency_us)
            .collect();
        if ok.is_empty() {
            return 0.0;
        }
        ok.iter().sum::<f64>() / ok.len() as f64
    }

    /// Exact latency percentile over successful queries (nearest-rank,
    /// `q ∈ [0, 1]`), µs. `0.0` when no query succeeded. Unlike the
    /// histogram estimate in [`EngineMetrics`], this is computed from
    /// the raw per-query latencies.
    pub fn percentile_latency_us(&self, q: f64) -> f64 {
        let mut ok: Vec<f64> = self
            .results
            .iter()
            .filter(|r| r.outcome.is_ok())
            .map(|r| r.latency_us)
            .collect();
        if ok.is_empty() {
            return 0.0;
        }
        ok.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let rank = (q.clamp(0.0, 1.0) * ok.len() as f64).ceil().max(1.0) as usize;
        ok[rank - 1]
    }

    /// Median simulated latency over successful queries, µs.
    pub fn p50_latency_us(&self) -> f64 {
        self.percentile_latency_us(0.50)
    }

    /// 99th-percentile simulated latency over successful queries, µs.
    pub fn p99_latency_us(&self) -> f64 {
        self.percentile_latency_us(0.99)
    }
}

/// A submitted, not-yet-drained query.
struct Pending {
    id: usize,
    span: u64,
    data: Vec<f32>,
    k: usize,
}

/// A group of same-shape queries destined for one fused launch set.
/// The batch's kernel launches are tagged with `span` (the lead
/// query's span id).
struct Batch {
    n: usize,
    k: usize,
    span: u64,
    queries: Vec<Pending>,
}

/// Point-in-time state of one pool device, accumulated across drains.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeviceSnapshot {
    /// Pool index of the device.
    pub device: usize,
    /// Simulated µs the device spent executing batches, over all
    /// drains so far.
    pub busy_us: f64,
    /// `busy_us` over the sum of drain makespans: 1.0 means this
    /// device was the critical path of every drain; low values mean it
    /// sat idle while siblings worked. 0.0 before the first drain.
    pub utilization: f64,
    /// Batches the device has executed.
    pub batches: u64,
    /// Kernel launches the device has performed.
    pub kernel_launches: u64,
}

/// Point-in-time state of the whole engine — the scrape-friendly
/// companion to the event-stream metrics in [`EngineMetrics`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EngineSnapshot {
    /// Queries waiting for the next drain.
    pub queue_depth: usize,
    /// Queries accepted by [`TopKEngine::submit`] so far.
    pub queries_submitted: u64,
    /// Queries drained with an `Ok` outcome.
    pub queries_completed: u64,
    /// Queries drained with an `Err` outcome.
    pub queries_failed: u64,
    /// Submissions refused with [`EngineError::QueueFull`].
    pub queue_rejections: u64,
    /// Drains performed.
    pub drains: u64,
    /// Error totals keyed by [`TopKError::kind`], one entry per kind
    /// (zeros included, in [`TopKError::KINDS`] order).
    pub errors: Vec<(&'static str, u64)>,
    /// One entry per pool device.
    pub devices: Vec<DeviceSnapshot>,
}

/// Cumulative per-device tallies behind [`DeviceSnapshot`].
#[derive(Debug, Clone, Copy, Default)]
struct DeviceStats {
    busy_us: f64,
    batches: u64,
    kernel_launches: u64,
}

/// Multi-device top-K serving engine. See the crate docs for the
/// serving model. Devices are created up front and **persist across
/// drains**: clocks, memory high-water marks and profiling history
/// carry over, as they would on a long-lived server.
pub struct TopKEngine {
    config: EngineConfig,
    pending: Vec<Pending>,
    next_id: usize,
    gpus: Vec<Gpu>,
    metrics: EngineMetrics,
    // Cumulative tallies for EngineSnapshot.
    queries_submitted: u64,
    queries_completed: u64,
    queries_failed: u64,
    queue_rejections: u64,
    drains: u64,
    errors: [u64; TopKError::KINDS.len()],
    wall_us: f64,
    device_stats: Vec<DeviceStats>,
}

impl TopKEngine {
    /// Engine over `config`'s device pool.
    ///
    /// # Panics
    /// If the pool is empty.
    pub fn new(config: EngineConfig) -> Self {
        assert!(!config.devices.is_empty(), "engine needs >= 1 device");
        let gpus = config.devices.iter().cloned().map(Gpu::new).collect();
        let device_stats = vec![DeviceStats::default(); config.devices.len()];
        TopKEngine {
            config,
            pending: Vec::new(),
            next_id: 0,
            gpus,
            metrics: EngineMetrics::new(),
            queries_submitted: 0,
            queries_completed: 0,
            queries_failed: 0,
            queue_rejections: 0,
            drains: 0,
            errors: [0; TopKError::KINDS.len()],
            wall_us: 0.0,
            device_stats,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Queries waiting for the next [`TopKEngine::drain`].
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// The engine's metrics (histograms, counters, gauges).
    pub fn metrics(&self) -> &EngineMetrics {
        &self.metrics
    }

    /// Render every engine metric in the Prometheus text exposition
    /// format — the scrape endpoint's body.
    pub fn render_prometheus(&self) -> String {
        self.metrics.render_prometheus()
    }

    /// Point-in-time engine state: queue depth, per-device utilisation
    /// and error totals.
    pub fn snapshot(&self) -> EngineSnapshot {
        EngineSnapshot {
            queue_depth: self.pending.len(),
            queries_submitted: self.queries_submitted,
            queries_completed: self.queries_completed,
            queries_failed: self.queries_failed,
            queue_rejections: self.queue_rejections,
            drains: self.drains,
            errors: TopKError::KINDS
                .iter()
                .zip(self.errors)
                .map(|(&k, n)| (k, n))
                .collect(),
            devices: self
                .device_stats
                .iter()
                .enumerate()
                .map(|(dev, s)| DeviceSnapshot {
                    device: dev,
                    busy_us: s.busy_us,
                    utilization: if self.wall_us > 0.0 {
                        s.busy_us / self.wall_us
                    } else {
                        0.0
                    },
                    batches: s.batches,
                    kernel_launches: s.kernel_launches,
                })
                .collect(),
        }
    }

    /// Enqueue a top-K query (smallest `k` of `data`, with indices).
    ///
    /// Returns the query's submission id — [`DrainReport::results`] is
    /// sorted by it. Shape problems (`k == 0`, `k > data.len()`) are
    /// *not* rejected here; they come back as that query's
    /// [`TopKError`] so a bad query cannot poison the queue.
    pub fn submit(&mut self, data: Vec<f32>, k: usize) -> Result<usize, EngineError> {
        if self.pending.len() >= self.config.queue_capacity {
            self.queue_rejections += 1;
            self.metrics.queue_rejections.inc();
            return Err(EngineError::QueueFull {
                capacity: self.config.queue_capacity,
            });
        }
        let id = self.next_id;
        self.next_id += 1;
        let span = topk_obs::next_span_id();
        self.pending.push(Pending { id, span, data, k });
        self.queries_submitted += 1;
        self.metrics.queries_submitted.inc();
        self.metrics.queue_depth.set(self.pending.len() as f64);
        Ok(id)
    }

    /// Run every queued query across the device pool and return all
    /// results plus per-device reports.
    pub fn drain(&mut self) -> DrainReport {
        let algo_before = topk_core::obs::counters().snapshot();
        let batches = coalesce(
            std::mem::take(&mut self.pending),
            self.config.coalescing_window,
        );
        let cursor = AtomicUsize::new(0);

        let mut per_device: Vec<(Vec<QueryResult>, DeviceReport)> = crossbeam::scope(|s| {
            let batches = &batches;
            let cursor = &cursor;
            let handles: Vec<_> = self
                .gpus
                .iter_mut()
                .enumerate()
                .map(|(dev, gpu)| s.spawn(move |_| run_device(dev, gpu, batches, cursor)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("engine worker panicked"))
                .collect()
        })
        .expect("engine scope failed");

        per_device.sort_by_key(|(_, d)| d.device);
        let mut results = Vec::new();
        let mut devices = Vec::new();
        for (rs, report) in per_device {
            results.extend(rs);
            devices.push(report);
        }
        results.sort_by_key(|r| r.id);
        let algo = topk_core::obs::counters()
            .snapshot()
            .delta_since(&algo_before);
        let report = DrainReport {
            results,
            devices,
            algo,
        };
        self.record_drain(&report);
        report
    }

    /// Fold one drain's outcome into the metrics registry and the
    /// cumulative snapshot tallies.
    fn record_drain(&mut self, report: &DrainReport) {
        self.drains += 1;
        self.wall_us += report.makespan_us();
        for r in &report.results {
            self.metrics.record_query(r);
            match &r.outcome {
                Ok(_) => self.queries_completed += 1,
                Err(e) => {
                    self.queries_failed += 1;
                    let kind = e.kind();
                    let slot = TopKError::KINDS
                        .iter()
                        .position(|&k| k == kind)
                        .expect("kind() values come from KINDS");
                    self.errors[slot] += 1;
                }
            }
        }
        for d in &report.devices {
            let stats = &mut self.device_stats[d.device];
            stats.busy_us += d.elapsed_us;
            stats.batches += d.batches.len() as u64;
            stats.kernel_launches += d.kernel_reports.len() as u64;
            for b in &d.batches {
                self.metrics.record_batch(b);
            }
            self.metrics
                .kernel_launches
                .add(d.kernel_reports.len() as u64);
        }
        let wall = self.wall_us;
        for (dev, stats) in self.device_stats.iter().enumerate() {
            let util = if wall > 0.0 {
                stats.busy_us / wall
            } else {
                0.0
            };
            self.metrics.set_device_utilization(dev, util);
        }
        self.metrics.record_algo(&report.algo);
        self.metrics.drains.inc();
        self.metrics.queue_depth.set(0.0);
    }
}

/// Group queries into same-`(N, K)` batches of at most `window`,
/// preserving submission order within and across batches.
fn coalesce(pending: Vec<Pending>, window: usize) -> Vec<Batch> {
    let window = window.max(1);
    let mut batches: Vec<Batch> = Vec::new();
    // Open (not yet full) batch per shape.
    let mut open: HashMap<(usize, usize), usize> = HashMap::new();
    for q in pending {
        let shape = (q.data.len(), q.k);
        match open.get(&shape) {
            Some(&bi) if batches[bi].queries.len() < window => batches[bi].queries.push(q),
            _ => {
                open.insert(shape, batches.len());
                batches.push(Batch {
                    n: shape.0,
                    k: shape.1,
                    span: q.span,
                    queries: vec![q],
                });
            }
        }
    }
    batches
}

/// One pool worker: claim batches off the shared cursor until none are
/// left, executing each on this worker's persistent device.
///
/// The device carries clock and report history from earlier drains, so
/// everything this drain reports is *rebased*: times are relative to
/// the drain's start on this device, and `kernel_reports` holds only
/// this drain's launches (with `BatchRecord::report_range` indexing
/// into that slice, not the device's lifetime history).
fn run_device(
    dev: usize,
    gpu: &mut Gpu,
    batches: &[Batch],
    cursor: &AtomicUsize,
) -> (Vec<QueryResult>, DeviceReport) {
    let drain_t0 = gpu.elapsed_us();
    let drain_lo = gpu.reports().len();
    let selector = SelectK::default();
    let mut results = Vec::new();
    let mut records = Vec::new();

    loop {
        let bi = cursor.fetch_add(1, Ordering::Relaxed);
        let Some(batch) = batches.get(bi) else { break };
        let start_us = gpu.elapsed_us() - drain_t0;
        let report_lo = gpu.reports().len() - drain_lo;
        gpu.set_span(batch.span);
        let outcome = run_batch(gpu, &selector, batch);
        gpu.clear_span();
        let end_us = gpu.elapsed_us() - drain_t0;
        records.push(BatchRecord {
            device: dev,
            size: batch.queries.len(),
            n: batch.n,
            k: batch.k,
            span: batch.span,
            report_range: (report_lo, gpu.reports().len() - drain_lo),
            start_us,
            end_us,
        });
        match outcome {
            Ok(outs) => {
                for (q, out) in batch.queries.iter().zip(outs) {
                    results.push(QueryResult {
                        id: q.id,
                        span: q.span,
                        batch_span: batch.span,
                        device: dev,
                        batch_size: batch.queries.len(),
                        queue_wait_us: start_us,
                        latency_us: end_us,
                        outcome: Ok(out),
                    });
                }
            }
            Err(e) => {
                for q in &batch.queries {
                    results.push(QueryResult {
                        id: q.id,
                        span: q.span,
                        batch_span: batch.span,
                        device: dev,
                        batch_size: batch.queries.len(),
                        queue_wait_us: start_us,
                        latency_us: end_us,
                        outcome: Err(e.clone()),
                    });
                }
            }
        }
    }

    let report = DeviceReport {
        device: dev,
        batches: records,
        elapsed_us: gpu.elapsed_us() - drain_t0,
        clock_start_us: drain_t0,
        mem_high_water: gpu.mem_high_water(),
        mem_allocated_after: gpu.mem_allocated(),
        kernel_reports: gpu.reports()[drain_lo..].to_vec(),
    };
    (results, report)
}

/// Upload, select (fused when the batch has > 1 query), download.
/// Device-side inputs and outputs are freed on every path so the next
/// batch on this device sees honest `mem_allocated`.
fn run_batch(
    gpu: &mut Gpu,
    selector: &SelectK,
    batch: &Batch,
) -> Result<Vec<QueryOutput>, TopKError> {
    let mut ws = ScratchGuard::new();
    let r = batch_passes(gpu, &mut ws, selector, batch);
    ws.release(gpu);
    r
}

fn batch_passes(
    gpu: &mut Gpu,
    ws: &mut ScratchGuard,
    selector: &SelectK,
    batch: &Batch,
) -> Result<Vec<QueryOutput>, TopKError> {
    let mut inputs = Vec::with_capacity(batch.queries.len());
    for q in &batch.queries {
        let buf = gpu.try_htod(&format!("query{}", q.id), &q.data)?;
        ws.adopt(&buf);
        inputs.push(buf);
    }
    let outs = if inputs.len() == 1 {
        vec![selector.try_select(gpu, &inputs[0], batch.k)?]
    } else {
        selector.try_select_batch(gpu, &inputs, batch.k)?
    };
    let mut host = Vec::with_capacity(outs.len());
    for out in outs {
        let values = gpu.dtoh(&out.values);
        let indices = gpu.dtoh(&out.indices);
        gpu.free(&out.values);
        gpu.free(&out.indices);
        host.push(QueryOutput {
            values,
            indices,
            k: out.k,
        });
    }
    Ok(host)
}

#[cfg(test)]
mod tests;
