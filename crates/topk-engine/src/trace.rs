//! Engine-wide Chrome-trace export: render a [`DrainReport`] as a
//! Trace Event Format JSON string loadable in `chrome://tracing` or
//! Perfetto.
//!
//! The layout mirrors how the drain actually ran: per pool device, one
//! **kernel track** (every launch of the drain, named and tagged with
//! its batch's span id), one **query track** (per query, a
//! `queue-wait` span from drain start to batch start followed by a
//! `query` span covering service, with a `served` arg recording the
//! degradation-ladder rung), one **stage track** (per batch, a span
//! whose args carry the stage-level latency attribution — transfer /
//! kernel / merge / other µs from [`crate::StageBreakdown`]), and —
//! when fault injection is active — a **fault track** marking every
//! injected fault at the simulated time it fired. Fused queries
//! overlap exactly; retried batches appear once per attempt.

use crate::DrainReport;
use gpu_sim::TraceBuilder;

/// Render a drain as Chrome Trace Event Format JSON.
///
/// Timestamps are drain-relative microseconds (devices persist across
/// drains; each device's clock is rebased to the drain's start).
pub fn chrome_trace(report: &DrainReport) -> String {
    let mut tb = TraceBuilder::new("topk-engine");
    for d in &report.devices {
        let kernels = tb.add_track(&format!("device {} kernels", d.device));
        for kr in &d.kernel_reports {
            tb.span_with_args(
                kernels,
                "kernel",
                &kr.name,
                kr.start_us - d.clock_start_us,
                kr.cost.total_us(),
                &[
                    ("span", kr.span.to_string()),
                    ("grid_dim", kr.cfg.grid_dim.to_string()),
                    ("block_dim", kr.cfg.block_dim.to_string()),
                ],
            );
        }

        let queries = tb.add_track(&format!("device {} queries", d.device));
        for r in report.results.iter().filter(|r| r.device == d.device) {
            if r.queue_wait_us > 0.0 {
                tb.span_with_args(
                    queries,
                    "queue",
                    &format!("wait q{}", r.id),
                    0.0,
                    r.queue_wait_us,
                    &[("span", r.span.to_string())],
                );
            }
            tb.span_with_args(
                queries,
                "query",
                &format!("q{}", r.id),
                r.queue_wait_us,
                r.latency_us - r.queue_wait_us,
                &[
                    ("span", r.span.to_string()),
                    ("batch_span", r.batch_span.to_string()),
                    ("batch_size", r.batch_size.to_string()),
                    ("ok", r.outcome.is_ok().to_string()),
                    ("served", r.served.label().to_string()),
                    ("retries", r.served.retries().to_string()),
                    ("est_recall", format!("{:.4}", r.est_recall)),
                ],
            );
        }

        if !d.batches.is_empty() {
            let stages = tb.add_track(&format!("device {} stages", d.device));
            for b in &d.batches {
                tb.span_with_args(
                    stages,
                    "stage",
                    &format!("batch n={} k={} x{}", b.n, b.k, b.size),
                    b.start_us,
                    (b.end_us - b.start_us).max(0.0),
                    &[
                        ("span", b.span.to_string()),
                        ("transfer_us", format!("{:.3}", b.stages.transfer_us)),
                        ("kernel_us", format!("{:.3}", b.stages.kernel_us)),
                        ("merge_us", format!("{:.3}", b.stages.merge_us)),
                        ("other_us", format!("{:.3}", b.stages.other_us)),
                    ],
                );
            }
        }

        if !d.fault_events.is_empty() {
            let faults = tb.add_track(&format!("device {} faults", d.device));
            for fe in &d.fault_events {
                tb.span_with_args(
                    faults,
                    "fault",
                    fe.kind.label(),
                    (fe.clock_us - d.clock_start_us).max(0.0),
                    1.0,
                    &[("context", fe.context.clone()), ("seq", fe.seq.to_string())],
                );
            }
        }
    }
    tb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EngineConfig, TopKEngine};

    #[test]
    fn trace_covers_every_device_and_kernel() {
        let mut engine = TopKEngine::new(EngineConfig::a100_pool(2).with_window(2));
        let data: Vec<f32> = (0..4096).map(|i| ((i * 97) % 1013) as f32).collect();
        for _ in 0..6 {
            engine.submit(data.clone(), 16).unwrap();
        }
        let report = engine.drain();
        let json = chrome_trace(&report);

        for d in &report.devices {
            assert!(json.contains(&format!("device {} kernels", d.device)));
            assert!(json.contains(&format!("device {} queries", d.device)));
        }
        // One complete event per kernel report.
        let kernels: usize = report.devices.iter().map(|d| d.kernel_reports.len()).sum();
        assert_eq!(json.matches("\"cat\":\"kernel\"").count(), kernels);
        // One service span per query.
        assert_eq!(
            json.matches("\"cat\":\"query\"").count(),
            report.results.len()
        );
        // One stage-attribution span per executed batch, carrying the
        // kernel/transfer split in its args.
        let batches: usize = report.devices.iter().map(|d| d.batches.len()).sum();
        assert_eq!(json.matches("\"cat\":\"stage\"").count(), batches);
        assert!(json.contains("kernel_us"), "{json}");
    }
}
