//! The engine's metric surface: a [`MetricsRegistry`] with handles for
//! every series the serving layer maintains.
//!
//! [`TopKEngine`](crate::TopKEngine) owns one [`EngineMetrics`] and
//! updates it on every submit and drain; callers scrape it with
//! [`EngineMetrics::render_prometheus`]. Series:
//!
//! | metric | kind | meaning |
//! |---|---|---|
//! | `topk_engine_queries_submitted_total` | counter | accepted submissions |
//! | `topk_engine_queue_rejections_total` | counter | `QueueFull` refusals |
//! | `topk_engine_queries_total` | counter | drained queries (ok + err) |
//! | `topk_engine_query_errors_total{kind}` | counter | failures per [`TopKError::kind`] |
//! | `topk_engine_batches_total` | counter | executed batches |
//! | `topk_engine_fused_batches_total` | counter | batches fusing ≥ 2 queries |
//! | `topk_engine_kernel_launches_total` | counter | kernel launches |
//! | `topk_engine_drains_total` | counter | drains |
//! | `topk_engine_queue_depth` | gauge | queries awaiting drain |
//! | `topk_engine_device_utilization{device}` | gauge | busy µs / wall µs |
//! | `topk_engine_query_latency_us` | histogram | per-query latency |
//! | `topk_engine_queue_wait_us` | histogram | per-query queue wait |
//! | `topk_engine_batch_size` | histogram | fused-batch sizes |
//! | `topk_engine_retries_total` | counter | batch re-executions after faults |
//! | `topk_engine_failovers_total` | counter | queries served by another device |
//! | `topk_engine_cpu_fallbacks_total` | counter | queries served by `topk-cpu` |
//! | `topk_engine_approx_served_total{rung}` | counter | queries served by an approximate rung |
//! | `topk_engine_est_recall` | histogram | per-query estimated recall (successful queries) |
//! | `topk_engine_deadline_misses_total` | counter | terminal deadline failures |
//! | `topk_engine_quarantines_total` | counter | circuit-breaker trips |
//! | `topk_engine_faults_injected_total{kind}` | counter | injected faults per [`FaultKind`] |
//! | `topk_engine_quarantined_devices` | gauge | devices currently quarantined |
//! | `topk_engine_failed_devices` | gauge | devices permanently failed |
//! | `topk_air_*_total`, `topk_gridselect_*_total` | counter | [`topk_core::obs`] deltas |
//! | `topk_radik_*_total`, `topk_rowwise_*_total` | counter | new-algorithm [`topk_core::obs`] deltas |
//! | `topk_bucketed_selections_total`, `topk_twostage_reduces_total` | counter | approximate-algorithm [`topk_core::obs`] deltas |
//! | `topk_tuner_plan_{hits,misses}_total` | counter | adaptive-dispatch plan-table traffic |
//! | `topk_tuner_refinements_total` | counter | plans replaced by observed-latency feedback |
//! | `topk_engine_stage_us{stage}` | gauge | last drain's stage-level latency attribution |
//! | `topk_profile_peak_bw_frac{device,kernel}` | gauge | achieved / peak memory bandwidth per kernel |
//! | `topk_profile_peak_ops_frac{device,kernel}` | gauge | achieved / peak compute throughput per kernel |
//! | `topk_profile_occupancy{device,kernel}` | gauge | exec-time-weighted mean occupancy per kernel |
//! | `topk_profile_kernel_launches_total{device,kernel}` | counter | roofline-folded launches per kernel |
//! | `topk_profile_kernel_bytes_total{device,kernel}` | counter | memory traffic folded per kernel |
//! | `topk_tuner_drift_ratio{bucket,algo}` | gauge | mean observed/predicted cost ratio per plan bucket |
//! | `topk_tuner_drift_samples{bucket,algo}` | gauge | observations behind each drift ratio |
//! | `topk_tuner_calibration{family}` | gauge | tuner EMA calibration factor per algorithm family |

use crate::profiler::DriftEntry;
use crate::{BatchRecord, DrainReport, QueryResult, StageBreakdown};
use gpu_sim::FaultKind;
use gpu_sim::RooflineRow;
use std::sync::Arc;
use topk_core::{AlgoSnapshot, TopKError};
use topk_obs::{Counter, Gauge, Histogram, MetricsRegistry};

/// Pre-registered handles over the engine's [`MetricsRegistry`].
///
/// Every series exists from construction (error counters are
/// registered over the whole [`TopKError::KINDS`] space), so the first
/// scrape sees the full surface at zero rather than series popping
/// into existence as events occur.
pub struct EngineMetrics {
    registry: MetricsRegistry,
    pub(crate) queries_submitted: Arc<Counter>,
    pub(crate) queue_rejections: Arc<Counter>,
    pub(crate) queries: Arc<Counter>,
    pub(crate) query_errors: Vec<Arc<Counter>>,
    pub(crate) batches: Arc<Counter>,
    pub(crate) fused_batches: Arc<Counter>,
    pub(crate) kernel_launches: Arc<Counter>,
    pub(crate) drains: Arc<Counter>,
    pub(crate) queue_depth: Arc<Gauge>,
    pub(crate) query_latency_us: Arc<Histogram>,
    pub(crate) queue_wait_us: Arc<Histogram>,
    pub(crate) batch_size: Arc<Histogram>,
    pub(crate) retries: Arc<Counter>,
    pub(crate) failovers: Arc<Counter>,
    pub(crate) cpu_fallbacks: Arc<Counter>,
    pub(crate) approx_two_stage: Arc<Counter>,
    pub(crate) approx_bucketed: Arc<Counter>,
    pub(crate) est_recall: Arc<Histogram>,
    pub(crate) deadline_misses: Arc<Counter>,
    pub(crate) quarantines: Arc<Counter>,
    pub(crate) faults_injected: Vec<Arc<Counter>>,
    pub(crate) quarantined_devices: Arc<Gauge>,
    pub(crate) failed_devices: Arc<Gauge>,
    air_passes: Arc<Counter>,
    air_buffer_writes: Arc<Counter>,
    air_adaptive_skips: Arc<Counter>,
    air_early_stops: Arc<Counter>,
    air_one_block_selections: Arc<Counter>,
    gridselect_queue_merges: Arc<Counter>,
    gridselect_list_merges: Arc<Counter>,
    radik_rounds: Arc<Counter>,
    radik_skipped_bits: Arc<Counter>,
    rowwise_compactions: Arc<Counter>,
    bucketed_selections: Arc<Counter>,
    twostage_reduces: Arc<Counter>,
    tuner_plan_hits: Arc<Counter>,
    tuner_plan_misses: Arc<Counter>,
    tuner_refinements: Arc<Counter>,
}

impl EngineMetrics {
    /// A registry with every engine series pre-registered.
    pub fn new() -> Self {
        let registry = MetricsRegistry::new();
        let query_errors = TopKError::KINDS
            .iter()
            .map(|kind| {
                registry.counter_with(
                    "topk_engine_query_errors_total",
                    "Drained queries that failed, by TopKError kind",
                    &[("kind", kind)],
                )
            })
            .collect();
        EngineMetrics {
            queries_submitted: registry.counter(
                "topk_engine_queries_submitted_total",
                "Queries accepted into the submission queue",
            ),
            queue_rejections: registry.counter(
                "topk_engine_queue_rejections_total",
                "Submissions refused because the bounded queue was full",
            ),
            queries: registry.counter(
                "topk_engine_queries_total",
                "Queries drained (successful and failed)",
            ),
            query_errors,
            batches: registry.counter(
                "topk_engine_batches_total",
                "Coalesced batches executed on the device pool",
            ),
            fused_batches: registry.counter(
                "topk_engine_fused_batches_total",
                "Batches that fused two or more queries into one launch set",
            ),
            kernel_launches: registry.counter(
                "topk_engine_kernel_launches_total",
                "Kernel launches performed by the device pool",
            ),
            drains: registry.counter("topk_engine_drains_total", "Drains performed"),
            queue_depth: registry.gauge(
                "topk_engine_queue_depth",
                "Queries currently awaiting the next drain",
            ),
            query_latency_us: registry.histogram(
                "topk_engine_query_latency_us",
                "Simulated per-query latency (queue wait + service), microseconds",
            ),
            queue_wait_us: registry.histogram(
                "topk_engine_queue_wait_us",
                "Simulated per-query queue wait before service, microseconds",
            ),
            batch_size: registry.histogram_with(
                "topk_engine_batch_size",
                "Queries fused per executed batch",
                &[],
                (0..9).map(|i| (1u64 << i) as f64).collect(),
            ),
            retries: registry.counter(
                "topk_engine_retries_total",
                "Batch re-executions scheduled after a device fault",
            ),
            failovers: registry.counter(
                "topk_engine_failovers_total",
                "Queries ultimately served by a different device than first scheduled",
            ),
            cpu_fallbacks: registry.counter(
                "topk_engine_cpu_fallbacks_total",
                "Queries served by the topk-cpu reference path after pool/retry exhaustion",
            ),
            approx_two_stage: registry.counter_with(
                "topk_engine_approx_served_total",
                "Queries served by an approximate rung of the accuracy ladder",
                &[("rung", "approx_two_stage")],
            ),
            approx_bucketed: registry.counter_with(
                "topk_engine_approx_served_total",
                "Queries served by an approximate rung of the accuracy ladder",
                &[("rung", "approx_bucketed")],
            ),
            est_recall: registry.histogram_with(
                "topk_engine_est_recall",
                "Per-query estimated recall (analytic expectation; 1.0 on exact rungs)",
                &[],
                vec![0.5, 0.8, 0.9, 0.95, 0.99, 0.999, 1.0],
            ),
            deadline_misses: registry.counter(
                "topk_engine_deadline_misses_total",
                "Queries terminally failed with DeadlineExceeded",
            ),
            quarantines: registry.counter(
                "topk_engine_quarantines_total",
                "Circuit-breaker quarantines tripped on pool devices",
            ),
            faults_injected: FaultKind::ALL
                .iter()
                .map(|kind| {
                    registry.counter_with(
                        "topk_engine_faults_injected_total",
                        "Injected device faults observed, by FaultKind",
                        &[("kind", kind.label())],
                    )
                })
                .collect(),
            quarantined_devices: registry.gauge(
                "topk_engine_quarantined_devices",
                "Pool devices currently inside a circuit-breaker quarantine",
            ),
            failed_devices: registry.gauge(
                "topk_engine_failed_devices",
                "Pool devices permanently failed (panic or hang)",
            ),
            air_passes: registry.counter(
                "topk_air_passes_total",
                "AIR radix digit passes completed (per problem, per pass)",
            ),
            air_buffer_writes: registry.counter(
                "topk_air_buffer_writes_total",
                "AIR passes that wrote the candidate buffer for the next pass",
            ),
            air_adaptive_skips: registry.counter(
                "topk_air_adaptive_skips_total",
                "AIR passes where the adaptive strategy skipped buffering",
            ),
            air_early_stops: registry.counter(
                "topk_air_early_stops_total",
                "AIR early-stop triggers (remaining candidates == remaining K)",
            ),
            air_one_block_selections: registry.counter(
                "topk_air_one_block_selections_total",
                "Problems solved by AIR's one-block shared-memory fast path",
            ),
            gridselect_queue_merges: registry.counter(
                "topk_gridselect_queue_merges_total",
                "GridSelect shared-queue flushes (bitonic sort + merge)",
            ),
            gridselect_list_merges: registry.counter(
                "topk_gridselect_list_merges_total",
                "GridSelect list-vs-list merges (cross-warp and tree-merge)",
            ),
            radik_rounds: registry.counter(
                "topk_radik_rounds_total",
                "RadiK radix rounds completed after the sketch pass",
            ),
            radik_skipped_bits: registry.counter(
                "topk_radik_skipped_bits_total",
                "Key bits RadiK's sketch and adaptive ordering skipped outright",
            ),
            rowwise_compactions: registry.counter(
                "topk_rowwise_compactions_total",
                "Row-wise shared-buffer compactions (threshold tightenings)",
            ),
            bucketed_selections: registry.counter(
                "topk_bucketed_selections_total",
                "Bucketed approximate top-K fused launches completed",
            ),
            twostage_reduces: registry.counter(
                "topk_twostage_reduces_total",
                "Two-stage approximate top-K exact-reduce launches completed",
            ),
            tuner_plan_hits: registry.counter(
                "topk_tuner_plan_hits_total",
                "Dispatch decisions served from the tuner's plan table",
            ),
            tuner_plan_misses: registry.counter(
                "topk_tuner_plan_misses_total",
                "Dispatch decisions that required a fresh cost-model planning pass",
            ),
            tuner_refinements: registry.counter(
                "topk_tuner_refinements_total",
                "Plans replaced after observed latencies recalibrated the cost model",
            ),
            registry,
        }
    }

    /// The underlying registry (for callers that want to attach their
    /// own series next to the engine's).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Render every series in the Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        self.registry.render_prometheus()
    }

    /// Fold one drained query into the registry.
    pub(crate) fn record_query(&self, r: &QueryResult) {
        self.queries.inc();
        self.query_latency_us.observe(r.latency_us);
        self.queue_wait_us.observe(r.queue_wait_us);
        if r.outcome.is_ok() {
            self.est_recall.observe(r.est_recall);
        }
        if let Err(e) = &r.outcome {
            let kind = e.kind();
            let slot = TopKError::KINDS
                .iter()
                .position(|&k| k == kind)
                .expect("kind() values come from KINDS");
            self.query_errors[slot].inc();
        }
    }

    /// Fold one executed batch into the registry.
    pub(crate) fn record_batch(&self, b: &BatchRecord) {
        self.batches.inc();
        if b.size >= 2 {
            self.fused_batches.inc();
        }
        self.batch_size.observe(b.size as f64);
    }

    /// Fold one drain's algorithm-event delta into the counters.
    pub(crate) fn record_algo(&self, d: &AlgoSnapshot) {
        self.air_passes.add(d.air_passes);
        self.air_buffer_writes.add(d.air_buffer_writes);
        self.air_adaptive_skips.add(d.air_adaptive_skips);
        self.air_early_stops.add(d.air_early_stops);
        self.air_one_block_selections
            .add(d.air_one_block_selections);
        self.gridselect_queue_merges.add(d.gridselect_queue_merges);
        self.gridselect_list_merges.add(d.gridselect_list_merges);
        self.radik_rounds.add(d.radik_rounds);
        self.radik_skipped_bits.add(d.radik_skipped_bits);
        self.rowwise_compactions.add(d.rowwise_compactions);
        self.bucketed_selections.add(d.bucketed_selections);
        self.twostage_reduces.add(d.twostage_reduces);
        self.tuner_plan_hits.add(d.tuner_plan_hits);
        self.tuner_plan_misses.add(d.tuner_plan_misses);
        self.tuner_refinements.add(d.tuner_refinements);
    }

    /// Fold one drain's resilience tallies into the counters.
    pub(crate) fn record_resilience(&self, report: &DrainReport) {
        self.retries.add(report.retries);
        self.failovers.add(report.failovers);
        self.cpu_fallbacks.add(report.cpu_fallbacks);
        self.approx_two_stage.add(report.approx_two_stage);
        self.approx_bucketed.add(report.approx_bucketed);
        self.deadline_misses.add(report.deadline_misses);
        self.quarantines.add(report.quarantines);
        for d in &report.devices {
            for fe in &d.fault_events {
                let slot = FaultKind::ALL
                    .iter()
                    .position(|k| *k == fe.kind)
                    .expect("fault kinds come from ALL");
                self.faults_injected[slot].inc();
            }
        }
    }

    /// Set the pool-health gauges.
    pub(crate) fn set_health_gauges(&self, quarantined: usize, failed: usize) {
        self.quarantined_devices.set(quarantined as f64);
        self.failed_devices.set(failed as f64);
    }

    /// Set the utilisation gauge for one pool device.
    pub(crate) fn set_device_utilization(&self, device: usize, utilization: f64) {
        self.registry
            .gauge_with(
                "topk_engine_device_utilization",
                "Device busy time over total drain makespan (0..1)",
                &[("device", &device.to_string())],
            )
            .set(utilization);
    }

    /// Export one device's roofline aggregation: per-kernel achieved
    /// vs. peak fractions as gauges (latest drain wins) and
    /// launch/byte tallies as counters.
    pub(crate) fn record_roofline(&self, device: usize, rows: &[RooflineRow]) {
        let dev = device.to_string();
        for row in rows {
            let labels = [("device", dev.as_str()), ("kernel", row.kernel.as_str())];
            self.registry
                .gauge_with(
                    "topk_profile_peak_bw_frac",
                    "Achieved memory bandwidth over DeviceSpec peak, per kernel (0..1)",
                    &labels,
                )
                .set(row.peak_bw_frac);
            self.registry
                .gauge_with(
                    "topk_profile_peak_ops_frac",
                    "Achieved compute throughput over DeviceSpec peak, per kernel (0..1)",
                    &labels,
                )
                .set(row.peak_ops_frac);
            self.registry
                .gauge_with(
                    "topk_profile_occupancy",
                    "Exec-time-weighted mean occupancy per kernel (0..1)",
                    &labels,
                )
                .set(row.occupancy);
            self.registry
                .counter_with(
                    "topk_profile_kernel_launches_total",
                    "Kernel launches folded into the roofline profile",
                    &labels,
                )
                .add(row.launches);
            self.registry
                .counter_with(
                    "topk_profile_kernel_bytes_total",
                    "Memory traffic (read + written + scattered + atomics) folded into the roofline profile",
                    &labels,
                )
                .add(row.mem_bytes);
        }
    }

    /// Export a drain's stage-level latency attribution (gauges: the
    /// last drain's split, scrape-to-scrape).
    pub(crate) fn record_stages(&self, stages: &StageBreakdown) {
        for (stage, us) in stages.rows() {
            self.registry
                .gauge_with(
                    "topk_engine_stage_us",
                    "Last drain's simulated time by stage (queue wait, transfer, kernel, merge, retry penalty, other)",
                    &[("stage", stage)],
                )
                .set(us);
        }
    }

    /// Export one plan bucket's cost-model drift state.
    pub(crate) fn record_drift(&self, bucket: &str, entry: &DriftEntry) {
        let labels = [("bucket", bucket), ("algo", entry.algo.as_str())];
        self.registry
            .gauge_with(
                "topk_tuner_drift_ratio",
                "Mean observed/predicted batch-cost ratio per plan bucket (1.0 = calibrated)",
                &labels,
            )
            .set(entry.mean_ratio());
        self.registry
            .gauge_with(
                "topk_tuner_drift_samples",
                "Observations folded into each plan bucket's drift ratio",
                &labels,
            )
            .set(entry.samples as f64);
    }

    /// Export one algorithm family's EMA calibration factor.
    pub(crate) fn record_calibration(&self, family: &'static str, factor: f64) {
        self.registry
            .gauge_with(
                "topk_tuner_calibration",
                "Tuner EMA calibration factor per algorithm family (observed/predicted)",
                &[("family", family)],
            )
            .set(factor);
    }
}

impl Default for EngineMetrics {
    fn default() -> Self {
        EngineMetrics::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_series_exist_before_any_error() {
        let m = EngineMetrics::new();
        let text = m.render_prometheus();
        for kind in TopKError::KINDS {
            assert!(
                text.contains(&format!(
                    "topk_engine_query_errors_total{{kind=\"{kind}\"}} 0"
                )),
                "missing pre-registered error series for {kind}: {text}"
            );
        }
    }

    #[test]
    fn algo_deltas_accumulate() {
        let m = EngineMetrics::new();
        let d = AlgoSnapshot {
            air_passes: 4,
            air_adaptive_skips: 2,
            ..Default::default()
        };
        m.record_algo(&d);
        m.record_algo(&d);
        let text = m.render_prometheus();
        assert!(text.contains("topk_air_passes_total 8"), "{text}");
        assert!(text.contains("topk_air_adaptive_skips_total 4"), "{text}");
    }
}
