//! The anomaly flight recorder: an always-on, bounded ring buffer of
//! engine events plus the structured JSON post-mortem it dumps when
//! something goes wrong.
//!
//! Airliners carry a flight recorder because the interesting failures
//! are the ones nobody was watching for; a serving engine is no
//! different. Every [`TopKEngine`](crate::TopKEngine) keeps the last
//! [`FlightRecorder::capacity`] scheduler events (submit, coalesce,
//! launch, fault, retry, failover, fallback, deadline, breaker state
//! changes) in memory at a fixed cost, and whenever a query terminally
//! fails, misses its deadline, or a circuit breaker trips, the engine
//! snapshots the buffer — together with per-device state, the injected
//! fault log, and the cost-model drift table — into a self-contained
//! JSON document ([`TopKEngine::post_mortems`](crate::TopKEngine::post_mortems)).
//!
//! Recording is pure host-side bookkeeping: it never touches a device
//! clock, so chaos digests are bit-identical with the recorder's
//! output consumed or ignored.

use std::collections::VecDeque;

/// Event kinds that trigger a post-mortem dump: a terminal query
/// failure, a missed deadline, a breaker trip, or a device retired
/// from the pool.
pub const TRIGGER_KINDS: [&str; 4] = [
    "query_failed",
    "deadline_miss",
    "breaker_open",
    "device_failed",
];

/// One recorded engine event.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightEvent {
    /// Monotonic sequence number over the engine's lifetime (keeps
    /// ordering intact even after the ring buffer wraps).
    pub seq: u64,
    /// Drain-relative simulated time the event was observed at, µs
    /// (0.0 for submissions, which precede the drain clock).
    pub t_us: f64,
    /// Stable snake_case event kind (`submit`, `coalesce`, `launch`,
    /// `degrade_rung`, `batch_ok`, `device_fault`, `retry`,
    /// `deadline_miss`, `query_failed`, `fallback`, `breaker_open`,
    /// `device_failed`, `worker_panic`, `queue_reject`).
    /// `degrade_rung` records an accuracy-ladder transition — its
    /// detail carries the chosen rung, the triggering cause
    /// (`deadline_risk` or `capacity_loss`), the batch's recall target
    /// and the configuration's expected recall. It is deliberately
    /// *not* a trigger kind: degrading is the plan working, not an
    /// anomaly.
    pub kind: &'static str,
    /// Pool device involved, if any.
    pub device: Option<usize>,
    /// Tracing span of the query or batch involved, if any.
    pub span: Option<u64>,
    /// Free-form context (shape, error kind, attempt number, …).
    pub detail: String,
}

impl FlightEvent {
    /// Whether this event kind triggers a post-mortem dump.
    pub fn is_trigger(&self) -> bool {
        TRIGGER_KINDS.contains(&self.kind)
    }
}

/// Bounded ring buffer of [`FlightEvent`]s. Pushing beyond the
/// capacity evicts the oldest event; the sequence numbers keep the
/// global ordering reconstructible.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    next_seq: u64,
    events: VecDeque<FlightEvent>,
}

impl FlightRecorder {
    /// Recorder holding at most `capacity` events (min 16).
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            capacity: capacity.max(16),
            next_seq: 0,
            events: VecDeque::new(),
        }
    }

    /// The bound on retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &FlightEvent> {
        self.events.iter()
    }

    /// Number of retained events (≤ capacity).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total events ever recorded (the next event's sequence number).
    pub fn recorded(&self) -> u64 {
        self.next_seq
    }

    /// Append one event, evicting the oldest when full. Returns the
    /// event's sequence number.
    pub fn record(
        &mut self,
        kind: &'static str,
        device: Option<usize>,
        span: Option<u64>,
        t_us: f64,
        detail: String,
    ) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(FlightEvent {
            seq,
            t_us,
            kind,
            device,
            span,
            detail,
        });
        seq
    }

    /// The first trigger-kind event with `seq >= since_seq`, if any —
    /// how the drain loop decides whether a scheduling step warrants a
    /// post-mortem dump.
    pub fn trigger_since(&self, since_seq: u64) -> Option<&FlightEvent> {
        self.events
            .iter()
            .find(|e| e.seq >= since_seq && e.is_trigger())
    }
}

/// Per-device state row of a post-mortem document.
#[derive(Debug, Clone)]
pub struct PmDevice {
    /// Pool index.
    pub device: usize,
    /// `"ok"` / `"quarantined"` / `"failed"` at dump time.
    pub health: &'static str,
    /// Drain-relative device clock at dump time, µs.
    pub elapsed_us: f64,
    /// Batches executed this drain so far.
    pub batches: usize,
    /// Lifetime device faults.
    pub faults: u64,
    /// Injected faults this drain, as `kind@seq` labels.
    pub fault_events: Vec<String>,
    /// Sanitizer occurrences flagged this drain.
    pub sanitizer_occurrences: u64,
}

/// One cost-model drift row of a post-mortem document.
#[derive(Debug, Clone)]
pub struct PmDrift {
    /// Plan-key bucket label.
    pub key: String,
    /// Winning configuration label.
    pub algo: String,
    /// Observations folded into the row.
    pub samples: u64,
    /// Calibrated prediction of the most recent dispatch, µs.
    pub predicted_us: f64,
    /// Most recent observed batch latency, µs.
    pub observed_us: f64,
    /// Mean observed/predicted ratio (1.0 = the model is honest).
    pub mean_ratio: f64,
}

/// Minimal JSON string escaping (backslash, quote, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

/// Render a post-mortem as a self-contained JSON document:
/// the trigger, the retained event window, per-device snapshots, the
/// cost-model drift table, and the tuner's calibration state.
pub fn render_post_mortem(
    trigger: &str,
    trigger_seq: u64,
    clock_us: f64,
    recorder: &FlightRecorder,
    devices: &[PmDevice],
    drift: &[PmDrift],
    calibration: &[(&'static str, f64)],
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"trigger\": {},\n", json_str(trigger)));
    out.push_str(&format!("  \"trigger_seq\": {trigger_seq},\n"));
    out.push_str(&format!("  \"clock_us\": {},\n", json_f64(clock_us)));
    out.push_str(&format!(
        "  \"events_recorded\": {},\n",
        recorder.recorded()
    ));
    out.push_str("  \"events\": [\n");
    let n = recorder.len();
    for (i, e) in recorder.events().enumerate() {
        out.push_str(&format!(
            "    {{\"seq\": {}, \"t_us\": {}, \"kind\": {}, \"device\": {}, \"span\": {}, \"detail\": {}}}{}\n",
            e.seq,
            json_f64(e.t_us),
            json_str(e.kind),
            e.device.map_or("null".to_string(), |d| d.to_string()),
            e.span.map_or("null".to_string(), |s| s.to_string()),
            json_str(&e.detail),
            if i + 1 < n { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"devices\": [\n");
    for (i, d) in devices.iter().enumerate() {
        let faults: Vec<String> = d.fault_events.iter().map(|f| json_str(f)).collect();
        out.push_str(&format!(
            "    {{\"device\": {}, \"health\": {}, \"elapsed_us\": {}, \"batches\": {}, \"faults\": {}, \"fault_events\": [{}], \"sanitizer_occurrences\": {}}}{}\n",
            d.device,
            json_str(d.health),
            json_f64(d.elapsed_us),
            d.batches,
            d.faults,
            faults.join(", "),
            d.sanitizer_occurrences,
            if i + 1 < devices.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"drift\": [\n");
    for (i, r) in drift.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"key\": {}, \"algo\": {}, \"samples\": {}, \"predicted_us\": {}, \"observed_us\": {}, \"mean_ratio\": {}}}{}\n",
            json_str(&r.key),
            json_str(&r.algo),
            r.samples,
            json_f64(r.predicted_us),
            json_f64(r.observed_us),
            json_f64(r.mean_ratio),
            if i + 1 < drift.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"calibration\": [\n");
    for (i, (family, factor)) in calibration.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"family\": {}, \"factor\": {}}}{}\n",
            json_str(family),
            json_f64(*factor),
            if i + 1 < calibration.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_buffer_evicts_oldest_but_keeps_sequence() {
        let mut r = FlightRecorder::new(16);
        for i in 0..40 {
            r.record("launch", Some(0), None, i as f64, format!("op {i}"));
        }
        assert_eq!(r.len(), 16);
        assert_eq!(r.recorded(), 40);
        let seqs: Vec<u64> = r.events().map(|e| e.seq).collect();
        assert_eq!(seqs.first(), Some(&24));
        assert_eq!(seqs.last(), Some(&39));
        assert!(seqs.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn trigger_detection_respects_since() {
        let mut r = FlightRecorder::new(16);
        r.record("launch", Some(0), None, 0.0, String::new());
        let fail_seq = r.record("query_failed", Some(0), Some(7), 1.0, "bad".into());
        r.record("launch", Some(1), None, 2.0, String::new());
        assert_eq!(r.trigger_since(0).map(|e| e.seq), Some(fail_seq));
        assert!(r.trigger_since(fail_seq + 1).is_none());
        assert!(FlightEvent {
            seq: 0,
            t_us: 0.0,
            kind: "breaker_open",
            device: None,
            span: None,
            detail: String::new(),
        }
        .is_trigger());
    }

    #[test]
    fn post_mortem_is_valid_shaped_json() {
        let mut r = FlightRecorder::new(16);
        r.record(
            "submit",
            None,
            Some(1),
            0.0,
            "id=0 n=4096 k=\"quoted\"".into(),
        );
        r.record("deadline_miss", Some(0), Some(1), 9.5, "dl=5".into());
        let devices = vec![PmDevice {
            device: 0,
            health: "ok",
            elapsed_us: 9.5,
            batches: 1,
            faults: 0,
            fault_events: vec!["launch_fail@0".into()],
            sanitizer_occurrences: 0,
        }];
        let drift = vec![PmDrift {
            key: "n2^12 k2^5 b2^0 d0".into(),
            algo: "air:11".into(),
            samples: 3,
            predicted_us: 50.0,
            observed_us: 61.0,
            mean_ratio: 1.22,
        }];
        let json = render_post_mortem(
            "deadline_miss",
            1,
            9.5,
            &r,
            &devices,
            &drift,
            &[("air", 1.1)],
        );
        assert!(json.contains("\"trigger\": \"deadline_miss\""));
        assert!(json.contains("\\\"quoted\\\""), "details must be escaped");
        assert!(json.contains("\"drift\""));
        assert!(json.contains("\"calibration\""));
        // Balanced braces/brackets — cheap structural sanity.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
