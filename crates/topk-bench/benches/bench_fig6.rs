//! Criterion bench mirroring Fig. 6: time vs K at fixed N, batch 1.
//!
//! Criterion measures *host* wall time of the functional simulation —
//! useful as a performance regression suite for this repository. The
//! paper's own numbers (simulated device time) are produced by the
//! `topk-bench fig6` binary; see EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::Distribution;
use gpu_sim::{DeviceSpec, Gpu};
use std::hint::black_box;
use topk_bench::runner::{run_config, supports, BenchConfig, Workload};
use topk_core::TopKAlgorithm;

fn algorithms() -> Vec<Box<dyn TopKAlgorithm>> {
    let mut algs = topk_baselines::all_baselines();
    algs.push(Box::new(topk_core::AirTopK::default()));
    algs.push(Box::new(topk_core::GridSelect::default()));
    algs
}

fn bench_fig6(c: &mut Criterion) {
    let n = 1 << 16;
    let data = datagen::generate(Distribution::Uniform, n, 42);
    let mut group = c.benchmark_group("fig6_time_vs_k_n16_uniform");
    group.sample_size(10);
    for k in [8usize, 256, 2048, 16384] {
        for alg in algorithms() {
            let cfg = BenchConfig::new(Workload::Synthetic(Distribution::Uniform), n, k, 1);
            if !supports(alg.as_ref(), &cfg) {
                continue;
            }
            group.bench_with_input(
                BenchmarkId::new(alg.name().replace(' ', "_"), k),
                &k,
                |b, &k| {
                    b.iter(|| {
                        let mut gpu = Gpu::new(DeviceSpec::a100());
                        let input = gpu.htod("in", &data);
                        gpu.reset_profile();
                        let out = alg.select(&mut gpu, &input, k);
                        black_box((out.values.len(), gpu.elapsed_us()))
                    });
                },
            );
        }
    }
    group.finish();

    // Also report the simulated device times once, so `cargo bench`
    // output carries the figure's actual content.
    println!("\nsimulated device times (us), N=2^16 uniform, batch 1:");
    for k in [8usize, 256, 2048, 16384] {
        for alg in algorithms() {
            let cfg = BenchConfig::new(Workload::Synthetic(Distribution::Uniform), n, k, 1);
            if let Some(row) = run_config(alg.as_ref(), &cfg) {
                println!("  k={k:<6} {:<14} {:>10.1}", row.algo, row.time_us);
            }
        }
    }
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
