//! Criterion bench mirroring Fig. 9 (adaptive-strategy ablation) and
//! Fig. 10 (early-stopping ablation), plus the DESIGN.md ablations the
//! paper doesn't plot: digit width b and the α threshold.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::Distribution;
use gpu_sim::{DeviceSpec, Gpu};
use std::hint::black_box;
use topk_core::{AirConfig, AirTopK, TopKAlgorithm};

fn run(alg: &AirTopK, data: &[f32], k: usize) -> f64 {
    let mut gpu = Gpu::new(DeviceSpec::a100());
    let input = gpu.htod("in", data);
    gpu.reset_profile();
    black_box(alg.select(&mut gpu, &input, k).values.len());
    gpu.elapsed_us()
}

fn bench_adaptive(c: &mut Criterion) {
    let n = 1 << 18;
    let k = 2048;
    let mut group = c.benchmark_group("fig9_adaptive_ablation");
    group.sample_size(10);
    for m in [10u32, 20] {
        let data = datagen::generate(Distribution::RadixAdversarial { m_bits: m }, n, 5);
        for (name, adaptive) in [("adaptive", true), ("no_adaptive", false)] {
            let alg = AirTopK::new(AirConfig {
                adaptive,
                ..AirConfig::default()
            });
            group.bench_with_input(BenchmarkId::new(name, m), &m, |b, _| {
                b.iter(|| black_box(run(&alg, &data, k)));
            });
        }
    }
    group.finish();
}

fn bench_early_stop(c: &mut Criterion) {
    let n = 1 << 18;
    let data = datagen::generate(Distribution::Uniform, n, 5);
    let mut group = c.benchmark_group("fig10_early_stop_ablation");
    group.sample_size(10);
    for (name, early) in [("early_stop", true), ("no_early_stop", false)] {
        let alg = AirTopK::new(AirConfig {
            early_stop: early,
            ..AirConfig::default()
        });
        group.bench_function(name, |b| b.iter(|| black_box(run(&alg, &data, n))));
    }
    group.finish();
}

fn bench_digit_width(c: &mut Criterion) {
    // DESIGN.md ablation: b = 11 needs 3 passes + on-device scan of
    // 2048 buckets; b = 8 needs 4 passes of 256. The paper argues the
    // fused on-device scan makes b = 11 affordable (§3.1).
    let n = 1 << 18;
    let data = datagen::generate(Distribution::Normal, n, 5);
    let mut group = c.benchmark_group("ablation_digit_width");
    group.sample_size(10);
    for b_bits in [4u32, 8, 11] {
        let alg = AirTopK::new(AirConfig {
            bits_per_pass: b_bits,
            ..AirConfig::default()
        });
        group.bench_with_input(BenchmarkId::from_parameter(b_bits), &b_bits, |b, _| {
            b.iter(|| black_box(run(&alg, &data, 2048)));
        });
    }
    group.finish();

    println!("\nsimulated device times (us) by digit width, N=2^18 K=2048:");
    for b_bits in [4u32, 8, 11] {
        let alg = AirTopK::new(AirConfig {
            bits_per_pass: b_bits,
            ..AirConfig::default()
        });
        println!("  b={b_bits:<3} {:>10.1}", run(&alg, &data, 2048));
    }
}

fn bench_alpha(c: &mut Criterion) {
    // DESIGN.md ablation: the α buffering threshold (paper uses 128,
    // lower bound 4).
    let n = 1 << 18;
    let data = datagen::generate(Distribution::Uniform, n, 5);
    let mut group = c.benchmark_group("ablation_alpha");
    group.sample_size(10);
    for alpha in [4usize, 32, 128, 1024] {
        let alg = AirTopK::new(AirConfig {
            alpha,
            ..AirConfig::default()
        });
        group.bench_with_input(BenchmarkId::from_parameter(alpha), &alpha, |b, _| {
            b.iter(|| black_box(run(&alg, &data, 2048)));
        });
    }
    group.finish();
}

fn bench_iteration_fusion(c: &mut Criterion) {
    // §3.1 ablation: the same device-only radix loop with and without
    // iteration fusion (Fig. 2's 4-kernels-per-pass vs Fig. 3's one).
    let n = 1 << 20;
    let data = datagen::generate(Distribution::Uniform, n, 5);
    let mut group = c.benchmark_group("ablation_iteration_fusion");
    group.sample_size(10);
    group.bench_function("fused_air", |b| {
        let alg = AirTopK::default();
        b.iter(|| black_box(run(&alg, &data, 2048)));
    });
    group.bench_function("unfused", |b| {
        let alg = topk_core::UnfusedRadix::default();
        b.iter(|| {
            let mut gpu = Gpu::new(DeviceSpec::a100());
            let input = gpu.htod("in", &data);
            gpu.reset_profile();
            black_box(alg.select(&mut gpu, &input, 2048).values.len());
            black_box(gpu.elapsed_us())
        });
    });
    group.finish();

    // Report the simulated split once so `cargo bench` output carries
    // the ablation's content.
    let sim = |alg: &dyn TopKAlgorithm| {
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let input = gpu.htod("in", &data);
        gpu.reset_profile();
        let _ = alg.select(&mut gpu, &input, 2048);
        (gpu.elapsed_us(), gpu.timeline().kernel_count())
    };
    let (t_f, k_f) = sim(&AirTopK::default());
    let (t_u, k_u) = sim(&topk_core::UnfusedRadix::default());
    println!(
        "\niteration fusion, N=2^20 K=2048: fused {t_f:.1} us / {k_f} launches, \
         unfused {t_u:.1} us / {k_u} launches ({:.2}x)",
        t_u / t_f
    );
}

criterion_group!(
    benches,
    bench_adaptive,
    bench_early_stop,
    bench_digit_width,
    bench_alpha,
    bench_iteration_fusion
);
criterion_main!(benches);
