//! Criterion benches for the library's extension features (beyond the
//! paper's figures): the Dr. Top-K hybrid layer, the auto-dispatcher,
//! the on-the-fly producer API, the largest-K adapter, and 64-bit
//! keys. Host wall time of the simulation, as regression guards.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::Distribution;
use gpu_sim::{DeviceSpec, Gpu};
use std::hint::black_box;
use topk_baselines::SortTopK;
use topk_core::{AirTopK, GridSelect, SelectK, SelectLargest, TopKAlgorithm};
use topk_hybrid::DrTopK;

fn sim_time(alg: &dyn TopKAlgorithm, data: &[f32], k: usize) -> f64 {
    let mut gpu = Gpu::new(DeviceSpec::a100());
    let input = gpu.htod("in", data);
    gpu.reset_profile();
    black_box(alg.select(&mut gpu, &input, k).values.len());
    gpu.elapsed_us()
}

fn bench_hybrid(c: &mut Criterion) {
    let n = 1 << 18;
    let k = 64;
    let data = datagen::generate(Distribution::Uniform, n, 7);
    let mut group = c.benchmark_group("ext_hybrid_drtopk");
    group.sample_size(10);
    group.bench_function("sort_base", |b| {
        let alg = SortTopK;
        b.iter(|| black_box(sim_time(&alg, &data, k)));
    });
    group.bench_function("hybrid_over_sort", |b| {
        let alg = DrTopK::new(SortTopK);
        b.iter(|| black_box(sim_time(&alg, &data, k)));
    });
    group.bench_function("hybrid_over_air", |b| {
        let alg = DrTopK::new(AirTopK::default());
        b.iter(|| black_box(sim_time(&alg, &data, k)));
    });
    group.finish();
}

fn bench_dispatch(c: &mut Criterion) {
    let n = 1 << 18;
    let data = datagen::generate(Distribution::Normal, n, 9);
    let mut group = c.benchmark_group("ext_selectk_dispatch");
    group.sample_size(10);
    for k in [32usize, 4096] {
        group.bench_with_input(BenchmarkId::new("auto", k), &k, |b, &k| {
            let alg = SelectK::default();
            b.iter(|| black_box(sim_time(&alg, &data, k)));
        });
    }
    group.finish();
}

fn bench_on_the_fly(c: &mut Criterion) {
    let n = 1 << 18;
    let k = 32;
    let mut group = c.benchmark_group("ext_on_the_fly");
    group.sample_size(10);
    let data = datagen::generate(Distribution::Uniform, n, 5);
    group.bench_function("materialised", |b| {
        let alg = GridSelect::default();
        b.iter(|| black_box(sim_time(&alg, &data, k)));
    });
    group.bench_function("fused_producer", |b| {
        b.iter(|| {
            let mut gpu = Gpu::new(DeviceSpec::a100());
            gpu.reset_profile();
            let out = GridSelect::default().select_on_the_fly(
                &mut gpu,
                n,
                k,
                |ctx, i| {
                    ctx.ops(2);
                    ((i as f32) * 0.61803).fract()
                },
                |c| c, // the producer reads no device buffers
            );
            black_box((out.unwrap().values.len(), gpu.elapsed_us()))
        });
    });
    group.finish();
}

fn bench_largest_and_64bit(c: &mut Criterion) {
    let n = 1 << 18;
    let k = 128;
    let mut group = c.benchmark_group("ext_adapters");
    group.sample_size(10);
    let data = datagen::generate(Distribution::Normal, n, 3);
    group.bench_function("largest_k_adapter", |b| {
        let alg = SelectLargest::new(AirTopK::default());
        b.iter(|| black_box(sim_time(&alg, &data, k)));
    });
    let data64: Vec<f64> = data.iter().map(|&x| x as f64).collect();
    group.bench_function("air_f64_keys", |b| {
        b.iter(|| {
            let mut gpu = Gpu::new(DeviceSpec::a100());
            let input = gpu.htod("in64", &data64);
            gpu.reset_profile();
            let out = AirTopK::default().run_batch_typed(&mut gpu, &[input], k);
            black_box((out.unwrap().len(), gpu.elapsed_us()))
        });
    });
    group.bench_function("air_f32_keys", |b| {
        let alg = AirTopK::default();
        b.iter(|| black_box(sim_time(&alg, &data, k)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_hybrid,
    bench_dispatch,
    bench_on_the_fly,
    bench_largest_and_64bit
);
criterion_main!(benches);
