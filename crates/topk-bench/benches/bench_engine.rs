//! Criterion bench for the serving layer: drain a fixed mixed-shape
//! query workload through `TopKEngine` at coalescing window 1, 8 and
//! 32, as a host wall-time regression guard. The simulated
//! queries/sec for each window (the number the `topk-bench engine`
//! subcommand reports) is printed once up front, so a bench run also
//! documents the throughput effect of coalescing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use topk_bench::serving::{drain_workload, mixed_workload};

const WINDOWS: [usize; 3] = [1, 8, 32];
const QUERIES: usize = 96;
const DEVICES: usize = 2;

fn bench_engine_windows(c: &mut Criterion) {
    let workload = mixed_workload(QUERIES, false);
    for window in WINDOWS {
        let report = drain_workload(&workload, DEVICES, window);
        eprintln!(
            "[bench_engine] window {:>2}: {:>9.0} simulated queries/sec \
             ({} fused batches, makespan {:.1} us)",
            window,
            report.queries_per_sec(),
            report.fused_batches(),
            report.makespan_us()
        );
    }

    let mut group = c.benchmark_group("engine_throughput");
    group.sample_size(10);
    for window in WINDOWS {
        group.bench_with_input(BenchmarkId::new("window", window), &window, |b, &window| {
            b.iter(|| {
                let report = drain_workload(&workload, DEVICES, window);
                black_box(report.queries_per_sec())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine_windows);
criterion_main!(benches);
