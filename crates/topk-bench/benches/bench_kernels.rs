//! Micro-benchmarks of the simulator substrate itself: metered loads,
//! kernel launch machinery, warp primitives and bitonic networks.
//! These guard the host-side performance of the simulation (the
//! functional work per element) against regressions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gpu_sim::warp::{ballot, exclusive_scan, Lanes};
use gpu_sim::{DeviceSpec, Gpu, LaunchConfig};
use std::hint::black_box;
use topk_core::bitonic::{bitonic_sort, merge_into_topk};

fn bench_metered_stream(c: &mut Criterion) {
    let n = 1 << 20;
    let data: Vec<f32> = (0..n).map(|i| i as f32).collect();
    let mut group = c.benchmark_group("sim_metered_stream");
    group.throughput(Throughput::Elements(n as u64));
    group.sample_size(10);
    group.bench_function("ld_sum_1M", |b| {
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let buf = gpu.htod("in", &data);
        let out = gpu.alloc::<u32>("out", 1);
        b.iter(|| {
            gpu.launch(
                "sum",
                LaunchConfig::for_elements(n, 256, 16, usize::MAX),
                |ctx| {
                    let chunk = 256 * 16;
                    let start = ctx.block_idx * chunk;
                    let end = (start + chunk).min(n);
                    let mut acc = 0u32;
                    for i in start..end {
                        acc = acc.wrapping_add(ctx.ld(&buf, i).to_bits());
                    }
                    ctx.atomic_add(&out, 0, acc);
                },
            );
            black_box(out.get(0))
        });
    });
    group.finish();
}

fn bench_launch_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_launch");
    group.sample_size(20);
    group.bench_function("empty_kernel_128_blocks", |b| {
        let mut gpu = Gpu::new(DeviceSpec::a100());
        b.iter(|| {
            gpu.launch("noop", LaunchConfig::grid_1d(128, 256), |ctx| {
                black_box(ctx.block_idx);
            });
            black_box(gpu.elapsed_us())
        });
    });
    group.finish();
}

fn bench_warp_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("warp_primitives");
    let preds: Lanes<bool> = std::array::from_fn(|i| i % 3 == 0);
    let vals: Lanes<u32> = std::array::from_fn(|i| i as u32);
    group.bench_function("ballot", |b| {
        b.iter(|| black_box(ballot(black_box(&preds))))
    });
    group.bench_function("exclusive_scan", |b| {
        b.iter(|| black_box(exclusive_scan(black_box(&vals))))
    });
    group.finish();
}

fn bench_bitonic(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitonic_networks");
    group.sample_size(20);
    for size in [32usize, 256, 2048] {
        group.bench_with_input(BenchmarkId::new("sort", size), &size, |b, &size| {
            let keys: Vec<u32> = (0..size as u32).rev().collect();
            let payload: Vec<u32> = (0..size as u32).collect();
            b.iter(|| {
                let mut k = keys.clone();
                let mut p = payload.clone();
                black_box(bitonic_sort(&mut k, &mut p, true))
            });
        });
        group.bench_with_input(
            BenchmarkId::new("merge_into_topk", size),
            &size,
            |b, &size| {
                let lk: Vec<u32> = (0..size as u32).map(|x| x * 2).collect();
                let lp: Vec<u32> = (0..size as u32).collect();
                let qk: Vec<u32> = (0..32u32).map(|x| x * 3).collect();
                let qp: Vec<u32> = (0..32u32).collect();
                b.iter(|| {
                    let mut lk = lk.clone();
                    let mut lp = lp.clone();
                    let mut qk = qk.clone();
                    let mut qp = qp.clone();
                    black_box(merge_into_topk(&mut lk, &mut lp, &mut qk, &mut qp))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_metered_stream,
    bench_launch_overhead,
    bench_warp_primitives,
    bench_bitonic
);
criterion_main!(benches);
