//! Criterion bench mirroring Fig. 7: time vs N at fixed K, including
//! the batch dimension. Host wall time of the simulation; simulated
//! device times come from `topk-bench fig7`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use datagen::Distribution;
use gpu_sim::{DeviceSpec, Gpu};
use std::hint::black_box;
use topk_core::{AirTopK, GridSelect, TopKAlgorithm};

fn bench_scaling_in_n(c: &mut Criterion) {
    let k = 256;
    let mut group = c.benchmark_group("fig7_time_vs_n_k256");
    group.sample_size(10);
    for e in [12u32, 14, 16, 18] {
        let n = 1usize << e;
        let data = datagen::generate(Distribution::Normal, n, 3);
        group.throughput(Throughput::Elements(n as u64));
        let algs: Vec<Box<dyn TopKAlgorithm>> = vec![
            Box::new(AirTopK::default()),
            Box::new(GridSelect::default()),
            Box::new(topk_baselines::RadixSelect),
            Box::new(topk_baselines::SortTopK),
        ];
        for alg in algs {
            group.bench_with_input(
                BenchmarkId::new(alg.name().replace(' ', "_"), n),
                &n,
                |b, _| {
                    b.iter(|| {
                        let mut gpu = Gpu::new(DeviceSpec::a100());
                        let input = gpu.htod("in", &data);
                        gpu.reset_profile();
                        black_box(alg.select(&mut gpu, &input, k).values.len())
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_batch(c: &mut Criterion) {
    let k = 64;
    let n = 1 << 13;
    let mut group = c.benchmark_group("fig7_batch_dimension");
    group.sample_size(10);
    for batch in [1usize, 10, 100] {
        let datas: Vec<Vec<f32>> = (0..batch)
            .map(|i| datagen::generate(Distribution::Uniform, n, i as u64))
            .collect();
        group.throughput(Throughput::Elements((batch * n) as u64));
        for (name, alg) in [
            (
                "AIR_TopK",
                Box::new(AirTopK::default()) as Box<dyn TopKAlgorithm>,
            ),
            ("RadixSelect", Box::new(topk_baselines::RadixSelect)),
        ] {
            group.bench_with_input(BenchmarkId::new(name, batch), &batch, |b, _| {
                b.iter(|| {
                    let mut gpu = Gpu::new(DeviceSpec::a100());
                    let inputs: Vec<_> = datas
                        .iter()
                        .enumerate()
                        .map(|(i, d)| gpu.htod(&format!("p{i}"), d))
                        .collect();
                    gpu.reset_profile();
                    black_box(alg.select_batch(&mut gpu, &inputs, k).len())
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_scaling_in_n, bench_batch);
criterion_main!(benches);
