//! Criterion bench mirroring Fig. 11 (shared vs per-thread queues) and
//! Fig. 12 (device comparison), plus a queue-length sweep ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::Distribution;
use gpu_sim::{DeviceSpec, Gpu};
use std::hint::black_box;
use topk_core::{GridSelect, GridSelectConfig, QueueKind, TopKAlgorithm};

fn run(alg: &GridSelect, spec: DeviceSpec, data: &[f32], k: usize) -> f64 {
    let mut gpu = Gpu::new(spec);
    let input = gpu.htod("in", data);
    gpu.reset_profile();
    black_box(alg.select(&mut gpu, &input, k).values.len());
    gpu.elapsed_us()
}

fn bench_queue_kind(c: &mut Criterion) {
    let n = 1 << 18;
    let data = datagen::generate(Distribution::Normal, n, 9);
    let mut group = c.benchmark_group("fig11_queue_ablation");
    group.sample_size(10);
    for k in [64usize, 512, 2048] {
        for (name, queue) in [
            ("shared", QueueKind::Shared { len: 32 }),
            ("per_thread", QueueKind::PerThread { len: 2 }), // Faiss NumThreadQ
        ] {
            let alg = GridSelect::new(GridSelectConfig {
                queue,
                ..GridSelectConfig::default()
            });
            group.bench_with_input(BenchmarkId::new(name, k), &k, |b, &k| {
                b.iter(|| black_box(run(&alg, DeviceSpec::a100(), &data, k)));
            });
        }
    }
    group.finish();
}

fn bench_queue_length(c: &mut Criterion) {
    // DESIGN.md ablation: shared-queue capacity (32 in the paper,
    // trading shared-memory footprint against flush frequency).
    let n = 1 << 18;
    let data = datagen::generate(Distribution::Uniform, n, 9);
    let mut group = c.benchmark_group("ablation_queue_length");
    group.sample_size(10);
    for len in [8usize, 32, 128] {
        let alg = GridSelect::new(GridSelectConfig {
            queue: QueueKind::Shared { len },
            ..GridSelectConfig::default()
        });
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, _| {
            b.iter(|| black_box(run(&alg, DeviceSpec::a100(), &data, 256)));
        });
    }
    group.finish();
}

fn bench_devices(c: &mut Criterion) {
    // Fig. 12's device dimension, exercised through GridSelect.
    let n = 1 << 18;
    let data = datagen::generate(Distribution::Uniform, n, 9);
    let mut group = c.benchmark_group("fig12_devices");
    group.sample_size(10);
    for spec in [DeviceSpec::a10(), DeviceSpec::a100(), DeviceSpec::h100()] {
        let alg = GridSelect::default();
        group.bench_with_input(BenchmarkId::from_parameter(spec.name), &spec, |b, spec| {
            b.iter(|| black_box(run(&alg, spec.clone(), &data, 128)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_queue_kind, bench_queue_length, bench_devices);
criterion_main!(benches);
