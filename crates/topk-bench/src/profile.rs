//! `topk-bench profile` — the continuous-profiler report.
//!
//! Drains the standard mixed serving workload through one instrumented
//! [`TopKEngine`] and folds what the engine already collected into the
//! operator-facing artefacts of the profiling subsystem:
//!
//! * a per-device **roofline table** ([`gpu_sim::roofline`]): every
//!   kernel's achieved bandwidth/throughput against the
//!   [`DeviceSpec`](gpu_sim::DeviceSpec) peaks, classified memory- vs
//!   compute- vs latency-bound;
//! * the drain's **stage attribution** (queue wait / transfer / kernel
//!   / merge / retry penalty / other);
//! * the **cost-model drift table** (predicted vs observed per plan
//!   bucket) and the tuner's EMA **calibration** state;
//! * any **flight-recorder post-mortems** the drain triggered.
//!
//! One deliberately invalid query (`k = 0`) rides along, exactly as in
//! [`crate::serving::engine_observability`]: its terminal failure
//! trips the flight recorder, so the report always carries a real
//! post-mortem document instead of an empty placeholder.

use crate::serving::{mixed_workload, EngineBenchOpts};
use gpu_sim::{render_roofline, roofline, Bound, RooflineRow};
use topk_engine::{EngineConfig, StageBreakdown, TopKEngine};

/// Everything one profiling run produces.
#[derive(Debug, Clone)]
pub struct ProfileArtifacts {
    /// Aligned text report (rooflines, stages, drift, calibration) for
    /// the CLI.
    pub text: String,
    /// Self-contained HTML report with inline-SVG roofline bars.
    pub html: String,
    /// Post-mortem JSON documents the drain triggered (at least one:
    /// the induced invalid-query failure).
    pub post_mortems: Vec<String>,
    /// Prometheus text exposition after the drain, including the
    /// `topk_profile_*` and `topk_tuner_drift_*` series.
    pub metrics: String,
}

/// Run the profiling drain and render every artefact.
pub fn profile_report(opts: &EngineBenchOpts) -> ProfileArtifacts {
    let workload = mixed_workload(opts.queries, opts.full);
    let window = opts.windows.iter().copied().max().unwrap_or(8);
    let mut cfg = EngineConfig::a100_pool(opts.devices)
        .with_window(window)
        .with_queue_capacity(workload.len() + 1);
    if let Some(plan) = opts.fault_plan() {
        cfg = cfg.with_faults(plan);
    }
    if let Some(d) = opts.deadline_us {
        cfg = cfg.with_deadline_us(d);
    }
    let mut engine = TopKEngine::new(cfg);
    for (data, k) in &workload {
        engine
            .submit(data.clone(), *k)
            .expect("queue sized to the workload");
    }
    // The induced anomaly: a query no device can serve, so the flight
    // recorder demonstrably triggers.
    engine
        .submit(vec![1.0, 2.0], 0)
        .expect("queue sized to the workload");
    let report = engine.drain();

    let rooflines: Vec<(usize, Vec<RooflineRow>)> = report
        .devices
        .iter()
        .map(|d| {
            let spec = &engine.config().devices[d.device];
            (d.device, roofline(spec, &d.kernel_reports))
        })
        .collect();

    let text = render_text(
        window,
        opts.devices,
        report.results.len(),
        &rooflines,
        &report.stages,
        &engine.drift_table_text(),
        &engine.calibration(),
    );
    let post_mortems = engine.take_post_mortems();
    let html = render_html(&text, &rooflines, &post_mortems);
    ProfileArtifacts {
        text,
        html,
        post_mortems,
        metrics: engine.render_prometheus(),
    }
}

fn render_text(
    window: usize,
    devices: usize,
    queries: usize,
    rooflines: &[(usize, Vec<RooflineRow>)],
    stages: &StageBreakdown,
    drift_text: &str,
    calibration: &[(&'static str, f64)],
) -> String {
    let mut out = format!(
        "=== Continuous profile: {queries} queries, {devices} devices, window {window} ===\n"
    );
    for (dev, rows) in rooflines {
        out.push_str(&format!("\n-- device {dev} roofline --\n"));
        out.push_str(&render_roofline(rows));
    }
    out.push_str("\n-- stage attribution (drain total) --\n");
    for (stage, us) in stages.rows() {
        out.push_str(&format!("{stage:<14} {us:>12.1} us\n"));
    }
    out.push_str("\n-- cost-model drift (observed / predicted per plan bucket) --\n");
    out.push_str(drift_text);
    out.push_str("\n-- tuner calibration (EMA factor per family) --\n");
    if calibration.is_empty() {
        out.push_str("(no tuner)\n");
    }
    for (family, factor) in calibration {
        out.push_str(&format!("{family:<10} {factor:>7.3}\n"));
    }
    out
}

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

fn bound_colour(bound: Bound) -> &'static str {
    match bound {
        Bound::Memory => "#1f6feb",
        Bound::Compute => "#cf222e",
        Bound::Latency => "#888888",
    }
}

/// Horizontal %-of-peak bars, one per kernel: the filled fraction is
/// the binding resource's achieved/peak ratio, coloured by the
/// roofline classification.
fn svg_roofline_bars(device: usize, rows: &[RooflineRow]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let (w, row_h, ml) = (860.0, 22.0, 280.0);
    let h = 40.0 + row_h * rows.len() as f64;
    let pw = w - ml - 80.0;
    let mut svg = format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w:.0}\" height=\"{h:.0}\" \
         font-family=\"sans-serif\" font-size=\"11\">\n\
         <text x=\"0\" y=\"16\" font-size=\"13\" font-weight=\"bold\">device {device} \
         — percent of peak for the binding resource</text>\n"
    );
    for (i, r) in rows.iter().enumerate() {
        let y = 30.0 + row_h * i as f64;
        let frac = match r.bound {
            Bound::Compute => r.peak_ops_frac,
            _ => r.peak_bw_frac,
        }
        .clamp(0.0, 1.0);
        svg.push_str(&format!(
            "<text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"end\">{}</text>\n\
             <rect x=\"{ml}\" y=\"{y:.1}\" width=\"{pw:.1}\" height=\"14\" fill=\"#eee\"/>\n\
             <rect x=\"{ml}\" y=\"{y:.1}\" width=\"{:.1}\" height=\"14\" fill=\"{}\"/>\n\
             <text x=\"{:.1}\" y=\"{:.1}\">{:.0}% {} ({} launches)</text>\n",
            ml - 8.0,
            y + 11.0,
            esc(&r.kernel),
            pw * frac,
            bound_colour(r.bound),
            ml + pw + 6.0,
            y + 11.0,
            frac * 100.0,
            r.bound.label(),
            r.launches,
        ));
    }
    svg.push_str("</svg>\n");
    svg
}

fn render_html(
    text: &str,
    rooflines: &[(usize, Vec<RooflineRow>)],
    post_mortems: &[String],
) -> String {
    let mut html = String::from(
        "<!doctype html><html><head><meta charset=\"utf-8\">\
         <title>gpu-topk continuous profile</title>\
         <style>body{font-family:sans-serif;max-width:1080px;margin:24px auto;}\
         pre{background:#f6f8fa;padding:12px;overflow-x:auto;font-size:12px;}\
         h2{border-bottom:1px solid #ddd;padding-bottom:4px;}</style>\
         </head><body>\n<h1>gpu-topk continuous profile</h1>\n\
         <p>Per-kernel roofline aggregation, stage-level latency \
         attribution, cost-model drift and flight-recorder post-mortems \
         from one instrumented TopKEngine drain. Blue bars are \
         memory-bound kernels, red compute-bound, grey latency-bound.</p>\n",
    );
    html.push_str("<h2>Roofline</h2>\n");
    for (dev, rows) in rooflines {
        html.push_str(&svg_roofline_bars(*dev, rows));
    }
    html.push_str(&format!(
        "<h2>Profile tables</h2>\n<pre>{}</pre>\n",
        esc(text)
    ));
    if !post_mortems.is_empty() {
        html.push_str(&format!(
            "<h2>Flight-recorder post-mortems ({})</h2>\n",
            post_mortems.len()
        ));
        for pm in post_mortems {
            html.push_str(&format!("<pre>{}</pre>\n", esc(pm)));
        }
    }
    html.push_str("</body></html>\n");
    html
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_report_is_complete_and_triggers_a_post_mortem() {
        let opts = EngineBenchOpts {
            queries: 12,
            devices: 2,
            windows: vec![4],
            ..Default::default()
        };
        let art = profile_report(&opts);
        assert!(art.text.contains("device 0 roofline"), "{}", art.text);
        assert!(art.text.contains("stage attribution"), "{}", art.text);
        assert!(art.text.contains("cost-model drift"), "{}", art.text);
        assert!(art.text.contains("tuner calibration"), "{}", art.text);
        // The induced k=0 failure must have tripped the recorder.
        assert!(!art.post_mortems.is_empty());
        assert!(art.post_mortems[0].contains("\"trigger\""));
        assert!(art.html.contains("<svg"), "roofline bars present");
        assert!(art.html.contains("Flight-recorder post-mortems"));
        assert!(art.metrics.contains("topk_profile_peak_bw_frac"));
        assert!(art.metrics.contains("topk_tuner_drift_ratio"));
        assert!(art.metrics.contains("topk_engine_stage_us"));
    }

    #[test]
    fn roofline_bars_escape_and_scale() {
        let rows = vec![RooflineRow {
            kernel: "air<hist>".into(),
            launches: 3,
            exec_us: 10.0,
            mem_bytes: 1 << 20,
            compute_ops: 1 << 18,
            lanes: 4096,
            occupancy: 0.9,
            achieved_bw: 500.0,
            achieved_ops: 100.0,
            peak_bw_frac: 0.4,
            peak_ops_frac: 0.1,
            intensity: 0.25,
            bound: Bound::Memory,
        }];
        let svg = svg_roofline_bars(0, &rows);
        assert!(svg.contains("air&lt;hist&gt;"));
        assert!(!svg.contains("air<hist>"));
        assert!(svg.contains("#1f6feb"), "memory-bound colour");
        assert_eq!(svg_roofline_bars(0, &[]), "");
    }
}
