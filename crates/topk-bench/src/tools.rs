//! Ad-hoc tool subcommands beyond the paper's figures.
//!
//! * [`compare`] — run a chosen set of algorithms on one custom
//!   configuration and print a side-by-side breakdown (time, launches,
//!   PCIe, traffic). The "let me just check this one shape" tool.
//! * [`tune_alpha`] — the calibration experiment the paper alludes to
//!   in §3.2: "Because candidate storing might be uncoalesced, the
//!   optimal value of α should be determined by experiments in
//!   practice." Sweeps α across distributions and reports the winner
//!   (the paper settled on 128 for the A100; §5).

use datagen::Distribution;
use topk_core::{AirConfig, AirTopK, TopKAlgorithm};

use crate::report::Row;
use crate::runner::{run_config, BenchConfig, Workload};

/// Options for one ad-hoc comparison.
#[derive(Debug, Clone)]
pub struct CompareOpts {
    /// Algorithm names (paper spelling, case-insensitive-ish matching
    /// as in `gpu_topk::algorithm_by_name`). Empty = all ten.
    pub algos: Vec<String>,
    /// Problem size.
    pub n: usize,
    /// Results per problem.
    pub k: usize,
    /// Batch size.
    pub batch: usize,
    /// Input distribution.
    pub dist: Distribution,
    /// Verify outputs.
    pub verify: bool,
}

impl Default for CompareOpts {
    fn default() -> Self {
        CompareOpts {
            algos: Vec::new(),
            n: 1 << 20,
            k: 256,
            batch: 1,
            dist: Distribution::Uniform,
            verify: true,
        }
    }
}

fn norm(s: &str) -> String {
    s.chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .map(|c| c.to_ascii_lowercase())
        .collect()
}

/// Run the comparison; returns the measured rows and prints a table.
pub fn compare(opts: &CompareOpts) -> Vec<Row> {
    let mut algs: Vec<Box<dyn TopKAlgorithm>> = topk_baselines::all_baselines();
    algs.push(Box::new(AirTopK::default()));
    algs.push(Box::new(topk_core::GridSelect::default()));
    // The approximate rungs, planned for a 0.95 expected recall on the
    // requested shape. Exact verification is expected to flag them —
    // pair with `--no-verify` when comparing their speed.
    algs.push(Box::new(topk_core::BucketedTopK::for_recall(
        opts.n, opts.k, 0.95,
    )));
    algs.push(Box::new(topk_core::TwoStageTopK::for_recall(
        opts.n, opts.k, 0.95,
    )));
    if !opts.algos.is_empty() {
        let wanted: Vec<String> = opts.algos.iter().map(|a| norm(a)).collect();
        algs.retain(|a| wanted.contains(&norm(a.name())));
    }

    let mut cfg = BenchConfig::new(Workload::Synthetic(opts.dist), opts.n, opts.k, opts.batch);
    cfg.verify = opts.verify;

    println!(
        "compare: dist={} N={} K={} batch={}\n",
        opts.dist.name(),
        opts.n,
        opts.k,
        opts.batch
    );
    println!(
        "{:<16} {:>12} {:>9} {:>12} {:>12} {:>10}",
        "algorithm", "time us", "kernels", "pcie us", "idle us", "MiB moved"
    );
    let mut rows = Vec::new();
    for alg in &algs {
        match run_config(alg.as_ref(), &cfg) {
            Some(row) => {
                println!(
                    "{:<16} {:>12.1} {:>9} {:>12.1} {:>12.1} {:>10.1}",
                    row.algo,
                    row.time_us,
                    row.kernels,
                    row.pcie_us,
                    row.idle_us,
                    row.mem_bytes as f64 / (1 << 20) as f64
                );
                rows.push(row);
            }
            None => println!("{:<16} {:>12}", alg.name(), "unsupported"),
        }
    }
    rows
}

/// One α sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct AlphaPoint {
    /// The α value.
    pub alpha: usize,
    /// Workload name.
    pub workload: String,
    /// Simulated time, µs.
    pub time_us: f64,
}

/// Sweep the §3.2 buffering threshold α and report per-distribution
/// winners. Returns all measured points.
pub fn tune_alpha(n: usize, k: usize, alphas: &[usize], verbose: bool) -> Vec<AlphaPoint> {
    let dists = [
        Distribution::Uniform,
        Distribution::Normal,
        Distribution::RadixAdversarial { m_bits: 10 },
        Distribution::RadixAdversarial { m_bits: 20 },
    ];
    let mut points = Vec::new();
    for dist in dists {
        let mut best: Option<(usize, f64)> = None;
        for &alpha in alphas {
            let alg = AirTopK::new(AirConfig {
                alpha,
                ..AirConfig::default()
            });
            let cfg = BenchConfig::new(Workload::Synthetic(dist), n, k, 1);
            let row = run_config(&alg, &cfg).expect("AIR supports all configs");
            if verbose {
                println!(
                    "  alpha={alpha:<6} dist={:<14} {:>10.1} us",
                    dist.name(),
                    row.time_us
                );
            }
            if best.is_none_or(|(_, t)| row.time_us < t) {
                best = Some((alpha, row.time_us));
            }
            points.push(AlphaPoint {
                alpha,
                workload: dist.name(),
                time_us: row.time_us,
            });
        }
        let (ba, bt) = best.unwrap();
        println!("best alpha for {:<14}: {ba} ({bt:.1} us)", dist.name());
    }
    points
}

/// The §5.1 correctness gate as a standalone artifact: run every
/// algorithm over a matrix of distributions and awkward problem
/// shapes, verify each output strictly, and print a pass/fail grid.
/// Returns the number of failures (0 on a healthy build).
pub fn verify_matrix(quick: bool) -> usize {
    use gpu_sim::{DeviceSpec, Gpu};
    use topk_core::verify_topk;

    let shapes: Vec<(usize, usize)> = if quick {
        vec![(1, 1), (1000, 7), (8192, 2048), (20_000, 19_999)]
    } else {
        vec![
            (1, 1),
            (2, 1),
            (33, 32),
            (1000, 7),
            (4097, 4096),
            (8192, 2048),
            (20_000, 1),
            (20_000, 19_999),
            (65_536, 65_536),
            (100_000, 256),
        ]
    };
    let mut algs: Vec<Box<dyn TopKAlgorithm>> = topk_baselines::all_baselines();
    algs.push(Box::new(AirTopK::default()));
    algs.push(Box::new(topk_core::GridSelect::default()));
    algs.push(Box::new(topk_core::UnfusedRadix::default()));
    algs.push(Box::new(topk_core::SelectK::default()));
    algs.push(Box::new(topk_hybrid::DrTopK::new(AirTopK::default())));

    let mut failures = 0usize;
    println!(
        "{:<16} {:>9} {:>9} {:>15}  result",
        "algorithm", "n", "k", "distribution"
    );
    for dist in Distribution::benchmark_set() {
        for &(n, k) in &shapes {
            let data = datagen::generate(dist, n, (n + k) as u64);
            for alg in &algs {
                if k > n || alg.max_k().is_some_and(|mk| k > mk) {
                    continue;
                }
                let mut gpu = Gpu::new(DeviceSpec::a100());
                let input = gpu.htod("in", &data);
                let out = alg.select(&mut gpu, &input, k);
                let res = verify_topk(&data, k, &out.values.to_vec(), &out.indices.to_vec());
                if let Err(e) = res {
                    failures += 1;
                    println!(
                        "{:<16} {:>9} {:>9} {:>15}  FAIL: {e}",
                        alg.name(),
                        n,
                        k,
                        dist.name()
                    );
                }
            }
        }
    }
    let total = algs.len();
    if failures == 0 {
        println!(
            "all {} algorithms passed on {} shapes x {} distributions",
            total,
            shapes.len(),
            3
        );
    } else {
        println!("{failures} verification failures");
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compare_filters_by_name() {
        let opts = CompareOpts {
            algos: vec!["AIR Top-K".into(), "radixselect".into()],
            n: 20_000,
            k: 64,
            batch: 1,
            dist: Distribution::Uniform,
            verify: true,
        };
        let rows = compare(&opts);
        let names: Vec<_> = rows.iter().map(|r| r.algo.as_str()).collect();
        assert_eq!(names, vec!["RadixSelect", "AIR Top-K"]);
        assert!(rows.iter().all(|r| r.verified));
    }

    #[test]
    fn compare_all_when_unfiltered() {
        let opts = CompareOpts {
            n: 10_000,
            k: 32,
            verify: false,
            ..CompareOpts::default()
        };
        let rows = compare(&opts);
        // 8 baselines + AIR + GridSelect + the two approximate rungs.
        assert_eq!(rows.len(), 12);
        assert!(rows.iter().any(|r| r.algo.contains("approx")));
    }

    #[test]
    fn tune_alpha_flags_adversarial_preference_for_large_alpha() {
        // Under adversarial data candidates stay huge, so buffering
        // never pays: large alpha (buffer less) must not lose.
        let pts = tune_alpha(1 << 18, 2048, &[4, 128, 4096], false);
        let adv_best = pts
            .iter()
            .filter(|p| p.workload == "adversarial20")
            .min_by(|a, b| a.time_us.total_cmp(&b.time_us))
            .unwrap();
        assert!(
            adv_best.alpha >= 128,
            "adversarial winner should buffer conservatively, got {}",
            adv_best.alpha
        );
        // And every sweep point is positive/finite.
        assert!(pts.iter().all(|p| p.time_us.is_finite() && p.time_us > 0.0));
    }
}
