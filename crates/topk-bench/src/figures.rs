//! Experiment definitions: one function per paper artefact.
//!
//! Each function returns the measured [`Row`]s and prints a readable
//! rendition of the figure/table. Default grids are scaled for a
//! laptop-class host; `full = true` uses the paper's exact grid
//! (N up to 2³⁰ — hours of wall time and ≥ 8 GiB of RAM).

use datagen::{AnnKind, Distribution};
use gpu_sim::profile::{render_sol_table, sol_table};
use gpu_sim::{DeviceSpec, Gpu};
use topk_core::{AirConfig, AirTopK, GridSelect, GridSelectConfig, QueueKind, TopKAlgorithm};

use crate::report::{
    render_ascii_chart, render_series_table, speedup_ranges, speedup_vs_sota, Row, SpeedupRange,
};
use crate::runner::{run_config, BenchConfig, Workload};

/// Common options for all experiments.
#[derive(Debug, Clone)]
pub struct FigOpts {
    /// Use the paper's exact grid instead of the scaled-down default.
    pub full: bool,
    /// Verify every output against the reference (slow).
    pub verify: bool,
    /// Print progress to stderr.
    pub progress: bool,
}

impl Default for FigOpts {
    fn default() -> Self {
        FigOpts {
            full: false,
            verify: false,
            progress: true,
        }
    }
}

fn progress(opts: &FigOpts, msg: &str) {
    if opts.progress {
        eprintln!("[topk-bench] {msg}");
    }
}

/// The eight baseline names (Table 1), used for SOTA computation.
pub const BASELINE_NAMES: [&str; 8] = [
    "Sort",
    "WarpSelect",
    "BlockSelect",
    "Bitonic Top-K",
    "QuickSelect",
    "BucketSelect",
    "SampleSelect",
    "RadixSelect",
];

fn all_algorithms() -> Vec<Box<dyn TopKAlgorithm>> {
    let mut algs = topk_baselines::all_baselines();
    algs.push(Box::new(AirTopK::default()) as Box<dyn TopKAlgorithm>);
    algs.push(Box::new(GridSelect::default()) as Box<dyn TopKAlgorithm>);
    algs
}

fn sweep(opts: &FigOpts, configs: &[BenchConfig], label: &str) -> Vec<Row> {
    let algs = all_algorithms();
    let mut rows = Vec::new();
    for (i, cfg) in configs.iter().enumerate() {
        progress(
            opts,
            &format!(
                "{label}: config {}/{} (dist={} n=2^{:.0} k={} batch={})",
                i + 1,
                configs.len(),
                cfg.workload.name(),
                (cfg.n as f64).log2(),
                cfg.k,
                cfg.batch
            ),
        );
        for alg in &algs {
            if let Some(row) = run_config(alg.as_ref(), cfg) {
                rows.push(row);
            }
        }
    }
    rows
}

/// Fig. 6: running time vs K for fixed N, batch 1, three distributions.
pub fn fig6(opts: &FigOpts) -> Vec<Row> {
    let ns: Vec<usize> = if opts.full {
        vec![1 << 15, 1 << 20, 1 << 25, 1 << 30]
    } else {
        vec![1 << 15, 1 << 18, 1 << 21]
    };
    let ks: Vec<usize> = if opts.full {
        (3..=20).map(|e| 1usize << e).collect()
    } else {
        vec![8, 32, 128, 512, 2048, 8192, 32768, 131072]
    };
    let mut configs = Vec::new();
    for dist in Distribution::benchmark_set() {
        for &n in &ns {
            for &k in &ks {
                if k <= n {
                    let mut c = BenchConfig::new(Workload::Synthetic(dist), n, k, 1);
                    c.verify = opts.verify;
                    configs.push(c);
                }
            }
        }
    }
    let rows = sweep(opts, &configs, "fig6");

    // Print one sub-table per (distribution, N) like the 12 sub-plots.
    let algos: Vec<String> = all_algorithms()
        .iter()
        .map(|a| a.name().to_string())
        .collect();
    for dist in Distribution::benchmark_set() {
        for &n in &ns {
            let sub: Vec<Row> = rows
                .iter()
                .filter(|r| r.workload == dist.name() && r.n == n)
                .cloned()
                .collect();
            if sub.is_empty() {
                continue;
            }
            println!(
                "\n=== Fig. 6: {} N=2^{:.0}, batch 1, time (us) vs K ===",
                dist.name(),
                (n as f64).log2()
            );
            println!("{}", render_series_table(&sub, "k", &algos));
            println!("{}", render_ascii_chart(&sub, "k", &algos, 72, 16));
        }
    }
    rows
}

/// Fig. 7: running time vs N for fixed K, batch 1 and 100.
pub fn fig7(opts: &FigOpts) -> Vec<Row> {
    let ks = [32usize, 256, 32768];
    let ns_b1: Vec<usize> = if opts.full {
        (11..=30).map(|e| 1usize << e).collect()
    } else {
        (11..=21).map(|e| 1usize << e).collect()
    };
    let ns_b100: Vec<usize> = if opts.full {
        (11..=23).map(|e| 1usize << e).collect()
    } else {
        (11..=16).map(|e| 1usize << e).collect()
    };

    let mut configs = Vec::new();
    for dist in Distribution::benchmark_set() {
        for &k in &ks {
            for &n in &ns_b1 {
                if k <= n {
                    let mut c = BenchConfig::new(Workload::Synthetic(dist), n, k, 1);
                    c.verify = opts.verify;
                    configs.push(c);
                }
            }
            for &n in &ns_b100 {
                if k <= n {
                    let mut c = BenchConfig::new(Workload::Synthetic(dist), n, k, 100);
                    c.verify = opts.verify;
                    configs.push(c);
                }
            }
        }
    }
    let rows = sweep(opts, &configs, "fig7");

    let algos: Vec<String> = all_algorithms()
        .iter()
        .map(|a| a.name().to_string())
        .collect();
    for dist in Distribution::benchmark_set() {
        for &batch in &[1usize, 100] {
            for &k in &ks {
                let sub: Vec<Row> = rows
                    .iter()
                    .filter(|r| r.workload == dist.name() && r.k == k && r.batch == batch)
                    .cloned()
                    .collect();
                if sub.is_empty() {
                    continue;
                }
                println!(
                    "\n=== Fig. 7: {} K={k} batch={batch}, time (us) vs N ===",
                    dist.name()
                );
                println!("{}", render_series_table(&sub, "n", &algos));
                println!("{}", render_ascii_chart(&sub, "n", &algos, 72, 16));
            }
        }
    }
    rows
}

/// Machine-readable Table 2 — the artifact's `speedup.csv` equivalent:
/// one line per (batch, distribution, comparison) with min/max/count.
pub fn table2_csv(rows: &[Row]) -> String {
    let mut out = String::from("batch,distribution,comparison,min,max,count\n");
    for (name, ranges) in [
        (
            "air_vs_radixselect",
            speedup_ranges(rows, "AIR Top-K", "RadixSelect"),
        ),
        (
            "gridselect_vs_blockselect",
            speedup_ranges(rows, "GridSelect", "BlockSelect"),
        ),
        (
            "air_vs_sota",
            speedup_vs_sota(rows, "AIR Top-K", &BASELINE_NAMES),
        ),
    ] {
        for ((batch, dist), r) in &ranges {
            out.push_str(&format!(
                "{batch},{dist},{name},{:.4},{:.4},{}\n",
                r.min, r.max, r.count
            ));
        }
    }
    out
}

/// Table 2: speedup ranges over the Fig. 6 + Fig. 7 grid.
pub fn table2(rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str("=== Table 2: Summary of Speedup Range ===\n");
    out.push_str(&format!(
        "{:<6} {:<14} {:>22} {:>26} {:>18}\n",
        "Batch", "Distribution", "AIR vs RadixSelect", "GridSelect vs BlockSelect", "AIR vs SOTA"
    ));

    let air_vs_radix = speedup_ranges(rows, "AIR Top-K", "RadixSelect");
    let grid_vs_block = speedup_ranges(rows, "GridSelect", "BlockSelect");
    let air_vs_sota = speedup_vs_sota(rows, "AIR Top-K", &BASELINE_NAMES);

    let mut groups: Vec<(usize, String)> = air_vs_radix.keys().cloned().collect();
    groups.sort();
    let na = SpeedupRange {
        min: f64::NAN,
        max: f64::NAN,
        count: 0,
    };
    for g in groups {
        let a = air_vs_radix.get(&g).unwrap_or(&na);
        let b = grid_vs_block.get(&g).unwrap_or(&na);
        let c = air_vs_sota.get(&g).unwrap_or(&na);
        out.push_str(&format!(
            "{:<6} {:<14} {:>22} {:>26} {:>18}\n",
            g.0,
            g.1,
            a.to_string(),
            b.to_string(),
            c.to_string()
        ));
    }
    out
}

/// Fig. 8: timeline breakdown of RadixSelect vs AIR Top-K
/// (N = 2²³, K = 2048, uniform).
pub fn fig8(opts: &FigOpts) -> String {
    let n = if opts.full { 1 << 23 } else { 1 << 21 };
    let k = 2048;
    let data = datagen::generate(Distribution::Uniform, n, 7);
    let mut out = String::new();

    let mut render = |name: &str, alg: &dyn TopKAlgorithm| {
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let input = gpu.htod("in", &data);
        gpu.reset_profile();
        let _ = alg.select(&mut gpu, &input, k);
        out.push_str(&format!(
            "\n--- {name} (N=2^{:.0}, K={k}) ---\n",
            (n as f64).log2()
        ));
        out.push_str(&format!("{}\n", gpu.timeline().render_ascii(100)));
        out.push_str(&gpu.timeline().render_list());
        out.push_str(&format!(
            "total {:.1} us | kernels {} | memcpy {:.1} us | device idle {:.1} us\n",
            gpu.elapsed_us(),
            gpu.timeline().kernel_count(),
            gpu.timeline().memcpy_us(),
            gpu.timeline().idle_us()
        ));
    };

    render("RadixSelect", &topk_baselines::RadixSelect);
    render("AIR Top-K", &AirTopK::default());
    out.push_str("\nLegend: # kernel, > HtoD, < DtoH, . host sync, ~ host compute, | launch\n");
    out
}

/// Fig. 8 as Chrome-trace JSON (open in chrome://tracing or Perfetto),
/// one document per algorithm. Returns (name, json) pairs.
pub fn fig8_traces(opts: &FigOpts) -> Vec<(String, String)> {
    let n = if opts.full { 1 << 23 } else { 1 << 21 };
    let k = 2048;
    let data = datagen::generate(Distribution::Uniform, n, 7);
    let mut traces = Vec::new();
    let algs: Vec<Box<dyn TopKAlgorithm>> = vec![
        Box::new(topk_baselines::RadixSelect),
        Box::new(AirTopK::default()),
    ];
    for (name, alg) in ["radixselect", "air_topk"].iter().zip(algs) {
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let input = gpu.htod("in", &data);
        gpu.reset_profile();
        let _ = alg.select(&mut gpu, &input, k);
        traces.push((
            name.to_string(),
            gpu_sim::to_chrome_trace(
                gpu.timeline(),
                &format!("{} N=2^{:.0} K={k}", alg.name(), (n as f64).log2()),
            ),
        ));
    }
    traces
}

/// Table 3: per-kernel Memory/Compute SOL for AIR Top-K
/// (paper: N = 2³⁰, K = 2048; default here N = 2²⁴).
pub fn table3(opts: &FigOpts) -> String {
    let n = if opts.full { 1 << 28 } else { 1 << 24 };
    let k = 2048;
    let data = datagen::generate(Distribution::Uniform, n, 9);
    let mut gpu = Gpu::new(DeviceSpec::a100());
    let input = gpu.htod("in", &data);
    gpu.reset_profile();
    let _ = AirTopK::default().select(&mut gpu, &input, k);
    let rows = sol_table(gpu.reports());
    format!(
        "=== Table 3: Kernel Performance Analysis for AIR Top-K (N=2^{:.0}, K={k}) ===\n{}",
        (n as f64).log2(),
        render_sol_table(&rows)
    )
}

/// Fig. 9: AIR Top-K with/without the adaptive strategy on
/// radix-adversarial data with M = 10 and M = 20.
pub fn fig9(opts: &FigOpts) -> Vec<Row> {
    let ns: Vec<usize> = if opts.full {
        (20..=27).map(|e| 1usize << e).collect()
    } else {
        (16..=22).step_by(2).map(|e| 1usize << e).collect()
    };
    let k = 2048;
    let mut rows = Vec::new();
    for m in [10u32, 20] {
        for &n in &ns {
            let dist = Distribution::RadixAdversarial { m_bits: m };
            let mut cfg = BenchConfig::new(Workload::Synthetic(dist), n, k, 1);
            cfg.verify = opts.verify;
            progress(opts, &format!("fig9: M={m} n=2^{:.0}", (n as f64).log2()));

            let with = AirTopK::default();
            let without = AirTopK::new(AirConfig {
                adaptive: false,
                ..AirConfig::default()
            });
            let mut r1 = run_config(&with, &cfg).unwrap();
            r1.algo = "AIR (adaptive)".into();
            let mut r2 = run_config(&without, &cfg).unwrap();
            r2.algo = "AIR (no adaptive)".into();
            rows.push(r1);
            rows.push(r2);
        }
    }
    for m in [10u32, 20] {
        let dist_name = format!("adversarial{m}");
        let sub: Vec<Row> = rows
            .iter()
            .filter(|r| r.workload == dist_name)
            .cloned()
            .collect();
        println!("\n=== Fig. 9: adaptive strategy, M={m}, K={k}, time (us) vs N ===");
        println!(
            "{}",
            render_series_table(
                &sub,
                "n",
                &["AIR (adaptive)".into(), "AIR (no adaptive)".into()]
            )
        );
        for n in sub
            .iter()
            .map(|r| r.n)
            .collect::<std::collections::BTreeSet<_>>()
        {
            let t_a = sub
                .iter()
                .find(|r| r.n == n && r.algo.contains("(adaptive"))
                .unwrap();
            let t_n = sub
                .iter()
                .find(|r| r.n == n && r.algo.contains("no "))
                .unwrap();
            println!(
                "  N=2^{:.0}: speedup {:.2}x",
                (n as f64).log2(),
                t_n.time_us / t_a.time_us
            );
        }
    }
    rows
}

/// Fig. 10: AIR Top-K with/without early stopping.
///
/// Early stopping (§3.3) fires when the remaining K exactly equals the
/// candidate count after some pass. On continuous data that equality
/// almost never happens; it occurs naturally on *clustered* inputs —
/// discrete score values, quantised distances — whenever K covers
/// whole clusters. We sweep N on a clustered workload (V equal-sized
/// value groups with K covering half of them) so the trigger fires
/// after pass 0, and report the saving. The paper's measured maximum
/// improvement is 18.7%.
pub fn fig10(opts: &FigOpts) -> Vec<Row> {
    let ns: Vec<usize> = if opts.full {
        (18..=26).step_by(2).map(|e| 1usize << e).collect()
    } else {
        (16..=22).step_by(2).map(|e| 1usize << e).collect()
    };
    let clusters = 16usize;
    let mut rows = Vec::new();
    for &n in &ns {
        // V clusters of distinct magnitudes; K covers exactly half of
        // them, so after pass 0 the candidates equal the remaining K.
        let data: Vec<f32> = (0..n).map(|i| (1 + (i % clusters)) as f32 * 3.5).collect();
        let k = n / 2;
        progress(opts, &format!("fig10: n=2^{:.0}", (n as f64).log2()));
        let time = |early: bool| -> Row {
            let with = AirTopK::new(AirConfig {
                early_stop: early,
                ..AirConfig::default()
            });
            let mut gpu = Gpu::new(DeviceSpec::a100());
            let input = gpu.htod("in", &data);
            gpu.reset_profile();
            let out = with.select(&mut gpu, &input, k);
            if opts.verify {
                topk_core::verify_topk(&data, k, &out.values.to_vec(), &out.indices.to_vec())
                    .unwrap();
            }
            Row {
                algo: if early {
                    "AIR (early stop)".into()
                } else {
                    "AIR (no early stop)".into()
                },
                device: "A100".into(),
                workload: "clustered16".into(),
                n,
                k,
                batch: 1,
                time_us: gpu.elapsed_us(),
                mem_bytes: gpu
                    .reports()
                    .iter()
                    .map(|r| r.stats.total_mem_bytes())
                    .sum(),
                kernels: gpu.timeline().kernel_count(),
                pcie_us: gpu.timeline().memcpy_us(),
                idle_us: gpu.timeline().idle_us(),
                verified: true,
            }
        };
        rows.push(time(true));
        rows.push(time(false));
    }
    println!("\n=== Fig. 10: early stopping, clustered data, K=N/2, time (us) vs N ===");
    println!(
        "{}",
        render_series_table(
            &rows,
            "n",
            &["AIR (early stop)".into(), "AIR (no early stop)".into()]
        )
    );
    for &n in &ns {
        let t_w = rows
            .iter()
            .find(|r| r.n == n && r.algo.contains("(early"))
            .unwrap();
        let t_o = rows
            .iter()
            .find(|r| r.n == n && r.algo.contains("no "))
            .unwrap();
        println!(
            "  N=2^{:.0}: improvement {:.1}%",
            (n as f64).log2(),
            100.0 * (t_o.time_us - t_w.time_us) / t_o.time_us
        );
    }
    rows
}

/// Fig. 11: GridSelect with the shared queue vs per-thread queues.
pub fn fig11(opts: &FigOpts) -> Vec<Row> {
    let ns: Vec<usize> = if opts.full {
        (18..=26).step_by(2).map(|e| 1usize << e).collect()
    } else {
        (16..=22).step_by(2).map(|e| 1usize << e).collect()
    };
    let ks = [64usize, 512, 2048];
    let shared = GridSelect::default();
    let per_thread = GridSelect::new(GridSelectConfig {
        queue: QueueKind::PerThread { len: 2 },
        ..GridSelectConfig::default()
    });
    let mut rows = Vec::new();
    for &k in &ks {
        for &n in &ns {
            let mut cfg = BenchConfig::new(Workload::Synthetic(Distribution::Normal), n, k, 1);
            cfg.verify = opts.verify;
            progress(opts, &format!("fig11: k={k} n=2^{:.0}", (n as f64).log2()));
            let mut r1 = run_config(&shared, &cfg).unwrap();
            r1.algo = "GridSelect (shared queue)".into();
            let mut r2 = run_config(&per_thread, &cfg).unwrap();
            r2.algo = "GridSelect (per-thread queues)".into();
            rows.push(r1);
            rows.push(r2);
        }
    }
    for &k in &ks {
        let sub: Vec<Row> = rows.iter().filter(|r| r.k == k).cloned().collect();
        println!("\n=== Fig. 11: queue ablation, K={k}, time (us) vs N ===");
        println!(
            "{}",
            render_series_table(
                &sub,
                "n",
                &[
                    "GridSelect (shared queue)".into(),
                    "GridSelect (per-thread queues)".into()
                ]
            )
        );
    }
    rows
}

/// Fig. 12: AIR Top-K / GridSelect / SOTA on A100, H100 and A10
/// (uniform, paper N = 2³⁰; default N = 2²²).
pub fn fig12(opts: &FigOpts) -> Vec<Row> {
    let n: usize = if opts.full { 1 << 26 } else { 1 << 22 };
    let ks: Vec<usize> = (3..=11).map(|e| 1usize << e).collect(); // 8..2048
    let devices = [DeviceSpec::a100(), DeviceSpec::h100(), DeviceSpec::a10()];
    let algs = all_algorithms();
    let mut rows = Vec::new();
    for dev in &devices {
        for &k in &ks {
            let mut cfg = BenchConfig::new(Workload::Synthetic(Distribution::Uniform), n, k, 1);
            cfg.device = dev.clone();
            cfg.verify = opts.verify;
            progress(opts, &format!("fig12: {} k={k}", dev.name));
            for alg in &algs {
                if let Some(row) = run_config(alg.as_ref(), &cfg) {
                    rows.push(row);
                }
            }
        }
    }
    for dev in &devices {
        let sub: Vec<Row> = rows
            .iter()
            .filter(|r| r.device == dev.name)
            .cloned()
            .collect();
        println!(
            "\n=== Fig. 12: {} N=2^{:.0}, time (us) vs K (AIR, GridSelect, SOTA) ===",
            dev.name,
            (n as f64).log2()
        );
        // Reduce the baselines to the virtual SOTA for display.
        let mut display: Vec<Row> = Vec::new();
        for &k in &ks {
            for name in ["AIR Top-K", "GridSelect"] {
                if let Some(r) = sub.iter().find(|r| r.k == k && r.algo == name) {
                    display.push(r.clone());
                }
            }
            if let Some(best) = sub
                .iter()
                .filter(|r| r.k == k && BASELINE_NAMES.contains(&r.algo.as_str()))
                .min_by(|a, b| a.time_us.total_cmp(&b.time_us))
            {
                let mut b = best.clone();
                b.algo = "SOTA".into();
                display.push(b);
            }
        }
        println!(
            "{}",
            render_series_table(
                &display,
                "k",
                &["AIR Top-K".into(), "GridSelect".into(), "SOTA".into()]
            )
        );
    }
    rows
}

/// Fig. 13: DEEP1B-like and SIFT-like ANN distance arrays,
/// K ∈ {10, 100}, N = 2¹¹..2¹⁹.
pub fn fig13(opts: &FigOpts) -> Vec<Row> {
    let ns: Vec<usize> = if opts.full {
        (11..=19).map(|e| 1usize << e).collect()
    } else {
        (11..=19).step_by(2).map(|e| 1usize << e).collect()
    };
    let algs = all_algorithms();
    let mut rows = Vec::new();
    for kind in [AnnKind::Deep1bLike, AnnKind::SiftLike] {
        for &k in &[10usize, 100] {
            for &n in &ns {
                let mut cfg = BenchConfig::new(Workload::Ann(kind), n, k, 1);
                cfg.verify = opts.verify;
                progress(
                    opts,
                    &format!("fig13: {} k={k} n=2^{:.0}", kind.name(), (n as f64).log2()),
                );
                for alg in &algs {
                    if let Some(row) = run_config(alg.as_ref(), &cfg) {
                        rows.push(row);
                    }
                }
            }
        }
    }
    let algos: Vec<String> = algs.iter().map(|a| a.name().to_string()).collect();
    for kind in [AnnKind::Deep1bLike, AnnKind::SiftLike] {
        for &k in &[10usize, 100] {
            let sub: Vec<Row> = rows
                .iter()
                .filter(|r| r.workload == kind.name() && r.k == k)
                .cloned()
                .collect();
            println!("\n=== Fig. 13: {} K={k}, time (us) vs N ===", kind.name());
            println!("{}", render_series_table(&sub, "n", &algos));
            println!("{}", render_ascii_chart(&sub, "n", &algos, 72, 14));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts() -> FigOpts {
        FigOpts {
            full: false,
            verify: false,
            progress: false,
        }
    }

    #[test]
    fn fig9_adaptive_wins_on_adversarial() {
        // The headline claim of §5.2.2 must hold in the reproduction.
        let rows = fig9(&quick_opts());
        for m in [10u32, 20] {
            let dn = format!("adversarial{m}");
            let max_n = rows
                .iter()
                .filter(|r| r.workload == dn)
                .map(|r| r.n)
                .max()
                .unwrap();
            let a = rows
                .iter()
                .find(|r| r.workload == dn && r.n == max_n && r.algo.contains("(adaptive"))
                .unwrap();
            let na = rows
                .iter()
                .find(|r| r.workload == dn && r.n == max_n && r.algo.contains("no "))
                .unwrap();
            assert!(
                a.time_us < na.time_us,
                "adaptive must win at M={m}: {} vs {}",
                a.time_us,
                na.time_us
            );
        }
    }

    #[test]
    fn fig10_early_stop_never_hurts() {
        let rows = fig10(&quick_opts());
        let ks: std::collections::BTreeSet<usize> = rows.iter().map(|r| r.k).collect();
        for k in ks {
            let w = rows
                .iter()
                .find(|r| r.k == k && r.algo.contains("(early"))
                .unwrap();
            let o = rows
                .iter()
                .find(|r| r.k == k && r.algo.contains("no "))
                .unwrap();
            assert!(
                w.time_us <= o.time_us * 1.01,
                "k={k}: {} vs {}",
                w.time_us,
                o.time_us
            );
        }
    }

    #[test]
    fn table2_renders() {
        let mut opts = quick_opts();
        opts.verify = false;
        // A miniature grid exercising the whole path.
        let mut cfgs = Vec::new();
        for dist in [Distribution::Uniform] {
            {
                let batch = 1usize;
                let c = BenchConfig::new(Workload::Synthetic(dist), 1 << 14, 64, batch);
                cfgs.push(c);
            }
        }
        let rows = sweep(&opts, &cfgs, "mini");
        let t = table2(&rows);
        assert!(t.contains("AIR vs RadixSelect"));
        assert!(t.contains("uniform"));
    }
}
