//! Serving-shaped benchmark: [`TopKEngine`] throughput versus the
//! batch-coalescing window.
//!
//! The paper's figures measure one algorithm on one device solving one
//! problem (or one pre-formed batch). A serving system sees the dual
//! problem: a stream of mixed-shape queries and a pool of devices, and
//! its throughput depends on how aggressively same-shape queries are
//! fused into the paper's batch-100-style launches (§5.1). This module
//! drains the same mixed workload through the engine at several
//! coalescing windows and reports simulated queries/sec.

use crate::report::Row;
use topk_core::verify_topk;
use topk_engine::{DrainReport, EngineConfig, TopKEngine};

/// Options for the engine throughput sweep.
#[derive(Debug, Clone)]
pub struct EngineBenchOpts {
    /// Queries in the drained workload.
    pub queries: usize,
    /// Devices in the pool.
    pub devices: usize,
    /// Coalescing windows to sweep.
    pub windows: Vec<usize>,
    /// Re-verify every query result against the host reference.
    pub verify: bool,
    /// Paper-scale problem sizes instead of the quick defaults.
    pub full: bool,
}

impl Default for EngineBenchOpts {
    fn default() -> Self {
        EngineBenchOpts {
            queries: 200,
            devices: 2,
            windows: vec![1, 8, 32],
            verify: false,
            full: false,
        }
    }
}

/// One measured point of the sweep.
#[derive(Debug, Clone)]
pub struct EnginePoint {
    /// Coalescing window used.
    pub window: usize,
    /// Devices in the pool.
    pub devices: usize,
    /// Queries drained.
    pub queries: usize,
    /// Batches that fused ≥ 2 queries.
    pub fused_batches: usize,
    /// Simulated throughput, queries per second.
    pub qps: f64,
    /// Simulated makespan of the drain, µs.
    pub makespan_us: f64,
    /// Mean simulated per-query latency, µs.
    pub mean_latency_us: f64,
    /// Median simulated per-query latency, µs.
    pub p50_latency_us: f64,
    /// 99th-percentile simulated per-query latency, µs — the number a
    /// serving SLO is written against; coalescing trades it for
    /// throughput.
    pub p99_latency_us: f64,
}

/// The mixed query stream every sweep point drains: four interleaved
/// `(N, K)` shapes, so each window size sees the same coalescing
/// opportunities.
pub fn mixed_workload(queries: usize, full: bool) -> Vec<(Vec<f32>, usize)> {
    let shapes: [(usize, usize); 4] = if full {
        [(1 << 18, 32), (1 << 17, 100), (1 << 18, 1), (1 << 15, 512)]
    } else {
        [(1 << 14, 32), (1 << 13, 100), (1 << 14, 1), (4096, 512)]
    };
    (0..queries)
        .map(|q| {
            let (n, k) = shapes[q % shapes.len()];
            let data = datagen::generate(datagen::Distribution::Uniform, n, q as u64);
            (data, k)
        })
        .collect()
}

/// Drain `workload` through a fresh engine at the given window,
/// returning the full report.
pub fn drain_workload(
    workload: &[(Vec<f32>, usize)],
    devices: usize,
    window: usize,
) -> DrainReport {
    let mut engine = TopKEngine::new(
        EngineConfig::a100_pool(devices)
            .with_window(window)
            .with_queue_capacity(workload.len().max(1)),
    );
    for (data, k) in workload {
        engine
            .submit(data.clone(), *k)
            .expect("queue sized to the workload");
    }
    engine.drain()
}

/// Run the sweep: same workload, one drain per window.
pub fn engine_throughput(opts: &EngineBenchOpts) -> Vec<EnginePoint> {
    let workload = mixed_workload(opts.queries, opts.full);
    opts.windows
        .iter()
        .map(|&window| {
            let report = drain_workload(&workload, opts.devices, window);
            if opts.verify {
                for (r, (data, k)) in report.results.iter().zip(&workload) {
                    let out = r
                        .outcome
                        .as_ref()
                        .unwrap_or_else(|e| panic!("query {}: {e}", r.id));
                    verify_topk(data, *k, &out.values, &out.indices)
                        .unwrap_or_else(|e| panic!("query {}: {e}", r.id));
                }
            }
            EnginePoint {
                window,
                devices: opts.devices,
                queries: report.results.len(),
                fused_batches: report.fused_batches(),
                qps: report.queries_per_sec(),
                makespan_us: report.makespan_us(),
                mean_latency_us: report.mean_latency_us(),
                p50_latency_us: report.p50_latency_us(),
                p99_latency_us: report.p99_latency_us(),
            }
        })
        .collect()
}

/// Text table of a sweep, for the CLI.
pub fn render(points: &[EnginePoint]) -> String {
    let mut out = String::from(
        "=== TopKEngine throughput vs coalescing window ===\n\
         window  devices  queries  fused  queries/sec  makespan_us  mean_lat_us  p50_lat_us  p99_lat_us\n",
    );
    for p in points {
        out.push_str(&format!(
            "{:>6}  {:>7}  {:>7}  {:>5}  {:>11.0}  {:>11.1}  {:>11.1}  {:>10.1}  {:>10.1}\n",
            p.window,
            p.devices,
            p.queries,
            p.fused_batches,
            p.qps,
            p.makespan_us,
            p.mean_latency_us,
            p.p50_latency_us,
            p.p99_latency_us
        ));
    }
    out
}

/// Observability artifacts from one instrumented drain: the engine's
/// Prometheus metrics text and a Chrome trace of the drain.
#[derive(Debug, Clone)]
pub struct EngineArtifacts {
    /// Prometheus text exposition (latency histograms, AIR/GridSelect
    /// counters, per-kind error counters, device utilisation).
    pub metrics: String,
    /// Chrome Trace Event Format JSON (one kernel track and one query
    /// track per device).
    pub trace: String,
}

/// Drain the mixed workload through one instrumented engine and return
/// its metrics and trace. The widest sweep window is used (that is the
/// drain whose coalescing is most visible in the trace), and one
/// deliberately invalid query rides along so the per-kind error
/// counters show a real failure instead of all-zeros.
pub fn engine_observability(opts: &EngineBenchOpts) -> EngineArtifacts {
    let workload = mixed_workload(opts.queries, opts.full);
    let window = opts.windows.iter().copied().max().unwrap_or(8);
    let mut engine = TopKEngine::new(
        EngineConfig::a100_pool(opts.devices)
            .with_window(window)
            .with_queue_capacity(workload.len() + 1),
    );
    for (data, k) in &workload {
        engine
            .submit(data.clone(), *k)
            .expect("queue sized to the workload");
    }
    engine
        .submit(vec![1.0, 2.0], 0)
        .expect("queue sized to the workload");
    let report = engine.drain();
    EngineArtifacts {
        metrics: engine.render_prometheus(),
        trace: topk_engine::chrome_trace(&report),
    }
}

/// The sweep as standard benchmark rows (`algo = TopKEngine`, `batch`
/// = coalescing window, `time_us` = makespan) for `engine.csv`.
pub fn to_rows(points: &[EnginePoint], full: bool) -> Vec<Row> {
    points
        .iter()
        .map(|p| Row {
            algo: "TopKEngine".into(),
            device: format!("A100x{}", p.devices),
            workload: if full {
                "serving-mixed-full".into()
            } else {
                "serving-mixed".into()
            },
            n: p.queries,
            k: 0,
            batch: p.window,
            time_us: p.makespan_us,
            mem_bytes: 0,
            kernels: 0,
            pcie_us: 0.0,
            idle_us: p.mean_latency_us,
            verified: true,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_points_for_every_window() {
        let opts = EngineBenchOpts {
            queries: 24,
            devices: 2,
            windows: vec![1, 8, 32],
            verify: true,
            full: false,
        };
        let points = engine_throughput(&opts);
        assert_eq!(points.len(), 3);
        for p in &points {
            assert_eq!(p.queries, 24);
            assert!(p.qps > 0.0);
        }
        // Window 1 never fuses; wider windows must.
        assert_eq!(points[0].fused_batches, 0);
        assert!(points[1].fused_batches > 0);
        // Coalescing should not hurt throughput on a same-shape-heavy
        // mix (it amortises launches and fills the grid).
        assert!(
            points[1].qps >= points[0].qps * 0.9,
            "window 8 ({:.0} qps) much slower than window 1 ({:.0} qps)",
            points[1].qps,
            points[0].qps
        );
        for p in &points {
            assert!(p.p50_latency_us > 0.0);
            assert!(p.p50_latency_us <= p.p99_latency_us);
        }
        let table = render(&points);
        assert!(table.contains("queries/sec"));
        assert!(table.contains("p99_lat_us"));
        let rows = to_rows(&points, false);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].batch, 1);
    }

    #[test]
    fn observability_artifacts_are_complete() {
        let opts = EngineBenchOpts {
            queries: 12,
            devices: 2,
            windows: vec![4],
            verify: false,
            full: false,
        };
        let art = engine_observability(&opts);
        assert!(art
            .metrics
            .contains("topk_engine_query_latency_us_bucket{le=\"1\"}"));
        assert!(art
            .metrics
            .contains("topk_engine_query_errors_total{kind=\"invalid_k\"} 1"));
        assert!(art.metrics.contains("topk_air_adaptive_skips_total"));
        assert!(art.trace.contains("device 0 kernels"));
        assert!(art.trace.contains("device 1 kernels"));
        assert!(art.trace.ends_with("]}\n") || art.trace.trim_end().ends_with('}'));
    }
}
