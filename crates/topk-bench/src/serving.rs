//! Serving-shaped benchmark: [`TopKEngine`] throughput versus the
//! batch-coalescing window.
//!
//! The paper's figures measure one algorithm on one device solving one
//! problem (or one pre-formed batch). A serving system sees the dual
//! problem: a stream of mixed-shape queries and a pool of devices, and
//! its throughput depends on how aggressively same-shape queries are
//! fused into the paper's batch-100-style launches (§5.1). This module
//! drains the same mixed workload through the engine at several
//! coalescing windows and reports simulated queries/sec.

use crate::report::Row;
use topk_core::{measured_recall, verify_topk};
use topk_engine::{DrainReport, EngineConfig, FaultPlan, TopKEngine};

/// Options for the engine throughput sweep.
#[derive(Debug, Clone)]
pub struct EngineBenchOpts {
    /// Queries in the drained workload.
    pub queries: usize,
    /// Devices in the pool.
    pub devices: usize,
    /// Coalescing windows to sweep.
    pub windows: Vec<usize>,
    /// Re-verify every query result against the host reference.
    pub verify: bool,
    /// Paper-scale problem sizes instead of the quick defaults.
    pub full: bool,
    /// Seed a chaos [`FaultPlan`] with this value (`--faults SEED`).
    pub fault_seed: Option<u64>,
    /// Per-operation fault probability for the chaos plan.
    pub fault_rate: f64,
    /// Per-query deadline applied to every submission, simulated µs.
    pub deadline_us: Option<u64>,
    /// Per-query recall target (`--recall-target T`): values below 1.0
    /// let the engine degrade exact → two-stage → bucketed under
    /// deadline risk or capacity loss. `None` keeps the exact-only
    /// default.
    pub recall_target: Option<f64>,
}

impl Default for EngineBenchOpts {
    fn default() -> Self {
        EngineBenchOpts {
            queries: 200,
            devices: 2,
            windows: vec![1, 8, 32],
            verify: false,
            full: false,
            fault_seed: None,
            fault_rate: 0.05,
            deadline_us: None,
            recall_target: None,
        }
    }
}

impl EngineBenchOpts {
    /// The chaos plan these options describe, if fault injection is on.
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        self.fault_seed
            .map(|seed| FaultPlan::chaos(seed, self.fault_rate))
    }
}

/// One measured point of the sweep.
#[derive(Debug, Clone)]
pub struct EnginePoint {
    /// Coalescing window used.
    pub window: usize,
    /// Devices in the pool.
    pub devices: usize,
    /// Queries drained.
    pub queries: usize,
    /// Batches that fused ≥ 2 queries.
    pub fused_batches: usize,
    /// Simulated throughput, queries per second.
    pub qps: f64,
    /// Simulated makespan of the drain, µs.
    pub makespan_us: f64,
    /// Mean simulated per-query latency, µs.
    pub mean_latency_us: f64,
    /// Median simulated per-query latency, µs.
    pub p50_latency_us: f64,
    /// 99th-percentile simulated per-query latency, µs — the number a
    /// serving SLO is written against; coalescing trades it for
    /// throughput.
    pub p99_latency_us: f64,
    /// Same-device retry attempts during the drain.
    pub retries: u64,
    /// Batches re-landed on a different device after a fault.
    pub failovers: u64,
    /// Queries degraded to the host heap path.
    pub cpu_fallbacks: u64,
    /// Queries that terminated with `DeadlineExceeded`.
    pub deadline_misses: u64,
    /// Dispatches served from the tuner's cached plan table.
    pub plan_hits: u64,
    /// Dispatches that re-planned (cold bucket or invalidated entry).
    pub plan_misses: u64,
    /// Cached plans replaced by observed-latency feedback.
    pub refinements: u64,
    /// Queries served by the two-stage approximate rung.
    pub approx_two_stage: u64,
    /// Queries served by the bucketed approximate rung.
    pub approx_bucketed: u64,
    /// Median estimated recall across terminal queries.
    pub p50_recall: f64,
    /// 99th-percentile estimated recall (worst 1% excluded).
    pub p99_recall: f64,
    /// Mean estimated recall across terminal queries.
    pub mean_est_recall: f64,
    /// Mean *measured* recall over successful queries, re-checked on
    /// the host — only computed under `--verify` (`None` otherwise).
    pub mean_measured_recall: Option<f64>,
}

/// The mixed query stream every sweep point drains: four interleaved
/// `(N, K)` shapes, so each window size sees the same coalescing
/// opportunities.
pub fn mixed_workload(queries: usize, full: bool) -> Vec<(Vec<f32>, usize)> {
    let shapes: [(usize, usize); 4] = if full {
        [(1 << 18, 32), (1 << 17, 100), (1 << 18, 1), (1 << 15, 512)]
    } else {
        [(1 << 14, 32), (1 << 13, 100), (1 << 14, 1), (4096, 512)]
    };
    (0..queries)
        .map(|q| {
            let (n, k) = shapes[q % shapes.len()];
            let data = datagen::generate(datagen::Distribution::Uniform, n, q as u64);
            (data, k)
        })
        .collect()
}

/// Drain `workload` through a fresh engine at the given window,
/// returning the full report.
pub fn drain_workload(
    workload: &[(Vec<f32>, usize)],
    devices: usize,
    window: usize,
) -> DrainReport {
    drain_workload_with(workload, devices, window, None, None, None)
}

/// [`drain_workload`] with optional fault injection, a per-query
/// deadline, and a per-query recall target — the chaos-benchmark entry
/// point.
pub fn drain_workload_with(
    workload: &[(Vec<f32>, usize)],
    devices: usize,
    window: usize,
    faults: Option<FaultPlan>,
    deadline_us: Option<u64>,
    recall_target: Option<f64>,
) -> DrainReport {
    let mut cfg = EngineConfig::a100_pool(devices)
        .with_window(window)
        .with_queue_capacity(workload.len().max(1));
    if let Some(plan) = faults {
        cfg = cfg.with_faults(plan);
    }
    if let Some(d) = deadline_us {
        cfg = cfg.with_deadline_us(d);
    }
    if let Some(t) = recall_target {
        cfg = cfg.with_recall_target(t);
    }
    let mut engine = TopKEngine::new(cfg);
    for (data, k) in workload {
        engine
            .submit(data.clone(), *k)
            .expect("queue sized to the workload");
    }
    engine.drain()
}

/// Run the sweep: same workload, one drain per window.
pub fn engine_throughput(opts: &EngineBenchOpts) -> Vec<EnginePoint> {
    let workload = mixed_workload(opts.queries, opts.full);
    opts.windows
        .iter()
        .map(|&window| {
            let report = drain_workload_with(
                &workload,
                opts.devices,
                window,
                opts.fault_plan(),
                opts.deadline_us,
                opts.recall_target,
            );
            let mut measured: Vec<f64> = Vec::new();
            if opts.verify {
                for (r, (data, k)) in report.results.iter().zip(&workload) {
                    // Under injected faults or deadlines, errors are
                    // expected terminal outcomes; verify the answers
                    // that did land.
                    let strict = opts.fault_seed.is_none() && opts.deadline_us.is_none();
                    let approx = r.served.label().starts_with("approx");
                    match &r.outcome {
                        // Approximate rungs do not promise the exact
                        // multiset; re-check them as measured recall
                        // against the host reference instead.
                        Ok(out) if approx => measured.push(measured_recall(data, *k, &out.values)),
                        Ok(out) => {
                            verify_topk(data, *k, &out.values, &out.indices)
                                .unwrap_or_else(|e| panic!("query {}: {e}", r.id));
                            measured.push(1.0);
                        }
                        Err(e) if strict => panic!("query {}: {e}", r.id),
                        Err(_) => {}
                    }
                }
            }
            EnginePoint {
                window,
                devices: opts.devices,
                queries: report.results.len(),
                fused_batches: report.fused_batches(),
                qps: report.queries_per_sec(),
                makespan_us: report.makespan_us(),
                mean_latency_us: report.mean_latency_us(),
                p50_latency_us: report.p50_latency_us(),
                p99_latency_us: report.p99_latency_us(),
                retries: report.retries,
                failovers: report.failovers,
                cpu_fallbacks: report.cpu_fallbacks,
                deadline_misses: report.deadline_misses,
                plan_hits: report.algo.tuner_plan_hits,
                plan_misses: report.algo.tuner_plan_misses,
                refinements: report.algo.tuner_refinements,
                approx_two_stage: report.approx_two_stage,
                approx_bucketed: report.approx_bucketed,
                p50_recall: report.p50_recall(),
                p99_recall: report.p99_recall(),
                mean_est_recall: report.mean_est_recall(),
                mean_measured_recall: if measured.is_empty() {
                    None
                } else {
                    Some(measured.iter().sum::<f64>() / measured.len() as f64)
                },
            }
        })
        .collect()
}

/// Text table of a sweep, for the CLI.
pub fn render(points: &[EnginePoint]) -> String {
    let mut out = String::from(
        "=== TopKEngine throughput vs coalescing window ===\n\
         window  devices  queries  fused  queries/sec  makespan_us  mean_lat_us  p50_lat_us  p99_lat_us  \
         retries  failovers  fallbacks  dl_miss  plan_hit  replan  refine  \
         2stage  bucket  rec_p50  rec_p99  rec_meas\n",
    );
    for p in points {
        out.push_str(&format!(
            "{:>6}  {:>7}  {:>7}  {:>5}  {:>11.0}  {:>11.1}  {:>11.1}  {:>10.1}  {:>10.1}  \
             {:>7}  {:>9}  {:>9}  {:>7}  {:>8}  {:>6}  {:>6}  \
             {:>6}  {:>6}  {:>7.4}  {:>7.4}  {:>8}\n",
            p.window,
            p.devices,
            p.queries,
            p.fused_batches,
            p.qps,
            p.makespan_us,
            p.mean_latency_us,
            p.p50_latency_us,
            p.p99_latency_us,
            p.retries,
            p.failovers,
            p.cpu_fallbacks,
            p.deadline_misses,
            p.plan_hits,
            p.plan_misses,
            p.refinements,
            p.approx_two_stage,
            p.approx_bucketed,
            p.p50_recall,
            p.p99_recall,
            p.mean_measured_recall
                .map_or_else(|| "-".to_string(), |r| format!("{r:.4}")),
        ));
    }
    out
}

/// Check a sweep against a recall floor: every point's estimated and
/// (when `--verify` measured them) host-measured recall must clear
/// `target`. Returns one message per violation; the CLI exits non-zero
/// on any — the contract the CI `chaos-degrade` job enforces.
pub fn recall_floor_violations(points: &[EnginePoint], target: f64) -> Vec<String> {
    let mut violations = Vec::new();
    for p in points {
        if p.mean_est_recall + 1e-9 < target {
            violations.push(format!(
                "window {}: mean estimated recall {:.4} below target {:.4}",
                p.window, p.mean_est_recall, target
            ));
        }
        // Measured recall is a statistical quantity (the analytic bound
        // holds in expectation over i.i.d. inputs), so the floor gets a
        // small tolerance.
        if let Some(m) = p.mean_measured_recall {
            if m + 0.05 < target {
                violations.push(format!(
                    "window {}: mean measured recall {:.4} below target {:.4}",
                    p.window, m, target
                ));
            }
        }
    }
    violations
}

/// Observability artifacts from one instrumented drain: the engine's
/// Prometheus metrics text and a Chrome trace of the drain.
#[derive(Debug, Clone)]
pub struct EngineArtifacts {
    /// Prometheus text exposition (latency histograms, AIR/GridSelect
    /// counters, per-kind error counters, device utilisation).
    pub metrics: String,
    /// Chrome Trace Event Format JSON (one kernel track and one query
    /// track per device).
    pub trace: String,
}

/// Drain the mixed workload through one instrumented engine and return
/// its metrics and trace. The widest sweep window is used (that is the
/// drain whose coalescing is most visible in the trace), and one
/// deliberately invalid query rides along so the per-kind error
/// counters show a real failure instead of all-zeros.
pub fn engine_observability(opts: &EngineBenchOpts) -> EngineArtifacts {
    let workload = mixed_workload(opts.queries, opts.full);
    let window = opts.windows.iter().copied().max().unwrap_or(8);
    let mut cfg = EngineConfig::a100_pool(opts.devices)
        .with_window(window)
        .with_queue_capacity(workload.len() + 1);
    if let Some(plan) = opts.fault_plan() {
        cfg = cfg.with_faults(plan);
    }
    if let Some(d) = opts.deadline_us {
        cfg = cfg.with_deadline_us(d);
    }
    if let Some(t) = opts.recall_target {
        cfg = cfg.with_recall_target(t);
    }
    let mut engine = TopKEngine::new(cfg);
    for (data, k) in &workload {
        engine
            .submit(data.clone(), *k)
            .expect("queue sized to the workload");
    }
    engine
        .submit(vec![1.0, 2.0], 0)
        .expect("queue sized to the workload");
    let report = engine.drain();
    EngineArtifacts {
        metrics: engine.render_prometheus(),
        trace: topk_engine::chrome_trace(&report),
    }
}

/// Deterministic summary of one drain at the widest sweep window, for
/// CI chaos-smoke diffing (`--digest-out`): two runs with the same
/// options — including the same `--faults` seed — must produce
/// byte-identical output.
pub fn chaos_digest(opts: &EngineBenchOpts) -> String {
    let workload = mixed_workload(opts.queries, opts.full);
    let window = opts.windows.iter().copied().max().unwrap_or(8);
    let report = drain_workload_with(
        &workload,
        opts.devices,
        window,
        opts.fault_plan(),
        opts.deadline_us,
        opts.recall_target,
    );
    report.chaos_digest()
}

/// The sweep as standard benchmark rows (`algo = TopKEngine`, `batch`
/// = coalescing window, `time_us` = makespan) for `engine.csv`.
pub fn to_rows(points: &[EnginePoint], full: bool) -> Vec<Row> {
    points
        .iter()
        .map(|p| Row {
            algo: "TopKEngine".into(),
            device: format!("A100x{}", p.devices),
            workload: if full {
                "serving-mixed-full".into()
            } else {
                "serving-mixed".into()
            },
            n: p.queries,
            k: 0,
            batch: p.window,
            time_us: p.makespan_us,
            mem_bytes: 0,
            kernels: 0,
            pcie_us: 0.0,
            idle_us: p.mean_latency_us,
            verified: true,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_points_for_every_window() {
        let opts = EngineBenchOpts {
            queries: 24,
            devices: 2,
            windows: vec![1, 8, 32],
            verify: true,
            ..Default::default()
        };
        let points = engine_throughput(&opts);
        assert_eq!(points.len(), 3);
        for p in &points {
            assert_eq!(p.queries, 24);
            assert!(p.qps > 0.0);
        }
        // Window 1 never fuses; wider windows must.
        assert_eq!(points[0].fused_batches, 0);
        assert!(points[1].fused_batches > 0);
        // Coalescing should not hurt throughput on a same-shape-heavy
        // mix (it amortises launches and fills the grid).
        assert!(
            points[1].qps >= points[0].qps * 0.9,
            "window 8 ({:.0} qps) much slower than window 1 ({:.0} qps)",
            points[1].qps,
            points[0].qps
        );
        for p in &points {
            assert!(p.p50_latency_us > 0.0);
            assert!(p.p50_latency_us <= p.p99_latency_us);
        }
        let table = render(&points);
        assert!(table.contains("queries/sec"));
        assert!(table.contains("p99_lat_us"));
        assert!(table.contains("plan_hit"));
        assert!(table.contains("rec_p99"));
        // Exact-only defaults: no approximate rungs, unit recall.
        for p in &points {
            assert_eq!(p.approx_two_stage + p.approx_bucketed, 0);
            assert_eq!(p.mean_est_recall, 1.0);
            assert_eq!(p.mean_measured_recall, Some(1.0));
        }
        assert!(recall_floor_violations(&points, 0.95).is_empty());
        // The tuner consults its plan table on every dispatch.
        assert!(points.iter().all(|p| p.plan_hits + p.plan_misses > 0));
        let rows = to_rows(&points, false);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].batch, 1);
    }

    #[test]
    fn observability_artifacts_are_complete() {
        let opts = EngineBenchOpts {
            queries: 12,
            devices: 2,
            windows: vec![4],
            ..Default::default()
        };
        let art = engine_observability(&opts);
        assert!(art
            .metrics
            .contains("topk_engine_query_latency_us_bucket{le=\"1\"}"));
        assert!(art
            .metrics
            .contains("topk_engine_query_errors_total{kind=\"invalid_k\"} 1"));
        assert!(art.metrics.contains("topk_air_adaptive_skips_total"));
        assert!(art.trace.contains("device 0 kernels"));
        assert!(art.trace.contains("device 1 kernels"));
        assert!(art.trace.ends_with("]}\n") || art.trace.trim_end().ends_with('}'));
    }

    #[test]
    fn faulted_sweep_reports_resilience_counters_and_reproduces() {
        let opts = EngineBenchOpts {
            queries: 32,
            devices: 2,
            windows: vec![4],
            verify: true,
            fault_seed: Some(42),
            fault_rate: 0.10,
            ..Default::default()
        };
        let points = engine_throughput(&opts);
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].queries, 32, "every query stays terminal");
        let table = render(&points);
        assert!(table.contains("retries"));
        assert!(table.contains("failovers"));
        assert!(table.contains("fallbacks"));
        // The digest is a pure function of the options.
        assert_eq!(chaos_digest(&opts), chaos_digest(&opts));
    }

    #[test]
    fn recall_target_sweep_accounts_recall_and_reproduces() {
        // Severe chaos on a two-device pool with a sub-unit recall
        // target: the drain must stay terminal for every query, the
        // recall aggregates must respect the target, and the digest
        // (which now carries the recall counters) must reproduce.
        let opts = EngineBenchOpts {
            queries: 32,
            devices: 2,
            windows: vec![4],
            verify: true,
            fault_seed: Some(29),
            fault_rate: 0.10,
            recall_target: Some(0.9),
            ..Default::default()
        };
        let points = engine_throughput(&opts);
        assert_eq!(points.len(), 1);
        let p = &points[0];
        assert_eq!(p.queries, 32, "every query stays terminal");
        // Whatever mix of exact and approximate served, the estimated
        // recall the engine accounts must clear the target.
        assert!(recall_floor_violations(&points, 0.9).is_empty());
        let digest = chaos_digest(&opts);
        assert_eq!(digest, chaos_digest(&opts));
        assert!(digest.contains("recall_p50="), "{digest}");
        let table = render(&points);
        assert!(table.contains("2stage"));
        assert!(table.contains("bucket"));
    }
}
