//! Self-contained HTML report with inline SVG charts.
//!
//! `topk-bench report` turns the CSVs a benchmark run left in the
//! output directory into a single `report.html` — log-log charts in
//! the paper's figure layout, plus the Table 2/3 text — with no
//! external dependencies (the SVG is emitted by hand). Open it in any
//! browser.

use std::collections::BTreeSet;
use std::path::Path;

use crate::report::{read_csv, Row};

/// One series colour per algorithm, fixed so every chart in a report
/// uses the same encoding (10 paper algorithms + 2 ablation variants).
const PALETTE: &[(&str, &str)] = &[
    ("Sort", "#888888"),
    ("WarpSelect", "#c58af9"),
    ("BlockSelect", "#7a5fd0"),
    ("Bitonic Top-K", "#e2a04a"),
    ("QuickSelect", "#5aa469"),
    ("BucketSelect", "#2e7d5b"),
    ("SampleSelect", "#97c26a"),
    ("RadixSelect", "#d96c6c"),
    ("AIR Top-K", "#1f6feb"),
    ("GridSelect", "#cf222e"),
];

fn colour_for(algo: &str, fallback_idx: usize) -> &'static str {
    const EXTRA: &[&str] = &["#0a7ea4", "#b4581f", "#586069", "#8250df"];
    PALETTE
        .iter()
        .find(|(n, _)| *n == algo)
        .map(|(_, c)| *c)
        .unwrap_or(EXTRA[fallback_idx % EXTRA.len()])
}

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Render one log-log SVG chart: x = N or K (log2), y = time µs
/// (log10), one polyline per algorithm present in `rows`.
pub fn svg_chart(rows: &[Row], x_axis: &str, title: &str, w: u32, h: u32) -> String {
    let (ml, mr, mt, mb) = (64.0, 160.0, 36.0, 44.0); // margins (legend right)
    let (pw, ph) = (w as f64 - ml - mr, h as f64 - mt - mb);
    let xv = |r: &Row| (if x_axis == "k" { r.k } else { r.n }) as f64;

    let pts: Vec<(&Row, f64, f64)> = rows
        .iter()
        .filter(|r| r.time_us > 0.0)
        .map(|r| (r, xv(r).log2(), r.time_us.log10()))
        .collect();
    if pts.is_empty() {
        return String::new();
    }
    let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y0, mut y1) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(_, x, y) in &pts {
        x0 = x0.min(x);
        x1 = x1.max(x);
        y0 = y0.min(y);
        y1 = y1.max(y);
    }
    // Pad the y-range a touch; guard degenerate spans.
    y0 = (y0 - 0.1).floor_to(0.5);
    y1 = (y1 + 0.1).ceil_to(0.5);
    let xs = (x1 - x0).max(1e-9);
    let ys = (y1 - y0).max(1e-9);
    let px = |x: f64| ml + (x - x0) / xs * pw;
    let py = |y: f64| mt + (1.0 - (y - y0) / ys) * ph;

    let mut svg = format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{h}\" \
         font-family=\"sans-serif\" font-size=\"11\">\n\
         <text x=\"{ml}\" y=\"20\" font-size=\"13\" font-weight=\"bold\">{}</text>\n",
        esc(title)
    );

    // Axes + gridlines: y at integer decades, x at even log2 steps.
    let mut dec = y0.ceil() as i64;
    while (dec as f64) <= y1 {
        let yy = py(dec as f64);
        svg.push_str(&format!(
            "<line x1=\"{ml}\" y1=\"{yy:.1}\" x2=\"{:.1}\" y2=\"{yy:.1}\" stroke=\"#ddd\"/>\n\
             <text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"end\">1e{dec}</text>\n",
            ml + pw,
            ml - 6.0,
            yy + 4.0
        ));
        dec += 1;
    }
    let mut e = x0.ceil() as i64;
    while (e as f64) <= x1 {
        let xx = px(e as f64);
        svg.push_str(&format!(
            "<line x1=\"{xx:.1}\" y1=\"{mt}\" x2=\"{xx:.1}\" y2=\"{:.1}\" stroke=\"#eee\"/>\n",
            mt + ph
        ));
        if e % 2 == 0 {
            svg.push_str(&format!(
                "<text x=\"{xx:.1}\" y=\"{:.1}\" text-anchor=\"middle\">2^{e}</text>\n",
                mt + ph + 16.0
            ));
        }
        e += 1;
    }
    svg.push_str(&format!(
        "<rect x=\"{ml}\" y=\"{mt}\" width=\"{pw:.1}\" height=\"{ph:.1}\" \
         fill=\"none\" stroke=\"#999\"/>\n\
         <text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"middle\">{} (log2)</text>\n\
         <text x=\"14\" y=\"{:.1}\" transform=\"rotate(-90 14 {:.1})\" \
         text-anchor=\"middle\">time us (log10)</text>\n",
        ml + pw / 2.0,
        mt + ph + 34.0,
        x_axis.to_uppercase(),
        mt + ph / 2.0,
        mt + ph / 2.0,
    ));

    // Series.
    let algos: Vec<String> = {
        let mut seen = BTreeSet::new();
        rows.iter()
            .filter(|r| seen.insert(r.algo.clone()))
            .map(|r| r.algo.clone())
            .collect()
    };
    for (ai, algo) in algos.iter().enumerate() {
        let colour = colour_for(algo, ai);
        let mut series: Vec<(f64, f64)> = pts
            .iter()
            .filter(|(r, _, _)| &r.algo == algo)
            .map(|&(_, x, y)| (x, y))
            .collect();
        series.sort_by(|a, b| a.0.total_cmp(&b.0));
        if series.is_empty() {
            continue;
        }
        let path: Vec<String> = series
            .iter()
            .map(|&(x, y)| format!("{:.1},{:.1}", px(x), py(y)))
            .collect();
        svg.push_str(&format!(
            "<polyline points=\"{}\" fill=\"none\" stroke=\"{colour}\" stroke-width=\"1.6\"/>\n",
            path.join(" ")
        ));
        for &(x, y) in &series {
            svg.push_str(&format!(
                "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"2.4\" fill=\"{colour}\"/>\n",
                px(x),
                py(y)
            ));
        }
        // Legend entry.
        let ly = mt + 14.0 * ai as f64;
        svg.push_str(&format!(
            "<line x1=\"{:.1}\" y1=\"{ly:.1}\" x2=\"{:.1}\" y2=\"{ly:.1}\" \
             stroke=\"{colour}\" stroke-width=\"2\"/>\n\
             <text x=\"{:.1}\" y=\"{:.1}\">{}</text>\n",
            ml + pw + 10.0,
            ml + pw + 30.0,
            ml + pw + 36.0,
            ly + 4.0,
            esc(algo)
        ));
    }
    svg.push_str("</svg>\n");
    svg
}

trait Snap {
    fn floor_to(self, step: f64) -> f64;
    fn ceil_to(self, step: f64) -> f64;
}
impl Snap for f64 {
    fn floor_to(self, step: f64) -> f64 {
        (self / step).floor() * step
    }
    fn ceil_to(self, step: f64) -> f64 {
        (self / step).ceil() * step
    }
}

/// Build `report.html` from whatever CSVs exist in `dir`. Returns the
/// HTML; the caller writes it.
pub fn render_report(dir: &Path) -> std::io::Result<String> {
    let mut html = String::from(
        "<!doctype html><html><head><meta charset=\"utf-8\">\
         <title>gpu-topk benchmark report</title>\
         <style>body{font-family:sans-serif;max-width:1080px;margin:24px auto;}\
         pre{background:#f6f8fa;padding:12px;overflow-x:auto;font-size:12px;}\
         h2{border-bottom:1px solid #ddd;padding-bottom:4px;}</style>\
         </head><body>\n<h1>gpu-topk benchmark report</h1>\n\
         <p>Simulated-device results regenerating the SC '23 paper's \
         evaluation; see EXPERIMENTS.md for the paper-vs-measured \
         comparison. All axes log-log.</p>\n",
    );

    // Fig. 6: per (workload, n), x = k.
    if let Ok(rows) = read_csv(&dir.join("fig6.csv")) {
        html.push_str("<h2>Fig. 6 — time vs K (batch 1)</h2>\n");
        let groups: BTreeSet<(String, usize)> =
            rows.iter().map(|r| (r.workload.clone(), r.n)).collect();
        for (wl, n) in groups {
            let sub: Vec<Row> = rows
                .iter()
                .filter(|r| r.workload == wl && r.n == n)
                .cloned()
                .collect();
            html.push_str(&svg_chart(
                &sub,
                "k",
                &format!("{wl}, N = 2^{:.0}", (n as f64).log2()),
                860,
                300,
            ));
        }
    }

    // Fig. 7: per (workload, k, batch), x = n.
    if let Ok(rows) = read_csv(&dir.join("fig7.csv")) {
        html.push_str("<h2>Fig. 7 — time vs N (batch 1 and 100)</h2>\n");
        let groups: BTreeSet<(String, usize, usize)> = rows
            .iter()
            .map(|r| (r.workload.clone(), r.k, r.batch))
            .collect();
        for (wl, k, batch) in groups {
            let sub: Vec<Row> = rows
                .iter()
                .filter(|r| r.workload == wl && r.k == k && r.batch == batch)
                .cloned()
                .collect();
            html.push_str(&svg_chart(
                &sub,
                "n",
                &format!("{wl}, K = {k}, batch = {batch}"),
                860,
                300,
            ));
        }
    }

    // Tables as preformatted text.
    for (file, title) in [
        ("table2.txt", "Table 2 — speedup summary"),
        ("table3.txt", "Table 3 — kernel SOL analysis"),
        ("fig8.txt", "Fig. 8 — timeline breakdown"),
    ] {
        if let Ok(text) = std::fs::read_to_string(dir.join(file)) {
            html.push_str(&format!("<h2>{}</h2>\n<pre>{}</pre>\n", title, esc(&text)));
        }
    }

    // Ablations and remaining figures: simple per-figure charts.
    for (file, x_axis, title) in [
        ("fig9.csv", "n", "Fig. 9 — adaptive strategy ablation"),
        ("fig10.csv", "n", "Fig. 10 — early stopping ablation"),
        ("fig11.csv", "n", "Fig. 11 — queue ablation"),
        ("fig12.csv", "k", "Fig. 12 — devices"),
        ("fig13.csv", "n", "Fig. 13 — ANN distance arrays"),
    ] {
        if let Ok(rows) = read_csv(&dir.join(file)) {
            html.push_str(&format!("<h2>{title}</h2>\n"));
            // Group by the non-axis dimensions that vary.
            let groups: BTreeSet<(String, String, usize)> = rows
                .iter()
                .map(|r| {
                    (
                        r.workload.clone(),
                        r.device.clone(),
                        if x_axis == "n" { r.k } else { 0 },
                    )
                })
                .collect();
            for (wl, dev, k) in groups {
                let sub: Vec<Row> = rows
                    .iter()
                    .filter(|r| r.workload == wl && r.device == dev && (x_axis != "n" || r.k == k))
                    .cloned()
                    .collect();
                let sub_title = if x_axis == "n" {
                    format!("{wl} on {dev}, K = {k}")
                } else {
                    format!("{wl} on {dev}")
                };
                html.push_str(&svg_chart(&sub, x_axis, &sub_title, 860, 280));
            }
        }
    }

    html.push_str("</body></html>\n");
    Ok(html)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(algo: &str, n: usize, k: usize, t: f64) -> Row {
        Row {
            algo: algo.into(),
            device: "A100".into(),
            workload: "uniform".into(),
            n,
            k,
            batch: 1,
            time_us: t,
            mem_bytes: 0,
            kernels: 1,
            pcie_us: 0.0,
            idle_us: 0.0,
            verified: true,
        }
    }

    #[test]
    fn chart_has_one_polyline_per_series() {
        let rows = vec![
            row("AIR Top-K", 1 << 12, 8, 10.0),
            row("AIR Top-K", 1 << 16, 8, 30.0),
            row("Sort", 1 << 12, 8, 100.0),
            row("Sort", 1 << 16, 8, 200.0),
        ];
        let svg = svg_chart(&rows, "n", "test", 860, 300);
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("#1f6feb"), "AIR colour present");
        assert!(svg.contains("2^")); // x ticks
        assert!(svg.contains("1e")); // y decade labels
        assert!(svg.contains("AIR Top-K")); // legend
        assert!(svg.ends_with("</svg>\n"));
    }

    #[test]
    fn chart_handles_empty_and_escapes() {
        assert_eq!(svg_chart(&[], "n", "x", 100, 100), "");
        let rows = vec![row("A<b>", 1024, 8, 1.0)];
        let svg = svg_chart(&rows, "n", "ti<tle", 400, 200);
        assert!(svg.contains("A&lt;b&gt;"));
        assert!(svg.contains("ti&lt;tle"));
        assert!(!svg.contains("A<b>"));
    }

    #[test]
    fn report_renders_from_csvs() {
        let dir = std::env::temp_dir().join("topk_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        crate::report::write_csv(
            &dir.join("fig6.csv"),
            &[
                row("AIR Top-K", 1 << 15, 8, 12.0),
                row("Sort", 1 << 15, 8, 70.0),
            ],
        )
        .unwrap();
        std::fs::write(dir.join("table2.txt"), "speedups & ranges").unwrap();
        let html = render_report(&dir).unwrap();
        assert!(html.contains("<h2>Fig. 6"));
        assert!(html.contains("<svg"));
        assert!(html.contains("speedups &amp; ranges"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
