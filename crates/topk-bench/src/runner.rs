//! Executing one benchmark configuration on the simulator.

use datagen::{AnnDataset, AnnKind, Distribution};
use gpu_sim::{DeviceSpec, Gpu};
use topk_core::{verify_topk, TopKAlgorithm};

use crate::report::Row;

/// What data feeds the selection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Workload {
    /// A synthetic distribution (§5.1).
    Synthetic(Distribution),
    /// L2 distance arrays from a generated ANN dataset (§5.5).
    Ann(AnnKind),
}

impl Workload {
    /// Name used in CSV output.
    pub fn name(&self) -> String {
        match self {
            Workload::Synthetic(d) => d.name(),
            Workload::Ann(k) => k.name().to_string(),
        }
    }
}

/// One benchmark point.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Device to simulate.
    pub device: DeviceSpec,
    /// Input data source.
    pub workload: Workload,
    /// Problem size.
    pub n: usize,
    /// Results per problem.
    pub k: usize,
    /// Problems solved together (§5.1's batch size).
    pub batch: usize,
    /// RNG seed.
    pub seed: u64,
    /// Check outputs against the reference (slower; tests already
    /// cover correctness, so the big sweeps leave this off).
    pub verify: bool,
}

impl BenchConfig {
    /// A config on the A100 with verification off.
    pub fn new(workload: Workload, n: usize, k: usize, batch: usize) -> Self {
        BenchConfig {
            device: DeviceSpec::a100(),
            workload,
            n,
            k,
            batch,
            seed: 0x5eed,
            verify: false,
        }
    }

    fn make_batch(&self) -> Vec<Vec<f32>> {
        match self.workload {
            Workload::Synthetic(dist) => {
                datagen::generate_batch(dist, self.n, self.batch, self.seed)
            }
            Workload::Ann(kind) => {
                let ds = AnnDataset::generate(kind, self.n, self.batch, self.seed);
                (0..self.batch).map(|q| ds.distance_array(q)).collect()
            }
        }
    }
}

/// Whether `alg` can run this configuration (K caps, N bounds).
pub fn supports(alg: &dyn TopKAlgorithm, cfg: &BenchConfig) -> bool {
    cfg.k >= 1 && cfg.k <= cfg.n && alg.max_k().is_none_or(|mk| cfg.k <= mk)
}

/// Run one algorithm on one configuration; returns `None` when the
/// algorithm does not support the configuration (mirroring the paper's
/// missing curves: "there are constraints for some algorithms hence no
/// result").
pub fn run_config(alg: &dyn TopKAlgorithm, cfg: &BenchConfig) -> Option<Row> {
    if !supports(alg, cfg) {
        return None;
    }
    let data = cfg.make_batch();
    let mut gpu = Gpu::new(cfg.device.clone());
    let inputs: Vec<_> = data
        .iter()
        .enumerate()
        .map(|(i, d)| gpu.htod(&format!("problem{i}"), d))
        .collect();

    gpu.reset_profile();
    let outs = alg.select_batch(&mut gpu, &inputs, cfg.k);
    let time_us = gpu.elapsed_us();

    let mut verified = true;
    if cfg.verify {
        for (d, o) in data.iter().zip(&outs) {
            if let Err(e) = verify_topk(d, cfg.k, &o.values.to_vec(), &o.indices.to_vec()) {
                eprintln!(
                    "VERIFICATION FAILED: {} n={} k={} batch={}: {e}",
                    alg.name(),
                    cfg.n,
                    cfg.k,
                    cfg.batch
                );
                verified = false;
            }
        }
    }

    let mem_bytes: u64 = gpu
        .reports()
        .iter()
        .map(|r| r.stats.total_mem_bytes())
        .sum();
    Some(Row {
        algo: alg.name().to_string(),
        device: cfg.device.name.to_string(),
        workload: cfg.workload.name(),
        n: cfg.n,
        k: cfg.k,
        batch: cfg.batch,
        time_us,
        mem_bytes,
        kernels: gpu.timeline().kernel_count(),
        pcie_us: gpu.timeline().memcpy_us(),
        idle_us: gpu.timeline().idle_us(),
        verified,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use topk_core::AirTopK;

    #[test]
    fn run_config_produces_sane_row() {
        let cfg = BenchConfig {
            verify: true,
            ..BenchConfig::new(Workload::Synthetic(Distribution::Uniform), 5000, 32, 2)
        };
        let air = AirTopK::default();
        let row = run_config(&air, &cfg).unwrap();
        assert_eq!(row.algo, "AIR Top-K");
        assert!(row.time_us > 0.0);
        assert!(row.verified);
        assert_eq!(row.batch, 2);
        assert!(row.mem_bytes > 0);
    }

    #[test]
    fn unsupported_k_returns_none() {
        let cfg = BenchConfig::new(Workload::Synthetic(Distribution::Uniform), 10_000, 4096, 1);
        let gs = topk_core::GridSelect::default();
        assert!(run_config(&gs, &cfg).is_none());
        let cfg_bad = BenchConfig::new(Workload::Synthetic(Distribution::Uniform), 10, 20, 1);
        let air = AirTopK::default();
        assert!(run_config(&air, &cfg_bad).is_none());
    }

    #[test]
    fn ann_workload_runs() {
        let cfg = BenchConfig {
            verify: true,
            ..BenchConfig::new(Workload::Ann(AnnKind::SiftLike), 2048, 10, 1)
        };
        let air = AirTopK::default();
        let row = run_config(&air, &cfg).unwrap();
        assert!(row.verified);
        assert_eq!(row.workload, "sift-like");
    }
}
