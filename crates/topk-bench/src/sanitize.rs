//! `topk-bench sanitize` — the correctness gate that runs every
//! algorithm under the gpu-sim sanitizer (racecheck + initcheck +
//! memcheck + contract conformance) and fails on any finding.
//!
//! The §5.1 `verify` gate proves the *answers* are right; this gate
//! proves the *executions* are clean: no cross-block data races, no
//! reads of never-written device words, no out-of-bounds or
//! use-after-free accesses. Both can disagree — a racy kernel can
//! still produce correct output on the simulator's schedule — which is
//! exactly why real GPU projects run compute-sanitizer in CI next to
//! their unit tests. With contracts armed, every launch is also checked
//! statically against its declared [`gpu_sim::KernelContract`] and
//! dynamically for conformance (observed accesses ⊆ declared
//! footprints), so the contract annotations cannot rot.
//!
//! Two matrices:
//!
//! * `full` — every algorithm (the eight baselines, AIR Top-K,
//!   GridSelect, UnfusedRadix, StreamingSelect, the DrTopK hybrid,
//!   RadiK, RowWise, the approximate BucketedTopK and TwoStageTopK
//!   rungs, and the SelectK dispatcher) × N ∈ {2^16, 2^20} ×
//!   K ∈ {32, 1024} × batch ∈ {1, 32}, plus a chaos seed-matrix over
//!   the serving engine and a sliding-window sweep over the
//!   [`WarpSelector`] device-function path.
//! * `smoke` — the same sweep at N = 2^16 with batch ∈ {1, 8}, a
//!   single chaos seed and a single window; the CI-sized variant.

use datagen::Distribution;
use gpu_sim::device::WARP_SIZE;
use gpu_sim::{DeviceSpec, Footprint, Gpu, KernelContract, LaunchConfig, SanitizerMode};
use topk_core::{AirTopK, TopKAlgorithm, WarpSelector};
use topk_engine::{EngineConfig, FaultPlan, TopKEngine};
use topk_hybrid::DrTopK;

/// One sweep's shape grid.
#[derive(Debug, Clone)]
pub struct SanitizeMatrix {
    /// Problem sizes.
    pub ns: Vec<usize>,
    /// Results per problem.
    pub ks: Vec<usize>,
    /// Batch sizes (1 = the single-query path).
    pub batches: Vec<usize>,
    /// Seeds for the engine chaos pass (empty = skip the engine pass).
    pub chaos_seeds: Vec<u64>,
    /// Queries per chaos drain.
    pub chaos_queries: usize,
    /// Window sizes for the sliding-window streaming pass: the
    /// [`WarpSelector`] driven as a device function over consecutive
    /// windows of a stream (empty = skip the pass).
    pub streaming_windows: Vec<usize>,
}

impl SanitizeMatrix {
    /// The acceptance-gate grid: every algorithm over both problem
    /// sizes, both K extremes, both batch shapes, plus a three-seed
    /// chaos matrix on the engine.
    pub fn full() -> Self {
        SanitizeMatrix {
            ns: vec![1 << 16, 1 << 20],
            ks: vec![32, 1024],
            batches: vec![1, 32],
            chaos_seeds: vec![11, 42, 1337],
            chaos_queries: 48,
            streaming_windows: vec![1 << 12, 1 << 16],
        }
    }

    /// CI-sized grid: one N, small batches, one chaos seed, one window.
    pub fn smoke() -> Self {
        SanitizeMatrix {
            ns: vec![1 << 16],
            ks: vec![32, 1024],
            batches: vec![1, 8],
            chaos_seeds: vec![42],
            chaos_queries: 24,
            streaming_windows: vec![1 << 12],
        }
    }
}

/// Outcome of one sweep.
#[derive(Debug, Clone, Default)]
pub struct SanitizeSummary {
    /// Algorithm configurations executed (skips excluded).
    pub configs: usize,
    /// Engine chaos drains executed.
    pub chaos_drains: usize,
    /// Sliding-window streaming runs executed.
    pub streaming_runs: usize,
    /// Total flagged accesses across every run (0 on a healthy build).
    pub findings: u64,
    /// Rendered findings, one line per deduplicated finding, prefixed
    /// with the configuration that produced it.
    pub details: Vec<String>,
}

/// The algorithm set the gate covers: the eight baselines, the paper's
/// two new methods, the extension algorithms (UnfusedRadix, the
/// streaming adapter, the DrTopK hybrid, RadiK, RowWise), the two
/// approximate degradation rungs (bucketed and two-stage), and the
/// adaptive dispatcher itself — everything a query can route through.
///
/// The approximate selectors use fixed configurations feasible across
/// the whole matrix: bucketed keeps 16 winners per bucket, two-stage
/// keeps 256 candidates in each of 8 partitions (covering K up to
/// 2048 without starving any partition down to N = 4096).
fn gate_algorithms() -> Vec<Box<dyn TopKAlgorithm>> {
    let mut algs = topk_baselines::all_baselines();
    algs.push(Box::new(AirTopK::default()));
    algs.push(Box::new(topk_core::GridSelect::default()));
    algs.push(Box::new(topk_core::UnfusedRadix::default()));
    algs.push(Box::new(topk_core::StreamingSelect::default()));
    algs.push(Box::new(DrTopK::new(AirTopK::default())));
    algs.push(Box::new(topk_core::RadiK::default()));
    algs.push(Box::new(topk_core::RowWiseTopK::default()));
    algs.push(Box::new(topk_core::BucketedTopK::default()));
    algs.push(Box::new(topk_core::TwoStageTopK::new(8, 256)));
    algs.push(Box::new(topk_core::SelectK::default()));
    algs
}

/// Run one algorithm configuration under the full sanitizer and fold
/// its findings into the summary.
fn sanitize_config(
    alg: &dyn TopKAlgorithm,
    n: usize,
    k: usize,
    batch: usize,
    summary: &mut SanitizeSummary,
) {
    let mut gpu = Gpu::new(DeviceSpec::a100());
    gpu.enable_sanitizer(SanitizerMode::full().with_contracts());

    let tag = format!("{} N={n} K={k} batch={batch}", alg.name());
    let result = if batch == 1 {
        let data = datagen::generate(Distribution::Uniform, n, (n + k) as u64);
        let input = gpu.htod("in", &data);
        alg.try_select(&mut gpu, &input, k).map(|_| ())
    } else {
        let inputs: Vec<_> = (0..batch)
            .map(|b| {
                let data = datagen::generate(Distribution::Uniform, n, (n + k + b) as u64);
                gpu.htod(&format!("in{b}"), &data)
            })
            .collect();
        alg.try_select_batch(&mut gpu, &inputs, k).map(|_| ())
    };
    if let Err(e) = result {
        // A selection error here is a bug in its own right; surface it
        // through the same failure channel as a finding.
        summary.findings += 1;
        summary.details.push(format!("{tag}: selection error: {e}"));
    }

    let report = gpu.sanitizer_report().expect("sanitizer was armed");
    summary.configs += 1;
    summary.findings += report.counts.total();
    for f in &report.findings {
        summary.details.push(format!("{tag}: {f}"));
    }
    println!(
        "{:<16} {:>9} {:>6} {:>6}  {}",
        alg.name(),
        n,
        k,
        batch,
        if report.is_clean() {
            "clean".to_string()
        } else {
            format!("{} flagged accesses", report.counts.total())
        }
    );
}

/// Drain a faulted mixed workload through a sanitized engine: the
/// retry/failover/deadline machinery must stay clean too, because those
/// are exactly the paths that re-use devices after mid-flight aborts.
/// The drain runs with a sub-unit recall target so the approximate
/// degradation rungs are sanitized on the same chaotic schedules that
/// trigger them in production.
fn sanitize_chaos_drain(seed: u64, queries: usize, summary: &mut SanitizeSummary) {
    let workload = crate::serving::mixed_workload(queries, false);
    let cfg = EngineConfig::a100_pool(2)
        .with_window(8)
        .with_queue_capacity(workload.len().max(1))
        .with_faults(FaultPlan::chaos(seed, 0.10))
        .with_recall_target(0.95)
        .with_sanitizer(SanitizerMode::full().with_contracts());
    let mut engine = TopKEngine::new(cfg);
    for (data, k) in &workload {
        engine
            .submit(data.clone(), *k)
            .expect("queue sized to the workload");
    }
    let report = engine.drain();
    summary.chaos_drains += 1;
    summary.findings += report.sanitizer.total();
    for (dev, findings) in engine.sanitizer_findings().into_iter().enumerate() {
        for f in findings {
            summary
                .details
                .push(format!("engine chaos seed={seed} device {dev}: {f}"));
        }
    }
    println!(
        "{:<16} {:>9} {:>6} {:>6}  {}",
        "engine-chaos",
        queries,
        seed,
        2,
        if report.sanitizer.total() == 0 {
            "clean".to_string()
        } else {
            format!("{} flagged accesses", report.sanitizer.total())
        }
    );
}

/// The §4 sliding-window streaming path: one warp per window drives
/// the [`WarpSelector`] device function over its slice of the stream
/// on-the-fly — values are consumed as produced, pruned against the
/// live admission threshold, never materialised per window. The
/// adapter in [`gate_algorithms`] cannot reach this fused-producer
/// usage, so it gets its own sanitized pass, answer-checked against a
/// host sort of each window.
fn sanitize_streaming_window(window: usize, k: usize, summary: &mut SanitizeSummary) {
    let hops = 3usize;
    let n = hops * window;
    let k = k.min(window);
    let mut gpu = Gpu::new(DeviceSpec::a100());
    gpu.enable_sanitizer(SanitizerMode::full().with_contracts());
    let data = datagen::generate(Distribution::Uniform, n, window as u64);
    let input = gpu.htod("stream", &data);
    let out_val = gpu.alloc::<f32>("win_val", hops * k);
    let out_idx = gpu.alloc::<u32>("win_idx", hops * k);
    let (ovc, oic) = (out_val.clone(), out_idx.clone());
    // One block per window: block b reads exactly its window of the
    // stream and writes exactly its K result slots. The selector keeps
    // its list (rounded up to a power of two) plus a 32-slot staging
    // queue in shared memory, 8 bytes per entry.
    let contract = KernelContract::new("stream_window")
        .reads(&input, Footprint::per_block(window))
        .writes(&out_val, Footprint::per_block(k))
        .writes(&out_idx, Footprint::per_block(k))
        .uses_shared_mem((k.next_power_of_two() + WARP_SIZE) * 8);
    gpu.launch_checked(
        &contract,
        LaunchConfig::grid_1d(hops, WARP_SIZE),
        move |ctx| {
            let start = ctx.block_idx * window;
            let end = start + window;
            let mut sel = WarpSelector::new(ctx, k);
            let mut g = start;
            while g < end {
                let mut vals = [0.0f32; WARP_SIZE];
                let mut pays = [0u32; WARP_SIZE];
                let mut valid = [false; WARP_SIZE];
                for lane in 0..WARP_SIZE {
                    let i = g + lane;
                    if i < end {
                        let v = ctx.ld(&input, i);
                        // Prune against the live threshold (values ≥
                        // the Kth smallest seen cannot enter); the
                        // comparison is written so the NaN/+∞-like
                        // initial threshold never prunes.
                        let thr = sel.threshold();
                        if !matches!(
                            v.partial_cmp(&thr),
                            Some(std::cmp::Ordering::Greater | std::cmp::Ordering::Equal)
                        ) {
                            vals[lane] = v;
                            pays[lane] = i as u32;
                            valid[lane] = true;
                        }
                    }
                }
                sel.push(ctx, &vals, &pays, &valid);
                g += WARP_SIZE;
            }
            let (v, p) = sel.finish(ctx);
            let base = ctx.block_idx * k;
            for (i, (vv, pp)) in v.iter().zip(&p).enumerate() {
                ctx.st(&ovc, base + i, *vv);
                ctx.st(&oic, base + i, *pp);
            }
        },
    );

    let tag = format!("stream-window W={window} K={k}");
    let got = out_val.to_vec();
    for h in 0..hops {
        let mut expect: Vec<f32> = data[h * window..(h + 1) * window].to_vec();
        expect.sort_by(f32::total_cmp);
        expect.truncate(k);
        if got[h * k..(h + 1) * k] != expect[..] {
            summary.findings += 1;
            summary
                .details
                .push(format!("{tag}: window {h} top-{k} mismatch"));
        }
    }

    let report = gpu.sanitizer_report().expect("sanitizer was armed");
    summary.streaming_runs += 1;
    summary.findings += report.counts.total();
    for f in &report.findings {
        summary.details.push(format!("{tag}: {f}"));
    }
    println!(
        "{:<16} {:>9} {:>6} {:>6}  {}",
        "stream-window",
        window,
        k,
        hops,
        if report.is_clean() {
            "clean".to_string()
        } else {
            format!("{} flagged accesses", report.counts.total())
        }
    );
}

/// Run the sweep and print a per-configuration grid plus every finding.
pub fn run(matrix: &SanitizeMatrix) -> SanitizeSummary {
    let mut summary = SanitizeSummary::default();
    println!(
        "{:<16} {:>9} {:>6} {:>6}  result",
        "algorithm", "n", "k", "batch"
    );
    for alg in gate_algorithms() {
        for &n in &matrix.ns {
            for &k in &matrix.ks {
                if k > n || alg.max_k().is_some_and(|mk| k > mk) {
                    continue;
                }
                for &batch in &matrix.batches {
                    sanitize_config(alg.as_ref(), n, k, batch, &mut summary);
                }
            }
        }
    }
    for &seed in &matrix.chaos_seeds {
        sanitize_chaos_drain(seed, matrix.chaos_queries, &mut summary);
    }
    for &window in &matrix.streaming_windows {
        sanitize_streaming_window(window, 32, &mut summary);
    }

    if summary.findings == 0 {
        println!(
            "sanitizer clean: {} configurations + {} chaos drains + {} streaming windows, 0 findings",
            summary.configs, summary.chaos_drains, summary.streaming_runs
        );
    } else {
        println!(
            "sanitizer FAILED: {} flagged accesses over {} configurations + {} chaos drains + {} streaming windows",
            summary.findings, summary.configs, summary.chaos_drains, summary.streaming_runs
        );
        for d in &summary.details {
            println!("  {d}");
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_matrix_is_clean() {
        // A scaled-down grid that still touches every algorithm's
        // single and batched paths; the full/smoke grids are the same
        // loop at larger N. Zero findings is the contract the CI
        // `sanitize` job enforces.
        let matrix = SanitizeMatrix {
            ns: vec![4096],
            ks: vec![32],
            batches: vec![1, 2],
            chaos_seeds: vec![7],
            chaos_queries: 8,
            streaming_windows: vec![256],
        };
        let summary = run(&matrix);
        assert!(summary.configs > 0);
        assert_eq!(summary.chaos_drains, 1);
        assert_eq!(summary.streaming_runs, 1);
        assert_eq!(
            summary.findings,
            0,
            "sanitizer findings:\n{}",
            summary.details.join("\n")
        );
    }

    #[test]
    fn matrices_have_expected_shapes() {
        let full = SanitizeMatrix::full();
        assert_eq!(full.ns, vec![1 << 16, 1 << 20]);
        assert_eq!(full.ks, vec![32, 1024]);
        assert_eq!(full.batches, vec![1, 32]);
        assert_eq!(full.chaos_seeds.len(), 3);
        assert_eq!(full.streaming_windows, vec![1 << 12, 1 << 16]);
        let smoke = SanitizeMatrix::smoke();
        assert_eq!(smoke.ns, vec![1 << 16]);
        assert_eq!(smoke.batches, vec![1, 8]);
        assert_eq!(smoke.streaming_windows, vec![1 << 12]);
    }
}
