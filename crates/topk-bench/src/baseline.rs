//! `topk-bench baseline` — the tracked perf trajectory.
//!
//! Runs the canonical *adversarial shape matrix* (skewed distributions
//! × large batches × many-small-rows — the regimes the static §5.1
//! heuristics leave on the table) through both dispatchers:
//!
//! * **static** — [`SelectK::static_prior`], the pre-tuner §5.1
//!   guidelines;
//! * **tuned** — [`SelectK::default`], the cost-model-guided
//!   autotuner.
//!
//! Every cell records the simulated latency of both paths, the tuner's
//! winning configuration, and the calibrated cost-model estimate for
//! every viable candidate (the *cost digest*). Simulated time is
//! deterministic, so the emitted `BENCH_7.json` is byte-stable and can
//! be diffed in CI: the `bench-regression` job fails when any cell's
//! tuned digest regresses more than 5% against the committed baseline.
//!
//! Intentional tradeoffs are recorded by regenerating the baseline
//! (`topk-bench baseline --out BENCH_7.json`) and committing the new
//! file; one-off CI overrides set `BENCH_REGRESSION_OK=1` (the check
//! then reports but does not fail).

use datagen::Distribution;
use gpu_sim::{DeviceSpec, Gpu};
use topk_core::tuner::{DistSketch, ProblemShape, Tuner};
use topk_core::SelectK;

/// Regression tolerance: a cell fails the check when its tuned digest
/// exceeds the committed value by more than this factor.
pub const TOLERANCE: f64 = 0.05;

/// One cell of the canonical matrix.
#[derive(Debug, Clone)]
pub struct BaselineCell {
    /// Stable cell name (the JSON key CI diffs against).
    pub name: &'static str,
    /// Row length.
    pub n: usize,
    /// Results per row.
    pub k: usize,
    /// Rows solved together.
    pub batch: usize,
    /// Input distribution.
    pub dist: Distribution,
}

/// The canonical adversarial shape matrix. Cell order is part of the
/// baseline format — append new cells, never reorder.
pub fn canonical_matrix() -> Vec<BaselineCell> {
    vec![
        // The two §5.1 regimes the static prior already serves; the
        // tuner must not lose ground here.
        BaselineCell {
            name: "uniform-large-n-small-k",
            n: 1 << 21,
            k: 32,
            batch: 1,
            dist: Distribution::Uniform,
        },
        BaselineCell {
            name: "uniform-large-n-large-k",
            n: 1 << 21,
            k: 2048,
            batch: 1,
            dist: Distribution::Uniform,
        },
        // Skewed batches: a 24-bit shared prefix degenerates AIR's
        // first radix passes; value-agnostic GridSelect (small K) and
        // sketch-guided RadiK (large K) should take over.
        BaselineCell {
            name: "skew-small-k-batch",
            n: 1 << 18,
            k: 128,
            batch: 32,
            dist: Distribution::RadixAdversarial { m_bits: 24 },
        },
        BaselineCell {
            name: "skew-mid-k-batch",
            n: 1 << 18,
            k: 4096,
            batch: 8,
            dist: Distribution::RadixAdversarial { m_bits: 24 },
        },
        BaselineCell {
            name: "skew-large-k-batch",
            n: 1 << 20,
            k: 4096,
            batch: 16,
            dist: Distribution::RadixAdversarial { m_bits: 24 },
        },
        // Many small rows (the RTop-K regime): one fused launch beats
        // AIR's per-batch multi-pass cascade.
        BaselineCell {
            name: "rows-many-small",
            n: 16_384,
            k: 64,
            batch: 256,
            dist: Distribution::Uniform,
        },
    ]
}

/// Measured + modelled outcome of one cell.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// The cell definition this result answers.
    pub cell: BaselineCell,
    /// The tuner's winning configuration (`TunedAlgo::encode`).
    pub algo: String,
    /// Calibrated cost-model estimate per viable candidate, µs.
    pub model_us: Vec<(String, f64)>,
    /// Simulated latency of the static §5.1 dispatcher, µs.
    pub static_us: f64,
    /// Simulated latency of the tuned dispatcher, µs.
    pub tuned_us: f64,
}

impl CellResult {
    /// Static-over-tuned latency ratio (> 1 means the tuner won).
    pub fn speedup(&self) -> f64 {
        self.static_us / self.tuned_us
    }
}

/// The full matrix result.
#[derive(Debug, Clone)]
pub struct BaselineReport {
    /// One result per canonical cell, in matrix order.
    pub cells: Vec<CellResult>,
    /// Geometric-mean speedup of tuned over static dispatch.
    pub geomean_speedup: f64,
}

fn measure(selector: &SelectK, cell: &BaselineCell, sketch: DistSketch) -> f64 {
    let mut gpu = Gpu::new(DeviceSpec::a100());
    let data = datagen::generate_batch(cell.dist, cell.n, cell.batch, 0x6a5e);
    let inputs: Vec<_> = data
        .iter()
        .enumerate()
        .map(|(i, d)| gpu.htod(&format!("row{i}"), d))
        .collect();
    gpu.reset_profile();
    let r = if cell.batch == 1 {
        selector
            .try_select_with_sketch(&mut gpu, &inputs[0], cell.k, sketch)
            .map(|_| ())
    } else {
        selector
            .try_select_batch_with_sketch(&mut gpu, &inputs, cell.k, sketch)
            .map(|_| ())
    };
    r.unwrap_or_else(|e| panic!("baseline cell {}: {e}", cell.name));
    gpu.elapsed_us()
}

/// Run the canonical matrix through both dispatchers.
pub fn run() -> BaselineReport {
    let spec = DeviceSpec::a100();
    let mut cells = Vec::new();
    let mut log_sum = 0.0f64;
    for cell in canonical_matrix() {
        // Sketch from the actual data, exactly as the engine does at
        // submission time.
        let sample = datagen::generate(cell.dist, cell.n.min(1 << 16), 0x6a5e);
        let sketch = DistSketch::from_sample(&sample);
        let shape = ProblemShape::new(cell.n, cell.k, cell.batch).with_sketch(sketch);

        let tuner = Tuner::new();
        let model_us: Vec<(String, f64)> = Tuner::candidates(&spec, &shape)
            .into_iter()
            .filter_map(|a| tuner.predict_us(&spec, &shape, a).map(|c| (a.encode(), c)))
            .collect();
        let plan = tuner.plan(&spec, &shape);

        let static_us = measure(&SelectK::static_prior(), &cell, sketch);
        let tuned_us = measure(&SelectK::default(), &cell, sketch);

        let result = CellResult {
            cell,
            algo: plan.algo.encode(),
            model_us,
            static_us,
            tuned_us,
        };
        log_sum += result.speedup().ln();
        cells.push(result);
    }
    let geomean_speedup = (log_sum / cells.len() as f64).exp();
    BaselineReport {
        cells,
        geomean_speedup,
    }
}

/// Render the report as the `BENCH_7.json` format: deterministic key
/// order, `{:.3}` µs values, one cell per line.
pub fn to_json(report: &BaselineReport) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"version\": 1,\n");
    s.push_str(&format!(
        "  \"geomean_speedup\": {:.3},\n",
        report.geomean_speedup
    ));
    s.push_str("  \"cells\": [\n");
    for (i, r) in report.cells.iter().enumerate() {
        let model: Vec<String> = r
            .model_us
            .iter()
            .map(|(a, c)| format!("\"{a}\": {c:.3}"))
            .collect();
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"n\": {}, \"k\": {}, \"batch\": {}, \"dist\": \"{}\", \
             \"algo\": \"{}\", \"static_us\": {:.3}, \"tuned_us\": {:.3}, \"speedup\": {:.3}, \
             \"model_us\": {{{}}}}}{}\n",
            r.cell.name,
            r.cell.n,
            r.cell.k,
            r.cell.batch,
            r.cell.dist.name(),
            r.algo,
            r.static_us,
            r.tuned_us,
            r.speedup(),
            model.join(", "),
            if i + 1 == report.cells.len() { "" } else { "," },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Extract `(name, tuned_us)` pairs from a committed baseline file.
/// The format is the line-per-cell JSON [`to_json`] writes; this
/// scanner only relies on the `"name"`/`"tuned_us"` keys so appended
/// fields stay compatible.
pub fn parse_cells(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(name) = extract_str(line, "\"name\": \"") else {
            continue;
        };
        let Some(tuned) = extract_num(line, "\"tuned_us\": ") else {
            continue;
        };
        out.push((name, tuned));
    }
    out
}

fn extract_str(line: &str, key: &str) -> Option<String> {
    let start = line.find(key)? + key.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

fn extract_num(line: &str, key: &str) -> Option<f64> {
    let start = line.find(key)? + key.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Compare a fresh report against the committed baseline text. Returns
/// the list of regressions (empty = pass): cells whose tuned digest
/// exceeds the committed value by more than [`TOLERANCE`], plus cells
/// missing from either side.
pub fn check(report: &BaselineReport, baseline_text: &str) -> Vec<String> {
    let committed = parse_cells(baseline_text);
    let mut failures = Vec::new();
    for r in &report.cells {
        match committed.iter().find(|(n, _)| n == r.cell.name) {
            None => failures.push(format!(
                "cell {} missing from committed baseline (regenerate BENCH_7.json)",
                r.cell.name
            )),
            Some((_, committed_us)) => {
                if r.tuned_us > committed_us * (1.0 + TOLERANCE) {
                    failures.push(format!(
                        "cell {}: tuned digest {:.3} us regressed >{:.0}% vs committed {:.3} us",
                        r.cell.name,
                        r.tuned_us,
                        TOLERANCE * 100.0,
                        committed_us
                    ));
                }
            }
        }
    }
    for (name, _) in &committed {
        if !report.cells.iter().any(|r| r.cell.name == name.as_str()) {
            failures.push(format!(
                "committed cell {name} no longer in the canonical matrix (regenerate BENCH_7.json)"
            ));
        }
    }
    failures
}

/// Print the per-cell table to stdout.
pub fn render(report: &BaselineReport) {
    println!(
        "{:<24} {:>9} {:>6} {:>6}  {:<10} {:>12} {:>12} {:>8}",
        "cell", "n", "k", "batch", "algo", "static us", "tuned us", "speedup"
    );
    for r in &report.cells {
        println!(
            "{:<24} {:>9} {:>6} {:>6}  {:<10} {:>12.1} {:>12.1} {:>7.2}x",
            r.cell.name,
            r.cell.n,
            r.cell.k,
            r.cell.batch,
            r.algo,
            r.static_us,
            r.tuned_us,
            r.speedup()
        );
    }
    println!("geomean speedup: {:.3}x", report.geomean_speedup);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_covers_the_adversarial_regimes() {
        let m = canonical_matrix();
        assert!(m.iter().any(|c| c.batch >= 128), "many-small-rows cell");
        assert!(
            m.iter().any(
                |c| matches!(c.dist, Distribution::RadixAdversarial { m_bits } if m_bits >= 20)
                    && c.batch > 1
            ),
            "skewed large-batch cell"
        );
        assert!(
            m.iter().any(|c| c.batch == 1 && c.n >= 1 << 20),
            "static-prior home regime stays covered"
        );
    }

    #[test]
    fn baseline_beats_static_and_selects_both_new_algorithms() {
        // The ISSUE 6 acceptance criteria, enforced: >= 1.2x geomean
        // cost-model speedup and both new algorithms picked somewhere.
        let report = run();
        assert!(
            report.geomean_speedup >= 1.2,
            "geomean {:.3} < 1.2",
            report.geomean_speedup
        );
        let algos: Vec<&str> = report.cells.iter().map(|r| r.algo.as_str()).collect();
        assert!(
            algos.iter().any(|a| a.starts_with("radik")),
            "RadiK never selected: {algos:?}"
        );
        assert!(
            algos.contains(&"rowwise"),
            "RowWise never selected: {algos:?}"
        );
        // The tuner must not lose the static prior's home regimes.
        for r in &report.cells {
            assert!(
                r.speedup() > 0.95,
                "cell {} regressed under tuning: {:.2}x",
                r.cell.name,
                r.speedup()
            );
        }

        // The JSON digest is deterministic and survives the check
        // round-trip; a doctored digest fails it.
        let json = to_json(&report);
        assert_eq!(json, to_json(&run()), "baseline must be byte-stable");
        assert_eq!(parse_cells(&json).len(), report.cells.len());
        assert!(check(&report, &json).is_empty());
        let first = format!("\"tuned_us\": {:.3}", report.cells[0].tuned_us);
        let doctored = json.replacen(&first, "\"tuned_us\": 0.001", 1);
        let failures = check(&report, &doctored);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("regressed"));
    }
}
