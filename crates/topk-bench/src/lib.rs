//! # topk-bench — the paper's evaluation, regenerated
//!
//! A benchmark harness that reproduces every table and figure in §5 of
//! *"Parallel Top-K Algorithms on GPU"* on the simulated device:
//!
//! | Artefact | Subcommand | What it shows |
//! |----------|-----------|----------------|
//! | Fig. 6 | `fig6` | time vs K at fixed N, 3 distributions |
//! | Fig. 7 | `fig7` | time vs N at fixed K, batch 1 and 100 |
//! | Table 2 | `table2` | speedup ranges (AIR vs RadixSelect, GridSelect vs BlockSelect, AIR vs SOTA) |
//! | Fig. 8 | `fig8` | timeline breakdown, RadixSelect vs AIR |
//! | Table 3 | `table3` | per-kernel Memory/Compute SOL |
//! | Fig. 9 | `fig9` | adaptive strategy ablation (M = 10, 20) |
//! | Fig. 10 | `fig10` | early-stopping ablation |
//! | Fig. 11 | `fig11` | shared vs per-thread queue ablation |
//! | Fig. 12 | `fig12` | A100 vs H100 vs A10 |
//! | Fig. 13 | `fig13` | ANN distance arrays (DEEP1B/SIFT-like) |
//! | — | `engine` | TopKEngine queries/sec vs coalescing window (serving layer, beyond the paper) |
//!
//! Simulated time is deterministic, so one run per configuration
//! replaces the paper's 100-run averages. The default grids are scaled
//! down from the paper's (this harness runs on a laptop-class host);
//! `--full` selects the paper's exact grid.

pub mod baseline;
pub mod figures;
pub mod html;
pub mod profile;
pub mod report;
pub mod runner;
pub mod sanitize;
pub mod serving;
pub mod tools;

pub use report::{write_csv, Row};
pub use runner::{run_config, BenchConfig, Workload};
