//! Command-line entry point: regenerate the paper's tables and figures.
//!
//! ```text
//! topk-bench <command> [--full] [--verify] [--out DIR]
//!
//! commands:
//!   fig6    time vs K                    fig9    adaptive-strategy ablation
//!   fig7    time vs N, batch 1/100       fig10   early-stopping ablation
//!   table2  speedup summary              fig11   queue ablation
//!   fig8    timeline breakdown           fig12   A100 / H100 / A10
//!   table3  kernel SOL analysis          fig13   ANN distance arrays
//!   engine  TopKEngine queries/sec vs coalescing window
//!   profile continuous-profiler report: per-kernel rooflines, stage
//!           attribution, cost-model drift, flight-recorder post-mortems
//!   all     every figure/table above
//!
//! tools:
//!   compare --algos A,B --n N --k K --batch B --dist uniform|normal|adversarialM|zipfT
//!   tune-alpha [--n N] [--k K]
//!   verify [--quick]      run the correctness gate over every algorithm
//!   sanitize [--matrix smoke|full]  run every algorithm under the gpu-sim sanitizer
//!   baseline [--out FILE] | baseline --check [--file FILE]
//!                         run the adversarial shape matrix through static and
//!                         tuned dispatch; write or check BENCH_10.json
//!   report [--out DIR]    build DIR/report.html (inline-SVG charts) from the CSVs
//! ```
//!
//! CSV output lands in `--out` (default `bench-results/`).

use std::path::PathBuf;
use topk_bench::figures::{self, FigOpts};
use topk_bench::report::{read_csv, write_csv, Row};

fn usage() -> ! {
    eprintln!(
        "usage: topk-bench <fig6|fig7|table2|fig8|table3|fig9|fig10|fig11|fig12|fig13|engine|profile|all> \
         [--full] [--verify] [--quiet] [--out DIR] [--metrics-out FILE] [--trace-out FILE]\n\
       topk-bench engine [--faults SEED] [--fault-rate P] [--deadline-us D] [--recall-target T]\n\
                         [--digest-out FILE] [--profile-out FILE] [--postmortem-dir DIR] ...\n\
                         --recall-target T (< 1.0) permits the approximate degradation rungs\n\
                         and exits non-zero if the drain's recall falls below T\n\
       topk-bench profile [--out DIR] [--faults SEED] [--fault-rate P] [--deadline-us D]\n\
                         write DIR/profile.html (roofline + drift + stage report) and any\n\
                         flight-recorder post-mortem JSON dumps to DIR/postmortems/\n\
       topk-bench compare [--algos A,B,..] [--n N] [--k K] [--batch B] [--dist D] [--no-verify]\n\
       topk-bench tune-alpha [--n N] [--k K]\n\
       topk-bench sanitize [--matrix smoke|full]\n\
       topk-bench baseline [--out FILE] | baseline --check [--file FILE]"
    );
    std::process::exit(2);
}

/// Fault-injection flags for the `engine` subcommand, folded into
/// [`EngineBenchOpts`](topk_bench::serving::EngineBenchOpts).
#[derive(Debug, Clone, Default)]
struct FaultOpts {
    fault_seed: Option<u64>,
    fault_rate: Option<f64>,
    deadline_us: Option<u64>,
    recall_target: Option<f64>,
}

fn engine_opts(opts: &FigOpts, faults: &FaultOpts) -> topk_bench::serving::EngineBenchOpts {
    let mut e = topk_bench::serving::EngineBenchOpts {
        verify: opts.verify,
        full: opts.full,
        fault_seed: faults.fault_seed,
        deadline_us: faults.deadline_us,
        recall_target: faults.recall_target,
        ..Default::default()
    };
    if let Some(rate) = faults.fault_rate {
        e.fault_rate = rate;
    }
    e
}

fn parse_dist(s: &str) -> topk_bench::runner::Workload {
    use datagen::Distribution;
    let d = match s {
        "uniform" => Distribution::Uniform,
        "normal" => Distribution::Normal,
        other => {
            if let Some(t) = other.strip_prefix("zipf").and_then(|t| t.parse().ok()) {
                Distribution::Zipf { exponent_tenths: t }
            } else {
                let m: u32 = other
                    .strip_prefix("adversarial")
                    .and_then(|m| m.parse().ok())
                    .unwrap_or_else(|| usage());
                Distribution::RadixAdversarial { m_bits: m }
            }
        }
    };
    topk_bench::runner::Workload::Synthetic(d)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let cmd = args[0].clone();

    // Tool subcommands take their own flags.
    if cmd == "verify" {
        let quick = args.iter().any(|a| a == "--quick");
        let failures = topk_bench::tools::verify_matrix(quick);
        std::process::exit(if failures == 0 { 0 } else { 1 });
    }
    if cmd == "sanitize" {
        let matrix = match args.iter().position(|a| a == "--matrix") {
            None => topk_bench::sanitize::SanitizeMatrix::full(),
            Some(i) => match args.get(i + 1).map(String::as_str) {
                Some("smoke") => topk_bench::sanitize::SanitizeMatrix::smoke(),
                Some("full") => topk_bench::sanitize::SanitizeMatrix::full(),
                _ => usage(),
            },
        };
        let summary = topk_bench::sanitize::run(&matrix);
        std::process::exit(if summary.findings == 0 { 0 } else { 1 });
    }
    if cmd == "baseline" {
        // `baseline [--out FILE]` writes the digest; `baseline --check
        // [--file FILE]` compares against the committed one and fails
        // on >5% regressions. `BENCH_REGRESSION_OK=1` downgrades check
        // failures to warnings (the documented override for intentional
        // tradeoffs — regenerate and commit the file to record them).
        let check_mode = args.iter().any(|a| a == "--check");
        let mut file = PathBuf::from("BENCH_10.json");
        for flag in ["--out", "--file"] {
            if let Some(i) = args.iter().position(|a| a == flag) {
                file = PathBuf::from(args.get(i + 1).unwrap_or_else(|| usage()));
            }
        }
        let report = topk_bench::baseline::run();
        topk_bench::baseline::render(&report);
        if check_mode {
            let committed = std::fs::read_to_string(&file).unwrap_or_else(|e| {
                eprintln!("cannot read baseline {}: {e}", file.display());
                std::process::exit(2);
            });
            let failures = topk_bench::baseline::check(&report, &committed);
            if failures.is_empty() {
                eprintln!("[topk-bench] baseline check passed vs {}", file.display());
                std::process::exit(0);
            }
            for f in &failures {
                eprintln!("[topk-bench] REGRESSION: {f}");
            }
            if std::env::var_os("BENCH_REGRESSION_OK").is_some() {
                eprintln!("[topk-bench] BENCH_REGRESSION_OK set; not failing");
                std::process::exit(0);
            }
            std::process::exit(1);
        }
        let json = topk_bench::baseline::to_json(&report);
        std::fs::write(&file, json).expect("write baseline");
        eprintln!("[topk-bench] wrote {}", file.display());
        return;
    }
    if cmd == "compare" || cmd == "tune-alpha" {
        run_tool(&cmd, &args[1..]);
        return;
    }
    if cmd == "report" {
        let mut out_dir = std::path::PathBuf::from("bench-results");
        if args.len() >= 3 && args[1] == "--out" {
            out_dir = std::path::PathBuf::from(&args[2]);
        }
        match topk_bench::html::render_report(&out_dir) {
            Ok(html) => {
                let p = out_dir.join("report.html");
                std::fs::write(&p, html).expect("write report");
                eprintln!("[topk-bench] wrote {}", p.display());
            }
            Err(e) => eprintln!("cannot render report: {e}"),
        }
        return;
    }
    let mut opts = FigOpts::default();
    let mut out_dir = PathBuf::from("bench-results");
    let mut metrics_out: Option<PathBuf> = None;
    let mut trace_out: Option<PathBuf> = None;
    let mut digest_out: Option<PathBuf> = None;
    let mut profile_out: Option<PathBuf> = None;
    let mut postmortem_dir: Option<PathBuf> = None;
    let mut faults = FaultOpts::default();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--full" => opts.full = true,
            "--verify" => opts.verify = true,
            "--quiet" => opts.progress = false,
            "--out" => {
                i += 1;
                out_dir = PathBuf::from(args.get(i).unwrap_or_else(|| usage()));
            }
            "--metrics-out" => {
                i += 1;
                metrics_out = Some(PathBuf::from(args.get(i).unwrap_or_else(|| usage())));
            }
            "--trace-out" => {
                i += 1;
                trace_out = Some(PathBuf::from(args.get(i).unwrap_or_else(|| usage())));
            }
            "--digest-out" => {
                i += 1;
                digest_out = Some(PathBuf::from(args.get(i).unwrap_or_else(|| usage())));
            }
            "--profile-out" => {
                i += 1;
                profile_out = Some(PathBuf::from(args.get(i).unwrap_or_else(|| usage())));
            }
            "--postmortem-dir" => {
                i += 1;
                postmortem_dir = Some(PathBuf::from(args.get(i).unwrap_or_else(|| usage())));
            }
            "--faults" => {
                i += 1;
                faults.fault_seed = Some(
                    args.get(i)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--fault-rate" => {
                i += 1;
                faults.fault_rate = Some(
                    args.get(i)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--deadline-us" => {
                i += 1;
                faults.deadline_us = Some(
                    args.get(i)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--recall-target" => {
                i += 1;
                let t: f64 = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|t| (0.0..=1.0).contains(t))
                    .unwrap_or_else(|| usage());
                faults.recall_target = Some(t);
            }
            _ => usage(),
        }
        i += 1;
    }

    // `engine --metrics-out m.prom --trace-out t.json`: run one
    // instrumented drain and export its Prometheus metrics and Chrome
    // trace alongside the throughput sweep.
    let save_observability = |eopts: &topk_bench::serving::EngineBenchOpts,
                              metrics_out: &Option<PathBuf>,
                              trace_out: &Option<PathBuf>| {
        if metrics_out.is_none() && trace_out.is_none() {
            return;
        }
        let art = topk_bench::serving::engine_observability(eopts);
        for (path, body, what) in [
            (metrics_out, &art.metrics, "Prometheus metrics"),
            (trace_out, &art.trace, "Chrome trace"),
        ] {
            if let Some(path) = path {
                if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
                    std::fs::create_dir_all(parent).ok();
                }
                match std::fs::write(path, body) {
                    Ok(()) => eprintln!("[topk-bench] wrote {what} to {}", path.display()),
                    Err(e) => eprintln!("cannot write {}: {e}", path.display()),
                }
            }
        }
    };

    // `engine --digest-out d.txt`: write the deterministic chaos
    // digest of one drain so CI can diff two same-seed runs.
    let save_digest = |eopts: &topk_bench::serving::EngineBenchOpts,
                       digest_out: &Option<PathBuf>| {
        if let Some(path) = digest_out {
            if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
                std::fs::create_dir_all(parent).ok();
            }
            let digest = topk_bench::serving::chaos_digest(eopts);
            match std::fs::write(path, &digest) {
                Ok(()) => eprintln!("[topk-bench] wrote chaos digest to {}", path.display()),
                Err(e) => eprintln!("cannot write {}: {e}", path.display()),
            }
        }
    };

    // `engine --profile-out p.html --postmortem-dir pm/`: run the
    // continuous-profiler drain and export the HTML roofline report
    // and any triggered flight-recorder post-mortems.
    let save_profile = |eopts: &topk_bench::serving::EngineBenchOpts,
                        profile_out: &Option<PathBuf>,
                        postmortem_dir: &Option<PathBuf>| {
        if profile_out.is_none() && postmortem_dir.is_none() {
            return;
        }
        let art = topk_bench::profile::profile_report(eopts);
        if let Some(path) = profile_out {
            if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
                std::fs::create_dir_all(parent).ok();
            }
            match std::fs::write(path, &art.html) {
                Ok(()) => eprintln!("[topk-bench] wrote profile report to {}", path.display()),
                Err(e) => eprintln!("cannot write {}: {e}", path.display()),
            }
        }
        if let Some(dir) = postmortem_dir {
            write_post_mortems(dir, &art.post_mortems);
        }
    };

    let save = |name: &str, rows: &[Row]| {
        let path = out_dir.join(format!("{name}.csv"));
        write_csv(&path, rows).unwrap_or_else(|e| eprintln!("cannot write {path:?}: {e}"));
        eprintln!(
            "[topk-bench] wrote {} rows to {}",
            rows.len(),
            path.display()
        );
    };

    let run_table2 = |out_dir: &PathBuf, opts: &FigOpts| {
        // Prefer previously measured fig6/fig7 grids; fall back to
        // running them now.
        let mut rows = Vec::new();
        for f in ["fig6", "fig7"] {
            let p = out_dir.join(format!("{f}.csv"));
            match read_csv(&p) {
                Ok(mut r) => rows.append(&mut r),
                Err(_) => {
                    eprintln!("[topk-bench] {} missing; running {f} first", p.display());
                    let mut r = if f == "fig6" {
                        figures::fig6(opts)
                    } else {
                        figures::fig7(opts)
                    };
                    let path = out_dir.join(format!("{f}.csv"));
                    write_csv(&path, &r).ok();
                    rows.append(&mut r);
                }
            }
        }
        let t = figures::table2(&rows);
        println!("\n{t}");
        std::fs::write(out_dir.join("table2.txt"), &t).ok();
        // The paper artifact's `speedup.csv`.
        std::fs::write(out_dir.join("speedup.csv"), figures::table2_csv(&rows)).ok();
    };

    match cmd.as_str() {
        "fig6" => save("fig6", &figures::fig6(&opts)),
        "fig7" => save("fig7", &figures::fig7(&opts)),
        "table2" => run_table2(&out_dir, &opts),
        "fig8" => {
            let t = figures::fig8(&opts);
            println!("{t}");
            std::fs::create_dir_all(&out_dir).ok();
            std::fs::write(out_dir.join("fig8.txt"), &t).ok();
            for (name, json) in figures::fig8_traces(&opts) {
                let p = out_dir.join(format!("fig8_{name}.trace.json"));
                std::fs::write(&p, json).ok();
                eprintln!(
                    "[topk-bench] wrote {} (open in chrome://tracing)",
                    p.display()
                );
            }
        }
        "table3" => {
            let t = figures::table3(&opts);
            println!("{t}");
            std::fs::create_dir_all(&out_dir).ok();
            std::fs::write(out_dir.join("table3.txt"), &t).ok();
        }
        "fig9" => save("fig9", &figures::fig9(&opts)),
        "fig10" => save("fig10", &figures::fig10(&opts)),
        "fig11" => save("fig11", &figures::fig11(&opts)),
        "fig12" => save("fig12", &figures::fig12(&opts)),
        "fig13" => save("fig13", &figures::fig13(&opts)),
        "engine" => {
            let eopts = engine_opts(&opts, &faults);
            let points = topk_bench::serving::engine_throughput(&eopts);
            println!("\n{}", topk_bench::serving::render(&points));
            save("engine", &topk_bench::serving::to_rows(&points, opts.full));
            save_observability(&eopts, &metrics_out, &trace_out);
            save_digest(&eopts, &digest_out);
            save_profile(&eopts, &profile_out, &postmortem_dir);
            // `--recall-target T` doubles as the recall floor: the CI
            // chaos-degrade job relies on this exit code.
            if let Some(target) = eopts.recall_target {
                let violations = topk_bench::serving::recall_floor_violations(&points, target);
                for v in &violations {
                    eprintln!("[topk-bench] RECALL FLOOR: {v}");
                }
                if !violations.is_empty() {
                    std::process::exit(1);
                }
                eprintln!("[topk-bench] recall floor {target} held across the sweep");
            }
        }
        "profile" => {
            let eopts = engine_opts(&opts, &faults);
            let art = topk_bench::profile::profile_report(&eopts);
            println!("\n{}", art.text);
            std::fs::create_dir_all(&out_dir).ok();
            let html_path = profile_out.unwrap_or_else(|| out_dir.join("profile.html"));
            match std::fs::write(&html_path, &art.html) {
                Ok(()) => eprintln!(
                    "[topk-bench] wrote profile report to {}",
                    html_path.display()
                ),
                Err(e) => eprintln!("cannot write {}: {e}", html_path.display()),
            }
            let pm_dir = postmortem_dir.unwrap_or_else(|| out_dir.join("postmortems"));
            write_post_mortems(&pm_dir, &art.post_mortems);
            if let Some(path) = &metrics_out {
                if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
                    std::fs::create_dir_all(parent).ok();
                }
                match std::fs::write(path, &art.metrics) {
                    Ok(()) => {
                        eprintln!(
                            "[topk-bench] wrote Prometheus metrics to {}",
                            path.display()
                        )
                    }
                    Err(e) => eprintln!("cannot write {}: {e}", path.display()),
                }
            }
        }
        "all" => {
            save("fig6", &figures::fig6(&opts));
            save("fig7", &figures::fig7(&opts));
            run_table2(&out_dir, &opts);
            let t = figures::fig8(&opts);
            println!("{t}");
            std::fs::write(out_dir.join("fig8.txt"), &t).ok();
            for (name, json) in figures::fig8_traces(&opts) {
                std::fs::write(out_dir.join(format!("fig8_{name}.trace.json")), json).ok();
            }
            let t = figures::table3(&opts);
            println!("{t}");
            std::fs::write(out_dir.join("table3.txt"), &t).ok();
            save("fig9", &figures::fig9(&opts));
            save("fig10", &figures::fig10(&opts));
            save("fig11", &figures::fig11(&opts));
            save("fig12", &figures::fig12(&opts));
            save("fig13", &figures::fig13(&opts));
            let eopts = engine_opts(&opts, &faults);
            let points = topk_bench::serving::engine_throughput(&eopts);
            println!("\n{}", topk_bench::serving::render(&points));
            save("engine", &topk_bench::serving::to_rows(&points, opts.full));
            save_observability(&eopts, &metrics_out, &trace_out);
            save_digest(&eopts, &digest_out);
            save_profile(&eopts, &profile_out, &postmortem_dir);
        }
        _ => usage(),
    }
}

/// Write each post-mortem JSON document to `dir/postmortem-N.json`.
fn write_post_mortems(dir: &PathBuf, post_mortems: &[String]) {
    if post_mortems.is_empty() {
        eprintln!("[topk-bench] no flight-recorder post-mortems triggered");
        return;
    }
    std::fs::create_dir_all(dir).ok();
    for (i, pm) in post_mortems.iter().enumerate() {
        let path = dir.join(format!("postmortem-{i}.json"));
        match std::fs::write(&path, pm) {
            Ok(()) => eprintln!("[topk-bench] wrote post-mortem to {}", path.display()),
            Err(e) => eprintln!("cannot write {}: {e}", path.display()),
        }
    }
}

fn run_tool(cmd: &str, args: &[String]) {
    use topk_bench::tools;
    let mut opts = tools::CompareOpts::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--algos" => {
                i += 1;
                opts.algos = args
                    .get(i)
                    .unwrap_or_else(|| usage())
                    .split(',')
                    .map(str::to_string)
                    .collect();
            }
            "--n" => {
                i += 1;
                opts.n = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--k" => {
                i += 1;
                opts.k = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--batch" => {
                i += 1;
                opts.batch = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--dist" => {
                i += 1;
                match parse_dist(args.get(i).unwrap_or_else(|| usage())) {
                    topk_bench::runner::Workload::Synthetic(d) => opts.dist = d,
                    _ => usage(),
                }
            }
            "--no-verify" => opts.verify = false,
            _ => usage(),
        }
        i += 1;
    }
    match cmd {
        "compare" => {
            tools::compare(&opts);
        }
        "tune-alpha" => {
            tools::tune_alpha(opts.n, opts.k, &[4, 16, 64, 128, 512, 4096], true);
        }
        _ => usage(),
    }
}
