//! Result rows, CSV output, and the Table 2 speedup summary.

use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;

/// One measured benchmark point.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Algorithm name (paper spelling).
    pub algo: String,
    /// Device name (A100/H100/A10).
    pub device: String,
    /// Workload name (uniform/normal/adversarial20/deep1b-like/…).
    pub workload: String,
    /// Problem size.
    pub n: usize,
    /// Results per problem.
    pub k: usize,
    /// Batch size.
    pub batch: usize,
    /// Simulated wall time for the whole batch, µs.
    pub time_us: f64,
    /// Total device-memory traffic, bytes.
    pub mem_bytes: u64,
    /// Kernel launches.
    pub kernels: usize,
    /// Time in host↔device copies, µs.
    pub pcie_us: f64,
    /// Device-idle time (syncs, host compute, launch overhead), µs.
    pub idle_us: f64,
    /// Whether verification passed (true when not requested).
    pub verified: bool,
}

/// CSV header matching [`Row::csv_line`].
pub const CSV_HEADER: &str =
    "algo,device,workload,n,k,batch,time_us,mem_bytes,kernels,pcie_us,idle_us,verified";

impl Row {
    /// Serialise as one CSV line (no embedded commas in our fields).
    pub fn csv_line(&self) -> String {
        format!(
            "{},{},{},{},{},{},{:.3},{},{},{:.3},{:.3},{}",
            self.algo,
            self.device,
            self.workload,
            self.n,
            self.k,
            self.batch,
            self.time_us,
            self.mem_bytes,
            self.kernels,
            self.pcie_us,
            self.idle_us,
            self.verified
        )
    }

    /// Parse a CSV line produced by [`Row::csv_line`].
    pub fn from_csv_line(line: &str) -> Option<Row> {
        let f: Vec<&str> = line.split(',').collect();
        if f.len() != 12 {
            return None;
        }
        Some(Row {
            algo: f[0].to_string(),
            device: f[1].to_string(),
            workload: f[2].to_string(),
            n: f[3].parse().ok()?,
            k: f[4].parse().ok()?,
            batch: f[5].parse().ok()?,
            time_us: f[6].parse().ok()?,
            mem_bytes: f[7].parse().ok()?,
            kernels: f[8].parse().ok()?,
            pcie_us: f[9].parse().ok()?,
            idle_us: f[10].parse().ok()?,
            verified: f[11].parse().ok()?,
        })
    }
}

/// Write rows to a CSV file (with header).
pub fn write_csv(path: &Path, rows: &[Row]) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "{CSV_HEADER}")?;
    for r in rows {
        writeln!(f, "{}", r.csv_line())?;
    }
    Ok(())
}

/// Read rows back from a CSV file.
pub fn read_csv(path: &Path) -> std::io::Result<Vec<Row>> {
    let text = std::fs::read_to_string(path)?;
    Ok(text
        .lines()
        .skip(1)
        .filter_map(Row::from_csv_line)
        .collect())
}

/// The key identifying one problem configuration across algorithms.
fn config_key(r: &Row) -> (String, String, usize, usize, usize) {
    (r.device.clone(), r.workload.clone(), r.n, r.k, r.batch)
}

/// A min–max speedup range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedupRange {
    /// Smallest observed speedup.
    pub min: f64,
    /// Largest observed speedup.
    pub max: f64,
    /// Number of configurations compared.
    pub count: usize,
}

impl SpeedupRange {
    fn update(&mut self, s: f64) {
        self.min = self.min.min(s);
        self.max = self.max.max(s);
        self.count += 1;
    }

    fn new() -> Self {
        SpeedupRange {
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            count: 0,
        }
    }
}

impl std::fmt::Display for SpeedupRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.count == 0 {
            write!(f, "n/a")
        } else {
            write!(f, "{:.2}-{:.2}", self.min, self.max)
        }
    }
}

/// Compute speedup of `subject` over `baseline` on every configuration
/// where both ran, grouped by `(batch, workload)` like Table 2.
pub fn speedup_ranges(
    rows: &[Row],
    subject: &str,
    baseline: &str,
) -> BTreeMap<(usize, String), SpeedupRange> {
    let mut subj: BTreeMap<_, f64> = BTreeMap::new();
    let mut base: BTreeMap<_, f64> = BTreeMap::new();
    for r in rows {
        if r.algo == subject {
            subj.insert(config_key(r), r.time_us);
        } else if r.algo == baseline {
            base.insert(config_key(r), r.time_us);
        }
    }
    let mut out: BTreeMap<(usize, String), SpeedupRange> = BTreeMap::new();
    for (key, &t_subj) in &subj {
        if let Some(&t_base) = base.get(key) {
            let group = (key.4, key.1.clone());
            out.entry(group)
                .or_insert_with(SpeedupRange::new)
                .update(t_base / t_subj);
        }
    }
    out
}

/// Speedup of `subject` over the per-configuration best of `baselines`
/// — the paper's "virtual SOTA" comparison (§5.1).
pub fn speedup_vs_sota(
    rows: &[Row],
    subject: &str,
    baselines: &[&str],
) -> BTreeMap<(usize, String), SpeedupRange> {
    let mut subj: BTreeMap<_, f64> = BTreeMap::new();
    let mut best: BTreeMap<_, f64> = BTreeMap::new();
    for r in rows {
        let key = config_key(r);
        if r.algo == subject {
            subj.insert(key, r.time_us);
        } else if baselines.contains(&r.algo.as_str()) {
            best.entry(key)
                .and_modify(|t: &mut f64| *t = t.min(r.time_us))
                .or_insert(r.time_us);
        }
    }
    let mut out: BTreeMap<(usize, String), SpeedupRange> = BTreeMap::new();
    for (key, &t_subj) in &subj {
        if let Some(&t_base) = best.get(key) {
            let group = (key.4, key.1.clone());
            out.entry(group)
                .or_insert_with(SpeedupRange::new)
                .update(t_base / t_subj);
        }
    }
    out
}

/// Render an aligned text table from per-series rows: one line per
/// x-value, one column per algorithm. Used for the figure outputs.
pub fn render_series_table(
    rows: &[Row],
    x_axis: &str, // "k" or "n"
    algos: &[String],
) -> String {
    let mut xs: Vec<usize> = rows
        .iter()
        .map(|r| if x_axis == "k" { r.k } else { r.n })
        .collect();
    xs.sort_unstable();
    xs.dedup();

    let mut out = String::new();
    out.push_str(&format!("{:>10}", x_axis.to_uppercase()));
    for a in algos {
        out.push_str(&format!(" {:>14}", a));
    }
    out.push('\n');
    for &x in &xs {
        out.push_str(&format!("{x:>10}"));
        for a in algos {
            let t = rows
                .iter()
                .find(|r| r.algo == *a && (if x_axis == "k" { r.k } else { r.n }) == x)
                .map(|r| r.time_us);
            match t {
                Some(t) => out.push_str(&format!(" {t:>14.1}")),
                None => out.push_str(&format!(" {:>14}", "-")),
            }
        }
        out.push('\n');
    }
    out
}

/// Render rows as an ASCII log-log chart (the form of the paper's
/// Figs. 6/7): x = log2 of N or K, y = log10 of time, one symbol per
/// algorithm. Complements [`render_series_table`] for eyeballing
/// crossovers.
pub fn render_ascii_chart(
    rows: &[Row],
    x_axis: &str,
    algos: &[String],
    width: usize,
    height: usize,
) -> String {
    const SYMBOLS: &[char] = &['S', 'w', 'b', 'T', 'q', 'u', 's', 'r', 'A', 'G', '*', '+'];
    let xv = |r: &Row| if x_axis == "k" { r.k } else { r.n } as f64;
    let pts: Vec<(f64, f64, usize)> = rows
        .iter()
        .filter_map(|r| {
            let a = algos.iter().position(|n| *n == r.algo)?;
            (r.time_us > 0.0).then(|| (xv(r).log2(), r.time_us.log10(), a))
        })
        .collect();
    if pts.is_empty() || width < 8 || height < 3 {
        return String::new();
    }
    let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y0, mut y1) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y, _) in &pts {
        x0 = x0.min(x);
        x1 = x1.max(x);
        y0 = y0.min(y);
        y1 = y1.max(y);
    }
    let (xs, ys) = ((x1 - x0).max(1e-9), (y1 - y0).max(1e-9));

    let mut grid = vec![vec![' '; width]; height];
    for &(x, y, a) in &pts {
        let col = (((x - x0) / xs) * (width - 1) as f64).round() as usize;
        let rrow = height - 1 - (((y - y0) / ys) * (height - 1) as f64).round() as usize;
        let cell = &mut grid[rrow.min(height - 1)][col.min(width - 1)];
        let sym = SYMBOLS[a % SYMBOLS.len()];
        // Collisions become '#' so overplotting is visible.
        *cell = if *cell == ' ' || *cell == sym {
            sym
        } else {
            '#'
        };
    }

    let mut out = String::new();
    for (i, line) in grid.iter().enumerate() {
        let y = y1 - (i as f64 / (height - 1) as f64) * ys;
        out.push_str(&format!("{:>8.1} |", 10f64.powf(y)));
        out.extend(line.iter());
        out.push('\n');
    }
    out.push_str(&format!(
        "{:>8} +{}\n{:>10}2^{:.0}{}2^{:.0}  ({} on x, time us on y, log-log)\n",
        "us",
        "-".repeat(width),
        "",
        x0,
        " ".repeat(width.saturating_sub(8)),
        x1,
        x_axis.to_uppercase()
    ));
    for (i, a) in algos.iter().enumerate() {
        out.push_str(&format!("  {} = {}\n", SYMBOLS[i % SYMBOLS.len()], a));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(algo: &str, workload: &str, n: usize, k: usize, batch: usize, t: f64) -> Row {
        Row {
            algo: algo.into(),
            device: "A100".into(),
            workload: workload.into(),
            n,
            k,
            batch,
            time_us: t,
            mem_bytes: 0,
            kernels: 1,
            pcie_us: 0.0,
            idle_us: 0.0,
            verified: true,
        }
    }

    #[test]
    fn csv_roundtrip() {
        let r = row("AIR Top-K", "uniform", 1024, 32, 1, 12.5);
        let parsed = Row::from_csv_line(&r.csv_line()).unwrap();
        assert_eq!(parsed, r);
        assert!(Row::from_csv_line("garbage").is_none());
    }

    #[test]
    fn csv_file_roundtrip() {
        let dir = std::env::temp_dir().join("topk_bench_test");
        let path = dir.join("t.csv");
        let rows = vec![
            row("A", "uniform", 10, 1, 1, 1.0),
            row("B", "normal", 20, 2, 100, 2.0),
        ];
        write_csv(&path, &rows).unwrap();
        let back = read_csv(&path).unwrap();
        assert_eq!(back, rows);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn speedup_grouped_by_batch_and_workload() {
        let rows = vec![
            row("AIR Top-K", "uniform", 1024, 32, 1, 10.0),
            row("RadixSelect", "uniform", 1024, 32, 1, 50.0),
            row("AIR Top-K", "uniform", 4096, 32, 1, 10.0),
            row("RadixSelect", "uniform", 4096, 32, 1, 200.0),
            row("AIR Top-K", "uniform", 1024, 32, 100, 10.0),
            row("RadixSelect", "uniform", 1024, 32, 100, 1000.0),
        ];
        let sp = speedup_ranges(&rows, "AIR Top-K", "RadixSelect");
        let b1 = &sp[&(1, "uniform".to_string())];
        assert_eq!(b1.min, 5.0);
        assert_eq!(b1.max, 20.0);
        assert_eq!(b1.count, 2);
        let b100 = &sp[&(100, "uniform".to_string())];
        assert_eq!(b100.min, 100.0);
    }

    #[test]
    fn sota_takes_per_config_best() {
        let rows = vec![
            row("AIR Top-K", "uniform", 1024, 32, 1, 10.0),
            row("Sort", "uniform", 1024, 32, 1, 100.0),
            row("BucketSelect", "uniform", 1024, 32, 1, 40.0),
        ];
        let sp = speedup_vs_sota(&rows, "AIR Top-K", &["Sort", "BucketSelect"]);
        assert_eq!(sp[&(1, "uniform".to_string())].min, 4.0);
    }

    #[test]
    fn ascii_chart_plots_all_series() {
        let rows = vec![
            row("AIR Top-K", "uniform", 1 << 12, 8, 1, 10.0),
            row("AIR Top-K", "uniform", 1 << 16, 8, 1, 20.0),
            row("AIR Top-K", "uniform", 1 << 20, 8, 1, 80.0),
            row("Sort", "uniform", 1 << 12, 8, 1, 100.0),
            row("Sort", "uniform", 1 << 20, 8, 1, 4000.0),
        ];
        let chart = render_ascii_chart(&rows, "n", &["AIR Top-K".into(), "Sort".into()], 40, 10);
        // Both series' symbols appear (first two registry symbols).
        assert!(chart.contains('S'), "chart:\n{chart}");
        assert!(chart.contains("= AIR Top-K"));
        assert!(chart.contains("log-log"));
        // Degenerate inputs return empty rather than panicking.
        assert_eq!(render_ascii_chart(&[], "n", &[], 40, 10), "");
        assert_eq!(
            render_ascii_chart(&rows, "n", &["AIR Top-K".into()], 4, 2),
            ""
        );
    }

    #[test]
    fn ascii_chart_y_axis_is_monotone() {
        let rows = vec![
            row("A", "u", 1 << 10, 1, 1, 1.0),
            row("A", "u", 1 << 20, 1, 1, 1000.0),
        ];
        let chart = render_ascii_chart(&rows, "n", &["A".into()], 30, 8);
        let labels: Vec<f64> = chart
            .lines()
            .filter_map(|l| l.split('|').next()?.trim().parse::<f64>().ok())
            .collect();
        assert!(labels.windows(2).all(|w| w[0] >= w[1]), "{labels:?}");
    }

    #[test]
    fn series_table_renders_missing_points() {
        let rows = vec![
            row("AIR Top-K", "uniform", 1024, 8, 1, 1.0),
            row("AIR Top-K", "uniform", 1024, 16, 1, 2.0),
            row("GridSelect", "uniform", 1024, 8, 1, 3.0),
        ];
        let t = render_series_table(&rows, "k", &["AIR Top-K".into(), "GridSelect".into()]);
        assert!(t.contains('-'), "missing point shown as dash:\n{t}");
        assert!(t.lines().count() == 3);
    }
}
