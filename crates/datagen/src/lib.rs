//! # datagen — workload generators for the top-K benchmark
//!
//! Reproduces the input data of the SC '23 paper's evaluation:
//!
//! * [`dist`] — the three synthetic distributions of §5.1: uniform in
//!   (0, 1], standard normal, and the "radix-adversarial" distribution
//!   where the first *M* bits of every element's IEEE-754 representation
//!   are identical (§3.2 / §5.2.2).
//! * [`ann`] — the real-world experiment of §5.5 substituted with
//!   synthetic ANN workloads: DEEP1B-like (96-d) and SIFT-like (128-d)
//!   vectors whose query-to-candidate L2 distance arrays feed the top-K
//!   algorithms, exercising the identical code path without the
//!   billion-scale downloads.
//!
//! All generators are deterministic given a seed.

pub mod ann;
pub mod dist;

pub use ann::{AnnDataset, AnnKind};
pub use dist::{generate, generate_batch, Distribution};
