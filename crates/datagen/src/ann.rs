//! Simulated ANN workloads (substitute for the paper's §5.5 DEEP1B and
//! SIFT experiments).
//!
//! The paper feeds top-K with *distance arrays*: for each query vector,
//! the L2 distances to every candidate vector in the database. We
//! cannot ship DEEP1B (9,990,000 × 96-d CNN descriptors) or SIFT
//! (1,000,000 × 128-d local descriptors), so we generate random vectors
//! with the same dimensionality and value character:
//!
//! * **DEEP1B-like** — unit-normalised dense float vectors (DEEP
//!   descriptors come L2-normalised from the CNN's last layer).
//! * **SIFT-like** — non-negative gradient-histogram-style magnitudes
//!   in [0, 255] (SIFT descriptors are quantised histogram counts).
//!
//! What matters for a top-K benchmark is the *distribution of the
//! distance array* — a unimodal sum-of-squares law concentrated away
//! from zero, very different from the uniform/normal synthetic inputs —
//! and that is preserved by construction.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which real-world dataset to imitate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnnKind {
    /// 96-dimensional, unit-normalised (DEEP1B-like).
    Deep1bLike,
    /// 128-dimensional, non-negative 0–255 (SIFT-like).
    SiftLike,
}

impl AnnKind {
    /// Vector dimensionality of the dataset.
    pub fn dim(&self) -> usize {
        match self {
            AnnKind::Deep1bLike => 96,
            AnnKind::SiftLike => 128,
        }
    }

    /// Name used in benchmark reports.
    pub fn name(&self) -> &'static str {
        match self {
            AnnKind::Deep1bLike => "deep1b-like",
            AnnKind::SiftLike => "sift-like",
        }
    }
}

/// A generated vector database plus query set.
#[derive(Debug, Clone)]
pub struct AnnDataset {
    /// Which dataset this imitates.
    pub kind: AnnKind,
    /// `n × dim` candidate vectors, row-major.
    pub vectors: Vec<f32>,
    /// `queries × dim` query vectors, row-major.
    pub queries: Vec<f32>,
    /// Dimensionality.
    pub dim: usize,
    /// Number of candidate vectors.
    pub n: usize,
    /// Number of query vectors.
    pub num_queries: usize,
}

impl AnnDataset {
    /// Generate a dataset of `n` candidates and `num_queries` queries.
    pub fn generate(kind: AnnKind, n: usize, num_queries: usize, seed: u64) -> Self {
        let dim = kind.dim();
        let mut rng = StdRng::seed_from_u64(seed);
        let gen_vec = |rng: &mut StdRng| -> Vec<f32> {
            match kind {
                AnnKind::Deep1bLike => {
                    // Gaussian components, L2-normalised.
                    let mut v: Vec<f32> = (0..dim)
                        .map(|_| {
                            let u1 = 1.0 - rng.gen::<f64>();
                            let u2: f64 = rng.gen();
                            ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos())
                                as f32
                        })
                        .collect();
                    let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-12);
                    for x in &mut v {
                        *x /= norm;
                    }
                    v
                }
                AnnKind::SiftLike => {
                    // Histogram-like counts: squared uniforms stretch the
                    // mass toward small values like real SIFT bins.
                    (0..dim)
                        .map(|_| {
                            let u: f32 = rng.gen();
                            (u * u * 255.0).floor()
                        })
                        .collect()
                }
            }
        };

        let mut vectors = Vec::with_capacity(n * dim);
        for _ in 0..n {
            vectors.extend(gen_vec(&mut rng));
        }
        let mut queries = Vec::with_capacity(num_queries * dim);
        for _ in 0..num_queries {
            queries.extend(gen_vec(&mut rng));
        }
        AnnDataset {
            kind,
            vectors,
            queries,
            dim,
            n,
            num_queries,
        }
    }

    /// Candidate vector `i` as a slice.
    pub fn vector(&self, i: usize) -> &[f32] {
        &self.vectors[i * self.dim..(i + 1) * self.dim]
    }

    /// Query vector `q` as a slice.
    pub fn query(&self, q: usize) -> &[f32] {
        &self.queries[q * self.dim..(q + 1) * self.dim]
    }

    /// Squared-L2 distances from query `q` to all `n` candidates — the
    /// top-K input array of the §5.5 experiment. (ANN systems rank by
    /// squared distance to skip the square root; ordering is identical.)
    pub fn distance_array(&self, q: usize) -> Vec<f32> {
        let query = self.query(q);
        (0..self.n)
            .map(|i| {
                self.vector(i)
                    .iter()
                    .zip(query)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_match_paper_datasets() {
        assert_eq!(AnnKind::Deep1bLike.dim(), 96);
        assert_eq!(AnnKind::SiftLike.dim(), 128);
    }

    #[test]
    fn deep1b_vectors_are_unit_norm() {
        let ds = AnnDataset::generate(AnnKind::Deep1bLike, 50, 2, 1);
        for i in 0..ds.n {
            let norm: f32 = ds.vector(i).iter().map(|x| x * x).sum::<f32>().sqrt();
            assert!((norm - 1.0).abs() < 1e-4, "norm = {norm}");
        }
    }

    #[test]
    fn sift_vectors_are_nonneg_bounded() {
        let ds = AnnDataset::generate(AnnKind::SiftLike, 50, 2, 1);
        assert!(ds.vectors.iter().all(|&x| (0.0..=255.0).contains(&x)));
    }

    #[test]
    fn distance_arrays_are_valid_topk_inputs() {
        for kind in [AnnKind::Deep1bLike, AnnKind::SiftLike] {
            let ds = AnnDataset::generate(kind, 200, 3, 9);
            for q in 0..ds.num_queries {
                let d = ds.distance_array(q);
                assert_eq!(d.len(), 200);
                assert!(d.iter().all(|x| x.is_finite() && *x >= 0.0));
                // Distances must not all be equal (otherwise top-K is
                // degenerate and the benchmark meaningless).
                let min = d.iter().cloned().fold(f32::INFINITY, f32::min);
                let max = d.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                assert!(max > min);
            }
        }
    }

    #[test]
    fn deterministic() {
        let a = AnnDataset::generate(AnnKind::SiftLike, 20, 1, 5);
        let b = AnnDataset::generate(AnnKind::SiftLike, 20, 1, 5);
        assert_eq!(a.vectors, b.vectors);
        assert_eq!(a.queries, b.queries);
    }

    #[test]
    fn distance_to_self_is_zero() {
        let mut ds = AnnDataset::generate(AnnKind::Deep1bLike, 10, 1, 3);
        // Plant the query as candidate 4.
        let q: Vec<f32> = ds.query(0).to_vec();
        ds.vectors[4 * ds.dim..5 * ds.dim].copy_from_slice(&q);
        let d = ds.distance_array(0);
        assert_eq!(d[4], 0.0);
    }
}
