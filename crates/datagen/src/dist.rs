//! Synthetic data distributions (§5.1 of the paper).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The three data distributions the paper benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Distribution {
    /// Uniform distribution in (0, 1].
    Uniform,
    /// Standard normal distribution, mean 0, standard deviation 1.
    Normal,
    /// "Radix-adversarial" (§3.2): the first `m_bits` bits of every
    /// element's IEEE-754 bit pattern are identical, so the first radix
    /// passes cannot discard any candidate. The paper's benchmark uses
    /// `M = 20` (§5.1) and the adaptive-strategy study adds `M = 10`
    /// (§5.2.2). `m_bits` must lie in `2..=31` so the fixed prefix pins
    /// the sign and the exponent's top bit (keeping every sample a
    /// finite positive float).
    RadixAdversarial {
        /// Number of leading shared bits, 2..=31.
        m_bits: u32,
    },
    /// Zipf-like power-law values: heavy-tailed magnitudes drawn by
    /// inverse-CDF from a Pareto with shape `exponent_tenths / 10`
    /// (`11` ⇒ the classic α ≈ 1.1 web/ANN skew). Samples stay i.i.d.
    /// — only the *value* distribution is skewed — so the approximate
    /// selectors' binomial recall model still applies, which is
    /// exactly what the recall property tests exercise.
    Zipf {
        /// Pareto shape in tenths, 11..=40 (α = 1.1 to 4.0).
        exponent_tenths: u32,
    },
}

impl Distribution {
    /// Short machine-readable name used in benchmark CSV output.
    pub fn name(&self) -> String {
        match self {
            Distribution::Uniform => "uniform".to_string(),
            Distribution::Normal => "normal".to_string(),
            Distribution::RadixAdversarial { m_bits } => format!("adversarial{m_bits}"),
            Distribution::Zipf { exponent_tenths } => format!("zipf{exponent_tenths}"),
        }
    }

    /// The three distributions used in Figs. 6–7 (adversarial M = 20).
    pub fn benchmark_set() -> [Distribution; 3] {
        [
            Distribution::Uniform,
            Distribution::Normal,
            Distribution::RadixAdversarial { m_bits: 20 },
        ]
    }
}

/// Generate `n` samples of `dist`, deterministically from `seed`.
pub fn generate(dist: Distribution, n: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    match dist {
        Distribution::Uniform => (0..n).map(|_| uniform_open_closed(&mut rng)).collect(),
        Distribution::Normal => {
            let mut out = Vec::with_capacity(n);
            while out.len() < n {
                let (a, b) = box_muller(&mut rng);
                out.push(a);
                if out.len() < n {
                    out.push(b);
                }
            }
            out
        }
        Distribution::RadixAdversarial { m_bits } => {
            assert!(
                (2..=31).contains(&m_bits),
                "m_bits must be in 2..=31, got {m_bits}"
            );
            // Base pattern: bits of 1.0f32 (0x3F800000). Keeping the top
            // m_bits of this pattern fixed and randomising the rest
            // yields finite positive floats that all share the same
            // leading m_bits — e.g. m_bits = 20 gives the paper's
            // [1.0, 1.00049] example.
            let base = 1.0f32.to_bits();
            let low_mask: u32 = if m_bits == 32 { 0 } else { u32::MAX >> m_bits };
            (0..n)
                .map(|_| {
                    let r: u32 = rng.gen();
                    f32::from_bits((base & !low_mask) | (r & low_mask))
                })
                .collect()
        }
        Distribution::Zipf { exponent_tenths } => {
            assert!(
                (11..=40).contains(&exponent_tenths),
                "exponent_tenths must be in 11..=40, got {exponent_tenths}"
            );
            let alpha = exponent_tenths as f64 / 10.0;
            // Pareto inverse-CDF: x = u^(-1/α) with u in (0, 1], so
            // every sample is a finite float ≥ 1 and the tail index is
            // α. Continuous draws keep ties negligible.
            (0..n)
                .map(|_| {
                    let u = 1.0 - rng.gen::<f64>();
                    u.powf(-1.0 / alpha) as f32
                })
                .collect()
        }
    }
}

/// Generate a batch of `batch` independent problems of size `n`
/// (§5.1's batched benchmark packs same-size problems together).
/// Problem `i` uses seed `seed + i` so batches are reproducible and
/// problems are independent.
pub fn generate_batch(dist: Distribution, n: usize, batch: usize, seed: u64) -> Vec<Vec<f32>> {
    (0..batch)
        .map(|i| generate(dist, n, seed.wrapping_add(i as u64)))
        .collect()
}

/// Uniform sample in (0, 1]: `1 - U[0,1)` never returns 0.
fn uniform_open_closed(rng: &mut StdRng) -> f32 {
    1.0 - rng.gen::<f32>()
}

/// One Box–Muller draw: two independent standard-normal samples.
fn box_muller(rng: &mut StdRng) -> (f32, f32) {
    // u1 in (0, 1] so ln(u1) is finite.
    let u1 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = 2.0 * std::f64::consts::PI * u2;
    ((r * theta.cos()) as f32, (r * theta.sin()) as f32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        for dist in [
            Distribution::Uniform,
            Distribution::Normal,
            Distribution::RadixAdversarial { m_bits: 20 },
            Distribution::Zipf {
                exponent_tenths: 11,
            },
        ] {
            let a = generate(dist, 1000, 42);
            let b = generate(dist, 1000, 42);
            assert_eq!(a, b);
            let c = generate(dist, 1000, 43);
            assert_ne!(a, c);
        }
    }

    #[test]
    fn uniform_range_is_open_closed() {
        let v = generate(Distribution::Uniform, 100_000, 1);
        assert!(v.iter().all(|&x| x > 0.0 && x <= 1.0));
    }

    #[test]
    fn normal_moments_are_plausible() {
        let v = generate(Distribution::Normal, 200_000, 7);
        let n = v.len() as f64;
        let mean = v.iter().map(|&x| x as f64).sum::<f64>() / n;
        let var = v.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / n;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
        assert!(v.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn adversarial_shares_exactly_top_m_bits() {
        for m in [2u32, 10, 20, 30] {
            let v = generate(Distribution::RadixAdversarial { m_bits: m }, 50_000, 3);
            let first = v[0].to_bits() >> (32 - m);
            assert!(v.iter().all(|x| x.to_bits() >> (32 - m) == first));
            assert!(v.iter().all(|x| x.is_finite() && *x > 0.0));
            // The *next* bit must actually vary (otherwise the
            // distribution would be adversarial for > m bits too).
            if m < 31 {
                let next_bits: std::collections::HashSet<u32> =
                    v.iter().map(|x| (x.to_bits() >> (31 - m)) & 1).collect();
                assert_eq!(next_bits.len(), 2, "bit {m} should vary");
            }
        }
    }

    #[test]
    fn adversarial_m20_matches_paper_example_range() {
        // §3.2: floats in [1.0, 1.00049] share their first 20 bits.
        let v = generate(Distribution::RadixAdversarial { m_bits: 20 }, 10_000, 9);
        assert!(v.iter().all(|&x| (1.0..=1.00049).contains(&x)));
    }

    #[test]
    #[should_panic(expected = "m_bits")]
    fn adversarial_rejects_m_out_of_range() {
        generate(Distribution::RadixAdversarial { m_bits: 1 }, 10, 0);
    }

    #[test]
    fn batch_problems_are_independent_and_reproducible() {
        let b1 = generate_batch(Distribution::Uniform, 100, 3, 5);
        let b2 = generate_batch(Distribution::Uniform, 100, 3, 5);
        assert_eq!(b1, b2);
        assert_ne!(b1[0], b1[1]);
        assert_ne!(b1[1], b1[2]);
        assert_eq!(b1.len(), 3);
        assert!(b1.iter().all(|p| p.len() == 100));
    }

    #[test]
    fn zipf_is_heavy_tailed_finite_and_at_least_one() {
        let v = generate(
            Distribution::Zipf {
                exponent_tenths: 11,
            },
            100_000,
            13,
        );
        assert!(v.iter().all(|&x| x.is_finite() && x >= 1.0));
        // α ≈ 1.1 is genuinely heavy-tailed: the maximum dwarfs the
        // median by orders of magnitude.
        let mut sorted = v.clone();
        sorted.sort_by(f32::total_cmp);
        let median = sorted[v.len() / 2];
        let max = sorted[v.len() - 1];
        assert!(median < 2.5, "median = {median}");
        assert!(max > 1000.0 * median, "max = {max}, median = {median}");
    }

    #[test]
    #[should_panic(expected = "exponent_tenths")]
    fn zipf_rejects_shape_out_of_range() {
        generate(
            Distribution::Zipf {
                exponent_tenths: 10,
            },
            10,
            0,
        );
    }

    #[test]
    fn names_for_reports() {
        assert_eq!(Distribution::Uniform.name(), "uniform");
        assert_eq!(Distribution::Normal.name(), "normal");
        assert_eq!(
            Distribution::RadixAdversarial { m_bits: 20 }.name(),
            "adversarial20"
        );
        assert_eq!(
            Distribution::Zipf {
                exponent_tenths: 11
            }
            .name(),
            "zipf11"
        );
        assert_eq!(Distribution::benchmark_set().len(), 3);
    }
}
