//! Property-based tests for the workload generators.

use datagen::{generate, generate_batch, AnnDataset, AnnKind, Distribution};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn uniform_stays_in_range(n in 1usize..5000, seed in any::<u64>()) {
        let v = generate(Distribution::Uniform, n, seed);
        prop_assert_eq!(v.len(), n);
        prop_assert!(v.iter().all(|&x| x > 0.0 && x <= 1.0));
    }

    #[test]
    fn normal_is_finite_and_nan_free(n in 1usize..5000, seed in any::<u64>()) {
        let v = generate(Distribution::Normal, n, seed);
        prop_assert_eq!(v.len(), n);
        prop_assert!(v.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn adversarial_prefix_is_exact(n in 1usize..5000, seed in any::<u64>(), m in 2u32..=31) {
        let v = generate(Distribution::RadixAdversarial { m_bits: m }, n, seed);
        let first = v[0].to_bits() >> (32 - m);
        prop_assert!(v.iter().all(|x| x.to_bits() >> (32 - m) == first));
        prop_assert!(v.iter().all(|x| x.is_finite() && *x > 0.0));
    }

    #[test]
    fn same_seed_same_data(seed in any::<u64>()) {
        for dist in Distribution::benchmark_set() {
            prop_assert_eq!(generate(dist, 257, seed), generate(dist, 257, seed));
        }
    }

    #[test]
    fn batch_problems_differ_pairwise(seed in any::<u64>(), b in 2usize..6) {
        let batch = generate_batch(Distribution::Uniform, 64, b, seed);
        prop_assert_eq!(batch.len(), b);
        for i in 0..b {
            for j in i + 1..b {
                prop_assert_ne!(&batch[i], &batch[j]);
            }
        }
    }

    #[test]
    fn ann_distance_arrays_are_nonnegative_finite(n in 2usize..128, seed in any::<u64>()) {
        for kind in [AnnKind::Deep1bLike, AnnKind::SiftLike] {
            let ds = AnnDataset::generate(kind, n, 1, seed);
            let d = ds.distance_array(0);
            prop_assert_eq!(d.len(), n);
            prop_assert!(d.iter().all(|x| x.is_finite() && *x >= 0.0));
        }
    }
}

#[test]
fn distributions_actually_differ() {
    // Guard against a refactor accidentally collapsing generators.
    let u = generate(Distribution::Uniform, 1000, 1);
    let n = generate(Distribution::Normal, 1000, 1);
    let a = generate(Distribution::RadixAdversarial { m_bits: 20 }, 1000, 1);
    assert_ne!(u, n);
    assert_ne!(u, a);
    // Normal has negatives, uniform does not.
    assert!(n.iter().any(|&x| x < 0.0));
    assert!(u.iter().all(|&x| x > 0.0));
    // Adversarial values cluster in [1.0, 1.00049]-ish.
    assert!(a.iter().all(|&x| (1.0..1.001).contains(&x)));
}
