//! The metrics registry: counters, gauges, log-bucketed histograms,
//! and Prometheus text-format exposition.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`s over
//! atomics, so the hot path (a query finishing, a kernel launching)
//! touches no locks — the registry's mutex guards only the name table
//! during registration and rendering.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};

/// A monotonically increasing integer metric.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Relaxed)
    }
}

/// A settable floating-point metric (queue depth, utilisation, ...).
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Set the gauge.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Relaxed);
    }

    /// Current value (0.0 until first set).
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Relaxed))
    }
}

/// A histogram over logarithmically spaced buckets, Prometheus-style:
/// bucket `i` counts observations `<= bounds[i]`, plus an overflow
/// bucket for everything beyond the last bound.
///
/// Quantiles ([`Histogram::percentile`]) are estimated by linear
/// interpolation inside the target bucket — the standard
/// `histogram_quantile` estimate, computed host-side.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<AtomicU64>,
    sum_bits: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// Histogram over explicit ascending bucket upper bounds. An
    /// overflow (`+Inf`) bucket is always appended.
    pub fn with_bounds(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        let counts = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds,
            counts,
            sum_bits: AtomicU64::new(0f64.to_bits()),
            count: AtomicU64::new(0),
        }
    }

    /// The default latency buckets: powers of two from 1 µs to ~67 s.
    /// Log-spaced buckets keep relative error bounded (a factor of 2)
    /// across the six decades a coalescing queue can span.
    pub fn default_latency_bounds() -> Vec<f64> {
        (0..27).map(|i| (1u64 << i) as f64).collect()
    }

    /// Record one observation.
    pub fn observe(&self, v: f64) {
        let slot = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[slot].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        // f64 sum via CAS loop (no AtomicF64 in std).
        let mut cur = self.sum_bits.load(Relaxed);
        loop {
            let new = (f64::from_bits(cur) + v).to_bits();
            match self
                .sum_bits
                .compare_exchange_weak(cur, new, Relaxed, Relaxed)
            {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Relaxed))
    }

    /// Estimated quantile `q ∈ [0, 1]` (0 when empty). Linear
    /// interpolation inside the target bucket; observations in the
    /// overflow bucket report the last finite bound.
    pub fn percentile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            let c = c.load(Relaxed);
            if seen + c >= rank {
                let Some(&upper) = self.bounds.get(i) else {
                    // Overflow bucket: the last finite bound is the
                    // best lower estimate we have.
                    return *self.bounds.last().expect("nonempty bounds");
                };
                let lower = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let into = (rank - seen) as f64 / c as f64;
                return lower + (upper - lower) * into;
            }
            seen += c;
        }
        *self.bounds.last().expect("nonempty bounds")
    }

    /// Median estimate.
    pub fn p50(&self) -> f64 {
        self.percentile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> f64 {
        self.percentile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> f64 {
        self.percentile(0.99)
    }
}

/// The metric kinds a registry family can hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

#[derive(Debug, Clone)]
enum Handle {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// One metric name with its help text and per-label-set instances.
#[derive(Debug)]
struct Family {
    help: String,
    kind: Kind,
    /// Keyed by canonical (sorted) label pairs.
    instances: BTreeMap<Vec<(String, String)>, Handle>,
}

/// A thread-safe registry of named metrics.
///
/// Registration is idempotent: asking for the same name + labels again
/// returns the existing handle, so call sites don't need to cache
/// handles to cooperate. Registering a name under a different kind
/// panics — that is a programming error, not a runtime condition.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    families: Mutex<BTreeMap<String, Family>>,
}

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Register (or fetch) an unlabelled counter.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// Register (or fetch) a counter with labels.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.register(name, help, Kind::Counter, labels, || {
            Handle::Counter(Arc::new(Counter::default()))
        }) {
            Handle::Counter(c) => c,
            _ => unreachable!("registry returned wrong kind"),
        }
    }

    /// Register (or fetch) an unlabelled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with(name, help, &[])
    }

    /// Register (or fetch) a gauge with labels.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.register(name, help, Kind::Gauge, labels, || {
            Handle::Gauge(Arc::new(Gauge::default()))
        }) {
            Handle::Gauge(g) => g,
            _ => unreachable!("registry returned wrong kind"),
        }
    }

    /// Register (or fetch) an unlabelled histogram with the default
    /// log-spaced latency buckets.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.histogram_with(name, help, &[], Histogram::default_latency_bounds())
    }

    /// Register (or fetch) a histogram with labels and explicit bounds.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: Vec<f64>,
    ) -> Arc<Histogram> {
        match self.register(name, help, Kind::Histogram, labels, || {
            Handle::Histogram(Arc::new(Histogram::with_bounds(bounds.clone())))
        }) {
            Handle::Histogram(h) => h,
            _ => unreachable!("registry returned wrong kind"),
        }
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        kind: Kind,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Handle,
    ) -> Handle {
        assert!(valid_metric_name(name), "invalid metric name {name:?}");
        for (k, _) in labels {
            assert!(valid_label_name(k), "invalid label name {k:?}");
        }
        let mut key: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        key.sort();
        let mut families = self.families.lock().expect("metrics registry poisoned");
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            instances: BTreeMap::new(),
        });
        assert!(
            family.kind == kind,
            "metric {name:?} already registered as {}",
            family.kind.as_str()
        );
        family.instances.entry(key).or_insert_with(make).clone()
    }

    /// Render every metric in the Prometheus text exposition format
    /// (version 0.0.4: `# HELP` / `# TYPE` headers, `_bucket`/`_sum`/
    /// `_count` series for histograms, cumulative `le` buckets).
    pub fn render_prometheus(&self) -> String {
        let families = self.families.lock().expect("metrics registry poisoned");
        let mut out = String::new();
        for (name, family) in families.iter() {
            out.push_str(&format!("# HELP {name} {}\n", escape_help(&family.help)));
            out.push_str(&format!("# TYPE {name} {}\n", family.kind.as_str()));
            for (labels, handle) in &family.instances {
                match handle {
                    Handle::Counter(c) => {
                        out.push_str(&format!(
                            "{name}{} {}\n",
                            render_labels(labels, None),
                            c.get()
                        ));
                    }
                    Handle::Gauge(g) => {
                        out.push_str(&format!(
                            "{name}{} {}\n",
                            render_labels(labels, None),
                            fmt_f64(g.get())
                        ));
                    }
                    Handle::Histogram(h) => {
                        let mut cum = 0u64;
                        for (i, bound) in h.bounds.iter().enumerate() {
                            cum += h.counts[i].load(Relaxed);
                            out.push_str(&format!(
                                "{name}_bucket{} {cum}\n",
                                render_labels(labels, Some(&fmt_f64(*bound)))
                            ));
                        }
                        out.push_str(&format!(
                            "{name}_bucket{} {}\n",
                            render_labels(labels, Some("+Inf")),
                            h.count()
                        ));
                        out.push_str(&format!(
                            "{name}_sum{} {}\n",
                            render_labels(labels, None),
                            fmt_f64(h.sum())
                        ));
                        out.push_str(&format!(
                            "{name}_count{} {}\n",
                            render_labels(labels, None),
                            h.count()
                        ));
                    }
                }
            }
        }
        out
    }
}

/// `[a-zA-Z_:][a-zA-Z0-9_:]*` per the Prometheus data model.
fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// `[a-zA-Z_][a-zA-Z0-9_]*` per the Prometheus data model.
fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Render a label set (plus the optional `le` bucket label) as
/// `{k="v",...}`, empty when there are no labels.
fn render_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn escape_help(v: &str) -> String {
    v.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Shortest faithful float rendering (`1`, `0.5`, `67108864`).
fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("requests_total", "Requests");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Re-registration returns the same instance.
        assert_eq!(reg.counter("requests_total", "Requests").get(), 5);

        let g = reg.gauge("queue_depth", "Depth");
        g.set(17.5);
        assert_eq!(g.get(), 17.5);
    }

    #[test]
    fn labelled_counters_are_distinct_series() {
        let reg = MetricsRegistry::new();
        let a = reg.counter_with("errors_total", "Errors", &[("kind", "invalid_k")]);
        let b = reg.counter_with("errors_total", "Errors", &[("kind", "device_oom")]);
        a.add(2);
        b.add(3);
        let text = reg.render_prometheus();
        assert!(text.contains("errors_total{kind=\"invalid_k\"} 2"));
        assert!(text.contains("errors_total{kind=\"device_oom\"} 3"));
        // One HELP/TYPE header for the family.
        assert_eq!(text.matches("# TYPE errors_total counter").count(), 1);
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_quantiles_ordered() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram_with("lat_us", "Latency", &[], vec![1.0, 10.0, 100.0, 1000.0]);
        for v in [0.5, 2.0, 3.0, 20.0, 50.0, 200.0, 5000.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 7);
        assert!((h.sum() - 5275.5).abs() < 1e-9);
        let p50 = h.percentile(0.5);
        let p99 = h.percentile(0.99);
        assert!(p50 <= p99, "p50 {p50} > p99 {p99}");
        // p50 is rank 4 of 7 (the observation 20.0) -> (10, 100] bucket.
        assert!(p50 > 10.0 && p50 <= 100.0, "p50 {p50}");
        // p99 lands in the overflow bucket -> last finite bound.
        assert_eq!(p99, 1000.0);

        let text = reg.render_prometheus();
        assert!(text.contains("lat_us_bucket{le=\"1\"} 1"));
        assert!(text.contains("lat_us_bucket{le=\"10\"} 3"));
        assert!(text.contains("lat_us_bucket{le=\"100\"} 5"));
        assert!(text.contains("lat_us_bucket{le=\"1000\"} 6"));
        assert!(text.contains("lat_us_bucket{le=\"+Inf\"} 7"));
        assert!(text.contains("lat_us_count 7"));
        assert!(text.contains("# TYPE lat_us histogram"));
    }

    #[test]
    fn empty_histogram_percentile_is_zero() {
        let h = Histogram::with_bounds(vec![1.0, 2.0]);
        assert_eq!(h.percentile(0.5), 0.0);
        assert_eq!(h.percentile(0.0), 0.0);
        assert_eq!(h.percentile(1.0), 0.0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0.0);
    }

    #[test]
    fn percentiles_are_exact_at_log_bucket_boundaries() {
        // Observations landing exactly on the power-of-two bounds fill
        // their bucket completely, so linear interpolation reaches the
        // upper bound exactly: each quartile IS a boundary value.
        let h = Histogram::with_bounds(Histogram::default_latency_bounds());
        for v in [1.0, 2.0, 4.0, 8.0] {
            h.observe(v);
        }
        assert_eq!(h.percentile(0.25), 1.0);
        assert_eq!(h.percentile(0.50), 2.0);
        assert_eq!(h.percentile(0.75), 4.0);
        assert_eq!(h.percentile(1.00), 8.0);
        // A boundary value belongs to the bucket it bounds (v <= b),
        // never the one above.
        let h2 = Histogram::with_bounds(vec![1.0, 2.0, 4.0]);
        h2.observe(2.0);
        assert_eq!(h2.percentile(1.0), 2.0);
    }

    #[test]
    fn single_sample_reports_its_bucket_upper_bound_at_every_quantile() {
        let h = Histogram::with_bounds(vec![1.0, 2.0, 4.0, 8.0]);
        h.observe(3.0); // (2, 4] bucket
        for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
            assert_eq!(h.percentile(q), 4.0, "q = {q}");
        }
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 3.0);
    }

    #[test]
    fn log_buckets_bound_relative_error_by_a_factor_of_two() {
        // The default_latency_bounds() doc promise: the estimate never
        // strays more than 2x from the true value, across the decades.
        for v in [1.5, 3.0, 6.0, 100.0, 5_000.0, 1.0e6] {
            let h = Histogram::with_bounds(Histogram::default_latency_bounds());
            h.observe(v);
            let est = h.percentile(0.5);
            assert!(
                est / v <= 2.0 + 1e-9 && v / est <= 2.0 + 1e-9,
                "estimate {est} strays more than 2x from {v}"
            );
        }
    }

    #[test]
    fn default_bounds_cover_microseconds_to_minutes() {
        let b = Histogram::default_latency_bounds();
        assert_eq!(b[0], 1.0);
        assert!(b.last().copied().unwrap() > 60_000_000.0);
        assert!(b.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("m", "m");
        reg.gauge("m", "m");
    }

    #[test]
    fn name_validation() {
        assert!(valid_metric_name("topk_engine_latency_us"));
        assert!(valid_metric_name("_private:scoped"));
        assert!(!valid_metric_name("0bad"));
        assert!(!valid_metric_name("has space"));
        assert!(valid_label_name("kind"));
        assert!(!valid_label_name("le:"));
    }

    #[test]
    fn gauge_renders_floats_plainly() {
        let reg = MetricsRegistry::new();
        reg.gauge("util", "Utilisation").set(0.75);
        let text = reg.render_prometheus();
        assert!(text.contains("util 0.75"), "{text}");
    }

    #[test]
    fn concurrent_observation_is_lossless() {
        let h = std::sync::Arc::new(Histogram::with_bounds(vec![10.0, 100.0]));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..1000 {
                        h.observe((i % 150) as f64);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
    }
}
