//! # topk-obs — metrics and tracing primitives for the serving stack
//!
//! The paper's entire argument is made through counted quantities —
//! kernel launches, device-memory traffic, PCIe round-trips (§3.1,
//! Fig. 8, Table 3) — and the ROADMAP's production-serving north star
//! needs the same signals every inference stack needs: percentile
//! latencies, error-rate counters, and traces. This crate supplies the
//! layer-independent primitives; `gpu-sim`, `topk-core` and
//! `topk-engine` wire them through the stack:
//!
//! * [`MetricsRegistry`] — a lightweight, thread-safe registry of
//!   [`Counter`]s, [`Gauge`]s and log-bucketed [`Histogram`]s (with
//!   p50/p95/p99 estimation), rendered in the Prometheus text
//!   exposition format by [`MetricsRegistry::render_prometheus`].
//! * [`next_span_id`] — process-unique span ids. `TopKEngine::submit`
//!   mints one per query and threads it through batch formation into
//!   `Gpu` kernel launches, so every `QueryResult` links to the kernel
//!   spans that served it.
//!
//! No dependencies: everything is `std` atomics plus one mutex around
//! the registry's name table, so the crate can sit below every other
//! workspace member.
//!
//! ```
//! use topk_obs::MetricsRegistry;
//!
//! let reg = MetricsRegistry::new();
//! let queries = reg.counter("topk_queries_total", "Queries drained");
//! let lat = reg.histogram("topk_latency_us", "Per-query latency, us");
//! for v in [120.0, 340.0, 90.0, 2100.0] {
//!     queries.inc();
//!     lat.observe(v);
//! }
//! assert_eq!(queries.get(), 4);
//! assert!(lat.percentile(0.5) <= lat.percentile(0.99));
//! let text = reg.render_prometheus();
//! assert!(text.contains("# TYPE topk_queries_total counter"));
//! assert!(text.contains("topk_latency_us_bucket"));
//! ```

pub mod metrics;

pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry};

use std::sync::atomic::{AtomicU64, Ordering};

/// Span ids are process-unique and never zero (0 means "no span").
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// Mint the next process-unique span id (monotonic, nonzero).
pub fn next_span_id() -> u64 {
    NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_ids_are_unique_and_nonzero() {
        let a = next_span_id();
        let b = next_span_id();
        assert_ne!(a, 0);
        assert_ne!(b, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn span_ids_are_unique_across_threads() {
        let ids: Vec<u64> = crossbeam_free_scope();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len());
    }

    /// 4 threads × 100 ids without crossbeam (std::thread::scope).
    fn crossbeam_free_scope() -> Vec<u64> {
        let mut all = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| s.spawn(|| (0..100).map(|_| next_span_id()).collect::<Vec<_>>()))
                .collect();
            for h in handles {
                all.extend(h.join().unwrap());
            }
        });
        all
    }
}
