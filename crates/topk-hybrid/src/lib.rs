//! # topk-hybrid — delegate-centric hybrid top-K (Dr. Top-K style)
//!
//! The SC '23 paper's related work (§2.2) describes *hybrid* methods,
//! of which Dr. Top-K (Gaihre et al., SC '21) is the exemplar: "compute
//! top-K on delegates to reduce workload and perform a second top-K to
//! get final results. As a hybrid method, it involves two top-K
//! computations and needs a base top-K algorithm (like RadixSelect or
//! Bitonic Top-K) as its building block, hence it benefits from a
//! high-performance parallel top-K algorithm."
//!
//! The paper deliberately benchmarks the *base* implementations, not
//! the hybrid — the hybrid is "orthogonal to and can benefit from our
//! new methods". This crate supplies that orthogonal layer, composable
//! over any [`TopKAlgorithm`]:
//!
//! 1. **Delegate pass** — split the input into `S = ⌈N/L⌉` subranges
//!    and reduce each to its minimum (its *delegate*).
//! 2. **First top-K** — run the base algorithm over the `S` delegates;
//!    the returned indices are the winning subrange ids.
//! 3. **Gather** — concatenate the `K` winning subranges (values plus
//!    their original positions) into a candidate array of `K·L`
//!    elements.
//! 4. **Second top-K** — run the base algorithm over the candidates
//!    and map its indices back through the gather.
//!
//! ## Why this is correct (including ties)
//!
//! Let `t` be the K-th smallest delegate. Every selected subrange
//! contains its delegate, so the candidates include at least `K`
//! elements `≤ t`; every element of a non-selected subrange is `≥` its
//! own delegate `≥ t`. Hence all elements `< t` are candidates, and
//! the candidates contain at least as many copies of `t` as a top-K
//! multiset can need — so the K smallest of the candidates form a
//! valid top-K multiset of the whole input. (Tie-broken delegate
//! selection cannot lose a needed duplicate: each selected subrange
//! supplies one element `≤ t` of its own.)

use gpu_sim::{Backend, BackendExt, DeviceBuffer, Footprint, KernelContract, LaunchConfig};
use topk_core::traits::{check_args, Category, TopKAlgorithm, TopKOutput};
use topk_core::{ScratchGuard, TopKError};

/// Delegate-centric hybrid selection over a base algorithm.
///
/// `sub_len` (the subrange length `L`) defaults to
/// `clamp(√(N/K), 16, 4096)`, balancing the delegate reduction
/// (`O(N)`), the first top-K (`O(N/L)`) and the second top-K
/// (`O(K·L)`).
///
/// ```
/// use gpu_sim::{Gpu, DeviceSpec};
/// use topk_core::{AirTopK, TopKAlgorithm, verify_topk};
/// use topk_hybrid::DrTopK;
///
/// let mut gpu = Gpu::new(DeviceSpec::a100());
/// let data: Vec<f32> = (0..60_000).map(|i| ((i * 97) % 30011) as f32).collect();
/// let input = gpu.htod("scores", &data);
/// let hybrid = DrTopK::new(AirTopK::default());
/// let out = hybrid.select(&mut gpu, &input, 40);
/// verify_topk(&data, 40, &out.values.to_vec(), &out.indices.to_vec()).unwrap();
/// ```
pub struct DrTopK<A> {
    base: A,
    sub_len: Option<usize>,
}

impl<A: TopKAlgorithm> DrTopK<A> {
    /// Hybrid over `base` with the default subrange policy.
    pub fn new(base: A) -> Self {
        DrTopK {
            base,
            sub_len: None,
        }
    }

    /// Hybrid with an explicit subrange length (must be ≥ 1).
    pub fn with_sub_len(base: A, sub_len: usize) -> Self {
        assert!(sub_len >= 1, "subrange length must be >= 1");
        DrTopK {
            base,
            sub_len: Some(sub_len),
        }
    }

    /// The base algorithm.
    pub fn base(&self) -> &A {
        &self.base
    }

    /// The subrange length used for a given problem shape.
    pub fn sub_len_for(&self, n: usize, k: usize) -> usize {
        self.sub_len
            .unwrap_or_else(|| (((n / k.max(1)) as f64).sqrt() as usize).clamp(16, 4096))
    }

    /// The four hybrid passes. Intermediates are tracked in `ws`
    /// (released by the caller on every path) and output buffers in
    /// `outs` (released by the caller only on error).
    #[allow(clippy::too_many_arguments)]
    fn hybrid_passes(
        &self,
        gpu: &mut dyn Backend,
        ws: &mut ScratchGuard,
        outs: &mut ScratchGuard,
        input: &DeviceBuffer<f32>,
        k: usize,
        sub_len: usize,
        subranges: usize,
    ) -> Result<TopKOutput, TopKError> {
        let n = input.len();

        // --- 1. delegate reduction --------------------------------
        let delegates = ws.alloc::<f32>(gpu, "drtopk_delegates", subranges)?;
        {
            let input = input.clone();
            let delegates = delegates.clone();
            let contract = KernelContract::new("drtopk_delegate_reduce")
                .reads(&input, Footprint::all())
                .writes(&delegates, Footprint::tiles(256));
            gpu.try_launch_checked(
                &contract,
                LaunchConfig::for_elements(subranges, 256, 1, usize::MAX),
                move |ctx| {
                    let start = ctx.block_idx * 256;
                    let end = (start + 256).min(subranges);
                    for s in start..end {
                        let lo = s * sub_len;
                        let hi = (lo + sub_len).min(n);
                        let mut m = ctx.ld(&input, lo);
                        for i in lo + 1..hi {
                            let v = ctx.ld(&input, i);
                            // Total-order min (-0.0 < +0.0).
                            if topk_core::RadixKey::to_ordered(v)
                                < topk_core::RadixKey::to_ordered(m)
                            {
                                m = v;
                            }
                        }
                        ctx.ops((hi - lo) as u64 * 2);
                        ctx.st(&delegates, s, m);
                    }
                },
            )?;
        }

        // --- 2. first top-K over the delegates --------------------
        let winners = self.base.try_select(gpu, &delegates, k)?;
        ws.adopt(&winners.values);
        ws.adopt(&winners.indices);

        // --- 3. gather the winning subranges ----------------------
        let cand_cap = k * sub_len;
        let cand_val = ws.alloc::<f32>(gpu, "drtopk_cand_val", cand_cap)?;
        let cand_src = ws.alloc::<u32>(gpu, "drtopk_cand_src", cand_cap)?;
        // Tail subrange may be short; pad with the paper-style +inf
        // sentinel so the candidate array length is uniform.
        {
            let input = input.clone();
            let win_idx = winners.indices.clone();
            let cand_val = cand_val.clone();
            let cand_src = cand_src.clone();
            let contract = KernelContract::new("drtopk_gather")
                .reads(&input, Footprint::all())
                .reads(&win_idx, Footprint::tiles(64))
                .writes(&cand_val, Footprint::tiles(64 * sub_len))
                .writes(&cand_src, Footprint::tiles(64 * sub_len));
            gpu.try_launch_checked(
                &contract,
                LaunchConfig::for_elements(k, 64, 1, usize::MAX),
                move |ctx| {
                    let start = ctx.block_idx * 64;
                    let end = (start + 64).min(k);
                    for w in start..end {
                        let sub = ctx.ld(&win_idx, w) as usize;
                        let lo = sub * sub_len;
                        for j in 0..sub_len {
                            let dst = w * sub_len + j;
                            if lo + j < n {
                                let v = ctx.ld_gather(&input, lo + j);
                                ctx.st(&cand_val, dst, v);
                                ctx.st(&cand_src, dst, (lo + j) as u32);
                            } else {
                                ctx.st(&cand_val, dst, f32::INFINITY);
                                ctx.st(&cand_src, dst, u32::MAX);
                            }
                        }
                        ctx.ops(sub_len as u64);
                    }
                },
            )?;
        }

        // --- 4. second top-K + index mapping -----------------------
        let second = self.base.try_select(gpu, &cand_val, k)?;
        outs.adopt(&second.values);
        ws.adopt(&second.indices);
        let out_idx = outs.alloc::<u32>(gpu, "drtopk_out_idx", k)?;
        {
            let second_idx = second.indices.clone();
            let cand_src = cand_src.clone();
            let out_idx = out_idx.clone();
            let contract = KernelContract::new("drtopk_map_indices")
                .reads(&second_idx, Footprint::fixed(0, k))
                .reads(&cand_src, Footprint::all())
                .writes(&out_idx, Footprint::fixed(0, k))
                .requires_grid_at_most(1);
            gpu.try_launch_checked(&contract, LaunchConfig::grid_1d(1, 256), move |ctx| {
                for i in 0..k {
                    let c = ctx.ld(&second_idx, i) as usize;
                    let orig = ctx.ld_gather(&cand_src, c);
                    debug_assert_ne!(orig, u32::MAX, "sentinel leaked into top-K");
                    ctx.st(&out_idx, i, orig);
                }
                ctx.ops(k as u64);
            })?;
        }

        Ok(TopKOutput::new(second.values, out_idx))
    }
}

impl<A: TopKAlgorithm> TopKAlgorithm for DrTopK<A> {
    fn name(&self) -> &'static str {
        "Dr. Top-K"
    }

    fn category(&self) -> Category {
        self.base.category()
    }

    // The base algorithm's K cap applies to both internal selections;
    // since both use the same K, the cap carries over unchanged.
    fn max_k(&self) -> Option<usize> {
        self.base.max_k()
    }

    fn try_select(
        &self,
        gpu: &mut dyn Backend,
        input: &DeviceBuffer<f32>,
        k: usize,
    ) -> Result<TopKOutput, TopKError> {
        check_args(self, input.len(), k)?;
        let n = input.len();
        let sub_len = self.sub_len_for(n, k);
        let subranges = n.div_ceil(sub_len);

        // Degenerate shapes: the delegate detour cannot pay off when K
        // already covers most subranges.
        if k >= subranges || subranges <= 1 {
            return self.base.try_select(gpu, input, k);
        }

        let mut ws = ScratchGuard::new();
        let mut outs = ScratchGuard::new();
        let r = self.hybrid_passes(gpu, &mut ws, &mut outs, input, k, sub_len, subranges);
        ws.release(gpu);
        if r.is_err() {
            outs.release(gpu);
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{generate, Distribution};
    use gpu_sim::{DeviceSpec, Gpu};
    use topk_baselines::{RadixSelect, SortTopK};
    use topk_core::verify::verify_topk;
    use topk_core::{AirTopK, GridSelect};

    fn run_case<A: TopKAlgorithm>(hybrid: &DrTopK<A>, data: &[f32], k: usize) {
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let input = gpu.htod("in", data);
        let out = hybrid.select(&mut gpu, &input, k);
        verify_topk(data, k, &out.values.to_vec(), &out.indices.to_vec()).unwrap_or_else(|e| {
            panic!(
                "Dr.Top-K over {} failed: {e} (n={}, k={k})",
                hybrid.base().name(),
                data.len()
            )
        });
    }

    #[test]
    fn correct_over_every_base() {
        let data = generate(Distribution::Uniform, 60_000, 3);
        run_case(&DrTopK::new(AirTopK::default()), &data, 100);
        run_case(&DrTopK::new(GridSelect::default()), &data, 100);
        run_case(&DrTopK::new(SortTopK), &data, 100);
        run_case(&DrTopK::new(RadixSelect), &data, 100);
    }

    #[test]
    fn all_distributions_and_shapes() {
        let hybrid = DrTopK::new(AirTopK::default());
        for dist in Distribution::benchmark_set() {
            let data = generate(dist, 100_000, 7);
            for k in [1usize, 10, 500, 2048] {
                run_case(&hybrid, &data, k);
            }
        }
    }

    #[test]
    fn ties_across_subrange_boundaries() {
        // All elements equal: any K qualify; delegates all tie.
        run_case(&DrTopK::new(AirTopK::default()), &vec![2.0f32; 50_000], 300);
        // Duplicates of the boundary value spread across subranges.
        let mut data = generate(Distribution::Uniform, 50_000, 1);
        for i in (0..data.len()).step_by(97) {
            data[i] = 0.5;
        }
        run_case(&DrTopK::new(AirTopK::default()), &data, 700);
    }

    #[test]
    fn falls_back_when_k_covers_subranges() {
        // K >= number of subranges: the hybrid must degrade to the
        // base algorithm and stay correct.
        let data = generate(Distribution::Normal, 2000, 9);
        let hybrid = DrTopK::with_sub_len(AirTopK::default(), 1000);
        run_case(&hybrid, &data, 5); // 2 subranges, k=5 -> fallback
    }

    #[test]
    fn explicit_sub_len_and_default_policy() {
        let h = DrTopK::with_sub_len(AirTopK::default(), 64);
        assert_eq!(h.sub_len_for(1 << 20, 10), 64);
        let h = DrTopK::new(AirTopK::default());
        let l = h.sub_len_for(1 << 20, 16);
        assert!((16..=4096).contains(&l));
        // sqrt(2^20/16) = 256.
        assert_eq!(l, 256);
    }

    #[test]
    fn reduces_base_workload_for_slow_bases() {
        // The point of the hybrid (§2.2): the expensive base algorithm
        // only sees N/L + K*L elements instead of N.
        let data = generate(Distribution::Uniform, 1 << 20, 4);
        let k = 64;
        let time = |alg: &dyn TopKAlgorithm| {
            let mut gpu = Gpu::new(DeviceSpec::a100());
            let input = gpu.htod("in", &data);
            gpu.reset_profile();
            let out = alg.select(&mut gpu, &input, k);
            verify_topk(&data, k, &out.values.to_vec(), &out.indices.to_vec()).unwrap();
            gpu.elapsed_us()
        };
        let base = time(&SortTopK);
        let hybrid = time(&DrTopK::new(SortTopK));
        assert!(
            hybrid < base,
            "hybrid ({hybrid:.1}) should beat full-sort base ({base:.1})"
        );
    }

    #[test]
    fn max_k_carries_over() {
        assert_eq!(DrTopK::new(GridSelect::default()).max_k(), Some(2048));
        assert_eq!(DrTopK::new(SortTopK).max_k(), None);
    }

    #[test]
    fn batch_default_loops() {
        let datas: Vec<Vec<f32>> = (0..3)
            .map(|i| generate(Distribution::Uniform, 30_000, i))
            .collect();
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let inputs: Vec<_> = datas
            .iter()
            .enumerate()
            .map(|(i, d)| gpu.htod(&format!("p{i}"), d))
            .collect();
        let hybrid = DrTopK::new(AirTopK::default());
        let outs = hybrid.select_batch(&mut gpu, &inputs, 50);
        for (d, o) in datas.iter().zip(&outs) {
            verify_topk(d, 50, &o.values.to_vec(), &o.indices.to_vec()).unwrap();
        }
    }
}
