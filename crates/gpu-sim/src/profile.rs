//! Profiling: the simulated timeline and per-kernel utilisation report.
//!
//! Mirrors the two profiling artefacts the paper uses:
//!
//! * Fig. 8 shows Nsight *timelines* of RadixSelect vs. AIR Top-K —
//!   kernels, `MemcpyHtoD`/`MemcpyDtoH` blocks, and the white space of
//!   host synchronisation. [`Timeline::render_ascii`] reproduces that
//!   view.
//! * Table 3 lists per-kernel "Speed Of Light" throughput percentages
//!   from Nsight Compute. [`sol_table`] builds the same table from the
//!   recorded kernel reports.

use crate::cost::CostBreakdown;
use crate::gpu::KernelReport;

/// What occupied the device (or the host) during a span of simulated
/// time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A kernel execution (name).
    Kernel(String),
    /// Host→device copy.
    MemcpyHtoD,
    /// Device→host copy.
    MemcpyDtoH,
    /// Host-side synchronisation (device idle).
    HostSync,
    /// Host-side computation between launches (device idle).
    HostCompute(String),
    /// Kernel-launch overhead (CPU driver time).
    LaunchOverhead,
}

impl EventKind {
    /// Single-character glyph used by the ASCII renderer.
    fn glyph(&self) -> char {
        match self {
            EventKind::Kernel(_) => '#',
            EventKind::MemcpyHtoD => '>',
            EventKind::MemcpyDtoH => '<',
            EventKind::HostSync => '.',
            EventKind::HostCompute(_) => '~',
            EventKind::LaunchOverhead => '|',
        }
    }

    /// True when the GPU itself is idle during the event.
    pub fn device_idle(&self) -> bool {
        matches!(
            self,
            EventKind::HostSync | EventKind::HostCompute(_) | EventKind::LaunchOverhead
        )
    }
}

/// One span on the simulated timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineEvent {
    /// What happened.
    pub kind: EventKind,
    /// Start of the span, µs from profile start.
    pub start_us: f64,
    /// Duration, µs.
    pub dur_us: f64,
}

impl TimelineEvent {
    /// End of the span, µs.
    pub fn end_us(&self) -> f64 {
        self.start_us + self.dur_us
    }
}

/// An append-only record of simulated device/host activity.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    events: Vec<TimelineEvent>,
}

impl Timeline {
    /// Empty timeline.
    pub fn new() -> Self {
        Timeline::default()
    }

    /// Append an event.
    pub fn push(&mut self, kind: EventKind, start_us: f64, dur_us: f64) {
        self.events.push(TimelineEvent {
            kind,
            start_us,
            dur_us,
        });
    }

    /// All recorded events in order.
    pub fn events(&self) -> &[TimelineEvent] {
        &self.events
    }

    /// Clear all events.
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// End of the last event, µs (0 when empty).
    pub fn span_us(&self) -> f64 {
        self.events.last().map(|e| e.end_us()).unwrap_or(0.0)
    }

    /// Total device-idle time (host sync / host compute / launch
    /// overhead) — the "notable white spaces" of Fig. 8.
    pub fn idle_us(&self) -> f64 {
        self.events
            .iter()
            .filter(|e| e.kind.device_idle())
            .map(|e| e.dur_us)
            .sum()
    }

    /// Total time spent in host↔device copies.
    pub fn memcpy_us(&self) -> f64 {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::MemcpyHtoD | EventKind::MemcpyDtoH))
            .map(|e| e.dur_us)
            .sum::<f64>()
            + 0.0 // normalise -0.0 from empty sums for display
    }

    /// Number of kernel launches recorded.
    pub fn kernel_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Kernel(_)))
            .count()
    }

    /// Render the timeline as a fixed-width ASCII strip (the Fig. 8
    /// view): `#` kernel, `>`/`<` memcpy, `.` host sync, `~` host
    /// compute, `|` launch overhead.
    pub fn render_ascii(&self, width: usize) -> String {
        let span = self.span_us();
        if span <= 0.0 || width == 0 {
            return String::new();
        }
        let mut strip = vec![' '; width];
        for e in &self.events {
            let a = ((e.start_us / span) * width as f64).floor() as usize;
            let b = ((e.end_us() / span) * width as f64).ceil() as usize;
            let g = e.kind.glyph();
            for cell in strip.iter_mut().take(b.min(width)).skip(a.min(width)) {
                *cell = g;
            }
        }
        let mut out: String = strip.into_iter().collect();
        out.push_str(&format!("  ({span:.1} us total)"));
        out
    }

    /// A per-event textual listing (name, start, duration).
    pub fn render_list(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            let name = match &e.kind {
                EventKind::Kernel(n) => format!("kernel {n}"),
                EventKind::MemcpyHtoD => "MemcpyHtoD".to_string(),
                EventKind::MemcpyDtoH => "MemcpyDtoH".to_string(),
                EventKind::HostSync => "host sync".to_string(),
                EventKind::HostCompute(n) => format!("host {n}"),
                EventKind::LaunchOverhead => "launch".to_string(),
            };
            out.push_str(&format!(
                "{:>10.2} us  {:>10.2} us  {}\n",
                e.start_us, e.dur_us, name
            ));
        }
        out
    }
}

/// One row of the Table 3 "Kernels Performance Analysis" report.
#[derive(Debug, Clone, PartialEq)]
pub struct SolRow {
    /// Kernel name with its launch ordinal, e.g.
    /// `iteration_fused_kernel(1)`.
    pub kernel: String,
    /// Share of total kernel time, in percent.
    pub time_pct: f64,
    /// Memory Speed-Of-Light percentage.
    pub memory_sol_pct: f64,
    /// Compute Speed-Of-Light percentage.
    pub compute_sol_pct: f64,
    /// Execution time, µs.
    pub exec_us: f64,
}

/// Build the Table 3 per-kernel utilisation rows from kernel reports.
///
/// Repeated launches of the same kernel name get `(1)`, `(2)`, …
/// ordinals like the paper's listing.
pub fn sol_table(reports: &[KernelReport]) -> Vec<SolRow> {
    let total: f64 = reports.iter().map(|r| r.cost.exec_us).sum();
    let mut counts: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
    reports
        .iter()
        .map(|r| {
            let n = counts.entry(r.name.as_str()).or_insert(0);
            *n += 1;
            SolRow {
                kernel: format!("{}({})", r.name, n),
                time_pct: if total > 0.0 {
                    100.0 * r.cost.exec_us / total
                } else {
                    0.0
                },
                memory_sol_pct: 100.0 * r.cost.memory_sol,
                compute_sol_pct: 100.0 * r.cost.compute_sol,
                exec_us: r.cost.exec_us,
            }
        })
        .collect()
}

/// What limits a kernel according to the roofline model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    /// Memory-limited: DRAM traffic dominates the execution window.
    Memory,
    /// Compute-limited: scalar-op throughput dominates.
    Compute,
    /// Neither reached the device floor — launch/latency dominated.
    Latency,
}

impl Bound {
    /// Short lowercase label (`memory` / `compute` / `latency`).
    pub fn label(&self) -> &'static str {
        match self {
            Bound::Memory => "memory",
            Bound::Compute => "compute",
            Bound::Latency => "latency",
        }
    }
}

/// Roofline aggregate for every launch of one kernel name: total
/// traffic and compute folded across launches, achieved throughput over
/// the kernel's execution window, and the fraction of the device's
/// peak each represents. This is the continuous-profiler view — where
/// an algorithm's time actually goes, kernel by kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct RooflineRow {
    /// Kernel name (no ordinal — launches are folded together).
    pub kernel: String,
    /// Number of launches folded into this row.
    pub launches: u64,
    /// Total execution time across launches, µs (excludes launch
    /// overhead).
    pub exec_us: f64,
    /// Total device-memory traffic, bytes (scatter + atomic overhead
    /// included, matching [`crate::cost::KernelStats::total_mem_bytes`]).
    pub mem_bytes: u64,
    /// Total scalar compute operations.
    pub compute_ops: u64,
    /// Total lanes launched (grid × block threads, summed over
    /// launches).
    pub lanes: u64,
    /// Execution-time-weighted mean occupancy in [0, 1].
    pub occupancy: f64,
    /// Achieved DRAM bandwidth over the execution window, bytes/µs.
    pub achieved_bw: f64,
    /// Achieved compute throughput over the execution window, ops/µs.
    pub achieved_ops: f64,
    /// `achieved_bw` as a fraction of the device peak.
    pub peak_bw_frac: f64,
    /// `achieved_ops` as a fraction of the device peak.
    pub peak_ops_frac: f64,
    /// Arithmetic intensity, ops per byte of traffic.
    pub intensity: f64,
    /// Roofline classification of the aggregate.
    pub bound: Bound,
}

/// Fold kernel reports into per-kernel-name [`RooflineRow`]s against a
/// device's peaks. Rows come back sorted by total execution time,
/// hottest first; ties (and the classification itself) are
/// deterministic, so the same reports always produce the same table.
pub fn roofline(spec: &crate::device::DeviceSpec, reports: &[KernelReport]) -> Vec<RooflineRow> {
    use std::collections::BTreeMap;
    struct Acc {
        launches: u64,
        exec_us: f64,
        mem_bytes: u64,
        compute_ops: u64,
        lanes: u64,
        occ_weighted: f64,
        mem_us: f64,
        compute_us: f64,
    }
    let mut by_name: BTreeMap<&str, Acc> = BTreeMap::new();
    for r in reports {
        let a = by_name.entry(r.name.as_str()).or_insert(Acc {
            launches: 0,
            exec_us: 0.0,
            mem_bytes: 0,
            compute_ops: 0,
            lanes: 0,
            occ_weighted: 0.0,
            mem_us: 0.0,
            compute_us: 0.0,
        });
        a.launches += 1;
        a.exec_us += r.cost.exec_us;
        a.mem_bytes += r.stats.total_mem_bytes();
        a.compute_ops += r.stats.compute_ops;
        a.lanes += r.cfg.total_threads() as u64;
        a.occ_weighted += r.cost.occupancy * r.cost.exec_us;
        a.mem_us += r.cost.mem_us;
        a.compute_us += r.cost.compute_us;
    }
    let peak_bw = spec.mem_bw_bytes_per_us();
    let peak_ops = spec.compute_ops_per_us();
    let mut rows: Vec<RooflineRow> = by_name
        .into_iter()
        .map(|(name, a)| {
            let achieved_bw = if a.exec_us > 0.0 {
                a.mem_bytes as f64 / a.exec_us
            } else {
                0.0
            };
            let achieved_ops = if a.exec_us > 0.0 {
                a.compute_ops as f64 / a.exec_us
            } else {
                0.0
            };
            // A kernel is bound by whichever roofline component its
            // cost model actually hit; if neither component reached
            // the execution window it paid the device latency floor.
            let limited = a.mem_us.max(a.compute_us);
            let bound = if limited + 1e-12 < a.exec_us || limited == 0.0 {
                Bound::Latency
            } else if a.mem_us >= a.compute_us {
                Bound::Memory
            } else {
                Bound::Compute
            };
            RooflineRow {
                kernel: name.to_string(),
                launches: a.launches,
                exec_us: a.exec_us,
                mem_bytes: a.mem_bytes,
                compute_ops: a.compute_ops,
                lanes: a.lanes,
                occupancy: if a.exec_us > 0.0 {
                    a.occ_weighted / a.exec_us
                } else {
                    0.0
                },
                achieved_bw,
                achieved_ops,
                peak_bw_frac: (achieved_bw / peak_bw).min(1.0),
                peak_ops_frac: (achieved_ops / peak_ops).min(1.0),
                intensity: if a.mem_bytes > 0 {
                    a.compute_ops as f64 / a.mem_bytes as f64
                } else {
                    0.0
                },
                bound,
            }
        })
        .collect();
    rows.sort_by(|x, y| {
        y.exec_us
            .partial_cmp(&x.exec_us)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| x.kernel.cmp(&y.kernel))
    });
    rows
}

/// Render roofline rows as an aligned text table.
pub fn render_roofline(rows: &[RooflineRow]) -> String {
    let mut out = String::from(
        "Kernel                     Launches     Exec us       MBytes     %PeakBW    %PeakOps    Occ   Bound\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<26} {:>8} {:>11.2} {:>12.3} {:>10.1}% {:>10.1}% {:>6.2}  {}\n",
            r.kernel,
            r.launches,
            r.exec_us,
            r.mem_bytes as f64 / 1e6,
            100.0 * r.peak_bw_frac,
            100.0 * r.peak_ops_frac,
            r.occupancy,
            r.bound.label()
        ));
    }
    out
}

/// Render SOL rows as an aligned text table.
pub fn render_sol_table(rows: &[SolRow]) -> String {
    let mut out =
        String::from("Kernel Call                      Time%   Memory SOL   Compute SOL\n");
    for r in rows {
        out.push_str(&format!(
            "{:<32} {:>5.2}%      {:>6.2}%       {:>6.2}%\n",
            r.kernel, r.time_pct, r.memory_sol_pct, r.compute_sol_pct
        ));
    }
    out
}

/// Helper constructing a [`CostBreakdown`] for tests in other modules.
#[doc(hidden)]
pub fn test_cost(exec_us: f64, memory_sol: f64, compute_sol: f64) -> CostBreakdown {
    CostBreakdown {
        exec_us,
        launch_us: 3.0,
        mem_us: exec_us,
        compute_us: 0.0,
        occupancy: 1.0,
        memory_sol,
        compute_sol,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::LaunchConfig;
    use crate::KernelStats;

    fn mk_report(name: &str, exec_us: f64) -> KernelReport {
        KernelReport {
            name: name.to_string(),
            cfg: LaunchConfig::grid_1d(1, 32),
            stats: KernelStats::default(),
            cost: test_cost(exec_us, 0.9, 0.4),
            start_us: 0.0,
            span: 0,
            sanitizer_findings: 0,
        }
    }

    #[test]
    fn timeline_aggregates() {
        let mut t = Timeline::new();
        t.push(EventKind::LaunchOverhead, 0.0, 3.0);
        t.push(EventKind::Kernel("k".into()), 3.0, 10.0);
        t.push(EventKind::MemcpyDtoH, 13.0, 9.0);
        t.push(EventKind::HostSync, 22.0, 10.0);
        assert_eq!(t.span_us(), 32.0);
        assert_eq!(t.idle_us(), 13.0);
        assert_eq!(t.memcpy_us(), 9.0);
        assert_eq!(t.kernel_count(), 1);
    }

    #[test]
    fn ascii_render_covers_span() {
        let mut t = Timeline::new();
        t.push(EventKind::Kernel("a".into()), 0.0, 50.0);
        t.push(EventKind::HostSync, 50.0, 50.0);
        let s = t.render_ascii(20);
        assert!(s.starts_with("##########"));
        assert!(s.contains(".........."));
        assert!(t.render_list().contains("kernel a"));
    }

    #[test]
    fn empty_timeline_renders_empty() {
        let t = Timeline::new();
        assert_eq!(t.render_ascii(40), "");
        assert_eq!(t.span_us(), 0.0);
    }

    #[test]
    fn roofline_folds_launches_and_classifies() {
        use crate::device::DeviceSpec;
        let spec = DeviceSpec::a100();
        let mem = |exec_us: f64, bytes: u64| {
            let mut r = mk_report("histogram", exec_us);
            r.stats.bytes_read = bytes;
            r.cost.mem_us = exec_us;
            r.cost.compute_us = 0.1 * exec_us;
            r.cfg = LaunchConfig::grid_1d(4, 128);
            r
        };
        let mut comp = mk_report("partition", 10.0);
        comp.stats.compute_ops = 1_000_000;
        comp.stats.bytes_read = 64;
        comp.cost.compute_us = 10.0;
        comp.cost.mem_us = 1.0;
        let floor = mk_report("tiny", 2.0); // mem_us = compute_us = 0 via default? no: test_cost sets mem_us = exec
        let mut floor = floor;
        floor.cost.mem_us = 0.0;
        floor.cost.compute_us = 0.0;

        let rows = roofline(
            &spec,
            &[mem(50.0, 1_000_000), mem(30.0, 500_000), comp, floor],
        );
        // Hottest first: histogram (80 us) > partition (10) > tiny (2).
        assert_eq!(rows[0].kernel, "histogram");
        assert_eq!(rows[0].launches, 2);
        assert!((rows[0].exec_us - 80.0).abs() < 1e-9);
        assert_eq!(rows[0].mem_bytes, 1_500_000);
        assert_eq!(rows[0].lanes, 2 * 4 * 128);
        assert_eq!(rows[0].bound, Bound::Memory);
        assert!((rows[0].achieved_bw - 1_500_000.0 / 80.0).abs() < 1e-9);
        assert!(rows[0].peak_bw_frac > 0.0 && rows[0].peak_bw_frac <= 1.0);
        assert_eq!(rows[1].kernel, "partition");
        assert_eq!(rows[1].bound, Bound::Compute);
        assert!(rows[1].intensity > 1.0);
        assert_eq!(rows[2].kernel, "tiny");
        assert_eq!(rows[2].bound, Bound::Latency);
        let text = render_roofline(&rows);
        assert!(text.contains("histogram"));
        assert!(text.contains("memory"));
        assert!(text.contains("latency"));
    }

    #[test]
    fn roofline_of_nothing_is_empty() {
        let rows = roofline(&crate::device::DeviceSpec::a100(), &[]);
        assert!(rows.is_empty());
        assert!(render_roofline(&rows).starts_with("Kernel"));
    }

    #[test]
    fn roofline_is_deterministic() {
        let spec = crate::device::DeviceSpec::a100();
        let reports = vec![
            mk_report("a", 5.0),
            mk_report("b", 5.0),
            mk_report("a", 1.0),
        ];
        assert_eq!(roofline(&spec, &reports), roofline(&spec, &reports));
        // Equal exec time ties break by name.
        let tied = vec![mk_report("zz", 3.0), mk_report("aa", 3.0)];
        let rows = roofline(&spec, &tied);
        assert_eq!(rows[0].kernel, "aa");
    }

    #[test]
    fn sol_table_ordinals_and_percentages() {
        let reports = vec![
            mk_report("iteration_fused_kernel", 50.0),
            mk_report("iteration_fused_kernel", 49.0),
            mk_report("last_filter_kernel", 1.0),
        ];
        let rows = sol_table(&reports);
        assert_eq!(rows[0].kernel, "iteration_fused_kernel(1)");
        assert_eq!(rows[1].kernel, "iteration_fused_kernel(2)");
        assert_eq!(rows[2].kernel, "last_filter_kernel(1)");
        assert!((rows[0].time_pct - 50.0).abs() < 1e-9);
        let total: f64 = rows.iter().map(|r| r.time_pct).sum();
        assert!((total - 100.0).abs() < 1e-9);
        let rendered = render_sol_table(&rows);
        assert!(rendered.contains("iteration_fused_kernel(2)"));
    }
}
