//! Chrome-trace export: view simulated timelines in `chrome://tracing`
//! or [Perfetto](https://ui.perfetto.dev).
//!
//! The paper's Fig. 8 is a screenshot of Nsight Systems; this module
//! produces the equivalent interactive artefact from a simulated run —
//! the Trace Event Format's complete events (`"ph": "X"`), one track
//! for device activity and one for the host. JSON is emitted by hand
//! (a few lines) to keep the dependency set at the allow-listed
//! crates.

use crate::profile::{EventKind, Timeline};

/// Trace Event Format process/track ids.
const PID: u32 = 1;
const TID_DEVICE: u32 = 1;
const TID_HOST: u32 = 2;

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Serialise a timeline as a Trace Event Format JSON document.
pub fn to_chrome_trace(timeline: &Timeline, process_name: &str) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    out.push_str(&format!(
        "{{\"ph\":\"M\",\"pid\":{PID},\"name\":\"process_name\",\
         \"args\":{{\"name\":\"{}\"}}}},",
        escape(process_name)
    ));
    out.push_str(&format!(
        "{{\"ph\":\"M\",\"pid\":{PID},\"tid\":{TID_DEVICE},\"name\":\"thread_name\",\
         \"args\":{{\"name\":\"GPU (simulated)\"}}}},"
    ));
    out.push_str(&format!(
        "{{\"ph\":\"M\",\"pid\":{PID},\"tid\":{TID_HOST},\"name\":\"thread_name\",\
         \"args\":{{\"name\":\"Host\"}}}}"
    ));

    for e in timeline.events() {
        let (name, tid, cat) = match &e.kind {
            EventKind::Kernel(n) => (n.clone(), TID_DEVICE, "kernel"),
            EventKind::MemcpyHtoD => ("MemcpyHtoD".to_string(), TID_DEVICE, "memcpy"),
            EventKind::MemcpyDtoH => ("MemcpyDtoH".to_string(), TID_DEVICE, "memcpy"),
            EventKind::HostSync => ("sync".to_string(), TID_HOST, "host"),
            EventKind::HostCompute(n) => (n.clone(), TID_HOST, "host"),
            EventKind::LaunchOverhead => ("launch".to_string(), TID_HOST, "driver"),
        };
        out.push_str(&format!(
            ",{{\"ph\":\"X\",\"pid\":{PID},\"tid\":{tid},\"cat\":\"{cat}\",\
             \"name\":\"{}\",\"ts\":{:.3},\"dur\":{:.3}}}",
            escape(&name),
            e.start_us,
            e.dur_us
        ));
    }
    out.push_str("],\"displayTimeUnit\":\"ns\"}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Timeline;

    fn sample() -> Timeline {
        let mut t = Timeline::new();
        t.push(EventKind::LaunchOverhead, 0.0, 3.0);
        t.push(
            EventKind::Kernel("iteration_fused_kernel".into()),
            3.0,
            10.0,
        );
        t.push(EventKind::MemcpyDtoH, 13.0, 8.0);
        t.push(EventKind::HostSync, 21.0, 10.0);
        t.push(EventKind::HostCompute("prefix \"sum\"".into()), 31.0, 2.0);
        t
    }

    #[test]
    fn emits_valid_structure() {
        let json = to_chrome_trace(&sample(), "RadixSelect run");
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with('}'));
        assert!(json.contains("\"name\":\"iteration_fused_kernel\""));
        assert!(json.contains("\"cat\":\"memcpy\""));
        assert!(json.contains("\"ts\":3.000"));
        assert!(json.contains("\"dur\":10.000"));
        // Quotes in names are escaped.
        assert!(json.contains("prefix \\\"sum\\\""));
        // Braces balance (cheap well-formedness check).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn host_and_device_tracks_are_separated() {
        let json = to_chrome_trace(&sample(), "x");
        // Kernel on device track, sync on host track.
        assert!(json.contains(&format!("\"tid\":{TID_DEVICE},\"cat\":\"kernel\"")));
        assert!(json.contains(&format!("\"tid\":{TID_HOST},\"cat\":\"host\"")));
    }

    #[test]
    fn empty_timeline_is_still_valid() {
        let json = to_chrome_trace(&Timeline::new(), "empty");
        assert!(json.contains("traceEvents"));
        assert!(json.matches('{').count() == json.matches('}').count());
    }
}
