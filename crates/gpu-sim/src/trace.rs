//! Chrome-trace export: view simulated timelines in `chrome://tracing`
//! or [Perfetto](https://ui.perfetto.dev).
//!
//! The paper's Fig. 8 is a screenshot of Nsight Systems; this module
//! produces the equivalent interactive artefact from a simulated run —
//! the Trace Event Format's complete events (`"ph": "X"`). JSON is
//! emitted by hand (a few lines) to keep the dependency set at the
//! allow-listed crates.
//!
//! Two levels of API:
//!
//! * [`to_chrome_trace`] — one [`Timeline`] as a two-track (device +
//!   host) document, the Fig. 8 single-run view.
//! * [`TraceBuilder`] — an engine-wide document: any number of tracks
//!   (one per pool device, plus per-query tracks), each fed from a
//!   timeline or from free-form spans with key/value args. The serving
//!   layer uses this to emit one track per device and queue-wait spans
//!   per query.

use crate::profile::{EventKind, Timeline};

/// Trace Event Format process/track ids.
const PID: u32 = 1;
const TID_DEVICE: u32 = 1;
const TID_HOST: u32 = 2;

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Incrementally builds a Trace Event Format JSON document with any
/// number of named tracks.
///
/// ```
/// use gpu_sim::trace::TraceBuilder;
///
/// let mut tb = TraceBuilder::new("engine drain");
/// let dev0 = tb.add_track("device 0");
/// tb.span(dev0, "kernel", "iteration_fused_kernel", 3.0, 10.0);
/// tb.span_with_args(dev0, "query", "q17", 0.0, 13.0, &[("k", "32".into())]);
/// let json = tb.finish();
/// assert!(json.starts_with("{\"traceEvents\":["));
/// assert!(json.contains("\"name\":\"device 0\""));
/// ```
pub struct TraceBuilder {
    out: String,
    next_tid: u32,
}

impl TraceBuilder {
    /// New document carrying `process_name` metadata.
    pub fn new(process_name: &str) -> Self {
        let mut out = String::from("{\"traceEvents\":[");
        out.push_str(&format!(
            "{{\"ph\":\"M\",\"pid\":{PID},\"name\":\"process_name\",\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape(process_name)
        ));
        TraceBuilder { out, next_tid: 1 }
    }

    /// Add a named track (a Trace Event Format "thread"); returns its
    /// track id for use with [`TraceBuilder::span`]. Tracks render in
    /// the order they are added.
    pub fn add_track(&mut self, name: &str) -> u32 {
        let tid = self.next_tid;
        self.next_tid += 1;
        self.out.push_str(&format!(
            ",{{\"ph\":\"M\",\"pid\":{PID},\"tid\":{tid},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape(name)
        ));
        // Keep the UI's track order equal to insertion order.
        self.out.push_str(&format!(
            ",{{\"ph\":\"M\",\"pid\":{PID},\"tid\":{tid},\"name\":\"thread_sort_index\",\
             \"args\":{{\"sort_index\":{tid}}}}}"
        ));
        tid
    }

    /// Append a complete event (`"ph":"X"`) on `tid`.
    pub fn span(&mut self, tid: u32, cat: &str, name: &str, start_us: f64, dur_us: f64) {
        self.out.push_str(&format!(
            ",{{\"ph\":\"X\",\"pid\":{PID},\"tid\":{tid},\"cat\":\"{}\",\
             \"name\":\"{}\",\"ts\":{:.3},\"dur\":{:.3}}}",
            escape(cat),
            escape(name),
            start_us,
            dur_us
        ));
    }

    /// Append a complete event with string-valued args (shown in the
    /// viewer's detail pane when the span is selected).
    pub fn span_with_args(
        &mut self,
        tid: u32,
        cat: &str,
        name: &str,
        start_us: f64,
        dur_us: f64,
        args: &[(&str, String)],
    ) {
        let rendered: Vec<String> = args
            .iter()
            .map(|(k, v)| format!("\"{}\":\"{}\"", escape(k), escape(v)))
            .collect();
        self.out.push_str(&format!(
            ",{{\"ph\":\"X\",\"pid\":{PID},\"tid\":{tid},\"cat\":\"{}\",\
             \"name\":\"{}\",\"ts\":{:.3},\"dur\":{:.3},\"args\":{{{}}}}}",
            escape(cat),
            escape(name),
            start_us,
            dur_us,
            rendered.join(",")
        ));
    }

    /// Append every event of a [`Timeline`]: device activity (kernels,
    /// memcpys) on `device_tid`, host activity (syncs, host compute,
    /// launch overhead) on `host_tid`. Pass the same tid for both to
    /// collapse everything onto one track.
    pub fn add_timeline(&mut self, device_tid: u32, host_tid: u32, timeline: &Timeline) {
        for e in timeline.events() {
            let (name, tid, cat) = match &e.kind {
                EventKind::Kernel(n) => (n.clone(), device_tid, "kernel"),
                EventKind::MemcpyHtoD => ("MemcpyHtoD".to_string(), device_tid, "memcpy"),
                EventKind::MemcpyDtoH => ("MemcpyDtoH".to_string(), device_tid, "memcpy"),
                EventKind::HostSync => ("sync".to_string(), host_tid, "host"),
                EventKind::HostCompute(n) => (n.clone(), host_tid, "host"),
                EventKind::LaunchOverhead => ("launch".to_string(), host_tid, "driver"),
            };
            self.span(tid, cat, &name, e.start_us, e.dur_us);
        }
    }

    /// Close the document and return the JSON text.
    pub fn finish(mut self) -> String {
        self.out.push_str("],\"displayTimeUnit\":\"ns\"}");
        self.out
    }
}

/// Serialise a timeline as a Trace Event Format JSON document with a
/// device track and a host track (the Fig. 8 single-run view).
pub fn to_chrome_trace(timeline: &Timeline, process_name: &str) -> String {
    let mut tb = TraceBuilder::new(process_name);
    let dev = tb.add_track("GPU (simulated)");
    let host = tb.add_track("Host");
    debug_assert_eq!((dev, host), (TID_DEVICE, TID_HOST));
    tb.add_timeline(dev, host, timeline);
    tb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Timeline;

    fn sample() -> Timeline {
        let mut t = Timeline::new();
        t.push(EventKind::LaunchOverhead, 0.0, 3.0);
        t.push(
            EventKind::Kernel("iteration_fused_kernel".into()),
            3.0,
            10.0,
        );
        t.push(EventKind::MemcpyDtoH, 13.0, 8.0);
        t.push(EventKind::HostSync, 21.0, 10.0);
        t.push(EventKind::HostCompute("prefix \"sum\"".into()), 31.0, 2.0);
        t
    }

    #[test]
    fn emits_valid_structure() {
        let json = to_chrome_trace(&sample(), "RadixSelect run");
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with('}'));
        assert!(json.contains("\"name\":\"iteration_fused_kernel\""));
        assert!(json.contains("\"cat\":\"memcpy\""));
        assert!(json.contains("\"ts\":3.000"));
        assert!(json.contains("\"dur\":10.000"));
        // Quotes in names are escaped.
        assert!(json.contains("prefix \\\"sum\\\""));
        // Braces balance (cheap well-formedness check).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn host_and_device_tracks_are_separated() {
        let json = to_chrome_trace(&sample(), "x");
        // Kernel on device track, sync on host track.
        assert!(json.contains(&format!("\"tid\":{TID_DEVICE},\"cat\":\"kernel\"")));
        assert!(json.contains(&format!("\"tid\":{TID_HOST},\"cat\":\"host\"")));
    }

    #[test]
    fn empty_timeline_is_still_valid() {
        let json = to_chrome_trace(&Timeline::new(), "empty");
        assert!(json.contains("traceEvents"));
        assert!(json.matches('{').count() == json.matches('}').count());
    }

    #[test]
    fn builder_supports_many_tracks_and_args() {
        let mut tb = TraceBuilder::new("engine");
        let d0 = tb.add_track("device 0");
        let d1 = tb.add_track("device 1");
        let q = tb.add_track("queries");
        assert_eq!((d0, d1, q), (1, 2, 3));
        tb.add_timeline(d0, d0, &sample());
        tb.span(d1, "kernel", "k", 0.0, 5.0);
        tb.span_with_args(
            q,
            "queue",
            "wait q7",
            0.0,
            12.5,
            &[("query", "7".into()), ("k", "32".into())],
        );
        let json = tb.finish();
        assert!(json.contains("\"name\":\"device 1\""));
        assert!(json.contains("\"tid\":3,\"cat\":\"queue\""));
        assert!(json.contains("\"args\":{\"query\":\"7\",\"k\":\"32\"}"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        // Collapsed timeline: host events landed on the device track.
        assert!(json.contains("\"tid\":1,\"cat\":\"host\""));
    }
}
