//! A compute-sanitizer-style correctness layer for the simulator.
//!
//! NVIDIA's `compute-sanitizer` ships four tools; this module
//! reproduces the three that make sense for the simulator's execution
//! model, behind a zero-cost-when-off [`SanitizerMode`]:
//!
//! * **racecheck** — every device word carries a shadow record of the
//!   last access (launch id, block, access kinds). Two accesses to the
//!   same word from *different blocks of the same launch* are flagged
//!   when at least one is a non-atomic write, or when atomic and
//!   non-atomic accesses mix. Kernel boundaries are synchronisation
//!   points (a new launch id resets the record). Grid syncs are
//!   tracked per word through a launch-global *epoch* counter: every
//!   access is stamped with the current epoch, and an acquire-release
//!   grid sync
//!   ([`BlockCtx::mark_block_done`](crate::exec::BlockCtx::mark_block_done)
//!   or
//!   [`BlockCtx::atomic_add_sync`](crate::exec::BlockCtx::atomic_add_sync))
//!   bumps it — so the acquiring block's later accesses stop
//!   conflicting with accesses made *before* its acquire (that is
//!   exactly the "last block" pattern AIR Top-K's fused kernel relies
//!   on, where the final block's reads of the grid's histogram are
//!   ordered by the release-acquire done counter) while conflicts with
//!   accesses made *after* it are still caught.
//! * **initcheck** — a shadow valid bitmap per buffer. Allocation does
//!   *not* initialise (real `cudaMalloc` returns garbage even though
//!   the simulator zeroes for convenience); words become valid through
//!   `st`/`st_scatter`/atomic RMWs, host `set`/`fill`, and H2D copies.
//!   A kernel read of a never-written word is flagged — including the
//!   stale-scratch shape where code relies on data surviving a
//!   free/re-alloc cycle.
//! * **memcheck** — out-of-bounds kernel accesses are squashed and
//!   reported as structured findings (instead of aborting the host
//!   thread), and any access to a buffer whose bytes were returned to
//!   the device allocator ([`Gpu::free`](crate::Gpu::free) or a
//!   released scratch guard) is a use-after-free finding.
//! * **leakcheck** (opt-in, not part of [`SanitizerMode::full`]) —
//!   every allocation is tracked; a sweep
//!   ([`Gpu::run_leakcheck`](crate::Gpu::run_leakcheck), run
//!   automatically when the device drops) flags allocations whose last
//!   handle dropped without the bytes being freed, and allocator
//!   accounting that drifted from the tracked buffers.
//!
//! Findings are deduplicated by (analysis, buffer, kernel) with an
//! occurrence count, so a racy loop over a million words produces one
//! legible [`SanitizerFinding`], not a million. The sanitizer never
//! touches [`KernelStats`](crate::cost::KernelStats) or the cost model:
//! simulated timings are bit-identical with the sanitizer on or off.
//!
//! What it cannot catch (vs. the real tool): intra-block hazards
//! (a block closure is sequential host code, so there is no
//! `synccheck` analogue until intra-block interleaving exists), shared
//! -memory races (same reason), and device-side alignment faults (the
//! simulator has no pointer arithmetic).

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Which analyses are armed. The default is everything off, which
/// costs one `Option` branch per device access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SanitizerMode {
    /// Flag conflicting cross-block accesses within one launch.
    pub racecheck: bool,
    /// Flag kernel reads of never-written device words.
    pub initcheck: bool,
    /// Flag out-of-bounds and use-after-free accesses.
    pub memcheck: bool,
    /// Flag device allocations whose last handle dropped without the
    /// bytes ever being returned to the allocator (plus allocator
    /// accounting drift). Runs on demand
    /// ([`Gpu::run_leakcheck`](crate::Gpu::run_leakcheck)) and
    /// automatically when the device drops.
    pub leakcheck: bool,
    /// Contract enforcement for contracted launches
    /// ([`Gpu::launch_checked`](crate::Gpu::launch_checked)): static
    /// verification failures become findings instead of hard launch
    /// errors, and every observed access is dynamically checked against
    /// the declared [`KernelContract`](crate::contract::KernelContract)
    /// footprints (conformance), so contracts cannot rot.
    pub contracts: bool,
    /// Barrier-aware intra-block analysis: with
    /// [`BlockCtx::block_sync`](crate::exec::BlockCtx::block_sync)
    /// modelling `__syncthreads`, two non-atomic *writes* of the same
    /// word by the same block within one barrier interval are flagged
    /// (different threads of the block would race on real hardware),
    /// while barrier-separated pairs are exonerated. Also detects
    /// barrier divergence: blocks of one launch reaching mismatched
    /// barrier counts. Implies `racecheck` shadow state; arming this
    /// arms racecheck too.
    pub synccheck: bool,
}

impl SanitizerMode {
    /// Every analysis disabled.
    pub fn off() -> Self {
        SanitizerMode::default()
    }

    /// Every *access* analysis armed — what `topk-bench sanitize` and
    /// CI run. Leakcheck is deliberately not included: selection
    /// outputs are device-resident [`DeviceBuffer`](crate::DeviceBuffer)s
    /// whose lifetime belongs to the caller, so sweep harnesses that
    /// drop them without an explicit free would self-flag. Opt in with
    /// [`SanitizerMode::with_leakcheck`].
    pub fn full() -> Self {
        SanitizerMode {
            racecheck: true,
            initcheck: true,
            memcheck: true,
            ..Self::off()
        }
    }

    /// Builder: arm leakcheck on top of the current mode.
    pub fn with_leakcheck(mut self) -> Self {
        self.leakcheck = true;
        self
    }

    /// Builder: arm contract enforcement (static-violation findings +
    /// dynamic footprint conformance) on top of the current mode.
    pub fn with_contracts(mut self) -> Self {
        self.contracts = true;
        self
    }

    /// Builder: arm the barrier-aware synccheck analysis (implies
    /// racecheck, whose shadow records it extends).
    pub fn with_synccheck(mut self) -> Self {
        self.synccheck = true;
        self.racecheck = true;
        self
    }

    /// Only the leak analysis.
    pub fn leakcheck_only() -> Self {
        SanitizerMode {
            leakcheck: true,
            ..Self::off()
        }
    }

    /// Only the race analysis.
    pub fn racecheck_only() -> Self {
        SanitizerMode {
            racecheck: true,
            ..Self::off()
        }
    }

    /// Only the initialisation analysis.
    pub fn initcheck_only() -> Self {
        SanitizerMode {
            initcheck: true,
            ..Self::off()
        }
    }

    /// Only the memory analysis.
    pub fn memcheck_only() -> Self {
        SanitizerMode {
            memcheck: true,
            ..Self::off()
        }
    }

    /// True when at least one analysis is armed.
    pub fn enabled(&self) -> bool {
        self.racecheck
            || self.initcheck
            || self.memcheck
            || self.leakcheck
            || self.contracts
            || self.synccheck
    }
}

/// Which analysis produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Analysis {
    /// Conflicting cross-block access within one launch.
    Racecheck,
    /// Read of a never-written device word.
    Initcheck,
    /// Out-of-bounds access (squashed).
    MemcheckOob,
    /// Access to a buffer after its bytes were freed.
    MemcheckUseAfterFree,
    /// Allocation whose last handle dropped without a free, or
    /// allocator accounting that diverged from the tracked buffers.
    Leakcheck,
    /// Static contract verification rejected the launch shape (OOB
    /// footprint, overlapping exclusive writes, shape/shared-mem
    /// requirement). Found before the kernel ran.
    ContractViolation,
    /// An observed access fell outside the launch's declared contract
    /// footprints (or touched an undeclared buffer).
    ContractConformance,
    /// Barrier-aware intra-block hazard: same-word writes by one block
    /// not separated by [`BlockCtx::block_sync`](crate::exec::BlockCtx::block_sync),
    /// or blocks of one launch reaching mismatched barrier counts.
    Synccheck,
}

impl Analysis {
    /// Short tool-style label (`racecheck` / `initcheck` / `memcheck`
    /// / `leakcheck` / `contract` / `synccheck`).
    pub fn label(&self) -> &'static str {
        match self {
            Analysis::Racecheck => "racecheck",
            Analysis::Initcheck => "initcheck",
            Analysis::MemcheckOob | Analysis::MemcheckUseAfterFree => "memcheck",
            Analysis::Leakcheck => "leakcheck",
            Analysis::ContractViolation | Analysis::ContractConformance => "contract",
            Analysis::Synccheck => "synccheck",
        }
    }
}

/// How the flagged word was touched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Non-atomic load (`ld` / `ld_gather`).
    Read,
    /// Non-atomic store (`st` / `st_scatter`).
    Write,
    /// Atomic read-modify-write (`atomic_*`).
    Atomic,
}

impl AccessKind {
    /// Human label.
    pub fn label(&self) -> &'static str {
        match self {
            AccessKind::Read => "read",
            AccessKind::Write => "write",
            AccessKind::Atomic => "atomic",
        }
    }

    fn bit(self) -> u64 {
        match self {
            AccessKind::Read => 1,
            AccessKind::Write => 2,
            AccessKind::Atomic => 4,
        }
    }
}

fn kinds_label(mask: u64) -> String {
    let mut parts = Vec::new();
    if mask & 1 != 0 {
        parts.push("read");
    }
    if mask & 2 != 0 {
        parts.push("write");
    }
    if mask & 4 != 0 {
        parts.push("atomic");
    }
    parts.join("+")
}

/// One deduplicated sanitizer diagnostic: the first occurrence's full
/// attribution plus a count of how many accesses folded into it.
#[derive(Debug, Clone)]
pub struct SanitizerFinding {
    /// Which analysis fired.
    pub analysis: Analysis,
    /// Label of the buffer involved.
    pub buffer: String,
    /// Kernel that performed the access (`"<host>"` for host-side
    /// transfer checks).
    pub kernel: String,
    /// Sanitizer launch sequence number of the first occurrence
    /// (monotonic per device, 1-based; 0 = host-side).
    pub launch: u64,
    /// Block index of the first occurrence.
    pub block: usize,
    /// Element index of the first occurrence.
    pub index: usize,
    /// Access kind of the first occurrence.
    pub access: AccessKind,
    /// Total flagged accesses folded into this finding.
    pub count: u64,
    /// Analysis-specific explanation.
    pub detail: String,
}

impl fmt::Display for SanitizerFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} of {:?}[{}] in kernel {:?} (launch {}, block {}): {} ({} occurrence{})",
            self.analysis.label(),
            self.access.label(),
            self.buffer,
            self.index,
            self.kernel,
            self.launch,
            self.block,
            self.detail,
            self.count,
            if self.count == 1 { "" } else { "s" },
        )
    }
}

/// Per-analysis totals of flagged accesses (occurrences, not deduped
/// findings).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SanitizerCounts {
    /// Racecheck occurrences.
    pub racecheck: u64,
    /// Initcheck occurrences.
    pub initcheck: u64,
    /// Memcheck occurrences (out-of-bounds + use-after-free).
    pub memcheck: u64,
    /// Leakcheck occurrences (leaked allocations + accounting drift).
    pub leakcheck: u64,
    /// Contract occurrences (static violations + dynamic conformance).
    pub contract: u64,
    /// Synccheck occurrences (intra-block write hazards + barrier
    /// divergence).
    pub synccheck: u64,
}

impl SanitizerCounts {
    /// Sum over all analyses.
    pub fn total(&self) -> u64 {
        self.racecheck
            + self.initcheck
            + self.memcheck
            + self.leakcheck
            + self.contract
            + self.synccheck
    }

    /// Element-wise saturating difference (for drain-relative deltas on
    /// persistent devices).
    pub fn delta_since(&self, earlier: &SanitizerCounts) -> SanitizerCounts {
        SanitizerCounts {
            racecheck: self.racecheck.saturating_sub(earlier.racecheck),
            initcheck: self.initcheck.saturating_sub(earlier.initcheck),
            memcheck: self.memcheck.saturating_sub(earlier.memcheck),
            leakcheck: self.leakcheck.saturating_sub(earlier.leakcheck),
            contract: self.contract.saturating_sub(earlier.contract),
            synccheck: self.synccheck.saturating_sub(earlier.synccheck),
        }
    }

    /// Element-wise sum.
    pub fn add(&mut self, other: &SanitizerCounts) {
        self.racecheck += other.racecheck;
        self.initcheck += other.initcheck;
        self.memcheck += other.memcheck;
        self.leakcheck += other.leakcheck;
        self.contract += other.contract;
        self.synccheck += other.synccheck;
    }
}

/// Everything the sanitizer observed on one device.
#[derive(Debug, Clone)]
pub struct SanitizerReport {
    /// Analyses that were armed.
    pub mode: SanitizerMode,
    /// Occurrence totals per analysis.
    pub counts: SanitizerCounts,
    /// Kernel launches the sanitizer observed.
    pub launches: u64,
    /// Deduplicated findings (capped at [`MAX_FINDINGS`]; see
    /// [`SanitizerReport::dropped`]).
    pub findings: Vec<SanitizerFinding>,
    /// Distinct findings discarded after the cap was reached (their
    /// occurrences still count toward [`SanitizerReport::counts`]).
    pub dropped: u64,
}

impl SanitizerReport {
    /// True when no analysis flagged anything.
    pub fn is_clean(&self) -> bool {
        self.counts.total() == 0
    }
}

/// Cap on stored deduplicated findings per device; occurrence counters
/// keep running past it.
pub const MAX_FINDINGS: usize = 512;

#[derive(Default)]
struct FindingStore {
    by_key: HashMap<(Analysis, String, String), usize>,
    findings: Vec<SanitizerFinding>,
    dropped: u64,
}

/// One tracked allocation for leakcheck: the registry's own handle on
/// the buffer's shadow. While any [`DeviceBuffer`](crate::DeviceBuffer)
/// clone (or [`ShadowToken`]) is alive, the shadow's strong count
/// exceeds the registry's single reference — so a count of exactly one
/// on an unfreed record means the last handle dropped without the bytes
/// ever being returned to the allocator.
struct AllocRecord {
    label: String,
    bytes: usize,
    shadow: std::sync::Arc<BufferShadow>,
}

#[derive(Default)]
struct AllocRegistry {
    records: Vec<AllocRecord>,
    /// Bytes already reported as leaked: still outstanding in the
    /// allocator, but accounted for so the drift check stays quiet and
    /// repeat sweeps stay idempotent.
    leaked_bytes: usize,
    drift_reported: bool,
}

/// Per-device sanitizer state: the armed mode, the launch sequence,
/// occurrence counters, and the deduplicated finding store. Owned by
/// [`Gpu`](crate::Gpu); shared with in-flight launches by reference.
pub struct Sanitizer {
    mode: SanitizerMode,
    launch_seq: AtomicU64,
    race_count: AtomicU64,
    init_count: AtomicU64,
    mem_count: AtomicU64,
    leak_count: AtomicU64,
    contract_count: AtomicU64,
    sync_count: AtomicU64,
    store: Mutex<FindingStore>,
    allocs: Mutex<AllocRegistry>,
}

impl fmt::Debug for Sanitizer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sanitizer")
            .field("mode", &self.mode)
            .field("launches", &self.launch_seq.load(Ordering::Relaxed))
            .field("counts", &self.counts())
            .finish()
    }
}

impl Sanitizer {
    /// New sanitizer with the given analyses armed.
    pub fn new(mode: SanitizerMode) -> Self {
        Sanitizer {
            mode,
            launch_seq: AtomicU64::new(0),
            race_count: AtomicU64::new(0),
            init_count: AtomicU64::new(0),
            mem_count: AtomicU64::new(0),
            leak_count: AtomicU64::new(0),
            contract_count: AtomicU64::new(0),
            sync_count: AtomicU64::new(0),
            store: Mutex::new(FindingStore::default()),
            allocs: Mutex::new(AllocRegistry::default()),
        }
    }

    /// The armed analyses.
    pub fn mode(&self) -> SanitizerMode {
        self.mode
    }

    /// Occurrence totals so far.
    pub fn counts(&self) -> SanitizerCounts {
        SanitizerCounts {
            racecheck: self.race_count.load(Ordering::Relaxed),
            initcheck: self.init_count.load(Ordering::Relaxed),
            memcheck: self.mem_count.load(Ordering::Relaxed),
            leakcheck: self.leak_count.load(Ordering::Relaxed),
            contract: self.contract_count.load(Ordering::Relaxed),
            synccheck: self.sync_count.load(Ordering::Relaxed),
        }
    }

    /// Snapshot the full report.
    pub fn report(&self) -> SanitizerReport {
        let store = self.store.lock().expect("sanitizer store poisoned");
        SanitizerReport {
            mode: self.mode,
            counts: self.counts(),
            launches: self.launch_seq.load(Ordering::Relaxed),
            findings: store.findings.clone(),
            dropped: store.dropped,
        }
    }

    /// Build the shadow for a fresh allocation of `len` elements.
    pub(crate) fn shadow_for(&self, len: usize) -> BufferShadow {
        BufferShadow::new(len, self.mode)
    }

    pub(crate) fn next_launch(&self) -> u64 {
        self.launch_seq.fetch_add(1, Ordering::Relaxed) + 1
    }

    fn record(&self, finding: SanitizerFinding) {
        match finding.analysis {
            Analysis::Racecheck => &self.race_count,
            Analysis::Initcheck => &self.init_count,
            Analysis::MemcheckOob | Analysis::MemcheckUseAfterFree => &self.mem_count,
            Analysis::Leakcheck => &self.leak_count,
            Analysis::ContractViolation | Analysis::ContractConformance => &self.contract_count,
            Analysis::Synccheck => &self.sync_count,
        }
        .fetch_add(1, Ordering::Relaxed);

        let mut store = self.store.lock().expect("sanitizer store poisoned");
        let key = (
            finding.analysis,
            finding.buffer.clone(),
            finding.kernel.clone(),
        );
        if let Some(&i) = store.by_key.get(&key) {
            store.findings[i].count += 1;
            return;
        }
        if store.findings.len() >= MAX_FINDINGS {
            store.dropped += 1;
            return;
        }
        let idx = store.findings.len();
        store.findings.push(finding);
        store.by_key.insert(key, idx);
    }

    /// Record a host-side (non-kernel) memcheck finding, e.g. a D2H
    /// readback of a freed buffer.
    pub(crate) fn record_host_uaf(&self, buffer: &str, what: &str) {
        if !self.mode.memcheck {
            return;
        }
        self.record(SanitizerFinding {
            analysis: Analysis::MemcheckUseAfterFree,
            buffer: buffer.to_string(),
            kernel: "<host>".to_string(),
            launch: 0,
            block: 0,
            index: 0,
            access: AccessKind::Read,
            count: 1,
            detail: format!("{what} of a buffer whose bytes were returned to the allocator"),
        });
    }

    /// Record a static contract-verification failure for a launch that
    /// is about to run (launch 0 = pre-launch, like host-side checks).
    /// Only called when [`SanitizerMode::contracts`] is armed — without
    /// a sanitizer the violation is a hard
    /// [`SimError::ContractViolation`](crate::SimError::ContractViolation)
    /// instead.
    pub(crate) fn record_static_violation(&self, kernel: &str, buffer: &str, detail: String) {
        self.record(SanitizerFinding {
            analysis: Analysis::ContractViolation,
            buffer: buffer.to_string(),
            kernel: kernel.to_string(),
            launch: 0,
            block: 0,
            index: 0,
            access: AccessKind::Write,
            count: 1,
            detail,
        });
    }

    /// Track a fresh allocation for leakcheck. No-op unless leakcheck
    /// is armed.
    pub(crate) fn register_alloc(
        &self,
        label: &str,
        bytes: usize,
        shadow: std::sync::Arc<BufferShadow>,
    ) {
        if !self.mode.leakcheck {
            return;
        }
        self.allocs
            .lock()
            .expect("alloc registry poisoned")
            .records
            .push(AllocRecord {
                label: label.to_string(),
                bytes,
                shadow,
            });
    }

    /// Sweep the allocation registry against the allocator's current
    /// accounting (`mem_allocated`). Two finding shapes:
    ///
    /// * **leaked allocation** — an unfreed record whose shadow the
    ///   registry is the last owner of: every buffer handle and token
    ///   dropped, but the bytes were never returned via
    ///   [`Gpu::free`](crate::Gpu::free) / `free_bytes`.
    /// * **accounting drift** — `mem_allocated` disagrees with the sum
    ///   of live tracked buffers (+ already-reported leaks): someone
    ///   released bytes without marking the shadow freed, or allocated
    ///   outside the tracked path.
    ///
    /// Buffers still held by live handles are *not* leaks (device
    /// teardown reclaims them, as a real driver context does). The
    /// sweep is idempotent: flagged records are retired so a later
    /// drop-time sweep reports nothing new.
    pub(crate) fn run_leakcheck(&self, mem_allocated: usize) {
        if !self.mode.leakcheck {
            return;
        }
        let mut reg = self.allocs.lock().expect("alloc registry poisoned");
        reg.records.retain(|r| !r.shadow.is_freed());
        let mut live_bytes = 0usize;
        let mut newly_leaked = 0usize;
        let mut kept = Vec::with_capacity(reg.records.len());
        for r in reg.records.drain(..) {
            if std::sync::Arc::strong_count(&r.shadow) == 1 {
                newly_leaked += r.bytes;
                self.record(SanitizerFinding {
                    analysis: Analysis::Leakcheck,
                    buffer: r.label.clone(),
                    kernel: "<leakcheck>".to_string(),
                    launch: 0,
                    block: 0,
                    index: 0,
                    access: AccessKind::Write,
                    count: 1,
                    detail: format!(
                        "{} bytes allocated but never freed; last handle dropped",
                        r.bytes
                    ),
                });
            } else {
                live_bytes += r.bytes;
                kept.push(r);
            }
        }
        reg.records = kept;
        reg.leaked_bytes += newly_leaked;
        let tracked = live_bytes + reg.leaked_bytes;
        if mem_allocated != tracked && !reg.drift_reported {
            reg.drift_reported = true;
            self.record(SanitizerFinding {
                analysis: Analysis::Leakcheck,
                buffer: "<allocator>".to_string(),
                kernel: "<leakcheck>".to_string(),
                launch: 0,
                block: 0,
                index: 0,
                access: AccessKind::Write,
                count: 1,
                detail: format!(
                    "allocator reports {mem_allocated} bytes outstanding but tracked \
                     buffers account for {tracked} (bytes released without marking the \
                     shadow freed, or allocated outside the tracked path)"
                ),
            });
        }
    }
}

// ---- per-buffer shadow state ------------------------------------------

// Race-shadow word layout (one AtomicU64 per device word):
//   bits  0..24  launch id (truncated; 0 = never accessed)
//   bits 24..40  grid-sync epoch of the latest access (saturating)
//   bits 40..56  block index + 1 (0 = none, BLOCK_MULTI = several blocks)
//   bits 56..59  access kinds seen this launch (read=1, write=2, atomic=4)
//   bits 59..64  barrier epoch of the latest access (saturating; the
//                block's `block_sync()` count at access time)
//
// The grid-sync epoch field is what lets `atomic_add_sync` /
// `mark_block_done` suppress only the conflicts they actually order:
// every access is stamped with the launch's global epoch counter, an
// acquire bumps it, and a conflict is suppressed only when the earlier
// access's epoch predates the accessor's acquire. Launch ids are
// truncated to 24 bits (aliasing needs 16.7M launches touching the same
// word); epochs saturate at 65535 acquires per launch (beyond any real
// grid).
//
// The barrier-epoch field drives synccheck's intra-block analysis: two
// non-atomic writes of the same word by the *same* block are a hazard
// on real hardware (different threads of the block) unless a
// `__syncthreads` barrier separates them, so equal barrier epochs are a
// finding and differing ones are exonerated. Barrier epochs saturate at
// 31; a saturated pair is indistinguishable and therefore suppressed
// (never a false positive).
const LAUNCH_MASK: u64 = 0xFF_FFFF;
const EPOCH_SHIFT: u32 = 24;
const EPOCH_MASK: u64 = 0xFFFF;
const BLOCK_SHIFT: u32 = 40;
const KIND_SHIFT: u32 = 56;
const BLOCK_MASK: u64 = 0xFFFF;
const BLOCK_MULTI: u64 = BLOCK_MASK;
const KIND_MASK: u64 = 0x7;
const BSYNC_SHIFT: u32 = 59;
const BSYNC_MASK: u64 = 0x1F;
/// Saturation value for the stored barrier epoch.
const BSYNC_SAT: u64 = BSYNC_MASK;

fn pack(launch: u64, epoch: u64, block_plus1: u64, kinds: u64, bsync: u64) -> u64 {
    (launch & LAUNCH_MASK)
        | (epoch.min(EPOCH_MASK) << EPOCH_SHIFT)
        | (block_plus1 << BLOCK_SHIFT)
        | ((kinds & KIND_MASK) << KIND_SHIFT)
        | (bsync.min(BSYNC_SAT) << BSYNC_SHIFT)
}

/// What [`BufferShadow::race_check`] found.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum RaceHit {
    /// Cross-block conflict with an earlier access (kinds mask,
    /// block-plus-one of the earlier access).
    CrossBlock { prev_kinds: u64, prev_block: u64 },
    /// Same-block write-write pair within one barrier interval
    /// (synccheck).
    IntraBlockWrite,
}

/// Shadow state attached to a [`DeviceBuffer`](crate::DeviceBuffer)
/// allocated while a sanitizer is armed.
pub struct BufferShadow {
    /// One bit per element: has this word ever been written?
    /// Empty when initcheck is off.
    valid: Box<[AtomicU64]>,
    /// One record per element for racecheck. Empty when racecheck is
    /// off.
    race: Box<[AtomicU64]>,
    /// Nonzero once the buffer's bytes were returned to the allocator.
    freed: AtomicU64,
}

impl fmt::Debug for BufferShadow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BufferShadow")
            .field("tracks_valid", &!self.valid.is_empty())
            .field("tracks_races", &!self.race.is_empty())
            .field("freed", &self.is_freed())
            .finish()
    }
}

impl BufferShadow {
    fn new(len: usize, mode: SanitizerMode) -> Self {
        let valid: Box<[AtomicU64]> = if mode.initcheck {
            (0..len.div_ceil(64)).map(|_| AtomicU64::new(0)).collect()
        } else {
            Box::new([])
        };
        let race: Box<[AtomicU64]> = if mode.racecheck || mode.synccheck {
            (0..len).map(|_| AtomicU64::new(0)).collect()
        } else {
            Box::new([])
        };
        BufferShadow {
            valid,
            race,
            freed: AtomicU64::new(0),
        }
    }

    /// Mark one word as initialised.
    pub(crate) fn mark_valid(&self, idx: usize) {
        if let Some(cell) = self.valid.get(idx / 64) {
            cell.fetch_or(1 << (idx % 64), Ordering::Relaxed);
        }
    }

    /// Mark every word initialised (`fill`, full H2D copies).
    pub(crate) fn mark_valid_all(&self) {
        for cell in self.valid.iter() {
            cell.store(u64::MAX, Ordering::Relaxed);
        }
    }

    fn is_valid(&self, idx: usize) -> bool {
        match self.valid.get(idx / 64) {
            Some(cell) => cell.load(Ordering::Relaxed) & (1 << (idx % 64)) != 0,
            // initcheck off: everything counts as valid.
            None => true,
        }
    }

    /// Record that the buffer's bytes were returned to the allocator.
    pub(crate) fn mark_freed(&self) {
        self.freed.store(1, Ordering::Relaxed);
    }

    /// True once [`BufferShadow::mark_freed`] ran.
    pub(crate) fn is_freed(&self) -> bool {
        self.freed.load(Ordering::Relaxed) != 0
    }

    /// Update the race record for `idx` and return the hazard, if this
    /// access conflicts with an earlier one in the same launch.
    ///
    /// `now_epoch` is the launch's global epoch counter at access time;
    /// `sync_epoch` is the epoch at which the accessing *block* last
    /// performed an acquire grid sync (0 = never). An earlier access
    /// whose recorded epoch predates `sync_epoch` is ordered-before the
    /// acquire and cannot conflict — a per-word refinement of the old
    /// "synced block is exempt forever" rule, so a synced block's
    /// conflicts with accesses made *after* its acquire are still
    /// caught. Treating every smaller-epoch access as ordered is an
    /// over-approximation (suppression, never a false positive) for
    /// blocks that raced with the acquire itself.
    ///
    /// `bar_epoch` is the accessing block's barrier count
    /// ([`BlockCtx::block_sync`](crate::exec::BlockCtx::block_sync)).
    /// With `synccheck` armed, a same-block non-atomic write over an
    /// earlier write at the *same* barrier epoch is an intra-block
    /// hazard (distinct threads of the block on real hardware, with no
    /// `__syncthreads` between them); barrier-separated pairs are
    /// exonerated, as are saturated epochs (≥ 31, indistinguishable).
    #[allow(clippy::too_many_arguments)]
    fn race_check(
        &self,
        idx: usize,
        launch: u64,
        block: usize,
        kind: AccessKind,
        now_epoch: u64,
        sync_epoch: u64,
        bar_epoch: u64,
        racecheck: bool,
        synccheck: bool,
    ) -> Option<RaceHit> {
        let cell = self.race.get(idx)?;
        let kbit = kind.bit();
        let launch24 = launch & LAUNCH_MASK;
        let block_plus1 = (block as u64 + 1).min(BLOCK_MULTI - 1);
        let bar_sat = bar_epoch.min(BSYNC_SAT);
        loop {
            let prev = cell.load(Ordering::Relaxed);
            let prev_launch = prev & LAUNCH_MASK;
            let prev_epoch = (prev >> EPOCH_SHIFT) & EPOCH_MASK;
            let prev_block = (prev >> BLOCK_SHIFT) & BLOCK_MASK;
            let prev_kinds = (prev >> KIND_SHIFT) & KIND_MASK;
            let prev_bsync = (prev >> BSYNC_SHIFT) & BSYNC_MASK;

            let (next, conflict) = if prev_launch != launch24 || prev_block == 0 {
                // First access of this launch (or first ever).
                (pack(launch24, now_epoch, block_plus1, kbit, bar_sat), None)
            } else if prev_block == block_plus1 {
                // Same block touching its own word again. Program order
                // makes this safe in the sequential closure model —
                // except for the write-write shape synccheck looks for:
                // two stores of one word by one block model distinct
                // threads, racy unless a barrier separates them.
                let intra = synccheck
                    && kind == AccessKind::Write
                    && prev_kinds & 2 != 0
                    && prev_bsync == bar_sat
                    && bar_sat < BSYNC_SAT;
                (
                    pack(
                        launch24,
                        now_epoch.max(prev_epoch),
                        block_plus1,
                        prev_kinds | kbit,
                        bar_sat,
                    ),
                    intra.then_some(RaceHit::IntraBlockWrite),
                )
            } else {
                // Cross-block access within one launch. The stored
                // epoch is the max over contributors, so a merged
                // multi-block record stays conservative: suppression
                // requires *every* contributor to predate the acquire.
                let hazard = racecheck
                    && match kind {
                        AccessKind::Read => prev_kinds & (2 | 4) != 0,
                        AccessKind::Write => prev_kinds != 0,
                        AccessKind::Atomic => prev_kinds & (1 | 2) != 0,
                    };
                let ordered = sync_epoch != 0 && prev_epoch < sync_epoch.min(EPOCH_MASK);
                (
                    pack(
                        launch24,
                        now_epoch.max(prev_epoch),
                        BLOCK_MULTI,
                        prev_kinds | kbit,
                        bar_sat,
                    ),
                    (hazard && !ordered).then_some(RaceHit::CrossBlock {
                        prev_kinds,
                        prev_block,
                    }),
                )
            };
            if cell
                .compare_exchange_weak(prev, next, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                return conflict;
            }
        }
    }
}

/// A cheap, clonable handle onto one buffer's shadow, letting code
/// that no longer holds the typed buffer (e.g. a scratch guard whose
/// buffers moved into kernel closures) mark it freed for memcheck.
#[derive(Debug, Clone)]
pub struct ShadowToken {
    pub(crate) shadow: std::sync::Arc<BufferShadow>,
}

impl ShadowToken {
    /// Record that the buffer's bytes were returned to the allocator;
    /// later accesses become use-after-free findings.
    pub fn mark_freed(&self) {
        self.shadow.mark_freed();
    }
}

// ---- per-launch scope --------------------------------------------------

/// Sanitizer context of one kernel launch, shared by every block.
pub struct LaunchScope<'g> {
    san: &'g Sanitizer,
    launch: u64,
    kernel: &'g str,
    /// Global grid-sync epoch for this launch: starts at 1, bumped by
    /// every acquire ([`BlockCtx::atomic_add_sync`](crate::exec::BlockCtx::atomic_add_sync),
    /// last-block [`BlockCtx::mark_block_done`](crate::exec::BlockCtx::mark_block_done)).
    /// Accesses are stamped with it so racecheck can order them against
    /// acquires per word instead of exempting whole blocks.
    epoch: AtomicU64,
    /// The launch's contract plus its grid size, when launched through
    /// [`Gpu::launch_checked`](crate::Gpu::launch_checked) — drives the
    /// dynamic conformance analysis under [`SanitizerMode::contracts`].
    contract: Option<(&'g crate::contract::KernelContract, usize)>,
    /// Min/max final barrier count over completed blocks, for the
    /// barrier-divergence check (`u64::MAX` min = no block reported).
    bar_lo: AtomicU64,
    bar_hi: AtomicU64,
}

impl<'g> LaunchScope<'g> {
    pub(crate) fn new(
        san: &'g Sanitizer,
        kernel: &'g str,
        contract: Option<(&'g crate::contract::KernelContract, usize)>,
    ) -> Self {
        LaunchScope {
            san,
            launch: san.next_launch(),
            kernel,
            epoch: AtomicU64::new(1),
            contract,
            bar_lo: AtomicU64::new(u64::MAX),
            bar_hi: AtomicU64::new(0),
        }
    }

    /// Record one completed block's final barrier count (called by the
    /// block pool after the block's closure returns).
    pub(crate) fn note_block_barriers(&self, count: u64) {
        if !self.san.mode.synccheck {
            return;
        }
        self.bar_lo.fetch_min(count, Ordering::Relaxed);
        self.bar_hi.fetch_max(count, Ordering::Relaxed);
    }

    /// After every block completed: flag barrier divergence (blocks of
    /// one launch reaching mismatched barrier counts — on real hardware
    /// a grid whose `__syncthreads` counts differ per block has
    /// divergent control flow around a barrier, a hang or UB). One
    /// deduplicated finding per (kernel, launch-name) pair.
    pub(crate) fn check_barrier_divergence(&self) {
        if !self.san.mode.synccheck {
            return;
        }
        let lo = self.bar_lo.load(Ordering::Relaxed);
        let hi = self.bar_hi.load(Ordering::Relaxed);
        if lo == u64::MAX || lo == hi {
            return;
        }
        self.san.record(SanitizerFinding {
            analysis: Analysis::Synccheck,
            buffer: "<barrier>".to_string(),
            kernel: self.kernel.to_string(),
            launch: self.launch,
            block: 0,
            index: 0,
            access: AccessKind::Atomic,
            count: 1,
            detail: format!(
                "barrier divergence: blocks reached between {lo} and {hi} block_sync() \
                 barriers in one launch"
            ),
        });
    }

    /// Bump the global epoch for an acquire grid sync and return the
    /// acquirer's new sync epoch.
    pub(crate) fn advance_epoch(&self) -> u64 {
        self.epoch.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Validate one device-memory access. Returns `false` when the
    /// access must be squashed (out of bounds under memcheck). When
    /// memcheck is off, out-of-bounds panics with a labeled
    /// [`SimError::OutOfBounds`](crate::SimError::OutOfBounds) payload
    /// that the block pool converts into a launch error.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn check_access(
        &self,
        shadow: Option<&BufferShadow>,
        label: &str,
        len: usize,
        idx: usize,
        kind: AccessKind,
        block: usize,
        sync_epoch: u64,
        bar_epoch: u64,
    ) -> bool {
        if idx >= len {
            if self.san.mode.memcheck {
                self.san.record(SanitizerFinding {
                    analysis: Analysis::MemcheckOob,
                    buffer: label.to_string(),
                    kernel: self.kernel.to_string(),
                    launch: self.launch,
                    block,
                    index: idx,
                    access: kind,
                    count: 1,
                    detail: format!("index {idx} outside length {len}; access squashed"),
                });
                return false;
            }
            std::panic::panic_any(crate::SimError::OutOfBounds {
                buffer: label.to_string(),
                idx,
                len,
            });
        }
        if self.san.mode.contracts {
            if let Some((contract, grid)) = self.contract {
                if let Some(detail) = contract.conformance_violation(label, idx, kind, block, grid)
                {
                    self.san.record(SanitizerFinding {
                        analysis: Analysis::ContractConformance,
                        buffer: label.to_string(),
                        kernel: self.kernel.to_string(),
                        launch: self.launch,
                        block,
                        index: idx,
                        access: kind,
                        count: 1,
                        detail,
                    });
                }
            }
        }
        let Some(sh) = shadow else {
            // Buffer allocated before the sanitizer was armed (or
            // constructed host-side): only bounds are checkable.
            return true;
        };
        if self.san.mode.memcheck && sh.is_freed() {
            self.san.record(SanitizerFinding {
                analysis: Analysis::MemcheckUseAfterFree,
                buffer: label.to_string(),
                kernel: self.kernel.to_string(),
                launch: self.launch,
                block,
                index: idx,
                access: kind,
                count: 1,
                detail: "buffer bytes were returned to the allocator before this access".into(),
            });
        }
        if self.san.mode.initcheck {
            match kind {
                AccessKind::Read => {
                    if !sh.is_valid(idx) {
                        self.san.record(SanitizerFinding {
                            analysis: Analysis::Initcheck,
                            buffer: label.to_string(),
                            kernel: self.kernel.to_string(),
                            launch: self.launch,
                            block,
                            index: idx,
                            access: kind,
                            count: 1,
                            detail: "read of a never-written device word".into(),
                        });
                    }
                }
                AccessKind::Write => sh.mark_valid(idx),
                AccessKind::Atomic => {
                    if !sh.is_valid(idx) {
                        self.san.record(SanitizerFinding {
                            analysis: Analysis::Initcheck,
                            buffer: label.to_string(),
                            kernel: self.kernel.to_string(),
                            launch: self.launch,
                            block,
                            index: idx,
                            access: kind,
                            count: 1,
                            detail: "atomic read-modify-write of a never-written device word"
                                .into(),
                        });
                    }
                    sh.mark_valid(idx);
                }
            }
        }
        if self.san.mode.racecheck || self.san.mode.synccheck {
            let now = self.epoch.load(Ordering::Relaxed);
            match sh.race_check(
                idx,
                self.launch,
                block,
                kind,
                now,
                sync_epoch,
                bar_epoch,
                self.san.mode.racecheck,
                self.san.mode.synccheck,
            ) {
                Some(RaceHit::CrossBlock {
                    prev_kinds,
                    prev_block,
                }) => {
                    let who = if prev_block == BLOCK_MULTI {
                        "several blocks".to_string()
                    } else {
                        format!("block {}", prev_block - 1)
                    };
                    self.san.record(SanitizerFinding {
                        analysis: Analysis::Racecheck,
                        buffer: label.to_string(),
                        kernel: self.kernel.to_string(),
                        launch: self.launch,
                        block,
                        index: idx,
                        access: kind,
                        count: 1,
                        detail: format!(
                            "{} conflicts with unsynchronised {} by {} in the same launch",
                            kind.label(),
                            kinds_label(prev_kinds),
                            who
                        ),
                    });
                }
                Some(RaceHit::IntraBlockWrite) => {
                    self.san.record(SanitizerFinding {
                        analysis: Analysis::Synccheck,
                        buffer: label.to_string(),
                        kernel: self.kernel.to_string(),
                        launch: self.launch,
                        block,
                        index: idx,
                        access: kind,
                        count: 1,
                        detail: format!(
                            "same-word writes by block {block} within one barrier \
                             interval (no block_sync() between them): distinct threads \
                             of the block would race on real hardware"
                        ),
                    });
                }
                None => {}
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_flags() {
        assert!(!SanitizerMode::off().enabled());
        assert!(SanitizerMode::full().enabled());
        assert!(SanitizerMode::racecheck_only().racecheck);
        assert!(!SanitizerMode::racecheck_only().memcheck);
        assert!(!SanitizerMode::full().leakcheck, "leakcheck is opt-in");
        assert!(SanitizerMode::full().with_leakcheck().leakcheck);
        assert!(SanitizerMode::leakcheck_only().enabled());
        assert!(!SanitizerMode::leakcheck_only().racecheck);
        assert!(!SanitizerMode::full().contracts, "contracts are opt-in");
        assert!(SanitizerMode::full().with_contracts().contracts);
        assert!(!SanitizerMode::full().synccheck, "synccheck is opt-in");
        let sc = SanitizerMode::off().with_synccheck();
        assert!(sc.synccheck && sc.racecheck, "synccheck implies racecheck");
        assert!(sc.enabled());
    }

    #[test]
    fn findings_dedup_by_buffer_and_kernel() {
        let san = Sanitizer::new(SanitizerMode::full());
        for i in 0..5 {
            san.record(SanitizerFinding {
                analysis: Analysis::Initcheck,
                buffer: "b".into(),
                kernel: "k".into(),
                launch: 1,
                block: 0,
                index: i,
                access: AccessKind::Read,
                count: 1,
                detail: "d".into(),
            });
        }
        let r = san.report();
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].count, 5);
        assert_eq!(r.findings[0].index, 0, "first occurrence wins");
        assert_eq!(r.counts.initcheck, 5);
        assert!(!r.is_clean());
    }

    /// Old-signature shim: racecheck only, no barriers.
    fn rc(
        sh: &BufferShadow,
        idx: usize,
        launch: u64,
        block: usize,
        kind: AccessKind,
        now: u64,
        sync: u64,
    ) -> Option<RaceHit> {
        sh.race_check(idx, launch, block, kind, now, sync, 0, true, false)
    }

    #[test]
    fn race_shadow_flags_cross_block_write_write() {
        let sh = BufferShadow::new(4, SanitizerMode::full());
        assert!(rc(&sh, 0, 1, 0, AccessKind::Write, 1, 0).is_none());
        let c = rc(&sh, 0, 1, 1, AccessKind::Write, 1, 0);
        assert_eq!(
            c,
            Some(RaceHit::CrossBlock {
                prev_kinds: 2,
                prev_block: 1
            }),
            "write by block 0 conflicts"
        );
        // A new launch resets the record.
        assert!(rc(&sh, 0, 2, 5, AccessKind::Write, 1, 0).is_none());
    }

    #[test]
    fn race_shadow_allows_read_read_and_atomic_atomic() {
        let sh = BufferShadow::new(1, SanitizerMode::full());
        assert!(rc(&sh, 0, 1, 0, AccessKind::Read, 1, 0).is_none());
        assert!(rc(&sh, 0, 1, 1, AccessKind::Read, 1, 0).is_none());
        // ... but a later write conflicts with the multi-block reads.
        let c = rc(&sh, 0, 1, 2, AccessKind::Write, 1, 0).unwrap();
        assert!(matches!(c, RaceHit::CrossBlock { prev_block, .. } if prev_block == BLOCK_MULTI));

        let sh = BufferShadow::new(1, SanitizerMode::full());
        assert!(rc(&sh, 0, 3, 0, AccessKind::Atomic, 1, 0).is_none());
        assert!(rc(&sh, 0, 3, 1, AccessKind::Atomic, 1, 0).is_none());
        // Mixed atomic / non-atomic flags.
        assert!(rc(&sh, 0, 3, 2, AccessKind::Read, 1, 0).is_some());
    }

    #[test]
    fn race_shadow_same_block_is_silent() {
        let sh = BufferShadow::new(1, SanitizerMode::full());
        assert!(rc(&sh, 0, 1, 7, AccessKind::Write, 1, 0).is_none());
        assert!(rc(&sh, 0, 1, 7, AccessKind::Read, 1, 0).is_none());
        assert!(rc(&sh, 0, 1, 7, AccessKind::Atomic, 1, 0).is_none());
    }

    #[test]
    fn sync_epoch_orders_only_earlier_accesses() {
        let sh = BufferShadow::new(2, SanitizerMode::full());
        // Block 0 writes word 0 at epoch 1, then block 1 acquires
        // (sync epoch 2): its read of word 0 is ordered, not a race.
        assert!(rc(&sh, 0, 1, 0, AccessKind::Write, 1, 0).is_none());
        assert!(rc(&sh, 0, 1, 1, AccessKind::Read, 2, 2).is_none());

        // But a write made AT or AFTER the acquire epoch still
        // conflicts with the acquirer: block 2 writes word 1 at epoch
        // 2, and block 1 (sync epoch 2) reads it — unordered.
        assert!(rc(&sh, 1, 1, 2, AccessKind::Write, 2, 0).is_none());
        assert!(rc(&sh, 1, 1, 1, AccessKind::Read, 2, 2).is_some());
    }

    #[test]
    fn sync_epoch_no_longer_exempts_whole_block() {
        // The old rule exempted a synced block from racecheck forever.
        // Now: block 1 acquires at epoch 2, then block 0 writes the
        // word at epoch 2 (after the acquire), then block 1 reads it —
        // a real unordered conflict that must be flagged.
        let sh = BufferShadow::new(1, SanitizerMode::full());
        assert!(rc(&sh, 0, 1, 0, AccessKind::Write, 2, 0).is_none());
        assert!(rc(&sh, 0, 1, 1, AccessKind::Read, 2, 2).is_some());
    }

    #[test]
    fn merged_multi_block_record_keeps_latest_epoch() {
        let sh = BufferShadow::new(1, SanitizerMode::full());
        // Reads at epochs 1 and 3 merge; an acquirer at sync epoch 2
        // must still conflict (one contributor postdates its acquire).
        assert!(rc(&sh, 0, 1, 0, AccessKind::Read, 1, 0).is_none());
        assert!(rc(&sh, 0, 1, 1, AccessKind::Read, 3, 0).is_none());
        assert!(rc(&sh, 0, 1, 2, AccessKind::Write, 3, 2).is_some());
        // ... while an acquirer past every contributor is ordered.
        let sh = BufferShadow::new(1, SanitizerMode::full());
        assert!(rc(&sh, 0, 1, 0, AccessKind::Read, 1, 0).is_none());
        assert!(rc(&sh, 0, 1, 1, AccessKind::Read, 2, 0).is_none());
        assert!(rc(&sh, 0, 1, 2, AccessKind::Write, 3, 3).is_none());
    }

    /// Synccheck shim: racecheck + synccheck, explicit barrier epoch.
    fn sc(sh: &BufferShadow, block: usize, kind: AccessKind, bar: u64) -> Option<RaceHit> {
        sh.race_check(0, 1, block, kind, 1, 0, bar, true, true)
    }

    #[test]
    fn synccheck_flags_same_block_write_write_in_one_interval() {
        let mode = SanitizerMode::full().with_synccheck();
        let sh = BufferShadow::new(1, mode);
        assert!(sc(&sh, 3, AccessKind::Write, 0).is_none());
        assert_eq!(
            sc(&sh, 3, AccessKind::Write, 0),
            Some(RaceHit::IntraBlockWrite)
        );
        // Reads and atomics over the written word stay silent.
        assert!(sc(&sh, 3, AccessKind::Read, 0).is_none());
        assert!(sc(&sh, 3, AccessKind::Atomic, 0).is_none());
    }

    #[test]
    fn synccheck_barrier_separated_writes_are_exonerated() {
        let mode = SanitizerMode::full().with_synccheck();
        let sh = BufferShadow::new(1, mode);
        assert!(sc(&sh, 3, AccessKind::Write, 0).is_none());
        // A block_sync() between the writes bumps the barrier epoch.
        assert!(sc(&sh, 3, AccessKind::Write, 1).is_none());
        // ... but a second write in the *new* interval conflicts.
        assert_eq!(
            sc(&sh, 3, AccessKind::Write, 1),
            Some(RaceHit::IntraBlockWrite)
        );
    }

    #[test]
    fn synccheck_saturated_barrier_epochs_are_suppressed() {
        let mode = SanitizerMode::full().with_synccheck();
        let sh = BufferShadow::new(1, mode);
        assert!(sc(&sh, 3, AccessKind::Write, BSYNC_SAT + 5).is_none());
        assert!(
            sc(&sh, 3, AccessKind::Write, BSYNC_SAT + 9).is_none(),
            "saturated epochs are indistinguishable: suppress, never false-positive"
        );
    }

    #[test]
    fn synccheck_off_same_block_writes_stay_silent() {
        let sh = BufferShadow::new(1, SanitizerMode::full());
        assert!(rc(&sh, 0, 1, 3, AccessKind::Write, 1, 0).is_none());
        assert!(rc(&sh, 0, 1, 3, AccessKind::Write, 1, 0).is_none());
    }

    #[test]
    fn leakcheck_flags_dropped_unfreed_allocations() {
        let san = Sanitizer::new(SanitizerMode::leakcheck_only());
        let sh = std::sync::Arc::new(BufferShadow::new(4, san.mode()));
        san.register_alloc("lost", 16, sh.clone());
        // Handle still alive: not a leak.
        san.run_leakcheck(16);
        assert_eq!(san.counts().leakcheck, 0);
        drop(sh);
        // Handle gone, bytes never freed: leak.
        san.run_leakcheck(16);
        assert_eq!(san.counts().leakcheck, 1);
        let f = &san.report().findings[0];
        assert_eq!(f.analysis, Analysis::Leakcheck);
        assert_eq!(f.buffer, "lost");
        assert!(f.detail.contains("16 bytes"));
        // Idempotent: a second sweep reports nothing new.
        san.run_leakcheck(16);
        assert_eq!(san.counts().leakcheck, 1);
    }

    #[test]
    fn leakcheck_freed_buffers_are_clean() {
        let san = Sanitizer::new(SanitizerMode::leakcheck_only());
        let sh = std::sync::Arc::new(BufferShadow::new(4, san.mode()));
        san.register_alloc("ok", 16, sh.clone());
        sh.mark_freed();
        drop(sh);
        san.run_leakcheck(0);
        assert_eq!(san.counts().leakcheck, 0);
    }

    #[test]
    fn leakcheck_reports_accounting_drift_once() {
        let san = Sanitizer::new(SanitizerMode::leakcheck_only());
        // 64 bytes outstanding in the allocator, nothing tracked.
        san.run_leakcheck(64);
        assert_eq!(san.counts().leakcheck, 1);
        assert_eq!(san.report().findings[0].buffer, "<allocator>");
        san.run_leakcheck(64);
        assert_eq!(san.counts().leakcheck, 1, "drift reported once");
    }

    #[test]
    fn valid_bitmap_tracks_words() {
        let sh = BufferShadow::new(130, SanitizerMode::full());
        assert!(!sh.is_valid(0));
        assert!(!sh.is_valid(129));
        sh.mark_valid(129);
        assert!(sh.is_valid(129));
        assert!(!sh.is_valid(128));
        sh.mark_valid_all();
        assert!(sh.is_valid(0) && sh.is_valid(128));
    }

    #[test]
    fn finding_display_names_everything() {
        let f = SanitizerFinding {
            analysis: Analysis::Racecheck,
            buffer: "hist".into(),
            kernel: "histogram_kernel".into(),
            launch: 3,
            block: 7,
            index: 42,
            access: AccessKind::Write,
            count: 2,
            detail: "x".into(),
        };
        let s = f.to_string();
        for needle in [
            "racecheck",
            "hist",
            "histogram_kernel",
            "42",
            "block 7",
            "2 occurrences",
        ] {
            assert!(s.contains(needle), "{s:?} missing {needle:?}");
        }
    }
}
