//! Simulator error types.

use std::fmt;

/// Errors raised by the simulator.
///
/// Most simulator misuse (out-of-bounds access, over-large blocks) is a
/// programming error and panics, mirroring how a CUDA kernel would fault
/// the device. `SimError` is reserved for conditions a caller can
/// legitimately handle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Device memory exhausted: requested vs. remaining bytes.
    OutOfDeviceMemory { requested: usize, available: usize },
    /// Launch configuration violates a device limit.
    InvalidLaunch(String),
    /// The driver rejected the kernel launch (injected fault). The
    /// kernel never ran; device state is unchanged.
    KernelLaunchFault { kernel: String },
    /// The kernel started but aborted with a transient compute fault
    /// (injected, modelled ECC/parity error); its outputs are
    /// undefined and must be discarded.
    TransientFault { kernel: String },
    /// The kernel hung and the modelled watchdog killed it after
    /// `timeout_us` of simulated time (injected fault). The device
    /// burned the whole timeout.
    DeviceHang { timeout_us: u64 },
    /// A PCIe transfer was corrupted and abandoned (injected fault);
    /// the destination contents are undefined.
    TransferCorruption { bytes: usize },
    /// An access to a device buffer fell outside its bounds. Carries
    /// the buffer's label so the diagnostic names *which* allocation
    /// was overrun instead of a bare index panic.
    OutOfBounds {
        buffer: String,
        idx: usize,
        len: usize,
    },
    /// A block allocated more shared memory than the device allows per
    /// block — the simulator's equivalent of a CUDA launch failure for
    /// an over-subscribed `__shared__` footprint.
    SharedMemExceeded {
        used: usize,
        requested: usize,
        capacity: usize,
    },
    /// A [`KernelContract`](crate::contract::KernelContract) failed
    /// static verification at launch and no sanitizer was armed to
    /// absorb the finding. Like [`SimError::InvalidLaunch`], this is a
    /// caller mistake, not a device fault: the kernel never ran.
    ContractViolation { kernel: String, detail: String },
}

impl SimError {
    /// Whether this error represents a device/transport fault — the
    /// class a serving layer retries or fails over, as opposed to a
    /// caller mistake ([`SimError::InvalidLaunch`]) that would fail
    /// identically anywhere.
    pub fn is_device_fault(&self) -> bool {
        matches!(
            self,
            SimError::OutOfDeviceMemory { .. }
                | SimError::KernelLaunchFault { .. }
                | SimError::TransientFault { .. }
                | SimError::DeviceHang { .. }
                | SimError::TransferCorruption { .. }
        )
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OutOfDeviceMemory {
                requested,
                available,
            } => write!(
                f,
                "out of device memory: requested {requested} bytes, {available} available"
            ),
            SimError::InvalidLaunch(msg) => write!(f, "invalid launch configuration: {msg}"),
            SimError::KernelLaunchFault { kernel } => {
                write!(f, "kernel launch fault: driver rejected {kernel:?}")
            }
            SimError::TransientFault { kernel } => {
                write!(f, "transient compute fault in kernel {kernel:?}")
            }
            SimError::DeviceHang { timeout_us } => {
                write!(f, "device hang: watchdog fired after {timeout_us} us")
            }
            SimError::TransferCorruption { bytes } => {
                write!(f, "PCIe transfer corrupted ({bytes} bytes abandoned)")
            }
            SimError::OutOfBounds { buffer, idx, len } => {
                write!(
                    f,
                    "out-of-bounds access to buffer {buffer:?}: index {idx} >= len {len}"
                )
            }
            SimError::SharedMemExceeded {
                used,
                requested,
                capacity,
            } => {
                write!(
                    f,
                    "shared memory overflow: block already uses {used} of {capacity} bytes, \
                     requested {requested} more"
                )
            }
            SimError::ContractViolation { kernel, detail } => {
                write!(f, "kernel contract violation in {kernel:?}: {detail}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::OutOfDeviceMemory {
            requested: 100,
            available: 10,
        };
        let s = e.to_string();
        assert!(s.contains("100") && s.contains("10"));
        let e = SimError::InvalidLaunch("block too big".into());
        assert!(e.to_string().contains("block too big"));
        let e = SimError::DeviceHang { timeout_us: 50_000 };
        assert!(e.to_string().contains("50000"));
    }

    #[test]
    fn device_fault_classification() {
        assert!(SimError::OutOfDeviceMemory {
            requested: 1,
            available: 0
        }
        .is_device_fault());
        assert!(SimError::KernelLaunchFault { kernel: "k".into() }.is_device_fault());
        assert!(SimError::TransientFault { kernel: "k".into() }.is_device_fault());
        assert!(SimError::DeviceHang { timeout_us: 1 }.is_device_fault());
        assert!(SimError::TransferCorruption { bytes: 8 }.is_device_fault());
        assert!(!SimError::InvalidLaunch("bad".into()).is_device_fault());
    }
}
