//! Simulator error types.

use std::fmt;

/// Errors raised by the simulator.
///
/// Most simulator misuse (out-of-bounds access, over-large blocks) is a
/// programming error and panics, mirroring how a CUDA kernel would fault
/// the device. `SimError` is reserved for conditions a caller can
/// legitimately handle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Device memory exhausted: requested vs. remaining bytes.
    OutOfDeviceMemory { requested: usize, available: usize },
    /// Launch configuration violates a device limit.
    InvalidLaunch(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OutOfDeviceMemory {
                requested,
                available,
            } => write!(
                f,
                "out of device memory: requested {requested} bytes, {available} available"
            ),
            SimError::InvalidLaunch(msg) => write!(f, "invalid launch configuration: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::OutOfDeviceMemory {
            requested: 100,
            available: 10,
        };
        let s = e.to_string();
        assert!(s.contains("100") && s.contains("10"));
        let e = SimError::InvalidLaunch("block too big".into());
        assert!(e.to_string().contains("block too big"));
    }
}
