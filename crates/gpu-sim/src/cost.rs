//! The analytic cost model.
//!
//! Converts *metered* kernel activity ([`KernelStats`]) into simulated
//! time on a given [`DeviceSpec`](crate::device). The model is
//! deliberately simple — a roofline over memory and compute with an
//! occupancy derating — because every effect the paper measures is
//! explained by quantities this model captures:
//!
//! * **memory traffic** (iteration fusion cuts loads 8N→5N, §3.1; the
//!   adaptive strategy skips candidate stores, §3.2),
//! * **kernel-launch count** (16 → 4 launches, Fig. 2/3),
//! * **PCIe round-trips and host syncs** (the white space in Fig. 8),
//! * **occupancy** (1 warp / 1 block / whole grid — WarpSelect vs.
//!   BlockSelect vs. GridSelect, §5.3 and Fig. 7).
//!
//! Kernel time is
//! `max(floor, bytes/(BW·occ_mem), ops/(Gops·occ_comp))`, where
//! `occ = min(1, active_warps / warps_to_saturate)`; each launch also
//! pays a fixed CPU-side overhead. See `DESIGN.md §5`.

use crate::device::{DeviceSpec, WARP_SIZE};

/// Metered activity of one kernel launch, accumulated across all of its
/// thread blocks.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KernelStats {
    /// Bytes read with coalesced (streaming) access.
    pub bytes_read: u64,
    /// Bytes written with coalesced (streaming) access.
    pub bytes_written: u64,
    /// Bytes of *transaction* traffic caused by scattered (uncoalesced)
    /// accesses: each access is charged a whole transaction sector.
    pub bytes_scattered: u64,
    /// Number of global-memory atomic operations.
    pub atomic_ops: u64,
    /// Scalar compute operations executed.
    pub compute_ops: u64,
    /// Shared-memory bytes allocated by the most demanding block.
    pub shared_mem_bytes: u64,
}

impl KernelStats {
    /// Total bytes of device-memory traffic, including the transaction
    /// overhead of scattered accesses and atomics (one 4-byte word each,
    /// charged as read-modify-write).
    pub fn total_mem_bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written + self.bytes_scattered + self.atomic_ops * 8
    }

    /// Merge another block's stats into this accumulator.
    pub fn merge(&mut self, other: &KernelStats) {
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.bytes_scattered += other.bytes_scattered;
        self.atomic_ops += other.atomic_ops;
        self.compute_ops += other.compute_ops;
        self.shared_mem_bytes = self.shared_mem_bytes.max(other.shared_mem_bytes);
    }
}

/// Where a kernel's simulated time went, plus the utilisation metrics
/// reported in the paper's Table 3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostBreakdown {
    /// Time the kernel occupies the device, µs (excludes launch
    /// overhead).
    pub exec_us: f64,
    /// Fixed launch overhead, µs.
    pub launch_us: f64,
    /// Memory-limited time component, µs.
    pub mem_us: f64,
    /// Compute-limited time component, µs.
    pub compute_us: f64,
    /// Occupancy in [0, 1]: resident warps / warps-to-saturate.
    pub occupancy: f64,
    /// "Memory SOL": achieved fraction of peak DRAM bandwidth over the
    /// kernel's execution window (Nsight Compute's Speed-Of-Light
    /// throughput metric, Table 3).
    pub memory_sol: f64,
    /// "Compute SOL": achieved fraction of peak compute throughput.
    pub compute_sol: f64,
}

impl CostBreakdown {
    /// Total simulated wall time of the launch, µs.
    pub fn total_us(&self) -> f64 {
        self.exec_us + self.launch_us
    }
}

/// Compute the simulated cost of one kernel launch.
///
/// `grid_dim`/`block_dim` give the launch shape; `stats` is the metered
/// activity of all blocks combined.
pub fn kernel_cost(
    spec: &DeviceSpec,
    grid_dim: usize,
    block_dim: usize,
    stats: &KernelStats,
) -> CostBreakdown {
    let warps_per_block = block_dim.div_ceil(WARP_SIZE);
    let total_warps = grid_dim * warps_per_block;
    // Shared-memory pressure limits how many blocks co-reside on an
    // SM, and therefore how many warps can hide latency — the §2.2
    // mechanism behind the WarpSelect family's K caps ("due to the
    // extensive use of shared memory and registers…"). A block using
    // the whole per-SM allocation runs alone on its SM.
    let blocks_per_sm_by_smem = (spec.shared_mem_per_block as u64)
        .checked_div(stats.shared_mem_bytes)
        .map_or(usize::MAX, |b| b.max(1) as usize);
    let warps_per_sm = spec
        .max_warps_per_sm
        .min(blocks_per_sm_by_smem.saturating_mul(warps_per_block));
    let resident_warps = total_warps.min(spec.sm_count * warps_per_sm);
    let occupancy = (resident_warps as f64 / spec.warps_to_saturate as f64).min(1.0);

    let eff_bw = spec.mem_bw_bytes_per_us() * occupancy * spec.mem_efficiency;
    let eff_ops = spec.compute_ops_per_us() * occupancy;

    let mem_bytes = stats.total_mem_bytes() as f64;
    let mem_us = if mem_bytes > 0.0 {
        mem_bytes / eff_bw
    } else {
        0.0
    };
    let compute_us = if stats.compute_ops > 0 {
        stats.compute_ops as f64 / eff_ops
    } else {
        0.0
    };

    let exec_us = spec.kernel_floor_us.max(mem_us).max(compute_us);

    // SOL metrics are measured against *peak*, not derated, throughput,
    // exactly as Nsight Compute reports them.
    let memory_sol = (mem_bytes / (exec_us * spec.mem_bw_bytes_per_us())).min(1.0);
    let compute_sol = (stats.compute_ops as f64 / (exec_us * spec.compute_ops_per_us())).min(1.0);

    CostBreakdown {
        exec_us,
        launch_us: spec.kernel_launch_us,
        mem_us,
        compute_us,
        occupancy,
        memory_sol,
        compute_sol,
    }
}

/// Simulated duration of a host↔device copy of `bytes`, µs.
pub fn memcpy_cost(spec: &DeviceSpec, bytes: usize) -> f64 {
    spec.pcie_latency_us + bytes as f64 / spec.pcie_bw_bytes_per_us()
}

/// One launch of a *hypothetical* kernel: the launch shape plus the
/// activity it is predicted to meter. This is the planning-side mirror
/// of what [`kernel_cost`] receives after a real (simulated) run —
/// an autotuner can describe a candidate algorithm as a sequence of
/// these and price it without executing anything.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PlannedLaunch {
    /// Thread blocks in the launch.
    pub grid_dim: usize,
    /// Threads per block.
    pub block_dim: usize,
    /// Predicted metered activity across all blocks.
    pub stats: KernelStats,
}

impl PlannedLaunch {
    /// Price this launch alone (no inter-launch gap).
    pub fn cost(&self, spec: &DeviceSpec) -> CostBreakdown {
        kernel_cost(spec, self.grid_dim, self.block_dim, &self.stats)
    }
}

/// Price a back-to-back sequence of asynchronous launches, µs: each
/// launch pays its full [`kernel_cost`] (exec + launch overhead), and
/// consecutive launches are separated by the device-side scheduling
/// gap. This is the quantity an end-to-end trace of one algorithm
/// invocation shows (Fig. 8's bars without the host-sync white space),
/// and the objective the `topk-core` planner minimises.
pub fn sequence_cost(spec: &DeviceSpec, launches: &[PlannedLaunch]) -> f64 {
    let gaps = spec.kernel_gap_us * launches.len().saturating_sub(1) as f64;
    launches
        .iter()
        .map(|l| l.cost(spec).total_us())
        .sum::<f64>()
        + gaps
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> DeviceSpec {
        // A100 shape with ideal DRAM efficiency so the arithmetic in
        // these tests is exact.
        DeviceSpec {
            mem_efficiency: 1.0,
            ..DeviceSpec::a100()
        }
    }

    #[test]
    fn empty_kernel_pays_floor_and_launch() {
        let c = kernel_cost(&spec(), 1, 32, &KernelStats::default());
        assert_eq!(c.exec_us, spec().kernel_floor_us);
        assert_eq!(c.launch_us, spec().kernel_launch_us);
        assert_eq!(c.mem_us, 0.0);
    }

    #[test]
    fn memory_bound_kernel_time_scales_with_bytes() {
        let s = spec();
        // Saturating grid.
        let grid = s.warps_to_saturate; // one warp per block
        let mut st = KernelStats {
            bytes_read: 1_555_000_000, // 1000 us at peak
            ..KernelStats::default()
        };
        let c = kernel_cost(&s, grid, 32, &st);
        assert!((c.exec_us - 1000.0).abs() < 1e-6);
        assert!((c.memory_sol - 1.0).abs() < 1e-9);

        st.bytes_read *= 2;
        let c2 = kernel_cost(&s, grid, 32, &st);
        assert!((c2.exec_us - 2.0 * c.exec_us).abs() < 1e-6);
    }

    #[test]
    fn single_warp_gets_fraction_of_bandwidth() {
        let s = spec();
        let st = KernelStats {
            bytes_read: 15_550_000, // 10 us at peak — above the kernel floor
            ..KernelStats::default()
        };
        let full = kernel_cost(&s, s.warps_to_saturate, 32, &st);
        let one = kernel_cost(&s, 1, 32, &st);
        // One warp should be ~warps_to_saturate times slower.
        let ratio = one.exec_us / full.exec_us;
        assert!(
            (ratio - s.warps_to_saturate as f64).abs() / (s.warps_to_saturate as f64) < 0.01,
            "ratio = {ratio}"
        );
    }

    #[test]
    fn occupancy_clamps_at_one() {
        let s = spec();
        let c = kernel_cost(
            &s,
            10 * s.max_resident_warps(),
            1024,
            &KernelStats::default(),
        );
        assert_eq!(c.occupancy, 1.0);
    }

    #[test]
    fn compute_bound_kernel() {
        let s = spec();
        let st = KernelStats {
            compute_ops: (s.compute_ops_per_us() * 100.0) as u64, // 100 us at peak
            bytes_read: 32,                                       // negligible
            ..KernelStats::default()
        };
        let c = kernel_cost(&s, s.warps_to_saturate, 32, &st);
        assert!((c.exec_us - 100.0).abs() < 0.1);
        assert!(c.compute_sol > 0.99);
        assert!(c.memory_sol < 0.01);
    }

    #[test]
    fn scattered_bytes_and_atomics_count_toward_traffic() {
        let st = KernelStats {
            bytes_scattered: 320,
            atomic_ops: 10,
            ..KernelStats::default()
        };
        assert_eq!(st.total_mem_bytes(), 320 + 80);
    }

    #[test]
    fn merge_accumulates_and_maxes_shared() {
        let mut a = KernelStats {
            bytes_read: 10,
            bytes_written: 1,
            bytes_scattered: 2,
            atomic_ops: 3,
            compute_ops: 4,
            shared_mem_bytes: 100,
        };
        let b = KernelStats {
            bytes_read: 20,
            bytes_written: 2,
            bytes_scattered: 4,
            atomic_ops: 6,
            compute_ops: 8,
            shared_mem_bytes: 50,
        };
        a.merge(&b);
        assert_eq!(a.bytes_read, 30);
        assert_eq!(a.shared_mem_bytes, 100);
        assert_eq!(a.compute_ops, 12);
    }

    #[test]
    fn shared_memory_pressure_reduces_occupancy() {
        let s = spec();
        let mut st = KernelStats {
            bytes_read: 1_555_000_000,
            ..KernelStats::default()
        };
        // Plenty of blocks, no shared memory: saturated.
        let light = kernel_cost(&s, 10_000, 128, &st);
        assert_eq!(light.occupancy, 1.0);
        // Same launch, but each block hogs the whole SM's shared
        // memory: only 4 warps resident per SM.
        st.shared_mem_bytes = s.shared_mem_per_block as u64;
        let heavy = kernel_cost(&s, 10_000, 128, &st);
        let expect = (s.sm_count * 4) as f64 / s.warps_to_saturate as f64;
        assert!((heavy.occupancy - expect).abs() < 1e-9);
        assert!(heavy.exec_us > light.exec_us * 3.0);
    }

    #[test]
    fn sequence_cost_sums_launches_and_gaps() {
        let s = spec();
        let empty = PlannedLaunch {
            grid_dim: 1,
            block_dim: 32,
            ..PlannedLaunch::default()
        };
        // Empty sequence costs nothing; one launch pays no gap.
        assert_eq!(sequence_cost(&s, &[]), 0.0);
        let one = sequence_cost(&s, &[empty]);
        assert!((one - (s.kernel_floor_us + s.kernel_launch_us)).abs() < 1e-9);
        // Three launches: 3 × (floor + launch) + 2 gaps.
        let three = sequence_cost(&s, &[empty, empty, empty]);
        assert!((three - (3.0 * one + 2.0 * s.kernel_gap_us)).abs() < 1e-9);
    }

    #[test]
    fn planned_launch_matches_kernel_cost() {
        let s = spec();
        let st = KernelStats {
            bytes_read: 1_000_000,
            compute_ops: 500_000,
            shared_mem_bytes: 4096,
            ..KernelStats::default()
        };
        let planned = PlannedLaunch {
            grid_dim: 256,
            block_dim: 128,
            stats: st,
        };
        assert_eq!(planned.cost(&s), kernel_cost(&s, 256, 128, &st));
    }

    #[test]
    fn memcpy_cost_has_latency_floor() {
        let s = spec();
        assert_eq!(memcpy_cost(&s, 0), s.pcie_latency_us);
        let t = memcpy_cost(&s, 25_000_000); // 1000 us of transfer
        assert!((t - (s.pcie_latency_us + 1000.0)).abs() < 1e-9);
    }
}
