//! Lockstep warp primitives.
//!
//! A CUDA warp is 32 threads executing in lockstep; warp-level
//! collectives (`__ballot_sync`, `__shfl_sync`, reductions, scans) let
//! lanes exchange data without shared memory. The simulator models a
//! warp as arrays of 32 lane values processed by one host thread, and
//! these functions reproduce the collectives' semantics exactly —
//! including `ballot`'s bit order (lane *i* contributes bit *i*).
//!
//! GridSelect's parallel two-step insertion (§4, Fig. 5) is built
//! directly on [`ballot`] + [`lane_rank`]: each lane learns its unique
//! store position by counting qualified lanes below it.

use crate::device::WARP_SIZE;

/// One value per lane of a warp.
pub type Lanes<T> = [T; WARP_SIZE];

/// `__ballot_sync`: pack each lane's predicate into a 32-bit mask,
/// lane `i` → bit `i`.
#[inline]
pub fn ballot(preds: &Lanes<bool>) -> u32 {
    let mut mask = 0u32;
    for (i, &p) in preds.iter().enumerate() {
        mask |= (p as u32) << i;
    }
    mask
}

/// Number of set bits strictly below `lane` in `mask` — the rank a lane
/// gets when qualified lanes claim consecutive slots (exclusive prefix
/// popcount, CUDA's `__popc(mask & ((1 << lane) - 1))`).
#[inline]
pub fn lane_rank(mask: u32, lane: usize) -> u32 {
    debug_assert!(lane < WARP_SIZE);
    (mask & ((1u32 << lane) - 1)).count_ones()
}

/// `__shfl_sync`: every lane reads the value held by `src_lane`.
#[inline]
pub fn shfl<T: Copy>(vals: &Lanes<T>, src_lane: usize) -> T {
    vals[src_lane & (WARP_SIZE - 1)]
}

/// `__shfl_xor_sync`: butterfly exchange; lane `i` reads lane `i ^ mask`.
#[inline]
pub fn shfl_xor<T: Copy + Default>(vals: &Lanes<T>, mask: usize) -> Lanes<T> {
    std::array::from_fn(|i| vals[(i ^ mask) & (WARP_SIZE - 1)])
}

/// Warp-wide sum reduction (every lane would receive the result on GPU).
#[inline]
pub fn reduce_sum(vals: &Lanes<u32>) -> u32 {
    vals.iter().copied().fold(0u32, u32::wrapping_add)
}

/// Warp-wide minimum (`PartialOrd`, NaN-free contract).
#[inline]
pub fn reduce_min<T: Copy + PartialOrd>(vals: &Lanes<T>) -> T {
    let mut m = vals[0];
    for &v in &vals[1..] {
        if v < m {
            m = v;
        }
    }
    m
}

/// Warp-wide maximum (`PartialOrd`, NaN-free contract).
#[inline]
pub fn reduce_max<T: Copy + PartialOrd>(vals: &Lanes<T>) -> T {
    let mut m = vals[0];
    for &v in &vals[1..] {
        if v > m {
            m = v;
        }
    }
    m
}

/// Exclusive prefix sum across lanes: output lane `i` holds the sum of
/// lanes `0..i`.
#[inline]
pub fn exclusive_scan(vals: &Lanes<u32>) -> Lanes<u32> {
    let mut out = [0u32; WARP_SIZE];
    let mut acc = 0u32;
    for i in 0..WARP_SIZE {
        out[i] = acc;
        acc = acc.wrapping_add(vals[i]);
    }
    out
}

/// Inclusive prefix sum across lanes: output lane `i` holds the sum of
/// lanes `0..=i`.
#[inline]
pub fn inclusive_scan(vals: &Lanes<u32>) -> Lanes<u32> {
    let mut out = [0u32; WARP_SIZE];
    let mut acc = 0u32;
    for i in 0..WARP_SIZE {
        acc = acc.wrapping_add(vals[i]);
        out[i] = acc;
    }
    out
}

/// Warp-wide bitonic sort of 32 `(key, payload)` lane pairs — the
/// in-register sorting network the WarpSelect family executes when a
/// queue flushes (§4). Each compare-exchange stage is a
/// [`shfl_xor`]-style butterfly: lane `i` trades with lane `i ^ j` and
/// keeps the min or max according to the bitonic direction bit.
///
/// Returns the number of compare-exchange operations (a fixed
/// `16 × 15 = 240` for the full 32-lane network), so kernels can
/// charge the cost model. Keys follow `PartialOrd` (NaN-free
/// contract).
pub fn bitonic_sort_lanes<K, P>(keys: &mut Lanes<K>, payload: &mut Lanes<P>, ascending: bool) -> u64
where
    K: Copy + PartialOrd,
    P: Copy,
{
    let mut ops = 0u64;
    let mut k = 2usize;
    while k <= WARP_SIZE {
        let mut j = k / 2;
        while j >= 1 {
            for lane in 0..WARP_SIZE {
                let partner = lane ^ j;
                if partner > lane {
                    // Direction of this k-sized bitonic region.
                    let up = (lane & k) == 0;
                    let should_swap = if up == ascending {
                        keys[lane] > keys[partner]
                    } else {
                        keys[lane] < keys[partner]
                    };
                    if should_swap {
                        keys.swap(lane, partner);
                        payload.swap(lane, partner);
                    }
                    ops += 1;
                }
            }
            j /= 2;
        }
        k *= 2;
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ballot_bit_order() {
        let mut p = [false; WARP_SIZE];
        p[0] = true;
        p[5] = true;
        p[31] = true;
        assert_eq!(ballot(&p), 1 | (1 << 5) | (1 << 31));
    }

    #[test]
    fn ballot_all_and_none() {
        assert_eq!(ballot(&[true; WARP_SIZE]), u32::MAX);
        assert_eq!(ballot(&[false; WARP_SIZE]), 0);
    }

    #[test]
    fn lane_rank_counts_below() {
        let mask = 0b1011_0101u32;
        assert_eq!(lane_rank(mask, 0), 0);
        assert_eq!(lane_rank(mask, 1), 1);
        assert_eq!(lane_rank(mask, 2), 1);
        assert_eq!(lane_rank(mask, 3), 2);
        assert_eq!(lane_rank(mask, 8), 5);
        assert_eq!(lane_rank(u32::MAX, 31), 31);
    }

    #[test]
    fn lane_rank_assigns_unique_consecutive_slots() {
        // The property the two-step insertion relies on: qualified lanes
        // get distinct consecutive ranks 0..count.
        let preds: Lanes<bool> = std::array::from_fn(|i| i % 3 == 0);
        let mask = ballot(&preds);
        let mut ranks: Vec<u32> = (0..WARP_SIZE)
            .filter(|&l| preds[l])
            .map(|l| lane_rank(mask, l))
            .collect();
        ranks.sort_unstable();
        let expect: Vec<u32> = (0..mask.count_ones()).collect();
        assert_eq!(ranks, expect);
    }

    #[test]
    fn shfl_broadcasts() {
        let vals: Lanes<u32> = std::array::from_fn(|i| i as u32 * 10);
        assert_eq!(shfl(&vals, 7), 70);
        // Wraps like CUDA (src masked to warp size).
        assert_eq!(shfl(&vals, 32 + 3), 30);
    }

    #[test]
    fn shfl_xor_butterfly() {
        let vals: Lanes<u32> = std::array::from_fn(|i| i as u32);
        let out = shfl_xor(&vals, 1);
        assert_eq!(out[0], 1);
        assert_eq!(out[1], 0);
        assert_eq!(out[30], 31);
        assert_eq!(out[31], 30);
    }

    #[test]
    fn reductions() {
        let vals: Lanes<u32> = std::array::from_fn(|i| i as u32 + 1);
        assert_eq!(reduce_sum(&vals), (1..=32).sum::<u32>());
        assert_eq!(reduce_min(&vals), 1);
        assert_eq!(reduce_max(&vals), 32);
        let fv: Lanes<f32> = std::array::from_fn(|i| -(i as f32));
        assert_eq!(reduce_min(&fv), -31.0);
        assert_eq!(reduce_max(&fv), 0.0);
    }

    #[test]
    fn warp_bitonic_sorts_and_carries_payload() {
        // Deterministic pseudo-random lane values.
        let keys_src: Lanes<u32> =
            std::array::from_fn(|i| (i as u32).wrapping_mul(2654435761) % 997);
        let mut keys = keys_src;
        let mut payload: Lanes<u32> = std::array::from_fn(|i| i as u32);
        let ops = bitonic_sort_lanes(&mut keys, &mut payload, true);
        assert_eq!(ops, 240, "16 comparators x 15 stages");
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
        for (k, p) in keys.iter().zip(&payload) {
            assert_eq!(keys_src[*p as usize], *k);
        }
        // Descending too.
        let mut keys = keys_src;
        let mut payload: Lanes<u32> = std::array::from_fn(|i| i as u32);
        bitonic_sort_lanes(&mut keys, &mut payload, false);
        assert!(keys.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn warp_bitonic_handles_floats_and_duplicates() {
        let mut keys: Lanes<f32> = std::array::from_fn(|i| ((i % 5) as f32) - 2.0);
        let mut payload: Lanes<u32> = std::array::from_fn(|i| i as u32);
        bitonic_sort_lanes(&mut keys, &mut payload, true);
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(keys[0], -2.0);
        assert_eq!(keys[31], 2.0);
    }

    #[test]
    fn scans_are_consistent() {
        let vals: Lanes<u32> = std::array::from_fn(|i| (i as u32 * 7) % 5);
        let ex = exclusive_scan(&vals);
        let inc = inclusive_scan(&vals);
        assert_eq!(ex[0], 0);
        for i in 0..WARP_SIZE {
            assert_eq!(inc[i], ex[i] + vals[i]);
        }
        assert_eq!(inc[WARP_SIZE - 1], reduce_sum(&vals));
    }
}
