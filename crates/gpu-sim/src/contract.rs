//! Kernel access contracts: static launch verification.
//!
//! A [`KernelContract`] declares, for every buffer a kernel touches,
//! *how* it is touched (read / write / atomic) and *where* — an index
//! footprint that is affine in the block id ([`Footprint`]). Before a
//! contracted launch runs
//! ([`Gpu::launch_checked`](crate::Gpu::launch_checked)), the contract
//! is verified against the concrete launch shape, the buffer lengths it
//! captured, and the [`DeviceSpec`] limits:
//!
//! * **footprint bounds** — the highest index any block may touch,
//!   evaluated at the launch's `grid_dim`, must fall inside the buffer.
//!   A static out-of-bounds detector that costs microseconds and never
//!   executes the kernel.
//! * **cross-block write overlap** — a plain `.writes(..)` entry claims
//!   *exclusive* per-block ownership, so its footprint must be provably
//!   disjoint across blocks (e.g. a [`Footprint::block_slice`] whose
//!   slice length does not exceed its stride). Two blocks that could
//!   write the same word is a race reported before anything runs.
//!   Writes that are *dynamically* coordinated (atomic cursor
//!   reservations, "last block" publishes) are declared
//!   `.writes_shared(..)` instead: bounds-checked statically,
//!   race-checked dynamically.
//! * **launch shape and shared memory** — optional grid/block-dim
//!   requirements and a declared per-block shared-memory budget checked
//!   against the device's limit.
//!
//! Contracts are *values built at the launch site* from the live
//! buffers (label and length are captured from the `&DeviceBuffer`), so
//! every field is concrete — no symbolic algebra is needed, just
//! interval arithmetic in the grid dimension.
//!
//! To keep contracts from rotting, the dynamic sanitizer has a
//! *conformance* mode
//! ([`SanitizerMode::contracts`](crate::SanitizerMode::contracts)):
//! every observed access must fall inside some declared entry of the
//! active contract, and accesses to undeclared buffers are findings.
//! `topk-bench sanitize` sweeps all algorithms with conformance on.

use crate::device::DeviceSpec;
use crate::exec::LaunchConfig;
use crate::memory::{DeviceBuffer, DeviceScalar};
use crate::sanitizer::AccessKind;
use std::fmt;

/// Where in a buffer a kernel's blocks may touch, as a function of the
/// block id. All variants are affine in the block id, which is what
/// makes overlap and bounds checks closed-form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Footprint {
    /// Any block may touch any in-bounds index. The honest default for
    /// data-dependent gathers; carries no static claim beyond the
    /// buffer's own bounds.
    All,
    /// Every block touches the same fixed range `[start, start+len)`.
    Fixed { start: usize, len: usize },
    /// Block `b` touches `[base + stride*b, base + stride*b + len_each)`
    /// — the per-block tile pattern. Disjoint across blocks whenever
    /// `len_each <= stride`.
    BlockSlice {
        base: usize,
        stride: usize,
        len_each: usize,
    },
    /// Blocks are grouped `blocks_per_group` at a time (a batched grid
    /// of `batch × blocks_per_problem`); group `g = b / blocks_per_group`
    /// touches `[base + stride*g, base + stride*g + len_each)`. The
    /// per-problem slice pattern of batched kernels.
    GroupSlice {
        blocks_per_group: usize,
        base: usize,
        stride: usize,
        len_each: usize,
    },
    /// Contiguous tiles clamped to the buffer: block `b` owns
    /// `[stride*b, stride*(b+1))` intersected with the buffer bounds —
    /// the `for_elements` pattern where the last block's tile is cut
    /// short. Cross-block disjoint by construction; carries no OOB
    /// claim (the explicit clamp *is* the bound).
    Tiles { stride: usize },
    /// Round-robin chunk ownership: block `b` touches index `i` iff
    /// `(i / chunk) % grid_dim == b`. Disjoint across blocks by
    /// construction, at every grid size.
    Interleaved { chunk: usize },
}

impl Footprint {
    /// Whole-buffer footprint (no static claim).
    pub fn all() -> Self {
        Footprint::All
    }

    /// Fixed range `[start, start+len)` touched by any block.
    pub fn fixed(start: usize, len: usize) -> Self {
        Footprint::Fixed { start, len }
    }

    /// A single element, touched by any block.
    pub fn elem(idx: usize) -> Self {
        Footprint::Fixed { start: idx, len: 1 }
    }

    /// Per-block tile starting at `base`: block `b` owns
    /// `[base + stride*b, +len_each)`.
    pub fn block_slice(base: usize, stride: usize, len_each: usize) -> Self {
        Footprint::BlockSlice {
            base,
            stride,
            len_each,
        }
    }

    /// Per-block tile from offset 0 with `len_each == stride`.
    pub fn per_block(stride: usize) -> Self {
        Footprint::BlockSlice {
            base: 0,
            stride,
            len_each: stride,
        }
    }

    /// Per-group slice: group `b / blocks_per_group` owns
    /// `[base + stride*g, +len_each)`.
    pub fn group_slice(
        blocks_per_group: usize,
        base: usize,
        stride: usize,
        len_each: usize,
    ) -> Self {
        Footprint::GroupSlice {
            blocks_per_group,
            base,
            stride,
            len_each,
        }
    }

    /// Per-group slice from offset 0 with `len_each == stride` — the
    /// common "problem `p` owns `[p*stride, +stride)`" shape of batched
    /// kernels.
    pub fn per_group(blocks_per_group: usize, stride: usize) -> Self {
        Footprint::GroupSlice {
            blocks_per_group,
            base: 0,
            stride,
            len_each: stride,
        }
    }

    /// Clamped contiguous tiles: block `b` owns `[stride*b, stride*(b+1))`
    /// cut off at the buffer's end.
    pub fn tiles(stride: usize) -> Self {
        Footprint::Tiles {
            stride: stride.max(1),
        }
    }

    /// Round-robin ownership of `chunk`-element runs.
    pub fn interleaved(chunk: usize) -> Self {
        Footprint::Interleaved {
            chunk: chunk.max(1),
        }
    }

    /// Highest index any block of a `grid`-block launch may touch, or
    /// `None` when the footprint makes no claim tighter than the buffer
    /// bounds ([`Footprint::All`], [`Footprint::Interleaved`], empty
    /// ranges).
    pub fn max_index(&self, grid: usize) -> Option<usize> {
        match *self {
            Footprint::All | Footprint::Tiles { .. } | Footprint::Interleaved { .. } => None,
            Footprint::Fixed { start, len } => len.checked_sub(1).map(|l| start + l),
            Footprint::BlockSlice {
                base,
                stride,
                len_each,
            } => len_each
                .checked_sub(1)
                .map(|l| base + stride * grid.saturating_sub(1) + l),
            Footprint::GroupSlice {
                blocks_per_group,
                base,
                stride,
                len_each,
            } => {
                let groups = grid.div_ceil(blocks_per_group.max(1));
                len_each
                    .checked_sub(1)
                    .map(|l| base + stride * groups.saturating_sub(1) + l)
            }
        }
    }

    /// Lowest index any block may touch.
    fn min_index(&self) -> usize {
        match *self {
            Footprint::All | Footprint::Tiles { .. } | Footprint::Interleaved { .. } => 0,
            Footprint::Fixed { start, .. } => start,
            Footprint::BlockSlice { base, .. } | Footprint::GroupSlice { base, .. } => base,
        }
    }

    /// True when no two *distinct* blocks of a `grid`-block launch can
    /// touch the same index.
    pub fn cross_block_disjoint(&self, grid: usize) -> bool {
        if grid <= 1 {
            return true;
        }
        match *self {
            Footprint::All => false,
            Footprint::Fixed { len, .. } => len == 0,
            Footprint::BlockSlice {
                stride, len_each, ..
            } => len_each == 0 || len_each <= stride,
            Footprint::GroupSlice {
                blocks_per_group,
                stride,
                len_each,
                ..
            } => len_each == 0 || (blocks_per_group <= 1 && len_each <= stride),
            Footprint::Tiles { .. } | Footprint::Interleaved { .. } => true,
        }
    }

    /// Does the footprint admit block `block` touching index `idx` in a
    /// `grid`-block launch? The dynamic conformance predicate.
    pub fn admits(&self, idx: usize, block: usize, grid: usize) -> bool {
        match *self {
            Footprint::All => true,
            Footprint::Fixed { start, len } => idx >= start && idx < start + len,
            Footprint::BlockSlice {
                base,
                stride,
                len_each,
            } => {
                let lo = base + stride * block;
                idx >= lo && idx < lo + len_each
            }
            Footprint::GroupSlice {
                blocks_per_group,
                base,
                stride,
                len_each,
            } => {
                let g = block / blocks_per_group.max(1);
                let lo = base + stride * g;
                idx >= lo && idx < lo + len_each
            }
            Footprint::Tiles { stride } => {
                let s = stride.max(1);
                idx >= s * block && idx < s * (block + 1)
            }
            Footprint::Interleaved { chunk } => grid > 0 && (idx / chunk.max(1)) % grid == block,
        }
    }
}

impl fmt::Display for Footprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Footprint::All => write!(f, "all"),
            Footprint::Fixed { start, len } => write!(f, "[{start}, {})", start + len),
            Footprint::BlockSlice {
                base,
                stride,
                len_each,
            } => write!(f, "[{base} + {stride}*b, +{len_each})"),
            Footprint::GroupSlice {
                blocks_per_group,
                base,
                stride,
                len_each,
            } => write!(f, "[{base} + {stride}*(b/{blocks_per_group}), +{len_each})"),
            Footprint::Tiles { stride } => write!(f, "tiles({stride})"),
            Footprint::Interleaved { chunk } => write!(f, "interleaved({chunk})"),
        }
    }
}

/// One declared buffer access: which buffer (by captured label and
/// length), which access kinds, whether cross-block write overlap is
/// dynamically coordinated (`shared`), and the index footprint.
#[derive(Debug, Clone)]
pub struct BufferAccess {
    label: String,
    len: usize,
    reads: bool,
    writes: bool,
    atomics: bool,
    /// Writes may overlap across blocks (atomic cursor reservation,
    /// last-block publish): skip the static disjointness requirement
    /// and leave overlap to the dynamic racecheck.
    shared: bool,
    footprint: Footprint,
}

impl BufferAccess {
    /// The captured buffer label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The captured buffer length (elements).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for a zero-length buffer.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The declared footprint.
    pub fn footprint(&self) -> Footprint {
        self.footprint
    }

    fn admits_kind(&self, kind: AccessKind) -> bool {
        match kind {
            AccessKind::Read => self.reads,
            AccessKind::Write => self.writes,
            AccessKind::Atomic => self.atomics,
        }
    }

    fn kinds_label(&self) -> String {
        let mut parts = Vec::new();
        if self.reads {
            parts.push("read");
        }
        if self.writes {
            parts.push(if self.shared {
                "write(shared)"
            } else {
                "write"
            });
        }
        if self.atomics {
            parts.push("atomic");
        }
        parts.join("+")
    }
}

/// One problem the static verifier found with a contracted launch.
#[derive(Debug, Clone)]
pub struct ContractIssue {
    /// Buffer the issue concerns (`"<launch>"` for shape/shared-mem
    /// issues).
    pub buffer: String,
    /// Human explanation.
    pub detail: String,
}

impl fmt::Display for ContractIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.buffer, self.detail)
    }
}

/// A kernel's declared access behaviour, verified statically before
/// launch and (optionally) enforced dynamically by the sanitizer's
/// conformance mode. Built at the launch site from the live buffers;
/// see the [module docs](self).
#[derive(Debug, Clone)]
pub struct KernelContract {
    name: String,
    accesses: Vec<BufferAccess>,
    shared_mem_bytes: usize,
    max_grid: Option<usize>,
    exact_block_dim: Option<usize>,
}

impl KernelContract {
    /// Empty contract for kernel `name`.
    pub fn new(name: impl Into<String>) -> Self {
        KernelContract {
            name: name.into(),
            accesses: Vec::new(),
            shared_mem_bytes: 0,
            max_grid: None,
            exact_block_dim: None,
        }
    }

    /// The kernel name (used as the launch name by
    /// [`Gpu::launch_checked`](crate::Gpu::launch_checked)).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The declared accesses.
    pub fn accesses(&self) -> &[BufferAccess] {
        &self.accesses
    }

    fn push<T: DeviceScalar>(
        mut self,
        buf: &DeviceBuffer<T>,
        reads: bool,
        writes: bool,
        atomics: bool,
        shared: bool,
        footprint: Footprint,
    ) -> Self {
        self.accesses.push(BufferAccess {
            label: buf.label().to_string(),
            len: buf.len(),
            reads,
            writes,
            atomics,
            shared,
            footprint,
        });
        self
    }

    /// Declare non-atomic reads of `buf` within `fp`.
    pub fn reads<T: DeviceScalar>(self, buf: &DeviceBuffer<T>, fp: Footprint) -> Self {
        self.push(buf, true, false, false, false, fp)
    }

    /// Declare exclusive per-block writes of `buf` within `fp`: the
    /// footprint must be cross-block disjoint at the launch's grid size
    /// or the static verifier reports a write-overlap race.
    pub fn writes<T: DeviceScalar>(self, buf: &DeviceBuffer<T>, fp: Footprint) -> Self {
        self.push(buf, false, true, false, false, fp)
    }

    /// Declare dynamically-coordinated writes of `buf` within `fp`
    /// (atomic cursor reservations, last-block publishes): bounds are
    /// still checked statically, overlap is left to the dynamic
    /// racecheck.
    pub fn writes_shared<T: DeviceScalar>(self, buf: &DeviceBuffer<T>, fp: Footprint) -> Self {
        self.push(buf, false, true, false, true, fp)
    }

    /// Declare exclusive per-block reads *and* writes within `fp`.
    pub fn reads_writes<T: DeviceScalar>(self, buf: &DeviceBuffer<T>, fp: Footprint) -> Self {
        self.push(buf, true, true, false, false, fp)
    }

    /// Declare reads plus dynamically-coordinated writes within `fp`.
    pub fn reads_writes_shared<T: DeviceScalar>(
        self,
        buf: &DeviceBuffer<T>,
        fp: Footprint,
    ) -> Self {
        self.push(buf, true, true, false, true, fp)
    }

    /// Declare atomic read-modify-writes within `fp` (atomics never
    /// race with each other, so no disjointness is required).
    pub fn atomics<T: DeviceScalar>(self, buf: &DeviceBuffer<T>, fp: Footprint) -> Self {
        self.push(buf, false, false, true, false, fp)
    }

    /// Declare a grid-coordination buffer: reads, shared writes *and*
    /// atomics within `fp`. The shape of control blocks, histograms and
    /// done-counters in batched kernels.
    pub fn coordinates<T: DeviceScalar>(self, buf: &DeviceBuffer<T>, fp: Footprint) -> Self {
        self.push(buf, true, true, true, true, fp)
    }

    /// Declare the kernel's peak per-block shared-memory footprint,
    /// checked against
    /// [`DeviceSpec::shared_mem_per_block`](crate::DeviceSpec).
    pub fn uses_shared_mem(mut self, bytes: usize) -> Self {
        self.shared_mem_bytes = bytes;
        self
    }

    /// Require `grid_dim <= n` at launch.
    pub fn requires_grid_at_most(mut self, n: usize) -> Self {
        self.max_grid = Some(n);
        self
    }

    /// Require an exact `block_dim` at launch.
    pub fn requires_block_dim(mut self, n: usize) -> Self {
        self.exact_block_dim = Some(n);
        self
    }

    /// Statically verify this contract against a concrete launch shape
    /// and device. Pure interval arithmetic — the kernel never runs.
    pub fn verify(&self, spec: &DeviceSpec, cfg: &LaunchConfig) -> Vec<ContractIssue> {
        let grid = cfg.grid_dim;
        let mut issues = Vec::new();

        if let Some(max) = self.max_grid {
            if grid > max {
                issues.push(ContractIssue {
                    buffer: "<launch>".into(),
                    detail: format!("grid_dim {grid} exceeds the contract's limit of {max}"),
                });
            }
        }
        if let Some(bd) = self.exact_block_dim {
            if cfg.block_dim != bd {
                issues.push(ContractIssue {
                    buffer: "<launch>".into(),
                    detail: format!("block_dim {} but the contract requires {bd}", cfg.block_dim),
                });
            }
        }
        if self.shared_mem_bytes > spec.shared_mem_per_block {
            issues.push(ContractIssue {
                buffer: "<launch>".into(),
                detail: format!(
                    "declared shared-memory footprint {} exceeds the device's {} bytes per block",
                    self.shared_mem_bytes, spec.shared_mem_per_block
                ),
            });
        }

        for a in &self.accesses {
            if let Some(mx) = a.footprint.max_index(grid) {
                if mx >= a.len {
                    issues.push(ContractIssue {
                        buffer: a.label.clone(),
                        detail: format!(
                            "footprint {} reaches index {mx} at grid_dim {grid}, outside \
                             length {}",
                            a.footprint, a.len
                        ),
                    });
                }
            }
            if a.writes && !a.shared && !a.footprint.cross_block_disjoint(grid) {
                issues.push(ContractIssue {
                    buffer: a.label.clone(),
                    detail: format!(
                        "exclusive write footprint {} is not cross-block disjoint at \
                         grid_dim {grid}: two blocks could write the same word \
                         (declare writes_shared if the overlap is coordinated)",
                        a.footprint
                    ),
                });
            }
        }

        // Pairwise: two *distinct* exclusive-write entries on the same
        // buffer whose overall index ranges can intersect — different
        // blocks could take different entries onto the same word.
        if grid > 1 {
            for (i, a) in self.accesses.iter().enumerate() {
                if !a.writes || a.shared {
                    continue;
                }
                for b in self.accesses.iter().skip(i + 1) {
                    if !b.writes || b.shared || a.label != b.label {
                        continue;
                    }
                    let (alo, ahi) = (
                        a.footprint.min_index(),
                        a.footprint
                            .max_index(grid)
                            .unwrap_or(a.len.saturating_sub(1)),
                    );
                    let (blo, bhi) = (
                        b.footprint.min_index(),
                        b.footprint
                            .max_index(grid)
                            .unwrap_or(b.len.saturating_sub(1)),
                    );
                    if alo <= bhi && blo <= ahi {
                        issues.push(ContractIssue {
                            buffer: a.label.clone(),
                            detail: format!(
                                "two exclusive write footprints ({} and {}) on the same \
                                 buffer can overlap across blocks",
                                a.footprint, b.footprint
                            ),
                        });
                    }
                }
            }
        }

        issues
    }

    /// Dynamic conformance: is an observed access admitted by some
    /// declared entry? Returns the violation detail when it is not.
    /// Used by the sanitizer when
    /// [`SanitizerMode::contracts`](crate::SanitizerMode::contracts) is
    /// armed.
    pub(crate) fn conformance_violation(
        &self,
        label: &str,
        idx: usize,
        kind: AccessKind,
        block: usize,
        grid: usize,
    ) -> Option<String> {
        let mut saw_buffer = false;
        let mut kinds = Vec::new();
        for a in &self.accesses {
            if a.label != label {
                continue;
            }
            saw_buffer = true;
            if a.admits_kind(kind) && a.footprint.admits(idx, block, grid) {
                return None;
            }
            kinds.push(format!("{} {}", a.kinds_label(), a.footprint));
        }
        if !saw_buffer {
            return Some("buffer is not declared in the kernel's contract".to_string());
        }
        Some(format!(
            "observed {} of index {idx} by block {block} falls outside every declared \
             entry ({})",
            kind.label(),
            kinds.join("; ")
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;
    use crate::memory::DeviceBuffer;

    fn buf(label: &str, len: usize) -> DeviceBuffer<u32> {
        DeviceBuffer::zeroed(label, len)
    }

    #[test]
    fn footprint_bounds() {
        assert_eq!(Footprint::all().max_index(16), None);
        assert_eq!(Footprint::fixed(4, 4).max_index(16), Some(7));
        assert_eq!(Footprint::fixed(4, 0).max_index(16), None);
        assert_eq!(Footprint::per_block(64).max_index(4), Some(255));
        assert_eq!(Footprint::block_slice(8, 16, 4).max_index(2), Some(27));
        // 6 blocks, 2 per group -> 3 groups, stride 10, len 10.
        assert_eq!(Footprint::per_group(2, 10).max_index(6), Some(29));
        assert_eq!(Footprint::interleaved(8).max_index(100), None);
    }

    #[test]
    fn footprint_disjointness() {
        // Everything is disjoint on a one-block grid.
        assert!(Footprint::all().cross_block_disjoint(1));
        assert!(!Footprint::all().cross_block_disjoint(2));
        assert!(!Footprint::fixed(0, 4).cross_block_disjoint(2));
        assert!(Footprint::per_block(64).cross_block_disjoint(64));
        assert!(!Footprint::block_slice(0, 4, 8).cross_block_disjoint(2));
        assert!(Footprint::interleaved(4).cross_block_disjoint(1000));
        // Grouped slices are shared within the group.
        assert!(!Footprint::per_group(4, 64).cross_block_disjoint(8));
        assert!(Footprint::per_group(1, 64).cross_block_disjoint(8));
    }

    #[test]
    fn footprint_admits() {
        assert!(Footprint::all().admits(123, 0, 4));
        assert!(Footprint::fixed(4, 4).admits(7, 3, 4));
        assert!(!Footprint::fixed(4, 4).admits(8, 3, 4));
        let fp = Footprint::per_block(64);
        assert!(fp.admits(64, 1, 4));
        assert!(!fp.admits(64, 0, 4));
        let fp = Footprint::per_group(2, 100);
        assert!(fp.admits(105, 2, 8), "block 2 is group 1");
        assert!(fp.admits(105, 3, 8), "block 3 shares group 1");
        assert!(!fp.admits(105, 4, 8), "block 4 is group 2");
        let fp = Footprint::interleaved(4);
        assert!(fp.admits(0, 0, 2) && fp.admits(4, 1, 2) && fp.admits(8, 0, 2));
        assert!(!fp.admits(4, 0, 2));
    }

    #[test]
    fn tiles_are_disjoint_clamped_and_make_no_oob_claim() {
        let fp = Footprint::tiles(256);
        assert_eq!(fp.max_index(100), None, "the clamp is the bound");
        assert!(fp.cross_block_disjoint(100));
        assert!(fp.admits(255, 0, 2) && fp.admits(256, 1, 2));
        assert!(!fp.admits(256, 0, 2) && !fp.admits(255, 1, 2));
        // A short last tile is admitted: the footprint claims up to
        // stride, the kernel's explicit clamp writes less.
        let spec = DeviceSpec::test_tiny();
        let b = buf("out", 300);
        let c = KernelContract::new("k").writes(&b, Footprint::tiles(256));
        assert!(c.verify(&spec, &LaunchConfig::grid_1d(2, 32)).is_empty());
    }

    #[test]
    fn verify_flags_oob_footprint() {
        let spec = DeviceSpec::test_tiny();
        let b = buf("out", 8);
        let c = KernelContract::new("k").writes(&b, Footprint::per_block(8));
        assert!(c.verify(&spec, &LaunchConfig::grid_1d(1, 32)).is_empty());
        let issues = c.verify(&spec, &LaunchConfig::grid_1d(2, 32));
        assert_eq!(issues.len(), 1);
        assert_eq!(issues[0].buffer, "out");
        assert!(issues[0].detail.contains("outside"), "{}", issues[0].detail);
    }

    #[test]
    fn verify_flags_overlapping_exclusive_writes() {
        let spec = DeviceSpec::test_tiny();
        let b = buf("out", 64);
        let c = KernelContract::new("k").writes(&b, Footprint::all());
        assert!(c.verify(&spec, &LaunchConfig::grid_1d(1, 32)).is_empty());
        let issues = c.verify(&spec, &LaunchConfig::grid_1d(4, 32));
        assert_eq!(issues.len(), 1);
        assert!(issues[0].detail.contains("not cross-block disjoint"));
        // The same footprint declared shared is fine.
        let c = KernelContract::new("k").writes_shared(&b, Footprint::all());
        assert!(c.verify(&spec, &LaunchConfig::grid_1d(4, 32)).is_empty());
    }

    #[test]
    fn verify_flags_pairwise_entry_overlap() {
        let spec = DeviceSpec::test_tiny();
        let b = buf("out", 64);
        let c = KernelContract::new("k")
            .writes(&b, Footprint::block_slice(0, 8, 8))
            .writes(&b, Footprint::fixed(4, 2));
        let issues = c.verify(&spec, &LaunchConfig::grid_1d(2, 32));
        // Fixed(4,2) overlaps across blocks on its own, plus the pair.
        assert!(issues
            .iter()
            .any(|i| i.detail.contains("two exclusive write footprints")));
    }

    #[test]
    fn verify_checks_shape_and_shared_mem() {
        let spec = DeviceSpec::test_tiny();
        let c = KernelContract::new("k")
            .requires_grid_at_most(4)
            .requires_block_dim(64)
            .uses_shared_mem(spec.shared_mem_per_block + 1);
        let issues = c.verify(&spec, &LaunchConfig::grid_1d(8, 32));
        assert_eq!(issues.len(), 3);
        assert!(issues.iter().all(|i| i.buffer == "<launch>"));
        let c = KernelContract::new("k")
            .requires_grid_at_most(8)
            .requires_block_dim(32)
            .uses_shared_mem(16);
        assert!(c.verify(&spec, &LaunchConfig::grid_1d(8, 32)).is_empty());
    }

    #[test]
    fn conformance_admits_declared_and_flags_undeclared() {
        let vals = buf("vals", 64);
        let c = KernelContract::new("k")
            .reads(&vals, Footprint::fixed(0, 32))
            .writes_shared(&vals, Footprint::fixed(32, 32));
        assert!(c
            .conformance_violation("vals", 10, AccessKind::Read, 0, 4)
            .is_none());
        assert!(c
            .conformance_violation("vals", 40, AccessKind::Write, 3, 4)
            .is_none());
        // Read outside the read entry (even though a write entry covers
        // the index).
        let v = c
            .conformance_violation("vals", 40, AccessKind::Read, 0, 4)
            .expect("read of the write-only half");
        assert!(v.contains("outside every declared entry"), "{v}");
        // Undeclared buffer.
        let v = c
            .conformance_violation("other", 0, AccessKind::Read, 0, 4)
            .expect("undeclared");
        assert!(v.contains("not declared"), "{v}");
    }
}
