//! Kernel execution: launch configuration and the per-block context.
//!
//! A kernel is a Rust closure invoked once per thread block with a
//! [`BlockCtx`]. The closure plays the role of the whole block's
//! cooperative work (CUDA's `__syncthreads()` barriers become ordinary
//! sequential program order inside the closure; warp-level parallelism
//! is expressed with [`crate::warp`] lane arrays). All global-memory
//! access goes through the context so the cost model sees every byte.
//!
//! Blocks of one launch may run concurrently on host threads, so
//! anything a real GPU would race on (histograms, output cursors,
//! "last block" flags) must use the atomic accessors — same as CUDA.

use crate::cost::KernelStats;
use crate::device::{DeviceSpec, WARP_SIZE};
use crate::memory::{AtomicCell, DeviceBuffer, DeviceScalar};
use crate::sanitizer::{AccessKind, LaunchScope};
use crate::SimError;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Shape of a kernel launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Number of thread blocks.
    pub grid_dim: usize,
    /// Threads per block (multiple of the 32-thread warp size).
    pub block_dim: usize,
}

impl LaunchConfig {
    /// A 1-D launch of `grid_dim` blocks × `block_dim` threads.
    pub fn grid_1d(grid_dim: usize, block_dim: usize) -> Self {
        LaunchConfig {
            grid_dim,
            block_dim,
        }
    }

    /// A launch sized so that `grid_dim × block_dim × items_per_thread`
    /// covers `n` elements, capped at `max_grid` blocks (grid-stride
    /// loops handle the remainder, as CUDA kernels do).
    pub fn for_elements(
        n: usize,
        block_dim: usize,
        items_per_thread: usize,
        max_grid: usize,
    ) -> Self {
        let per_block = block_dim * items_per_thread;
        let grid = n.div_ceil(per_block.max(1)).clamp(1, max_grid.max(1));
        LaunchConfig {
            grid_dim: grid,
            block_dim,
        }
    }

    /// Total threads in the launch.
    pub fn total_threads(&self) -> usize {
        self.grid_dim * self.block_dim
    }

    /// Total warps in the launch.
    pub fn total_warps(&self) -> usize {
        self.grid_dim * self.block_dim.div_ceil(WARP_SIZE)
    }
}

/// Block-scope shared-memory arena.
///
/// Tracks allocation against the device's per-block limit; the backing
/// storage is ordinary host memory (shared-memory *access* is not
/// charged to DRAM traffic, matching real hardware).
pub struct SharedMem {
    capacity: usize,
    used: usize,
}

impl SharedMem {
    /// Arena with the given capacity in bytes.
    pub fn new(capacity: usize) -> Self {
        SharedMem { capacity, used: 0 }
    }

    /// Allocate `len` elements of `T`, zero-initialised.
    ///
    /// Panics if the block's shared-memory budget is exceeded — the
    /// equivalent of a CUDA launch failure. Use
    /// [`SharedMem::try_alloc`] to handle over-subscription instead.
    pub fn alloc<T: Default + Clone>(&mut self, len: usize) -> Vec<T> {
        match self.try_alloc(len) {
            Ok(v) => v,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible allocation: over-capacity returns
    /// [`SimError::SharedMemExceeded`] with the block's usage and the
    /// device capacity instead of panicking.
    pub fn try_alloc<T: Default + Clone>(&mut self, len: usize) -> Result<Vec<T>, SimError> {
        let bytes = len * std::mem::size_of::<T>();
        if self.used + bytes > self.capacity {
            return Err(SimError::SharedMemExceeded {
                used: self.used,
                requested: bytes,
                capacity: self.capacity,
            });
        }
        self.used += bytes;
        Ok(vec![T::default(); len])
    }

    /// Bytes allocated so far.
    pub fn used(&self) -> usize {
        self.used
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// Per-block execution context handed to kernel closures.
///
/// Holds the block's coordinates, its private traffic meters (merged
/// into the launch's [`KernelStats`] afterwards), and the shared-memory
/// arena.
pub struct BlockCtx<'a> {
    /// Index of this block within the grid.
    pub block_idx: usize,
    /// Number of blocks in the grid.
    pub grid_dim: usize,
    /// Threads per block.
    pub block_dim: usize,
    pub(crate) stats: KernelStats,
    pub(crate) shared: SharedMem,
    pub(crate) done_counter: &'a AtomicUsize,
    pub(crate) spec: &'a DeviceSpec,
    /// Sanitizer scope of the enclosing launch, if one is armed.
    pub(crate) san: Option<&'a LaunchScope<'a>>,
    /// Launch-global epoch at which this block last passed an
    /// acquire-release grid sync ([`BlockCtx::mark_block_done`]
    /// returning `true`, or any [`BlockCtx::atomic_add_sync`]); 0 =
    /// never. Racecheck suppresses conflicts with accesses recorded
    /// *before* this epoch (they are ordered by the acquire) but still
    /// flags accesses made at or after it — a per-word refinement of
    /// the old whole-block exemption. Over-approximate for blocks that
    /// did not observe the *final* counter value — a documented
    /// suppression, never a false positive.
    pub(crate) sync_epoch: u64,
    /// Number of [`BlockCtx::block_sync`] barriers this block has
    /// passed — the simulator's `__syncthreads` model. Stamped into the
    /// racecheck shadow records so the synccheck analysis can exonerate
    /// barrier-separated same-word writes and flag unseparated ones,
    /// and reported to the launch scope at block completion for
    /// barrier-divergence detection.
    pub(crate) barrier_epoch: u64,
}

impl<'a> BlockCtx<'a> {
    pub(crate) fn new(
        block_idx: usize,
        grid_dim: usize,
        block_dim: usize,
        done_counter: &'a AtomicUsize,
        spec: &'a DeviceSpec,
        san: Option<&'a LaunchScope<'a>>,
    ) -> Self {
        BlockCtx {
            block_idx,
            grid_dim,
            block_dim,
            stats: KernelStats::default(),
            shared: SharedMem::new(spec.shared_mem_per_block),
            done_counter,
            spec,
            san,
            sync_epoch: 0,
            barrier_epoch: 0,
        }
    }

    /// Validate one device access against the armed sanitizer; `false`
    /// means "squash" (out-of-bounds under memcheck). Without a
    /// sanitizer, out-of-bounds aborts the launch with a labeled
    /// [`SimError::OutOfBounds`] payload that
    /// [`Gpu::try_launch`](crate::Gpu::try_launch) surfaces as an `Err`.
    #[inline(always)]
    fn guard<T: DeviceScalar>(&self, buf: &DeviceBuffer<T>, idx: usize, kind: AccessKind) -> bool {
        match self.san {
            Some(scope) => scope.check_access(
                buf.shadow(),
                buf.label(),
                buf.len(),
                idx,
                kind,
                self.block_idx,
                self.sync_epoch,
                self.barrier_epoch,
            ),
            None => {
                if idx >= buf.len() {
                    std::panic::panic_any(SimError::OutOfBounds {
                        buffer: buf.label().to_string(),
                        idx,
                        len: buf.len(),
                    });
                }
                true
            }
        }
    }

    /// Zero of `T` for squashed loads.
    #[inline(always)]
    fn squashed<T: DeviceScalar>() -> T {
        T::from_raw(T::Atom::default().load())
    }

    /// Number of warps in this block.
    #[inline]
    pub fn warps(&self) -> usize {
        self.block_dim.div_ceil(WARP_SIZE)
    }

    /// Device spec of the GPU running this kernel.
    #[inline]
    pub fn spec(&self) -> &DeviceSpec {
        self.spec
    }

    // ---- metered global-memory access ------------------------------

    /// Coalesced (streaming) load.
    #[inline(always)]
    pub fn ld<T: DeviceScalar>(&mut self, buf: &DeviceBuffer<T>, idx: usize) -> T {
        self.stats.bytes_read += T::BYTES as u64;
        if !self.guard(buf, idx, AccessKind::Read) {
            return Self::squashed();
        }
        T::from_raw(buf.cell(idx).load())
    }

    /// Fallible coalesced load: out-of-bounds returns a labeled
    /// [`SimError::OutOfBounds`] instead of aborting the launch.
    #[inline(always)]
    pub fn try_ld<T: DeviceScalar>(
        &mut self,
        buf: &DeviceBuffer<T>,
        idx: usize,
    ) -> Result<T, SimError> {
        if idx >= buf.len() {
            return Err(SimError::OutOfBounds {
                buffer: buf.label().to_string(),
                idx,
                len: buf.len(),
            });
        }
        Ok(self.ld(buf, idx))
    }

    /// Coalesced (streaming) store.
    #[inline(always)]
    pub fn st<T: DeviceScalar>(&mut self, buf: &DeviceBuffer<T>, idx: usize, v: T) {
        self.stats.bytes_written += T::BYTES as u64;
        if !self.guard(buf, idx, AccessKind::Write) {
            return;
        }
        buf.cell(idx).store(v.to_raw());
    }

    /// Fallible coalesced store: out-of-bounds returns a labeled
    /// [`SimError::OutOfBounds`] instead of aborting the launch.
    #[inline(always)]
    pub fn try_st<T: DeviceScalar>(
        &mut self,
        buf: &DeviceBuffer<T>,
        idx: usize,
        v: T,
    ) -> Result<(), SimError> {
        if idx >= buf.len() {
            return Err(SimError::OutOfBounds {
                buffer: buf.label().to_string(),
                idx,
                len: buf.len(),
            });
        }
        self.st(buf, idx, v);
        Ok(())
    }

    /// Uncoalesced (gather) load: charged a whole transaction sector.
    #[inline(always)]
    pub fn ld_gather<T: DeviceScalar>(&mut self, buf: &DeviceBuffer<T>, idx: usize) -> T {
        self.stats.bytes_scattered += self.spec.transaction_bytes as u64;
        if !self.guard(buf, idx, AccessKind::Read) {
            return Self::squashed();
        }
        T::from_raw(buf.cell(idx).load())
    }

    /// Uncoalesced (scatter) store: charged a whole transaction sector.
    ///
    /// The paper's adaptive strategy (§3.2) notes that candidate-buffer
    /// stores "might be uncoalesced", which is why the buffering
    /// threshold α must exceed its information-theoretic lower bound
    /// of 4 — this accessor is what makes that trade-off visible to the
    /// cost model.
    #[inline(always)]
    pub fn st_scatter<T: DeviceScalar>(&mut self, buf: &DeviceBuffer<T>, idx: usize, v: T) {
        self.stats.bytes_scattered += self.spec.transaction_bytes as u64;
        if !self.guard(buf, idx, AccessKind::Write) {
            return;
        }
        buf.cell(idx).store(v.to_raw());
    }

    /// Global-memory atomic add on an integer buffer; returns the
    /// previous value.
    #[inline(always)]
    pub fn atomic_add<T>(&mut self, buf: &DeviceBuffer<T>, idx: usize, v: T) -> T
    where
        T: DeviceScalar,
        T::Atom: AtomicCell<Raw = T>,
    {
        self.stats.atomic_ops += 1;
        if !self.guard(buf, idx, AccessKind::Atomic) {
            return Self::squashed();
        }
        buf.cell(idx).fetch_add(v)
    }

    /// Acquire-release atomic add, for grid-level coordination through
    /// device memory (per-problem "last block" counters in batched
    /// kernels). The release makes this block's earlier relaxed writes
    /// (e.g. histogram increments) visible to whichever block observes
    /// the final count.
    #[inline(always)]
    pub fn atomic_add_sync<T>(&mut self, buf: &DeviceBuffer<T>, idx: usize, v: T) -> T
    where
        T: DeviceScalar,
        T::Atom: AtomicCell<Raw = T>,
    {
        self.stats.atomic_ops += 1;
        // Acquire side of the grid sync: later accesses by this block
        // are ordered after the releases it observed, so racecheck
        // suppresses conflicts with pre-acquire accesses (see
        // `sync_epoch`).
        if let Some(scope) = self.san {
            self.sync_epoch = scope.advance_epoch();
        }
        if !self.guard(buf, idx, AccessKind::Atomic) {
            return Self::squashed();
        }
        buf.cell(idx).fetch_add_sync(v)
    }

    /// Global-memory atomic min (unsigned raw-bit comparison).
    #[inline(always)]
    pub fn atomic_min_raw<T: DeviceScalar>(
        &mut self,
        buf: &DeviceBuffer<T>,
        idx: usize,
        v: T,
    ) -> T {
        self.stats.atomic_ops += 1;
        if !self.guard(buf, idx, AccessKind::Atomic) {
            return Self::squashed();
        }
        T::from_raw(buf.cell(idx).fetch_min(v.to_raw()))
    }

    /// Global-memory atomic max (unsigned raw-bit comparison).
    #[inline(always)]
    pub fn atomic_max_raw<T: DeviceScalar>(
        &mut self,
        buf: &DeviceBuffer<T>,
        idx: usize,
        v: T,
    ) -> T {
        self.stats.atomic_ops += 1;
        if !self.guard(buf, idx, AccessKind::Atomic) {
            return Self::squashed();
        }
        T::from_raw(buf.cell(idx).fetch_max(v.to_raw()))
    }

    /// Global-memory compare-and-swap; returns `Ok(previous)` when the
    /// swap happened.
    #[inline(always)]
    pub fn atomic_cas<T>(
        &mut self,
        buf: &DeviceBuffer<T>,
        idx: usize,
        current: T,
        new: T,
    ) -> Result<T, T>
    where
        T: DeviceScalar,
        T::Atom: AtomicCell<Raw = T>,
    {
        self.stats.atomic_ops += 1;
        if !self.guard(buf, idx, AccessKind::Atomic) {
            return Err(current);
        }
        buf.cell(idx).compare_exchange(current, new)
    }

    // ---- compute + shared memory -----------------------------------

    /// Charge `n` scalar compute operations to this block.
    #[inline(always)]
    pub fn ops(&mut self, n: u64) {
        self.stats.compute_ops += n;
    }

    /// Allocate block shared memory (`len` elements of `T`). An
    /// over-subscribed block aborts the launch with a
    /// [`SimError::SharedMemExceeded`] payload that
    /// [`Gpu::try_launch`](crate::Gpu::try_launch) surfaces as an
    /// `Err` — the simulator's equivalent of a CUDA launch failure.
    pub fn shared_alloc<T: Default + Clone>(&mut self, len: usize) -> Vec<T> {
        match self.try_shared_alloc(len) {
            Ok(v) => v,
            Err(e) => std::panic::panic_any(e),
        }
    }

    /// Fallible shared-memory allocation.
    pub fn try_shared_alloc<T: Default + Clone>(&mut self, len: usize) -> Result<Vec<T>, SimError> {
        let v = self.shared.try_alloc::<T>(len)?;
        // Peak per-block footprint; the pool max-merges across blocks.
        self.stats.shared_mem_bytes = self.shared.used() as u64;
        Ok(v)
    }

    // ---- grid-level coordination ------------------------------------

    /// A block-wide barrier — the simulator's `__syncthreads()`.
    ///
    /// A kernel closure is the whole block's cooperative work run
    /// sequentially, so the barrier has no functional or cost effect
    /// (it touches neither [`KernelStats`] nor the cost model —
    /// annotating a kernel cannot move a digest). What it *does* do is
    /// advance this block's barrier epoch for the sanitizer's synccheck
    /// analysis: same-word writes by one block within a single barrier
    /// interval model distinct racing threads and are flagged, while
    /// writes separated by `block_sync()` are exonerated — and blocks
    /// of one launch that reach mismatched barrier counts are reported
    /// as barrier divergence. Call it exactly where the CUDA original
    /// has `__syncthreads()`.
    #[inline]
    pub fn block_sync(&mut self) {
        self.barrier_epoch += 1;
    }

    /// Barriers passed so far (see [`BlockCtx::block_sync`]).
    #[inline]
    pub fn barrier_count(&self) -> u64 {
        self.barrier_epoch
    }

    /// The "last block" pattern: increments a grid-wide counter and
    /// returns `true` in exactly one block — the one that finished
    /// last. CUDA radix-select implementations use this (an `AcqRel`
    /// atomic on global memory) to let the final block compute the
    /// prefix sum of the histogram the whole grid just built, which is
    /// the trick that makes AIR Top-K's iteration-fused kernel possible
    /// (§3.1).
    ///
    /// Must be called at most once per block, after the block's global
    /// writes.
    pub fn mark_block_done(&mut self) -> bool {
        self.stats.atomic_ops += 1;
        let prev = self.done_counter.fetch_add(1, Ordering::AcqRel);
        let last = prev + 1 == self.grid_dim;
        if last {
            // The last block's subsequent reads are ordered after every
            // other block's release: suppress racecheck conflicts with
            // everything recorded before this acquire.
            if let Some(scope) = self.san {
                self.sync_epoch = scope.advance_epoch();
            }
        }
        last
    }
}

/// Validate a launch configuration against device limits.
pub fn validate_launch(spec: &DeviceSpec, cfg: &LaunchConfig) -> Result<(), crate::SimError> {
    if cfg.grid_dim == 0 || cfg.block_dim == 0 {
        return Err(crate::SimError::InvalidLaunch(format!(
            "zero-sized launch {}x{}",
            cfg.grid_dim, cfg.block_dim
        )));
    }
    if cfg.block_dim > spec.max_threads_per_block {
        return Err(crate::SimError::InvalidLaunch(format!(
            "block_dim {} exceeds device limit {}",
            cfg.block_dim, spec.max_threads_per_block
        )));
    }
    if !cfg.block_dim.is_multiple_of(WARP_SIZE) {
        return Err(crate::SimError::InvalidLaunch(format!(
            "block_dim {} is not a multiple of the warp size",
            cfg.block_dim
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;

    #[test]
    fn launch_config_for_elements() {
        let c = LaunchConfig::for_elements(10_000, 256, 4, 1 << 20);
        assert_eq!(c.block_dim, 256);
        assert_eq!(c.grid_dim, 10_000usize.div_ceil(1024));
        // Capped.
        let c = LaunchConfig::for_elements(1 << 30, 256, 1, 432);
        assert_eq!(c.grid_dim, 432);
        // Tiny n still launches one block.
        let c = LaunchConfig::for_elements(1, 128, 8, 100);
        assert_eq!(c.grid_dim, 1);
        assert_eq!(c.total_threads(), 128);
        assert_eq!(c.total_warps(), 4);
    }

    #[test]
    fn shared_mem_budget_enforced() {
        let mut sm = SharedMem::new(1024);
        let a: Vec<u32> = sm.alloc(128); // 512 bytes
        assert_eq!(a.len(), 128);
        assert_eq!(sm.used(), 512);
        let _b: Vec<u8> = sm.alloc(512);
        assert_eq!(sm.used(), 1024);
    }

    #[test]
    #[should_panic(expected = "shared memory overflow")]
    fn shared_mem_overflow_panics() {
        let mut sm = SharedMem::new(16);
        let _: Vec<u64> = sm.alloc(3);
    }

    #[test]
    fn shared_mem_try_alloc_reports_usage() {
        let mut sm = SharedMem::new(16);
        let _: Vec<u64> = sm.try_alloc(2).unwrap();
        let err = sm.try_alloc::<u64>(3).unwrap_err();
        assert_eq!(
            err,
            SimError::SharedMemExceeded {
                used: 16,
                requested: 24,
                capacity: 16,
            }
        );
        assert_eq!(sm.used(), 16, "failed alloc must not charge the arena");
    }

    #[test]
    fn try_ld_st_label_out_of_bounds() {
        let spec = DeviceSpec::a100();
        let done = AtomicUsize::new(0);
        let mut ctx = BlockCtx::new(0, 1, 32, &done, &spec, None);
        let buf = DeviceBuffer::<u32>::zeroed("small", 4);
        assert_eq!(ctx.try_ld(&buf, 3), Ok(0));
        let err = ctx.try_ld(&buf, 4).unwrap_err();
        assert_eq!(
            err,
            SimError::OutOfBounds {
                buffer: "small".into(),
                idx: 4,
                len: 4,
            }
        );
        assert!(ctx.try_st(&buf, 9, 1).is_err());
        assert!(ctx.try_st(&buf, 0, 7).is_ok());
        assert_eq!(buf.get(0), 7);
    }

    #[test]
    fn validate_launch_limits() {
        let spec = DeviceSpec::test_tiny();
        assert!(validate_launch(&spec, &LaunchConfig::grid_1d(1, 256)).is_ok());
        assert!(validate_launch(&spec, &LaunchConfig::grid_1d(0, 256)).is_err());
        assert!(validate_launch(&spec, &LaunchConfig::grid_1d(1, 512)).is_err());
        assert!(validate_launch(&spec, &LaunchConfig::grid_1d(1, 100)).is_err());
    }

    #[test]
    fn block_ctx_meters_traffic() {
        let spec = DeviceSpec::a100();
        let done = AtomicUsize::new(0);
        let mut ctx = BlockCtx::new(0, 1, 256, &done, &spec, None);
        let buf = DeviceBuffer::from_slice("b", &[1.0f32, 2.0, 3.0]);
        assert_eq!(ctx.ld(&buf, 1), 2.0);
        ctx.st(&buf, 0, 9.0);
        assert_eq!(buf.get(0), 9.0);
        let _ = ctx.ld_gather(&buf, 2);
        ctx.st_scatter(&buf, 2, 0.0);
        ctx.ops(10);
        assert_eq!(ctx.stats.bytes_read, 4);
        assert_eq!(ctx.stats.bytes_written, 4);
        assert_eq!(ctx.stats.bytes_scattered, 64);
        assert_eq!(ctx.stats.compute_ops, 10);
    }

    #[test]
    fn atomic_accessors() {
        let spec = DeviceSpec::a100();
        let done = AtomicUsize::new(0);
        let mut ctx = BlockCtx::new(0, 1, 32, &done, &spec, None);
        let buf = DeviceBuffer::<u32>::zeroed("a", 2);
        assert_eq!(ctx.atomic_add(&buf, 0, 5), 0);
        assert_eq!(ctx.atomic_add(&buf, 0, 3), 5);
        assert_eq!(buf.get(0), 8);
        buf.set(1, 100);
        ctx.atomic_min_raw(&buf, 1, 42);
        assert_eq!(buf.get(1), 42);
        ctx.atomic_max_raw(&buf, 1, 77);
        assert_eq!(buf.get(1), 77);
        assert_eq!(ctx.atomic_cas(&buf, 1, 77, 1), Ok(77));
        assert_eq!(ctx.atomic_cas(&buf, 1, 77, 2), Err(1));
        assert_eq!(ctx.stats.atomic_ops, 6);
    }

    #[test]
    fn last_block_fires_exactly_once() {
        let spec = DeviceSpec::a100();
        let done = AtomicUsize::new(0);
        let grid = 7;
        let mut fired = 0;
        for b in 0..grid {
            let mut ctx = BlockCtx::new(b, grid, 32, &done, &spec, None);
            if ctx.mark_block_done() {
                fired += 1;
                assert_eq!(b, grid - 1, "sequential order: last index finishes last");
            }
        }
        assert_eq!(fired, 1);
    }
}
