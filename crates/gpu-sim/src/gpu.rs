//! The [`Gpu`] device handle: allocation, transfers, launches, clock.
//!
//! Everything an algorithm does to the simulated device flows through
//! this type, which advances the simulated clock using the cost model
//! and records a [`Timeline`] plus per-kernel [`KernelReport`]s for the
//! profiling figures (Fig. 8, Table 3).
//!
//! `Gpu` is the **reference implementation** of the
//! [`Backend`] trait: the inherent methods
//! below keep their historical signatures (so concrete-`Gpu` callers
//! compile unchanged) but are thin wrappers over the trait surface, and
//! the trait impl at the bottom of this file is where the cost model,
//! fault injector and sanitizer actually plug in.

use crate::backend::{AllocGrant, Backend, BackendExt};
use crate::contract::KernelContract;
use crate::cost::{kernel_cost, memcpy_cost, CostBreakdown, KernelStats};
use crate::device::DeviceSpec;
use crate::error::SimError;
use crate::exec::{validate_launch, BlockCtx, LaunchConfig};
use crate::fault::{FaultEvent, FaultInjector, FaultKind};
use crate::memory::{DeviceBuffer, DeviceScalar};
use crate::pool::BlockPool;
use crate::profile::{EventKind, Timeline};
use crate::sanitizer::{LaunchScope, Sanitizer, SanitizerMode, SanitizerReport, ShadowToken};

/// Everything recorded about one kernel launch.
#[derive(Debug, Clone)]
pub struct KernelReport {
    /// Kernel name as passed to [`Gpu::launch`].
    pub name: String,
    /// Launch shape.
    pub cfg: LaunchConfig,
    /// Merged traffic/compute meters from all blocks.
    pub stats: KernelStats,
    /// Cost-model output for the launch.
    pub cost: CostBreakdown,
    /// Simulated time at which the kernel started, µs.
    pub start_us: f64,
    /// Tracing span active when the kernel was launched (see
    /// [`Gpu::set_span`]); `0` means unattributed. A serving layer sets
    /// one span per coalesced batch, so every launch can be joined back
    /// to the queries it served.
    pub span: u64,
    /// Sanitizer occurrences attributed to this launch (0 when no
    /// sanitizer is armed). Deduplicated findings live in
    /// [`Gpu::sanitizer_report`]; this is the per-launch delta of the
    /// occurrence counters so a hot kernel can be singled out.
    pub sanitizer_findings: u64,
}

/// A simulated GPU.
///
/// Owns the device spec, the simulated clock, the profiling state and a
/// host thread pool used to execute thread blocks. See the crate-level
/// docs for a usage example.
pub struct Gpu {
    spec: DeviceSpec,
    pool: BlockPool,
    clock_us: f64,
    timeline: Timeline,
    reports: Vec<KernelReport>,
    mem_allocated: usize,
    mem_high_water: usize,
    current_span: u64,
    injector: Option<FaultInjector>,
    sanitizer: Option<Sanitizer>,
}

impl Gpu {
    /// New device with the default (environment-sized) block pool.
    pub fn new(spec: DeviceSpec) -> Self {
        Gpu::with_pool(spec, BlockPool::from_env())
    }

    /// New device with an explicit block pool (e.g. `BlockPool::new(1)`
    /// for fully deterministic sequential block order in tests).
    pub fn with_pool(spec: DeviceSpec, pool: BlockPool) -> Self {
        Gpu {
            spec,
            pool,
            clock_us: 0.0,
            timeline: Timeline::new(),
            reports: Vec::new(),
            mem_allocated: 0,
            mem_high_water: 0,
            current_span: 0,
            injector: None,
            sanitizer: None,
        }
    }

    /// The device specification.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Simulated time elapsed since construction or the last
    /// [`Gpu::reset_profile`], µs.
    pub fn elapsed_us(&self) -> f64 {
        self.clock_us
    }

    /// The recorded timeline.
    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// All kernel reports since the last reset.
    pub fn reports(&self) -> &[KernelReport] {
        &self.reports
    }

    /// Device memory currently allocated, bytes.
    pub fn mem_allocated(&self) -> usize {
        self.mem_allocated
    }

    /// Peak device memory allocated, bytes.
    pub fn mem_high_water(&self) -> usize {
        self.mem_high_water
    }

    // ---- tracing spans ------------------------------------------------

    /// Attribute subsequent kernel launches to tracing span `span`
    /// (until [`Gpu::clear_span`]). `0` means unattributed. Span ids
    /// come from the observability layer (e.g. `topk_obs::next_span_id`)
    /// and land in every [`KernelReport::span`], linking launches back
    /// to the query or batch that caused them.
    pub fn set_span(&mut self, span: u64) {
        self.current_span = span;
    }

    /// Stop attributing launches to a span.
    pub fn clear_span(&mut self) {
        self.current_span = 0;
    }

    /// The span currently attributed to launches (0 = none).
    pub fn current_span(&self) -> u64 {
        self.current_span
    }

    // ---- fault injection ----------------------------------------------

    /// Attach a [`FaultInjector`]: from now on every allocation, kernel
    /// launch and PCIe transfer consults it and may fail with an
    /// injected [`SimError`]. Faults surface only on the fallible entry
    /// points (`try_*`); the panicking conveniences propagate them as
    /// panics, and the infallible transfer paths downgrade corruption
    /// to a stall.
    pub fn set_fault_injector(&mut self, injector: FaultInjector) {
        self.injector = Some(injector);
    }

    /// The attached injector, if any.
    pub fn fault_injector(&self) -> Option<&FaultInjector> {
        self.injector.as_ref()
    }

    /// Every fault injected on this device so far, in firing order.
    /// Empty when no injector is attached.
    pub fn fault_events(&self) -> &[FaultEvent] {
        self.injector.as_ref().map_or(&[], |i| i.log())
    }

    // ---- sanitizer ----------------------------------------------------

    /// Arm the sanitizer: buffers allocated from now on get shadow
    /// state, and every launch runs the enabled analyses. Buffers that
    /// already exist stay unshadowed (bounds are still checked). The
    /// sanitizer never touches [`KernelStats`] or the cost model, so
    /// simulated timings are identical with it on or off.
    pub fn enable_sanitizer(&mut self, mode: SanitizerMode) {
        self.sanitizer = mode.enabled().then(|| Sanitizer::new(mode));
    }

    /// The armed analyses (all-off when no sanitizer is attached).
    pub fn sanitizer_mode(&self) -> SanitizerMode {
        self.sanitizer
            .as_ref()
            .map_or(SanitizerMode::off(), |s| s.mode())
    }

    /// Snapshot of everything the sanitizer observed, or `None` when
    /// no sanitizer is armed.
    pub fn sanitizer_report(&self) -> Option<SanitizerReport> {
        self.sanitizer.as_ref().map(|s| s.report())
    }

    /// Run the sanitizer's leakcheck sweep now: allocations whose last
    /// handle dropped without being freed become `leakcheck` findings,
    /// and allocator accounting that diverged from the tracked buffers
    /// is flagged once. Runs automatically when the device drops (with
    /// a summary on stderr, since the report is unreadable after
    /// drop); call it explicitly to assert on the findings. No-op
    /// unless a sanitizer with
    /// [`SanitizerMode::leakcheck`] is armed — note leakcheck only
    /// tracks buffers allocated *after* it was armed.
    pub fn run_leakcheck(&mut self) {
        if let Some(san) = self.sanitizer.as_ref() {
            san.run_leakcheck(self.mem_allocated);
        }
    }

    /// Zero the clock and clear the timeline/report history.
    /// Benchmarks call this after uploading inputs so only the
    /// algorithm under test is timed.
    pub fn reset_profile(&mut self) {
        self.clock_us = 0.0;
        self.timeline.clear();
        self.reports.clear();
    }

    // ---- memory ------------------------------------------------------

    /// Allocate a zeroed device buffer, charging it against device
    /// memory. Panics when the device is out of memory (use
    /// [`Gpu::try_alloc`] to handle it).
    pub fn alloc<T: DeviceScalar>(&mut self, label: &str, len: usize) -> DeviceBuffer<T> {
        self.try_alloc(label, len).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible allocation.
    pub fn try_alloc<T: DeviceScalar>(
        &mut self,
        label: &str,
        len: usize,
    ) -> Result<DeviceBuffer<T>, SimError> {
        BackendExt::try_alloc(self, label, len)
    }

    /// Release a buffer's bytes back to the device allocator. (The
    /// backing host memory is freed when the last handle drops; this
    /// only updates the simulated allocator accounting.) Under the
    /// sanitizer's memcheck, later accesses through any surviving
    /// handle are use-after-free findings.
    pub fn free<T: DeviceScalar>(&mut self, buf: &DeviceBuffer<T>) {
        BackendExt::free(self, buf);
    }

    /// Untyped counterpart of [`Gpu::free`]: release raw bytes back to
    /// the allocator. Error-path cleanup guards use this to release a
    /// whole workspace in one call after the typed handles are gone.
    pub fn free_bytes(&mut self, bytes: usize) {
        self.mem_allocated = self.mem_allocated.saturating_sub(bytes);
    }

    /// Copy host data to a new device buffer, paying PCIe cost. Panics
    /// when the device is out of memory (use [`Gpu::try_htod`] to
    /// handle it).
    pub fn htod<T: DeviceScalar>(&mut self, label: &str, data: &[T]) -> DeviceBuffer<T> {
        self.try_htod(label, data).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible host-to-device upload. Injected transfer faults
    /// surface here: a stall completes the copy at a fraction of link
    /// speed, a corruption pays the transfer cost, releases the
    /// destination buffer and returns
    /// [`SimError::TransferCorruption`].
    pub fn try_htod<T: DeviceScalar>(
        &mut self,
        label: &str,
        data: &[T],
    ) -> Result<DeviceBuffer<T>, SimError> {
        BackendExt::try_htod(self, label, data)
    }

    /// Copy a small host payload into an *existing* device buffer
    /// (parameter updates in host-driven loops), paying PCIe cost.
    /// Infallible, so an injected corruption is downgraded to a stall
    /// (modelled as the link retrying until the payload lands).
    pub fn htod_into<T: DeviceScalar>(&mut self, buf: &DeviceBuffer<T>, data: &[T]) {
        BackendExt::htod_into(self, buf, data);
    }

    /// Copy a device buffer back to the host. A blocking copy: pays a
    /// host synchronisation plus the PCIe transfer, like
    /// `cudaMemcpy(DtoH)` on the default stream. Infallible: an
    /// injected corruption is downgraded to a stall (use
    /// [`Gpu::try_dtoh`] to observe corruption as an error).
    pub fn dtoh<T: DeviceScalar>(&mut self, buf: &DeviceBuffer<T>) -> Vec<T> {
        self.dtoh_range(buf, 0, buf.len())
    }

    /// Copy `len` elements starting at `offset` back to the host.
    pub fn dtoh_range<T: DeviceScalar>(
        &mut self,
        buf: &DeviceBuffer<T>,
        offset: usize,
        len: usize,
    ) -> Vec<T> {
        BackendExt::dtoh_range(self, buf, offset, len)
    }

    /// Fallible device-to-host readback: an injected stall slows the
    /// copy, an injected corruption surfaces as
    /// [`SimError::TransferCorruption`] (the partial host copy is
    /// discarded; device state is untouched).
    pub fn try_dtoh<T: DeviceScalar>(&mut self, buf: &DeviceBuffer<T>) -> Result<Vec<T>, SimError> {
        self.try_dtoh_range(buf, 0, buf.len())
    }

    /// Fallible counterpart of [`Gpu::dtoh_range`].
    pub fn try_dtoh_range<T: DeviceScalar>(
        &mut self,
        buf: &DeviceBuffer<T>,
        offset: usize,
        len: usize,
    ) -> Result<Vec<T>, SimError> {
        BackendExt::try_dtoh_range(self, buf, offset, len)
    }

    // ---- execution ----------------------------------------------------

    /// Launch a kernel: run `kernel` once per block (possibly on
    /// multiple host threads), meter its activity, advance the clock by
    /// launch overhead + modelled execution time, and record a report.
    ///
    /// Back-to-back launches pipeline: when the immediately preceding
    /// timeline event is another kernel (no host sync, copy or compute
    /// in between), only the small GPU-side `kernel_gap_us` is paid
    /// instead of the full CPU launch overhead — the asynchronous
    /// stream behaviour that makes AIR Top-K's four enqueued kernels
    /// nearly gapless (Fig. 8) while host-driven loops pay full price
    /// every time.
    pub fn launch<F>(&mut self, name: &str, cfg: LaunchConfig, kernel: F) -> &KernelReport
    where
        F: Fn(&mut BlockCtx) + Sync,
    {
        self.try_launch(name, cfg, kernel)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible launch: reports launch-configuration errors (grid/block
    /// limits, shared-memory overflow) instead of panicking.
    pub fn try_launch<F>(
        &mut self,
        name: &str,
        cfg: LaunchConfig,
        kernel: F,
    ) -> Result<&KernelReport, SimError>
    where
        F: Fn(&mut BlockCtx) + Sync,
    {
        self.launch_impl(name, cfg, &kernel, None)
    }

    /// Launch a kernel under a [`KernelContract`]: the declared access
    /// footprints are verified statically before the kernel runs (see
    /// [`KernelContract::verify`]), and under a sanitizer with contract
    /// conformance armed every observed access is checked against the
    /// declaration. The kernel name comes from the contract. Panics on
    /// violation when no sanitizer is armed to absorb the finding.
    pub fn launch_checked<F>(
        &mut self,
        contract: &KernelContract,
        cfg: LaunchConfig,
        kernel: F,
    ) -> &KernelReport
    where
        F: Fn(&mut BlockCtx) + Sync,
    {
        self.try_launch_checked(contract, cfg, kernel)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible counterpart of [`Gpu::launch_checked`]: a contract that
    /// fails static verification surfaces as
    /// [`SimError::ContractViolation`] when no sanitizer is armed with
    /// [`SanitizerMode::contracts`]; with one armed, violations become
    /// deduplicated `contract` findings and the launch proceeds.
    pub fn try_launch_checked<F>(
        &mut self,
        contract: &KernelContract,
        cfg: LaunchConfig,
        kernel: F,
    ) -> Result<&KernelReport, SimError>
    where
        F: Fn(&mut BlockCtx) + Sync,
    {
        self.launch_impl(contract.name(), cfg, &kernel, Some(contract))
    }

    fn launch_impl(
        &mut self,
        name: &str,
        cfg: LaunchConfig,
        kernel: &(dyn Fn(&mut BlockCtx) + Sync),
        contract: Option<&KernelContract>,
    ) -> Result<&KernelReport, SimError> {
        validate_launch(&self.spec, &cfg)?;

        if let Some(fault) = self
            .injector
            .as_mut()
            .and_then(|inj| inj.on_launch(name, self.clock_us))
        {
            return Err(self.launch_fault(name, fault));
        }

        let findings_before = self.sanitizer.as_ref().map_or(0, |s| s.counts().total());
        // Static contract verification: runs before the kernel executes,
        // so a bad footprint is caught even for shapes the dynamic
        // sanitizer never observes. With a contract-armed sanitizer the
        // issues become findings and the launch proceeds (the dynamic
        // analyses still watch it); without one they are hard errors,
        // like an invalid launch configuration.
        if let Some(c) = contract {
            let issues = c.verify(&self.spec, &cfg);
            if !issues.is_empty() {
                match self.sanitizer.as_ref().filter(|s| s.mode().contracts) {
                    Some(san) => {
                        for issue in &issues {
                            san.record_static_violation(name, &issue.buffer, issue.detail.clone());
                        }
                    }
                    None => {
                        let first = &issues[0];
                        return Err(SimError::ContractViolation {
                            kernel: name.to_string(),
                            detail: format!("{}: {}", first.buffer, first.detail),
                        });
                    }
                }
            }
        }
        let stats = {
            let scope = self
                .sanitizer
                .as_ref()
                .map(|san| LaunchScope::new(san, name, contract.map(|c| (c, cfg.grid_dim))));
            let stats = self.pool.run(&self.spec, cfg, scope.as_ref(), kernel)?;
            if let Some(s) = scope.as_ref() {
                s.check_barrier_divergence();
            }
            stats
        };
        let sanitizer_findings = self
            .sanitizer
            .as_ref()
            .map_or(0, |s| s.counts().total() - findings_before);
        let mut cost = kernel_cost(&self.spec, cfg.grid_dim, cfg.block_dim, &stats);
        if let Some(inj) = self.injector.as_ref() {
            cost.exec_us *= inj.exec_multiplier();
        }
        let pipelined = matches!(
            self.timeline.events().last().map(|e| &e.kind),
            Some(EventKind::Kernel(_))
        );
        if pipelined {
            cost.launch_us = self.spec.kernel_gap_us;
        }

        self.timeline
            .push(EventKind::LaunchOverhead, self.clock_us, cost.launch_us);
        self.clock_us += cost.launch_us;
        let start = self.clock_us;
        self.timeline
            .push(EventKind::Kernel(name.to_string()), start, cost.exec_us);
        self.clock_us += cost.exec_us;

        self.reports.push(KernelReport {
            name: name.to_string(),
            cfg,
            stats,
            cost,
            start_us: start,
            span: self.current_span,
            sanitizer_findings,
        });
        Ok(self.reports.last().expect("report just pushed"))
    }

    /// Charge the simulated cost of an injected launch-site fault and
    /// build its error. [`FaultKind::WorkerPanic`] panics instead —
    /// modelling a driver crash taking the calling thread down — which
    /// is exactly what a serving layer's panic isolation must survive.
    fn launch_fault(&mut self, name: &str, fault: FaultKind) -> SimError {
        match fault {
            FaultKind::WorkerPanic => {
                panic!("injected device fault: driver crash during launch of {name:?}")
            }
            FaultKind::LaunchFail => {
                // The driver rejects the launch after the host paid the
                // submission overhead; nothing runs on the device.
                let t = self.spec.kernel_launch_us;
                self.timeline
                    .push(EventKind::LaunchOverhead, self.clock_us, t);
                self.clock_us += t;
                SimError::KernelLaunchFault {
                    kernel: name.to_string(),
                }
            }
            FaultKind::TransientCompute => {
                // The kernel starts and aborts partway: the device
                // burns launch overhead plus the minimum kernel time,
                // and the outputs are undefined (the simulated kernel
                // body never runs, so callers must discard them).
                let launch = self.spec.kernel_launch_us;
                self.timeline
                    .push(EventKind::LaunchOverhead, self.clock_us, launch);
                self.clock_us += launch;
                let t = self.spec.kernel_floor_us;
                self.timeline.push(
                    EventKind::Kernel(format!("{name} [faulted]")),
                    self.clock_us,
                    t,
                );
                self.clock_us += t;
                SimError::TransientFault {
                    kernel: name.to_string(),
                }
            }
            FaultKind::DeviceHang => {
                // The kernel never completes; the host blocks until the
                // modelled watchdog kills it.
                let timeout_us = self
                    .injector
                    .as_ref()
                    .expect("hang fault implies injector")
                    .hang_timeout_us();
                self.timeline.push(
                    EventKind::HostCompute(format!("watchdog timeout: {name}")),
                    self.clock_us,
                    timeout_us as f64,
                );
                self.clock_us += timeout_us as f64;
                SimError::DeviceHang { timeout_us }
            }
            other => unreachable!("{other:?} is not a launch-site fault"),
        }
    }

    // ---- host-side time -----------------------------------------------

    /// Account for host-side computation between launches (the GPU sits
    /// idle). Classic RadixSelect computes prefix sums on the host this
    /// way; AIR Top-K never calls it.
    pub fn host_compute(&mut self, what: &str, us: f64) {
        self.timeline
            .push(EventKind::HostCompute(what.to_string()), self.clock_us, us);
        self.clock_us += us;
    }

    /// An explicit host synchronisation (stream sync).
    pub fn host_sync(&mut self) {
        let t = self.spec.host_sync_us;
        self.timeline.push(EventKind::HostSync, self.clock_us, t);
        self.clock_us += t;
    }
}

/// The reference [`Backend`]: fully metered against the cost model,
/// with fault injection, sanitizer, tracing spans and a profiling
/// timeline. Every capability hook is overridden.
impl Backend for Gpu {
    fn backend_name(&self) -> &'static str {
        "gpu-sim"
    }

    fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    fn elapsed_us(&self) -> f64 {
        self.clock_us
    }

    fn host_compute(&mut self, what: &str, us: f64) {
        Gpu::host_compute(self, what, us);
    }

    fn host_sync(&mut self) {
        Gpu::host_sync(self);
    }

    fn reset_profile(&mut self) {
        Gpu::reset_profile(self);
    }

    fn grant_alloc(
        &mut self,
        label: &str,
        len: usize,
        elem_bytes: usize,
    ) -> Result<AllocGrant, SimError> {
        let bytes = len * elem_bytes;
        let available =
            self.spec.device_mem_bytes - self.mem_allocated.min(self.spec.device_mem_bytes);
        if bytes > available {
            return Err(SimError::OutOfDeviceMemory {
                requested: bytes,
                available,
            });
        }
        if let Some(inj) = self.injector.as_mut() {
            if inj.on_alloc(label, self.clock_us) {
                // Injected allocator failure: fragmentation / transient
                // driver refusal despite apparent free memory.
                return Err(SimError::OutOfDeviceMemory {
                    requested: bytes,
                    available,
                });
            }
        }
        self.mem_allocated += bytes;
        self.mem_high_water = self.mem_high_water.max(self.mem_allocated);
        Ok(AllocGrant {
            shadow: self.sanitizer.as_ref().map(|san| san.shadow_for(len)),
        })
    }

    fn note_buffer(&mut self, label: &str, bytes: usize, token: Option<ShadowToken>) {
        if let (Some(san), Some(tok)) = (self.sanitizer.as_ref(), token) {
            san.register_alloc(label, bytes, tok.shadow);
        }
    }

    fn free_bytes(&mut self, bytes: usize) {
        Gpu::free_bytes(self, bytes);
    }

    fn mem_allocated(&self) -> usize {
        self.mem_allocated
    }

    fn mem_high_water(&self) -> usize {
        self.mem_high_water
    }

    fn charge_htod(&mut self, label: &str, bytes: usize, fallible: bool) -> Result<(), SimError> {
        let mut t = memcpy_cost(&self.spec, bytes);
        let fault = self
            .injector
            .as_mut()
            .and_then(|inj| inj.on_transfer(label, self.clock_us));
        let corrupted = fault == Some(FaultKind::TransferCorruption);
        if fault == Some(FaultKind::TransferStall) || (corrupted && !fallible) {
            t *= self
                .injector
                .as_ref()
                .expect("fault implies injector")
                .stall_multiplier();
        }
        self.timeline.push(EventKind::MemcpyHtoD, self.clock_us, t);
        self.clock_us += t;
        if corrupted && fallible {
            return Err(SimError::TransferCorruption { bytes });
        }
        Ok(())
    }

    fn charge_dtoh(
        &mut self,
        label: &str,
        bytes: usize,
        fallible: bool,
        token: Option<&ShadowToken>,
    ) -> Result<(), SimError> {
        if let (Some(san), Some(tok)) = (self.sanitizer.as_ref(), token) {
            if tok.shadow.is_freed() {
                san.record_host_uaf(label, "device-to-host readback");
            }
        }
        let sync = self.spec.host_sync_us;
        self.timeline.push(EventKind::HostSync, self.clock_us, sync);
        self.clock_us += sync;
        let mut t = memcpy_cost(&self.spec, bytes);
        let fault = self
            .injector
            .as_mut()
            .and_then(|inj| inj.on_transfer(label, self.clock_us));
        let corrupted = fault == Some(FaultKind::TransferCorruption);
        if fault == Some(FaultKind::TransferStall) || (corrupted && !fallible) {
            t *= self
                .injector
                .as_ref()
                .expect("fault implies injector")
                .stall_multiplier();
        }
        self.timeline.push(EventKind::MemcpyDtoH, self.clock_us, t);
        self.clock_us += t;
        if corrupted && fallible {
            return Err(SimError::TransferCorruption { bytes });
        }
        Ok(())
    }

    fn launch_dyn(
        &mut self,
        name: &str,
        cfg: LaunchConfig,
        kernel: &(dyn Fn(&mut BlockCtx) + Sync),
    ) -> Result<&KernelReport, SimError> {
        self.launch_impl(name, cfg, kernel, None)
    }

    fn launch_contract_dyn(
        &mut self,
        contract: &KernelContract,
        cfg: LaunchConfig,
        kernel: &(dyn Fn(&mut BlockCtx) + Sync),
    ) -> Result<&KernelReport, SimError> {
        self.launch_impl(contract.name(), cfg, kernel, Some(contract))
    }

    fn verifies_contracts(&self) -> bool {
        true
    }

    fn set_span(&mut self, span: u64) {
        Gpu::set_span(self, span);
    }

    fn clear_span(&mut self) {
        Gpu::clear_span(self);
    }

    fn current_span(&self) -> u64 {
        self.current_span
    }

    fn reports(&self) -> &[KernelReport] {
        &self.reports
    }

    fn timeline(&self) -> Option<&Timeline> {
        Some(&self.timeline)
    }

    fn enable_sanitizer(&mut self, mode: SanitizerMode) {
        Gpu::enable_sanitizer(self, mode);
    }

    fn sanitizer_mode(&self) -> SanitizerMode {
        Gpu::sanitizer_mode(self)
    }

    fn sanitizer_report(&self) -> Option<SanitizerReport> {
        Gpu::sanitizer_report(self)
    }

    fn run_leakcheck(&mut self) {
        Gpu::run_leakcheck(self);
    }

    fn set_fault_injector(&mut self, injector: FaultInjector) {
        Gpu::set_fault_injector(self, injector);
    }

    fn fault_events(&self) -> &[FaultEvent] {
        Gpu::fault_events(self)
    }
}

impl Drop for Gpu {
    /// Final leakcheck sweep: buffers that went out of scope without a
    /// free are reported to stderr (the structured report can no
    /// longer be read once the device is gone). Buffers still held by
    /// live handles at this point are reclaimed by device teardown,
    /// like a real driver context, and are not leaks.
    fn drop(&mut self) {
        let Some(san) = self.sanitizer.as_ref() else {
            return;
        };
        if !san.mode().leakcheck {
            return;
        }
        let before = san.counts().leakcheck;
        san.run_leakcheck(self.mem_allocated);
        let report = san.report();
        if report.counts.leakcheck > before {
            eprintln!(
                "gpu-sim leakcheck: {} finding(s) at drop of device {:?}:",
                report.counts.leakcheck - before,
                self.spec.name
            );
            for f in report
                .findings
                .iter()
                .filter(|f| f.analysis == crate::sanitizer::Analysis::Leakcheck)
            {
                eprintln!("  {f}");
            }
        }
    }
}

impl std::fmt::Debug for Gpu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gpu")
            .field("spec", &self.spec.name)
            .field("clock_us", &self.clock_us)
            .field("kernels", &self.reports.len())
            .field("mem_allocated", &self.mem_allocated)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu() -> Gpu {
        Gpu::with_pool(DeviceSpec::a100(), BlockPool::new(1))
    }

    #[test]
    fn launch_advances_clock_and_records() {
        let mut g = gpu();
        let buf = g.htod("in", &(0..256u32).collect::<Vec<_>>());
        let t0 = g.elapsed_us();
        assert!(t0 > 0.0, "htod must cost time");
        g.launch("noop_scan", LaunchConfig::grid_1d(2, 128), |ctx| {
            for i in 0..128 {
                let _ = ctx.ld(&buf, ctx.block_idx * 128 + i);
            }
        });
        assert!(g.elapsed_us() >= t0 + g.spec().kernel_launch_us + g.spec().kernel_floor_us);
        assert_eq!(g.reports().len(), 1);
        let r = &g.reports()[0];
        assert_eq!(r.stats.bytes_read, 256 * 4);
        assert_eq!(g.timeline().kernel_count(), 1);
    }

    #[test]
    fn dtoh_pays_sync_and_latency() {
        let mut g = gpu();
        let buf = g.htod("x", &[1u32, 2, 3]);
        g.reset_profile();
        let v = g.dtoh(&buf);
        assert_eq!(v, vec![1, 2, 3]);
        let expected = g.spec().host_sync_us + g.spec().pcie_latency_us;
        assert!(g.elapsed_us() >= expected);
        assert!(g.timeline().idle_us() >= g.spec().host_sync_us);
    }

    #[test]
    fn reset_profile_zeroes_everything() {
        let mut g = gpu();
        let _ = g.htod("x", &[0u32; 16]);
        g.host_sync();
        assert!(g.elapsed_us() > 0.0);
        g.reset_profile();
        assert_eq!(g.elapsed_us(), 0.0);
        assert!(g.timeline().events().is_empty());
        assert!(g.reports().is_empty());
    }

    #[test]
    fn allocator_tracks_and_frees() {
        let mut g = Gpu::with_pool(DeviceSpec::test_tiny(), BlockPool::new(1));
        let b = g.alloc::<u32>("a", 1024);
        assert_eq!(g.mem_allocated(), 4096);
        g.free(&b);
        assert_eq!(g.mem_allocated(), 0);
        assert_eq!(g.mem_high_water(), 4096);
    }

    #[test]
    fn allocator_oom() {
        let mut g = Gpu::with_pool(DeviceSpec::test_tiny(), BlockPool::new(1));
        let too_big = g.spec().device_mem_bytes / 4 + 1;
        assert!(matches!(
            g.try_alloc::<u32>("big", too_big),
            Err(SimError::OutOfDeviceMemory { .. })
        ));
        // A fitting allocation still works afterwards.
        assert!(g.try_alloc::<u32>("ok", 10).is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid launch")]
    fn bad_launch_panics() {
        let mut g = gpu();
        g.launch("bad", LaunchConfig::grid_1d(1, 33), |_| {});
    }

    #[test]
    fn launches_carry_the_active_span() {
        let mut g = gpu();
        let buf = g.htod("in", &[0u32; 64]);
        g.launch("untagged", LaunchConfig::grid_1d(1, 32), |ctx| {
            let _ = ctx.ld(&buf, 0);
        });
        g.set_span(42);
        assert_eq!(g.current_span(), 42);
        g.launch("tagged", LaunchConfig::grid_1d(1, 32), |ctx| {
            let _ = ctx.ld(&buf, 0);
        });
        g.clear_span();
        g.launch("untagged2", LaunchConfig::grid_1d(1, 32), |ctx| {
            let _ = ctx.ld(&buf, 0);
        });
        let spans: Vec<u64> = g.reports().iter().map(|r| r.span).collect();
        assert_eq!(spans, vec![0, 42, 0]);
    }

    #[test]
    fn htod_into_updates_in_place() {
        let mut g = gpu();
        let buf = g.alloc::<u32>("params", 4);
        g.htod_into(&buf, &[7, 8]);
        assert_eq!(buf.get(0), 7);
        assert_eq!(buf.get(1), 8);
        assert_eq!(buf.get(2), 0);
    }

    #[test]
    fn host_compute_shows_as_idle() {
        let mut g = gpu();
        g.host_compute("prefix sum", 12.5);
        assert_eq!(g.timeline().idle_us(), 12.5);
        assert!((g.elapsed_us() - 12.5).abs() < 1e-12);
    }

    // ---- leakcheck -----------------------------------------------------

    #[test]
    fn leakcheck_flags_dropped_buffer_and_stays_quiet_on_freed() {
        let mut g = Gpu::with_pool(DeviceSpec::test_tiny(), BlockPool::new(1));
        g.enable_sanitizer(SanitizerMode::full().with_leakcheck());
        {
            let leaked = g.alloc::<u32>("leaked", 64);
            let freed = g.alloc::<u32>("freed", 64);
            g.free(&freed);
            let _ = leaked; // dropped here without a free
        }
        g.run_leakcheck();
        let report = g.sanitizer_report().expect("armed");
        assert_eq!(report.counts.leakcheck, 1);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].buffer, "leaked");
        assert!(report.findings[0].detail.contains("256 bytes"));
        // Sweep is idempotent, and drop won't re-report.
        g.run_leakcheck();
        assert_eq!(
            g.sanitizer_report().expect("armed").counts.leakcheck,
            1,
            "second sweep reports nothing new"
        );
    }

    #[test]
    fn leakcheck_live_handles_are_not_leaks() {
        let mut g = Gpu::with_pool(DeviceSpec::test_tiny(), BlockPool::new(1));
        g.enable_sanitizer(SanitizerMode::leakcheck_only());
        let held = g.alloc::<u32>("held", 16);
        g.run_leakcheck();
        assert_eq!(g.sanitizer_report().expect("armed").counts.leakcheck, 0);
        g.free(&held);
        g.run_leakcheck();
        assert_eq!(g.sanitizer_report().expect("armed").counts.leakcheck, 0);
    }

    #[test]
    fn leakcheck_not_armed_by_full_mode() {
        let mut g = Gpu::with_pool(DeviceSpec::test_tiny(), BlockPool::new(1));
        g.enable_sanitizer(SanitizerMode::full());
        {
            let _dropped = g.alloc::<u32>("dropped", 16);
        }
        g.run_leakcheck();
        assert_eq!(g.sanitizer_report().expect("armed").counts.leakcheck, 0);
    }

    // ---- fault injection ----------------------------------------------

    use crate::fault::{FaultPlan, ScriptedFault};

    fn faulty_gpu(plan: FaultPlan) -> Gpu {
        let mut g = gpu();
        g.set_fault_injector(plan.injector_for(0));
        g
    }

    #[test]
    fn injected_oom_fails_alloc_without_leaking_accounting() {
        let plan = FaultPlan::seeded(1).with_scripted(ScriptedFault {
            device: 0,
            kind: FaultKind::Oom,
            nth: 1,
        });
        let mut g = faulty_gpu(plan);
        let a = g.try_alloc::<u32>("a", 64).expect("first alloc fine");
        let before = g.mem_allocated();
        assert!(matches!(
            g.try_alloc::<u32>("b", 64),
            Err(SimError::OutOfDeviceMemory { .. })
        ));
        assert_eq!(g.mem_allocated(), before, "failed alloc must not charge");
        assert_eq!(g.fault_events().len(), 1);
        g.free(&a);
    }

    #[test]
    fn injected_launch_faults_surface_as_errors_and_cost_time() {
        let plan = FaultPlan::seeded(2)
            .with_scripted(ScriptedFault {
                device: 0,
                kind: FaultKind::LaunchFail,
                nth: 0,
            })
            .with_scripted(ScriptedFault {
                device: 0,
                kind: FaultKind::DeviceHang,
                nth: 1,
            });
        let mut g = faulty_gpu(plan);
        let buf = g.htod("in", &[0u32; 64]);
        let t0 = g.elapsed_us();
        let err = g
            .try_launch("k", LaunchConfig::grid_1d(1, 32), |ctx| {
                let _ = ctx.ld(&buf, 0);
            })
            .unwrap_err();
        assert!(matches!(err, SimError::KernelLaunchFault { .. }));
        assert!(g.elapsed_us() > t0, "rejected launch still costs time");
        assert!(g.reports().is_empty(), "no report for a failed launch");

        let t1 = g.elapsed_us();
        let err = g
            .try_launch("k", LaunchConfig::grid_1d(1, 32), |ctx| {
                let _ = ctx.ld(&buf, 0);
            })
            .unwrap_err();
        assert_eq!(err, SimError::DeviceHang { timeout_us: 50_000 });
        assert!(g.elapsed_us() >= t1 + 50_000.0, "hang burns the timeout");

        // Third launch succeeds: the device recovered.
        assert!(g
            .try_launch("k", LaunchConfig::grid_1d(1, 32), |ctx| {
                let _ = ctx.ld(&buf, 0);
            })
            .is_ok());
        assert_eq!(g.fault_events().len(), 2);
    }

    #[test]
    #[should_panic(expected = "injected device fault")]
    fn injected_worker_panic_panics() {
        let plan = FaultPlan::seeded(3).with_scripted(ScriptedFault {
            device: 0,
            kind: FaultKind::WorkerPanic,
            nth: 0,
        });
        let mut g = faulty_gpu(plan);
        let _ = g.try_launch("k", LaunchConfig::grid_1d(1, 32), |_| {});
    }

    #[test]
    fn corruption_fails_try_htod_and_releases_memory() {
        let plan = FaultPlan::seeded(4).with_scripted(ScriptedFault {
            device: 0,
            kind: FaultKind::TransferCorruption,
            nth: 0,
        });
        let mut g = faulty_gpu(plan);
        assert!(matches!(
            g.try_htod("in", &[0u32; 64]),
            Err(SimError::TransferCorruption { bytes: 256 })
        ));
        assert_eq!(g.mem_allocated(), 0, "corrupted upload must not leak");
        // Next transfer is clean.
        assert!(g.try_htod("in", &[0u32; 64]).is_ok());
    }

    #[test]
    fn corruption_downgrades_to_stall_on_infallible_dtoh() {
        let plan = FaultPlan::seeded(5).with_scripted(ScriptedFault {
            device: 0,
            kind: FaultKind::TransferCorruption,
            nth: 1, // transfer 0 is the htod below
        });
        let mut g = faulty_gpu(plan);
        let buf = g.htod("x", &[7u32; 1024]);
        let t0 = g.elapsed_us();
        let v = g.dtoh(&buf); // must not panic
        assert_eq!(v.len(), 1024);
        let stalled = g.elapsed_us() - t0;

        // The same copy without a fault is much cheaper.
        let mut clean = gpu();
        let cbuf = clean.htod("x", &[7u32; 1024]);
        clean.reset_profile();
        let _ = clean.dtoh(&cbuf);
        assert!(
            stalled > clean.elapsed_us() * 2.0,
            "stall must be visible: {stalled} vs {}",
            clean.elapsed_us()
        );
    }

    #[test]
    fn slow_device_scales_kernel_time_only() {
        let run = |slow: bool| {
            let mut g = gpu();
            if slow {
                let plan = FaultPlan::seeded(6).with_scripted(ScriptedFault {
                    device: 0,
                    kind: FaultKind::SlowDevice,
                    nth: 0,
                });
                g.set_fault_injector(plan.injector_for(0));
            }
            let buf = g.htod("in", &(0..4096u32).collect::<Vec<_>>());
            g.reset_profile();
            g.launch("scan", LaunchConfig::grid_1d(4, 256), |ctx| {
                for i in 0..1024 {
                    let _ = ctx.ld(&buf, ctx.block_idx * 1024 + i);
                }
            });
            g.reports()[0].cost.exec_us
        };
        let fast = run(false);
        let slow = run(true);
        assert!((slow / fast - 4.0).abs() < 1e-6, "{slow} vs {fast}");
    }
}
