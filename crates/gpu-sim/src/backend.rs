//! The algorithm ↔ device boundary: the [`Backend`] trait.
//!
//! Every top-K algorithm in this workspace is host-orchestration code
//! that allocates device buffers, launches kernels written against the
//! portable block/warp primitives ([`BlockCtx`], [`crate::warp`]), and
//! moves data over a host↔device link. Until this trait existed that
//! code was written directly against the concrete [`Gpu`](crate::Gpu) simulator
//! handle, which made "as fast as the hardware allows" permanently
//! simulated. [`Backend`] splits the contract out:
//!
//! * **[`Backend`]** is the dyn-compatible core a device must provide:
//!   allocation accounting ([`Backend::grant_alloc`]), metered
//!   transfers ([`Backend::charge_htod`] / [`Backend::charge_dtoh`]),
//!   kernel launch with a grid shape ([`Backend::launch_dyn`]), host
//!   time, and *capability hooks* (tracing spans, kernel reports,
//!   sanitizer, fault injection) that default to no-ops so simpler
//!   backends stay honest instead of faking data.
//! * **[`BackendExt`]** is a blanket extension carrying the typed
//!   generic conveniences (`try_alloc::<T>`, `htod`, `dtoh`,
//!   `launch(...)` with a closure) that a trait object cannot hold
//!   directly. It is implemented for every `Backend` including
//!   `dyn Backend`, so algorithm code takes `&mut dyn Backend` and
//!   keeps the exact call surface it had against [`Gpu`](crate::Gpu).
//!
//! [`Gpu`](crate::Gpu) is the **reference implementation**: fully metered, cost
//! modeled, sanitizer- and fault-capable. A real-GPU backend (see the
//! `topk-wgpu` crate, behind the workspace's `wgpu` feature) implements
//! the same trait, executing closure kernels through the portable
//! primitives host-side and offloading the radix-select pipeline to
//! WGSL compute shaders where an adapter exists.
//!
//! Kernels themselves stay portable because they only ever touch the
//! device through [`BlockCtx`] accessors and the pure lane-array
//! collectives in [`crate::warp`] — nothing in a kernel closure names a
//! backend.
//!
//! ```
//! use gpu_sim::{Backend, BackendExt, DeviceSpec, Gpu, LaunchConfig};
//!
//! fn double_on(dev: &mut dyn Backend) -> Vec<u32> {
//!     let buf = dev.htod("xs", &[1u32, 2, 3, 4]);
//!     dev.launch("double", LaunchConfig::grid_1d(1, 32), |ctx| {
//!         for i in 0..4 {
//!             let v = ctx.ld(&buf, i);
//!             ctx.st(&buf, i, v * 2);
//!         }
//!     });
//!     dev.dtoh(&buf)
//! }
//!
//! let mut gpu = Gpu::new(DeviceSpec::test_tiny());
//! assert_eq!(double_on(&mut gpu), vec![2, 4, 6, 8]);
//! ```

use crate::contract::KernelContract;
use crate::device::DeviceSpec;
use crate::error::SimError;
use crate::exec::{BlockCtx, LaunchConfig};
use crate::fault::{FaultEvent, FaultInjector};
use crate::gpu::KernelReport;
use crate::memory::{DeviceBuffer, DeviceScalar};
use crate::profile::Timeline;
use crate::sanitizer::{BufferShadow, SanitizerMode, SanitizerReport, ShadowToken};

/// Outcome of a successful [`Backend::grant_alloc`]: permission to
/// materialise a buffer, plus the sanitizer shadow the backend wants
/// attached to it (when one is armed). Opaque outside `gpu-sim`.
pub struct AllocGrant {
    pub(crate) shadow: Option<BufferShadow>,
}

impl AllocGrant {
    /// A grant with no sanitizer shadow (backends without a sanitizer).
    pub fn plain() -> Self {
        AllocGrant { shadow: None }
    }
}

/// A compute device that can run the workspace's top-K kernels.
///
/// Dyn-compatible: algorithms take `&mut dyn Backend`. The typed
/// conveniences live on [`BackendExt`]. Methods come in two tiers —
/// the required core every backend must implement, and capability
/// hooks with no-op defaults (tracing, sanitizer, fault injection)
/// that only instrumented backends override.
pub trait Backend: Send {
    // ---- identity -----------------------------------------------------

    /// Short backend identifier (`"gpu-sim"`, `"wgpu"`).
    fn backend_name(&self) -> &'static str;

    /// The device specification (SM count, bandwidth, launch overhead…).
    /// Cost-model consumers (the tuner's launch-sequence predictors)
    /// price plans against this, whichever backend runs them.
    fn spec(&self) -> &DeviceSpec;

    // ---- time ---------------------------------------------------------

    /// Device-time elapsed since construction or the last
    /// [`Backend::reset_profile`], µs. Simulated for [`Gpu`](crate::Gpu), measured
    /// for a real backend.
    fn elapsed_us(&self) -> f64;

    /// Account for host-side computation between launches.
    fn host_compute(&mut self, what: &str, us: f64);

    /// An explicit host synchronisation (stream sync).
    fn host_sync(&mut self);

    /// Zero the clock and clear timeline/report history.
    fn reset_profile(&mut self);

    // ---- memory -------------------------------------------------------

    /// Charge `len * elem_bytes` against device memory and return an
    /// [`AllocGrant`] carrying the shadow state to attach (shadows are
    /// per-element, hence the split arguments), or an out-of-memory /
    /// injected-fault error. [`BackendExt::try_alloc`] turns the grant
    /// into a typed [`DeviceBuffer`].
    fn grant_alloc(
        &mut self,
        label: &str,
        len: usize,
        elem_bytes: usize,
    ) -> Result<AllocGrant, SimError>;

    /// Record a buffer materialised from a grant (label, size, and its
    /// sanitizer token). Instrumented backends use this for leakcheck
    /// bookkeeping; the default drops it.
    fn note_buffer(&mut self, _label: &str, _bytes: usize, _token: Option<ShadowToken>) {}

    /// Release raw bytes back to the device allocator (error-path
    /// cleanup guards release whole workspaces this way).
    fn free_bytes(&mut self, bytes: usize);

    /// Device memory currently allocated, bytes.
    fn mem_allocated(&self) -> usize;

    /// Peak device memory allocated, bytes.
    fn mem_high_water(&self) -> usize;

    /// Pay the host→device transfer cost for `bytes`. `fallible`
    /// transfers surface injected corruption as
    /// [`SimError::TransferCorruption`]; infallible ones downgrade it
    /// to a stall. Called after the data is staged, so a backend that
    /// mirrors buffers onto a real device can upload here.
    fn charge_htod(&mut self, label: &str, bytes: usize, fallible: bool) -> Result<(), SimError>;

    /// Pay the device→host readback cost (host sync + link transfer)
    /// for `bytes`. `token` is the source buffer's sanitizer shadow so
    /// freed-buffer readbacks can be flagged; semantics of `fallible`
    /// mirror [`Backend::charge_htod`].
    fn charge_dtoh(
        &mut self,
        label: &str,
        bytes: usize,
        fallible: bool,
        token: Option<&ShadowToken>,
    ) -> Result<(), SimError>;

    // ---- execution ----------------------------------------------------

    /// Launch a kernel over `cfg.grid_dim` blocks of `cfg.block_dim`
    /// threads. The kernel body is written against the portable
    /// [`BlockCtx`] primitives (metered loads/stores, atomics, shared
    /// memory, grid sync) and the [`crate::warp`] collectives, so the
    /// same source runs on every backend that can execute it.
    fn launch_dyn(
        &mut self,
        name: &str,
        cfg: LaunchConfig,
        kernel: &(dyn Fn(&mut BlockCtx) + Sync),
    ) -> Result<&KernelReport, SimError>;

    /// Launch a kernel under a [`KernelContract`]: declared access
    /// footprints are statically verified against buffer lengths, the
    /// [`DeviceSpec`] and cross-block write disjointness *before* the
    /// kernel runs, and (when contract conformance is armed) observed
    /// accesses are checked against the declaration dynamically.
    ///
    /// The default ignores the contract and forwards to
    /// [`Backend::launch_dyn`], so un-instrumented backends run
    /// annotated algorithms unchanged; probe
    /// [`Backend::verifies_contracts`] to know whether declarations are
    /// actually enforced.
    fn launch_contract_dyn(
        &mut self,
        contract: &KernelContract,
        cfg: LaunchConfig,
        kernel: &(dyn Fn(&mut BlockCtx) + Sync),
    ) -> Result<&KernelReport, SimError> {
        self.launch_dyn(contract.name(), cfg, kernel)
    }

    /// Whether [`Backend::launch_contract_dyn`] actually verifies
    /// contracts on this backend (capability probe; `false` means
    /// contracts are accepted but ignored).
    fn verifies_contracts(&self) -> bool {
        false
    }

    // ---- capability hooks (default: not supported) --------------------

    /// Attribute subsequent launches to tracing span `span` (0 = none).
    fn set_span(&mut self, _span: u64) {}

    /// Stop attributing launches to a span.
    fn clear_span(&mut self) {}

    /// The span currently attributed to launches (0 = none).
    fn current_span(&self) -> u64 {
        0
    }

    /// All kernel reports since the last reset (empty when the backend
    /// does not keep them).
    fn reports(&self) -> &[KernelReport] {
        &[]
    }

    /// The recorded profiling timeline, if the backend keeps one.
    fn timeline(&self) -> Option<&Timeline> {
        None
    }

    /// Arm the sanitizer (no-op for backends without one).
    fn enable_sanitizer(&mut self, _mode: SanitizerMode) {}

    /// The armed sanitizer analyses (all-off by default).
    fn sanitizer_mode(&self) -> SanitizerMode {
        SanitizerMode::off()
    }

    /// Snapshot of sanitizer findings, or `None` when unsupported.
    fn sanitizer_report(&self) -> Option<SanitizerReport> {
        None
    }

    /// Run the leakcheck analysis now (diff allocator accounting
    /// against live tracked buffers). No-op without a sanitizer.
    fn run_leakcheck(&mut self) {}

    /// Attach a fault injector (no-op for backends without one).
    fn set_fault_injector(&mut self, _injector: FaultInjector) {}

    /// Every fault injected on this device so far (empty by default).
    fn fault_events(&self) -> &[FaultEvent] {
        &[]
    }
}

/// Typed conveniences over [`Backend`], blanket-implemented for every
/// backend *including* `dyn Backend`. Import this alongside `Backend`;
/// algorithm code calls these exactly like the old inherent [`Gpu`](crate::Gpu)
/// methods.
pub trait BackendExt: Backend {
    /// Fallible typed allocation: charge, materialise, register.
    fn try_alloc<T: DeviceScalar>(
        &mut self,
        label: &str,
        len: usize,
    ) -> Result<DeviceBuffer<T>, SimError> {
        let grant = self.grant_alloc(label, len, T::BYTES)?;
        let buf = match grant.shadow {
            Some(shadow) => DeviceBuffer::zeroed_with_shadow(label, len, shadow),
            None => DeviceBuffer::zeroed(label, len),
        };
        self.note_buffer(label, buf.size_bytes(), buf.sanitizer_token());
        Ok(buf)
    }

    /// Panicking wrapper over [`BackendExt::try_alloc`].
    fn alloc<T: DeviceScalar>(&mut self, label: &str, len: usize) -> DeviceBuffer<T> {
        self.try_alloc(label, len).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Release a buffer's bytes back to the device allocator and mark
    /// its sanitizer shadow freed (later accesses are use-after-free
    /// findings under memcheck).
    fn free<T: DeviceScalar>(&mut self, buf: &DeviceBuffer<T>) {
        if let Some(token) = buf.sanitizer_token() {
            token.mark_freed();
        }
        self.free_bytes(buf.size_bytes());
    }

    /// Fallible host→device upload into a fresh buffer.
    fn try_htod<T: DeviceScalar>(
        &mut self,
        label: &str,
        data: &[T],
    ) -> Result<DeviceBuffer<T>, SimError> {
        let buf = self.try_alloc::<T>(label, data.len())?;
        for (i, &v) in data.iter().enumerate() {
            buf.set(i, v);
        }
        match self.charge_htod(label, buf.size_bytes(), true) {
            Ok(()) => Ok(buf),
            Err(e) => {
                self.free(&buf);
                Err(e)
            }
        }
    }

    /// Panicking wrapper over [`BackendExt::try_htod`].
    fn htod<T: DeviceScalar>(&mut self, label: &str, data: &[T]) -> DeviceBuffer<T> {
        self.try_htod(label, data).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Copy a small host payload into an *existing* device buffer
    /// (parameter updates in host-driven loops). Infallible: injected
    /// corruption downgrades to a stall.
    fn htod_into<T: DeviceScalar>(&mut self, buf: &DeviceBuffer<T>, data: &[T]) {
        assert!(data.len() <= buf.len(), "htod_into overflows buffer");
        for (i, &v) in data.iter().enumerate() {
            buf.set(i, v);
        }
        match self.charge_htod("htod_into", data.len() * T::BYTES, false) {
            Ok(()) => {}
            Err(_) => unreachable!("infallible htod downgrades corruption"),
        }
    }

    /// Copy a device buffer back to the host (blocking; infallible —
    /// injected corruption downgrades to a stall).
    fn dtoh<T: DeviceScalar>(&mut self, buf: &DeviceBuffer<T>) -> Vec<T> {
        self.dtoh_range(buf, 0, buf.len())
    }

    /// Copy `len` elements starting at `offset` back to the host.
    fn dtoh_range<T: DeviceScalar>(
        &mut self,
        buf: &DeviceBuffer<T>,
        offset: usize,
        len: usize,
    ) -> Vec<T> {
        let token = buf.sanitizer_token();
        match self.charge_dtoh(buf.label(), len * T::BYTES, false, token.as_ref()) {
            Ok(()) => {}
            Err(_) => unreachable!("infallible dtoh downgrades corruption"),
        }
        (offset..offset + len).map(|i| buf.get(i)).collect()
    }

    /// Fallible device→host readback.
    fn try_dtoh<T: DeviceScalar>(&mut self, buf: &DeviceBuffer<T>) -> Result<Vec<T>, SimError> {
        self.try_dtoh_range(buf, 0, buf.len())
    }

    /// Fallible counterpart of [`BackendExt::dtoh_range`].
    fn try_dtoh_range<T: DeviceScalar>(
        &mut self,
        buf: &DeviceBuffer<T>,
        offset: usize,
        len: usize,
    ) -> Result<Vec<T>, SimError> {
        if offset + len > buf.len() {
            return Err(SimError::OutOfBounds {
                buffer: buf.label().to_string(),
                idx: offset + len - 1,
                len: buf.len(),
            });
        }
        let token = buf.sanitizer_token();
        self.charge_dtoh(buf.label(), len * T::BYTES, true, token.as_ref())?;
        Ok((offset..offset + len).map(|i| buf.get(i)).collect())
    }

    /// Fallible kernel launch; see [`Backend::launch_dyn`].
    fn try_launch<F>(
        &mut self,
        name: &str,
        cfg: LaunchConfig,
        kernel: F,
    ) -> Result<&KernelReport, SimError>
    where
        F: Fn(&mut BlockCtx) + Sync,
    {
        self.launch_dyn(name, cfg, &kernel)
    }

    /// Panicking wrapper over [`BackendExt::try_launch`].
    fn launch<F>(&mut self, name: &str, cfg: LaunchConfig, kernel: F) -> &KernelReport
    where
        F: Fn(&mut BlockCtx) + Sync,
    {
        match self.launch_dyn(name, cfg, &kernel) {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible contract-carrying launch; see
    /// [`Backend::launch_contract_dyn`]. The kernel name comes from the
    /// contract.
    fn try_launch_checked<F>(
        &mut self,
        contract: &KernelContract,
        cfg: LaunchConfig,
        kernel: F,
    ) -> Result<&KernelReport, SimError>
    where
        F: Fn(&mut BlockCtx) + Sync,
    {
        self.launch_contract_dyn(contract, cfg, &kernel)
    }

    /// Panicking wrapper over [`BackendExt::try_launch_checked`].
    fn launch_checked<F>(
        &mut self,
        contract: &KernelContract,
        cfg: LaunchConfig,
        kernel: F,
    ) -> &KernelReport
    where
        F: Fn(&mut BlockCtx) + Sync,
    {
        match self.launch_contract_dyn(contract, cfg, &kernel) {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        }
    }
}

impl<B: Backend + ?Sized> BackendExt for B {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;
    use crate::gpu::Gpu;
    use crate::pool::BlockPool;

    fn dev() -> Gpu {
        Gpu::with_pool(DeviceSpec::test_tiny(), BlockPool::new(1))
    }

    /// The whole point: this helper only knows `dyn Backend`.
    fn roundtrip(dev: &mut dyn Backend) -> Vec<u32> {
        let buf = dev.htod("xs", &[5u32, 6, 7]);
        dev.launch("incr", LaunchConfig::grid_1d(1, 32), |ctx| {
            for i in 0..3 {
                let v = ctx.ld(&buf, i);
                ctx.st(&buf, i, v + 1);
            }
        });
        let out = dev.dtoh(&buf);
        dev.free(&buf);
        out
    }

    #[test]
    fn gpu_is_a_backend() {
        let mut g = dev();
        assert_eq!(g.backend_name(), "gpu-sim");
        assert_eq!(roundtrip(&mut g), vec![6, 7, 8]);
        assert_eq!(g.mem_allocated(), 0, "free through the trait works");
        assert_eq!(Backend::reports(&g).len(), 1);
        assert!(Backend::elapsed_us(&g) > 0.0);
    }

    #[test]
    fn trait_alloc_matches_inherent_accounting() {
        let mut g = dev();
        let a = BackendExt::try_alloc::<u32>(&mut g, "a", 64).unwrap();
        assert_eq!(g.mem_allocated(), 256);
        let d: &mut dyn Backend = &mut g;
        let b = d.try_alloc::<f32>("b", 64).unwrap();
        assert_eq!(g.mem_allocated(), 512);
        g.free(&a);
        g.free(&b);
        assert_eq!(g.mem_allocated(), 0);
    }

    #[test]
    fn oob_launch_errors_through_the_trait() {
        let mut g = dev();
        let d: &mut dyn Backend = &mut g;
        let buf = d.htod("small", &[0u32; 4]);
        let err = d
            .try_launch("oob", LaunchConfig::grid_1d(1, 32), |ctx| {
                let _ = ctx.ld(&buf, 99);
            })
            .unwrap_err();
        assert!(matches!(
            err,
            SimError::OutOfBounds {
                len: 4,
                idx: 99,
                ..
            }
        ));
        let err = d.try_launch("bad-cfg", LaunchConfig::grid_1d(0, 32), |_| {});
        assert!(matches!(err, Err(SimError::InvalidLaunch(_))));
    }

    #[test]
    fn fallible_dtoh_range_checks_bounds() {
        let mut g = dev();
        let d: &mut dyn Backend = &mut g;
        let buf = d.htod("xs", &[1u32, 2, 3]);
        assert_eq!(d.try_dtoh_range(&buf, 1, 2).unwrap(), vec![2, 3]);
        assert!(matches!(
            d.try_dtoh_range(&buf, 2, 2),
            Err(SimError::OutOfBounds { .. })
        ));
    }
}
