//! # gpu-sim — a deterministic GPU execution simulator
//!
//! This crate is the hardware substrate for the Rust reproduction of
//! *"Parallel Top-K Algorithms on GPU: A Comprehensive Study and New
//! Methods"* (SC '23). The paper's algorithms are CUDA kernels; this
//! environment has no GPU, so the kernels run against a simulated device
//! instead:
//!
//! * [`DeviceSpec`] describes a GPU (A100 / H100 / A10 presets) — SM
//!   count, HBM bandwidth, kernel-launch overhead, PCIe link, …
//! * [`Gpu`] is the device handle: it allocates [`DeviceBuffer`]s,
//!   performs metered host↔device copies, launches kernels and keeps a
//!   simulated clock plus a [`Timeline`](profile) of events.
//! * Kernels are Rust closures run once per *thread block* (the
//!   granularity CUDA schedules onto SMs). Blocks may execute in
//!   parallel on a host thread pool; correctness does not depend on the
//!   schedule because all device memory is atomic-backed.
//! * [`warp`] provides lockstep 32-lane warp primitives — `ballot`,
//!   shuffles, lane scans and bitonic exchanges — so warp-synchronous
//!   algorithms (WarpSelect, GridSelect) translate directly.
//! * [`cost`] converts *metered* traffic (every buffer access is
//!   counted) into simulated time using an analytic model: occupancy ×
//!   bandwidth for memory, launch overhead per kernel, latency +
//!   bandwidth for PCIe. The paper's speedups are all explained by
//!   these counted quantities, which is what makes the reproduction's
//!   *shapes* faithful even though absolute microseconds are not.
//! * [`sanitizer`] is a compute-sanitizer analogue: racecheck,
//!   initcheck and memcheck analyses run over every kernel via the
//!   same metered accessors, behind a zero-cost-when-off
//!   [`SanitizerMode`] (`gpu.enable_sanitizer(SanitizerMode::full())`).
//!
//! ## Quick example
//!
//! ```
//! use gpu_sim::{Gpu, DeviceSpec, LaunchConfig};
//!
//! let mut gpu = Gpu::new(DeviceSpec::a100());
//! let data: Vec<u32> = (0..1024).collect();
//! let buf = gpu.htod("input", &data);
//! let out = gpu.alloc::<u32>("output", 1);
//!
//! // A trivial reduction kernel: each block sums a slice, atomically
//! // accumulating into `out[0]`.
//! let cfg = LaunchConfig::grid_1d(4, 256);
//! gpu.launch("sum", cfg, |ctx| {
//!     let per_block = 1024 / ctx.grid_dim;
//!     let start = ctx.block_idx * per_block;
//!     let mut acc = 0u32;
//!     for i in start..start + per_block {
//!         acc = acc.wrapping_add(ctx.ld(&buf, i));
//!     }
//!     ctx.atomic_add(&out, 0, acc);
//! });
//!
//! let result = gpu.dtoh(&out);
//! assert_eq!(result[0], (0..1024u32).sum::<u32>());
//! assert!(gpu.elapsed_us() > 0.0);
//! ```

pub mod backend;
pub mod conformance;
pub mod contract;
pub mod cost;
pub mod device;
pub mod error;
pub mod exec;
pub mod fault;
pub mod gpu;
pub mod memory;
pub mod pool;
pub mod profile;
pub mod sanitizer;
pub mod trace;
pub mod warp;

pub use backend::{AllocGrant, Backend, BackendExt};
pub use contract::{BufferAccess, ContractIssue, Footprint, KernelContract};
pub use cost::{sequence_cost, CostBreakdown, KernelStats, PlannedLaunch};
pub use device::DeviceSpec;
pub use error::SimError;
pub use exec::{BlockCtx, LaunchConfig, SharedMem};
pub use fault::{FaultEvent, FaultInjector, FaultKind, FaultPlan, ScriptedFault};
pub use gpu::{Gpu, KernelReport};
pub use memory::{AtomicCell, DeviceBuffer, DeviceScalar};
pub use pool::BlockPool;
pub use profile::{
    render_roofline, roofline, Bound, EventKind, RooflineRow, Timeline, TimelineEvent,
};
pub use sanitizer::{
    AccessKind, Analysis, SanitizerCounts, SanitizerFinding, SanitizerMode, SanitizerReport,
    ShadowToken,
};
pub use trace::{to_chrome_trace, TraceBuilder};
