//! Backend-conformance checks: the executable contract of [`Backend`].
//!
//! Every backend — the simulator, the wgpu backend, future ones — must
//! pass the same behavioural suite, or algorithms ported to
//! `&mut dyn Backend` silently mean different things on different
//! devices. Each `check_*` function takes a backend handle, asserts
//! one slice of the contract (panicking with a descriptive message on
//! violation), and leaves the backend with no extra memory allocated;
//! [`run_all`] runs the full battery. Backend crates call these from
//! their own test targets, so one contract has many enforcers:
//!
//! ```
//! use gpu_sim::{conformance, DeviceSpec, Gpu};
//!
//! let mut gpu = Gpu::new(DeviceSpec::test_tiny());
//! conformance::run_all(&mut gpu);
//! ```
//!
//! The checks use a seeded xorshift generator rather than a test-only
//! RNG dependency so the module ships in the library proper and every
//! run is reproducible.

use crate::backend::{Backend, BackendExt};
use crate::device::WARP_SIZE;
use crate::error::SimError;
use crate::exec::LaunchConfig;
use crate::warp::{self, Lanes};

/// Deterministic xorshift64* stream for test data.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed.max(1))
    }

    fn next_u32(&mut self) -> u32 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 32) as u32
    }
}

/// Host↔device transfers must round-trip exactly and the allocator
/// must account for every byte until freed.
pub fn check_transfer_roundtrip(dev: &mut dyn Backend) {
    let base = dev.mem_allocated();
    let mut rng = XorShift::new(7);
    let data: Vec<u32> = (0..257).map(|_| rng.next_u32()).collect();

    let buf = dev.htod("conformance-rt", &data);
    assert_eq!(
        dev.mem_allocated(),
        base + data.len() * 4,
        "htod must charge the allocator for every element"
    );
    assert!(
        dev.mem_high_water() >= dev.mem_allocated(),
        "high-water mark cannot sit below the live total"
    );
    assert_eq!(
        dev.dtoh(&buf),
        data,
        "dtoh must return the bytes htod staged"
    );
    assert_eq!(
        dev.dtoh_range(&buf, 100, 7),
        data[100..107],
        "ranged readback must honour offsets"
    );

    dev.free(&buf);
    assert_eq!(dev.mem_allocated(), base, "free must return every byte");
}

/// Fallible entry points must report bounds violations as typed
/// errors, not panics, and failed allocations must not leak.
pub fn check_fallible_paths(dev: &mut dyn Backend) {
    let base = dev.mem_allocated();
    let buf = dev.try_htod("conformance-err", &[1u32, 2, 3]).unwrap();

    assert!(
        matches!(
            dev.try_dtoh_range(&buf, 2, 5),
            Err(SimError::OutOfBounds { .. })
        ),
        "out-of-range readback must be OutOfBounds"
    );
    assert_eq!(dev.try_dtoh(&buf).unwrap(), vec![1, 2, 3]);

    let huge = dev.spec().device_mem_bytes;
    assert!(
        dev.try_alloc::<u32>("conformance-huge", huge).is_err(),
        "device-exceeding allocation must fail"
    );
    dev.free(&buf);
    assert_eq!(dev.mem_allocated(), base, "error paths must not leak");
}

/// Kernel launches must reject bad grids and surface out-of-bounds
/// device accesses as errors carrying the offending index.
pub fn check_launch_errors(dev: &mut dyn Backend) {
    let base = dev.mem_allocated();
    let buf = dev.htod("conformance-oob", &[0u32; 8]);

    // Two conforming behaviours: fail the launch with the offending
    // index, or (a memcheck-armed backend) trap the access and record
    // it as a finding while the launch completes.
    let outcome = dev
        .try_launch(
            "conformance oob-ld",
            LaunchConfig::grid_1d(1, WARP_SIZE),
            |ctx| {
                let _ = ctx.ld(&buf, 64);
            },
        )
        .map(|report| report.sanitizer_findings);
    match outcome {
        Err(err) => assert!(
            matches!(
                err,
                SimError::OutOfBounds {
                    len: 8,
                    idx: 64,
                    ..
                }
            ),
            "expected OutOfBounds{{len: 8, idx: 64}}, got {err:?}"
        ),
        Ok(findings) => assert!(
            findings > 0,
            "an out-of-bounds load must either error or be flagged by the sanitizer"
        ),
    }

    assert!(
        matches!(
            dev.try_launch(
                "conformance bad-grid",
                LaunchConfig::grid_1d(0, WARP_SIZE),
                |_| {}
            ),
            Err(SimError::InvalidLaunch(_))
        ),
        "a zero-block grid must be InvalidLaunch"
    );

    dev.free(&buf);
    assert_eq!(dev.mem_allocated(), base);
}

/// Warp collectives executed inside a launched kernel must match their
/// scalar reference semantics lane-for-lane.
pub fn check_warp_primitives(dev: &mut dyn Backend) {
    let base = dev.mem_allocated();
    let mut rng = XorShift::new(42);
    let vals: Lanes<u32> = std::array::from_fn(|_| rng.next_u32() % 1000);
    let preds: Lanes<bool> = std::array::from_fn(|i| vals[i].is_multiple_of(3));

    // Scalar references.
    let ref_ballot = preds
        .iter()
        .enumerate()
        .fold(0u32, |m, (i, &p)| if p { m | (1 << i) } else { m });
    let ref_sum: u32 = vals.iter().sum();
    let ref_min = *vals.iter().min().unwrap();
    let ref_max = *vals.iter().max().unwrap();
    let mut ref_excl = [0u32; WARP_SIZE];
    let mut running = 0;
    for i in 0..WARP_SIZE {
        ref_excl[i] = running;
        running += vals[i];
    }
    let ref_incl: Vec<u32> = (0..WARP_SIZE).map(|i| ref_excl[i] + vals[i]).collect();

    // Slots: ballot, sum, min, max, shfl(5), then the two scans.
    let out = dev.alloc::<u32>("conformance-warp", 5 + 2 * WARP_SIZE);
    dev.launch(
        "conformance warp",
        LaunchConfig::grid_1d(1, WARP_SIZE),
        |ctx| {
            ctx.st(&out, 0, warp::ballot(&preds));
            ctx.st(&out, 1, warp::reduce_sum(&vals));
            ctx.st(&out, 2, warp::reduce_min(&vals));
            ctx.st(&out, 3, warp::reduce_max(&vals));
            ctx.st(&out, 4, warp::shfl(&vals, 5));
            let excl = warp::exclusive_scan(&vals);
            let incl = warp::inclusive_scan(&vals);
            for lane in 0..WARP_SIZE {
                ctx.st(&out, 5 + lane, excl[lane]);
                ctx.st(&out, 5 + WARP_SIZE + lane, incl[lane]);
            }
        },
    );
    let got = dev.dtoh(&out);
    assert_eq!(got[0], ref_ballot, "ballot: lane i must drive bit i");
    assert_eq!(got[1], ref_sum, "reduce_sum");
    assert_eq!(got[2], ref_min, "reduce_min");
    assert_eq!(got[3], ref_max, "reduce_max");
    assert_eq!(got[4], vals[5], "shfl must broadcast the source lane");
    assert_eq!(&got[5..5 + WARP_SIZE], &ref_excl, "exclusive_scan");
    assert_eq!(&got[5 + WARP_SIZE..], &ref_incl[..], "inclusive_scan");

    // lane_rank composes with ballot: rank of lane i among set bits
    // strictly below it.
    for lane in 0..WARP_SIZE {
        let expect = (ref_ballot & ((1u32 << lane) - 1)).count_ones();
        assert_eq!(
            warp::lane_rank(ref_ballot, lane),
            expect,
            "lane_rank({lane})"
        );
    }

    dev.free(&out);
    assert_eq!(dev.mem_allocated(), base);
}

/// Device time must advance monotonically through work and host
/// compute must be chargeable.
pub fn check_clock_monotonic(dev: &mut dyn Backend) {
    let t0 = dev.elapsed_us();
    let buf = dev.htod("conformance-clock", &[0u32; 64]);
    let t1 = dev.elapsed_us();
    assert!(t1 >= t0, "htod must not rewind the clock");
    dev.launch(
        "conformance tick",
        LaunchConfig::grid_1d(1, WARP_SIZE),
        |ctx| {
            let v = ctx.ld(&buf, 0);
            ctx.st(&buf, 0, v + 1);
        },
    );
    let t2 = dev.elapsed_us();
    assert!(t2 > t1, "a kernel launch must advance device time");
    dev.host_compute("conformance host work", 5.0);
    assert!(
        dev.elapsed_us() >= t2 + 5.0,
        "host_compute must charge time"
    );
    dev.host_sync();
    dev.free(&buf);
}

/// The full battery, in dependency-free order.
pub fn run_all(dev: &mut dyn Backend) {
    check_transfer_roundtrip(dev);
    check_fallible_paths(dev);
    check_launch_errors(dev);
    check_warp_primitives(dev);
    check_clock_monotonic(dev);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xorshift_is_deterministic_and_nontrivial() {
        let mut a = XorShift::new(9);
        let mut b = XorShift::new(9);
        let xs: Vec<u32> = (0..8).map(|_| a.next_u32()).collect();
        let ys: Vec<u32> = (0..8).map(|_| b.next_u32()).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
    }
}
