//! Deterministic, seeded fault injection for the simulated device.
//!
//! A production top-K serving system must prove that every query
//! reaches a terminal result no matter which device fails, hangs, or
//! slows down. Real GPUs fail in a handful of well-known ways — driver
//! launch rejections, transient ECC faults, watchdog-triggering hangs,
//! allocator failures under fragmentation, flaky PCIe links, and
//! straggler devices — and this module models exactly that taxonomy
//! ([`FaultKind`]) as *injectable* faults:
//!
//! * A [`FaultPlan`] describes the chaos schedule: per-fault-kind
//!   probabilities plus an explicit [`ScriptedFault`] list for
//!   targeted tests, all derived from one seed.
//! * [`FaultPlan::injector_for`] builds one [`FaultInjector`] per
//!   device. Each injector owns a private PRNG seeded from
//!   `(plan.seed, device)`, so the fault schedule of a device depends
//!   only on the seed and the sequence of operations that device
//!   performs — **the same seed always yields the same schedule**,
//!   which is what lets a chaos test assert bitwise determinism.
//! * [`Gpu`](crate::Gpu) consults its injector (when one is attached
//!   via [`Gpu::set_fault_injector`](crate::Gpu::set_fault_injector))
//!   on every allocation, kernel launch and PCIe transfer, and records
//!   every injected fault as a [`FaultEvent`] for reports and traces.
//!
//! Injected faults surface as ordinary [`SimError`](crate::SimError)
//! values on the fallible entry points (`try_alloc`, `try_launch`,
//! `try_htod`, `try_dtoh`), so a serving layer handles a chaos-injected
//! launch failure with exactly the code that would handle a real one.

use std::fmt;

/// The taxonomy of injectable device faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The driver rejects a kernel launch before it runs
    /// ([`SimError::KernelLaunchFault`](crate::SimError)).
    LaunchFail,
    /// The kernel starts but aborts with a transient compute fault
    /// (modelled ECC/parity error); its outputs are undefined
    /// ([`SimError::TransientFault`](crate::SimError)).
    TransientCompute,
    /// The kernel never completes: the modelled watchdog fires after
    /// [`FaultPlan::hang_timeout_us`] of simulated time
    /// ([`SimError::DeviceHang`](crate::SimError)).
    DeviceHang,
    /// A device allocation fails despite apparent free memory
    /// (fragmentation / transient allocator failure, surfaced as
    /// [`SimError::OutOfDeviceMemory`](crate::SimError)).
    Oom,
    /// A PCIe transfer stalls: it completes, but
    /// [`FaultPlan::stall_multiplier`]× slower.
    TransferStall,
    /// A PCIe transfer is corrupted and abandoned
    /// ([`SimError::TransferCorruption`](crate::SimError)). Only the
    /// fallible transfer entry points inject this; the infallible ones
    /// downgrade it to a stall so they never have to panic.
    TransferCorruption,
    /// The device driver crashes mid-launch: the calling thread
    /// panics. This is the fault a serving layer's panic-isolation
    /// path exists for.
    WorkerPanic,
    /// The device is a straggler: kernel execution time is scaled by
    /// [`FaultPlan::slow_multiplier`] for the device's whole lifetime.
    /// Decided once at injector construction, not per launch.
    SlowDevice,
}

impl FaultKind {
    /// Every fault kind, in a stable order — the label space an
    /// observability layer pre-registers fault counters over.
    pub const ALL: [FaultKind; 8] = [
        FaultKind::LaunchFail,
        FaultKind::TransientCompute,
        FaultKind::DeviceHang,
        FaultKind::Oom,
        FaultKind::TransferStall,
        FaultKind::TransferCorruption,
        FaultKind::WorkerPanic,
        FaultKind::SlowDevice,
    ];

    /// Stable snake_case label, suitable as a metric label value.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::LaunchFail => "launch_fail",
            FaultKind::TransientCompute => "transient_compute",
            FaultKind::DeviceHang => "device_hang",
            FaultKind::Oom => "oom",
            FaultKind::TransferStall => "transfer_stall",
            FaultKind::TransferCorruption => "transfer_corruption",
            FaultKind::WorkerPanic => "worker_panic",
            FaultKind::SlowDevice => "slow_device",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The operation site a fault fires at. Each site keeps its own
/// per-device operation counter, so a [`ScriptedFault`] can say "the
/// 3rd allocation on device 1".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Site {
    Alloc,
    Launch,
    Transfer,
}

impl FaultKind {
    fn site(self) -> Option<Site> {
        match self {
            FaultKind::Oom => Some(Site::Alloc),
            FaultKind::LaunchFail
            | FaultKind::TransientCompute
            | FaultKind::DeviceHang
            | FaultKind::WorkerPanic => Some(Site::Launch),
            FaultKind::TransferStall | FaultKind::TransferCorruption => Some(Site::Transfer),
            FaultKind::SlowDevice => None,
        }
    }
}

/// A precisely targeted fault: fire `kind` on the `nth` (0-based)
/// eligible operation of `device`. Eligible operations are counted per
/// site: allocations for [`FaultKind::Oom`], kernel launches for
/// launch/compute/hang/panic faults, PCIe transfers for transfer
/// faults. A scripted [`FaultKind::SlowDevice`] marks the device slow
/// regardless of `nth`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScriptedFault {
    /// Device (pool index) the fault targets.
    pub device: usize,
    /// Which fault to inject.
    pub kind: FaultKind,
    /// 0-based index of the eligible operation it fires on.
    pub nth: u64,
}

/// A seeded chaos schedule: fault probabilities, fault parameters, and
/// an optional scripted fault list. One plan drives a whole device
/// pool; derive per-device injectors with [`FaultPlan::injector_for`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Master seed. Device `d`'s schedule is a pure function of
    /// `(seed, d)` and the operations `d` performs.
    pub seed: u64,
    /// Probability a kernel launch is rejected by the driver.
    pub launch_fail_rate: f64,
    /// Probability a kernel aborts with a transient compute fault.
    pub transient_rate: f64,
    /// Probability a kernel hangs until the watchdog fires.
    pub hang_rate: f64,
    /// Probability a launch panics the calling thread (driver crash).
    pub panic_rate: f64,
    /// Probability a device allocation fails.
    pub oom_rate: f64,
    /// Probability a PCIe transfer stalls.
    pub transfer_stall_rate: f64,
    /// Probability a PCIe transfer is corrupted (fallible entry points
    /// only; infallible ones downgrade it to a stall).
    pub transfer_corruption_rate: f64,
    /// Probability a device is a straggler for its whole lifetime.
    pub slow_device_rate: f64,
    /// Execution-time multiplier of a slow device (≥ 1).
    pub slow_multiplier: f64,
    /// Transfer-time multiplier of a stalled transfer (≥ 1).
    pub stall_multiplier: f64,
    /// Simulated µs a hung kernel burns before the watchdog fires.
    pub hang_timeout_us: u64,
    /// Targeted faults, checked before any probabilistic roll.
    pub scripted: Vec<ScriptedFault>,
}

impl FaultPlan {
    /// A quiet plan (all rates zero) carrying only the seed — the
    /// starting point for scripted-fault tests.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            launch_fail_rate: 0.0,
            transient_rate: 0.0,
            hang_rate: 0.0,
            panic_rate: 0.0,
            oom_rate: 0.0,
            transfer_stall_rate: 0.0,
            transfer_corruption_rate: 0.0,
            slow_device_rate: 0.0,
            slow_multiplier: 4.0,
            stall_multiplier: 8.0,
            hang_timeout_us: 50_000,
            scripted: Vec::new(),
        }
    }

    /// A balanced chaos mix at the given base `rate`: transient
    /// launch/compute/allocator/transfer faults at `rate`, the severe
    /// kinds (hang, panic) at a fraction of it, and one device in five
    /// a straggler on average.
    pub fn chaos(seed: u64, rate: f64) -> Self {
        let rate = rate.clamp(0.0, 1.0);
        FaultPlan {
            launch_fail_rate: rate,
            transient_rate: rate,
            hang_rate: rate / 5.0,
            panic_rate: rate / 10.0,
            oom_rate: rate,
            transfer_stall_rate: rate,
            transfer_corruption_rate: rate / 2.0,
            slow_device_rate: 0.2,
            ..FaultPlan::seeded(seed)
        }
    }

    /// Builder-style addition of one scripted fault.
    #[must_use]
    pub fn with_scripted(mut self, fault: ScriptedFault) -> Self {
        self.scripted.push(fault);
        self
    }

    /// The injector for one pool device. Two calls with the same
    /// `(plan, device)` produce identical injectors.
    pub fn injector_for(&self, device: usize) -> FaultInjector {
        FaultInjector::new(self.clone(), device)
    }
}

/// One injected fault, as recorded in the device's fault log. The log
/// *is* the fault schedule: diffing two runs' logs is how determinism
/// is enforced in CI.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// 0-based position in this device's fault log.
    pub seq: u64,
    /// Device the fault fired on.
    pub device: usize,
    /// What fired.
    pub kind: FaultKind,
    /// The operation it fired on (kernel name, buffer label, …).
    pub context: String,
    /// Simulated device clock when it fired, µs.
    pub clock_us: f64,
}

/// Per-device fault source: a seeded PRNG plus the plan's rates and
/// scripted faults (filtered to this device). Attached to a
/// [`Gpu`](crate::Gpu) with
/// [`Gpu::set_fault_injector`](crate::Gpu::set_fault_injector).
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    device: usize,
    rng: u64,
    slow: bool,
    allocs: u64,
    launches: u64,
    transfers: u64,
    log: Vec<FaultEvent>,
}

impl FaultInjector {
    fn new(mut plan: FaultPlan, device: usize) -> Self {
        plan.scripted.retain(|s| s.device == device);
        // SplitMix64 state from (seed, device); golden-ratio stride
        // decorrelates adjacent devices.
        let rng = plan
            .seed
            .wrapping_add((device as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut inj = FaultInjector {
            plan,
            device,
            rng,
            slow: false,
            allocs: 0,
            launches: 0,
            transfers: 0,
            log: Vec::new(),
        };
        let scripted_slow = inj
            .plan
            .scripted
            .iter()
            .any(|s| s.kind == FaultKind::SlowDevice);
        if scripted_slow || inj.chance(inj.plan.slow_device_rate) {
            inj.slow = true;
            inj.record(FaultKind::SlowDevice, "device lifetime", 0.0);
        }
        inj
    }

    /// The pool device this injector drives.
    pub fn device(&self) -> usize {
        self.device
    }

    /// The plan the injector was derived from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether this device rolled the straggler fault.
    pub fn is_slow(&self) -> bool {
        self.slow
    }

    /// Every fault injected so far, in firing order.
    pub fn log(&self) -> &[FaultEvent] {
        &self.log
    }

    /// SplitMix64 step.
    fn next_u64(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` (53-bit precision).
    fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn chance(&mut self, p: f64) -> bool {
        p > 0.0 && self.uniform() < p
    }

    fn record(&mut self, kind: FaultKind, context: &str, clock_us: f64) {
        self.log.push(FaultEvent {
            seq: self.log.len() as u64,
            device: self.device,
            kind,
            context: context.to_string(),
            clock_us,
        });
    }

    fn scripted_hit(&self, site: Site, nth: u64) -> Option<FaultKind> {
        self.plan
            .scripted
            .iter()
            .find(|s| s.kind.site() == Some(site) && s.nth == nth)
            .map(|s| s.kind)
    }

    /// Consult the injector for one device allocation. `true` means
    /// the allocation must fail with an out-of-memory error.
    pub(crate) fn on_alloc(&mut self, label: &str, clock_us: f64) -> bool {
        let nth = self.allocs;
        self.allocs += 1;
        let hit = self.scripted_hit(Site::Alloc, nth).is_some() || self.chance(self.plan.oom_rate);
        if hit {
            self.record(FaultKind::Oom, label, clock_us);
        }
        hit
    }

    /// Consult the injector for one kernel launch. A returned kind is
    /// one of the launch-site faults.
    pub(crate) fn on_launch(&mut self, name: &str, clock_us: f64) -> Option<FaultKind> {
        let nth = self.launches;
        self.launches += 1;
        let kind = self.scripted_hit(Site::Launch, nth).or_else(|| {
            let (panic_r, hang_r, transient_r, fail_r) = (
                self.plan.panic_rate,
                self.plan.hang_rate,
                self.plan.transient_rate,
                self.plan.launch_fail_rate,
            );
            let total = panic_r + hang_r + transient_r + fail_r;
            if total <= 0.0 {
                return None;
            }
            let x = self.uniform();
            if x < panic_r {
                Some(FaultKind::WorkerPanic)
            } else if x < panic_r + hang_r {
                Some(FaultKind::DeviceHang)
            } else if x < panic_r + hang_r + transient_r {
                Some(FaultKind::TransientCompute)
            } else if x < total {
                Some(FaultKind::LaunchFail)
            } else {
                None
            }
        });
        if let Some(kind) = kind {
            self.record(kind, name, clock_us);
        }
        kind
    }

    /// Consult the injector for one PCIe transfer.
    pub(crate) fn on_transfer(&mut self, what: &str, clock_us: f64) -> Option<FaultKind> {
        let nth = self.transfers;
        self.transfers += 1;
        let kind = self.scripted_hit(Site::Transfer, nth).or_else(|| {
            let (corrupt_r, stall_r) = (
                self.plan.transfer_corruption_rate,
                self.plan.transfer_stall_rate,
            );
            let total = corrupt_r + stall_r;
            if total <= 0.0 {
                return None;
            }
            let x = self.uniform();
            if x < corrupt_r {
                Some(FaultKind::TransferCorruption)
            } else if x < total {
                Some(FaultKind::TransferStall)
            } else {
                None
            }
        });
        if let Some(kind) = kind {
            self.record(kind, what, clock_us);
        }
        kind
    }

    /// Execution-time multiplier for this device's kernels.
    pub(crate) fn exec_multiplier(&self) -> f64 {
        if self.slow {
            self.plan.slow_multiplier.max(1.0)
        } else {
            1.0
        }
    }

    /// Transfer-time multiplier of a stalled transfer.
    pub(crate) fn stall_multiplier(&self) -> f64 {
        self.plan.stall_multiplier.max(1.0)
    }

    /// The watchdog timeout a hung kernel burns, µs.
    pub(crate) fn hang_timeout_us(&self) -> u64 {
        self.plan.hang_timeout_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(inj: &mut FaultInjector, ops: usize) -> Vec<(u64, FaultKind)> {
        for i in 0..ops {
            inj.on_alloc("buf", i as f64);
            inj.on_launch("kern", i as f64);
            inj.on_transfer("copy", i as f64);
        }
        inj.log().iter().map(|e| (e.seq, e.kind)).collect()
    }

    #[test]
    fn same_seed_same_schedule() {
        let plan = FaultPlan::chaos(42, 0.2);
        let a = drive(&mut plan.injector_for(0), 200);
        let b = drive(&mut plan.injector_for(0), 200);
        assert_eq!(a, b);
        assert!(!a.is_empty(), "20% chaos over 600 ops must fire");
    }

    #[test]
    fn different_seeds_or_devices_differ() {
        let a = drive(&mut FaultPlan::chaos(1, 0.2).injector_for(0), 200);
        let b = drive(&mut FaultPlan::chaos(2, 0.2).injector_for(0), 200);
        let c = drive(&mut FaultPlan::chaos(1, 0.2).injector_for(1), 200);
        assert_ne!(a, b, "seeds must decorrelate");
        assert_ne!(a, c, "devices must decorrelate");
    }

    #[test]
    fn quiet_plan_never_fires() {
        let log = drive(&mut FaultPlan::seeded(7).injector_for(0), 500);
        assert!(log.is_empty());
    }

    #[test]
    fn scripted_faults_fire_on_the_exact_operation() {
        let plan = FaultPlan::seeded(0)
            .with_scripted(ScriptedFault {
                device: 0,
                kind: FaultKind::Oom,
                nth: 2,
            })
            .with_scripted(ScriptedFault {
                device: 0,
                kind: FaultKind::DeviceHang,
                nth: 1,
            })
            .with_scripted(ScriptedFault {
                device: 1,
                kind: FaultKind::LaunchFail,
                nth: 0,
            });
        let mut inj = plan.injector_for(0);
        assert!(!inj.on_alloc("a0", 0.0));
        assert!(!inj.on_alloc("a1", 0.0));
        assert!(inj.on_alloc("a2", 0.0), "3rd alloc must OOM");
        assert_eq!(inj.on_launch("k0", 0.0), None);
        assert_eq!(inj.on_launch("k1", 0.0), Some(FaultKind::DeviceHang));
        // Device 1's script does not leak onto device 0.
        assert_eq!(inj.on_launch("k2", 0.0), None);
        let mut other = plan.injector_for(1);
        assert_eq!(other.on_launch("k0", 0.0), Some(FaultKind::LaunchFail));
    }

    #[test]
    fn scripted_slow_device_scales_execution() {
        let plan = FaultPlan::seeded(3).with_scripted(ScriptedFault {
            device: 0,
            kind: FaultKind::SlowDevice,
            nth: 0,
        });
        let inj = plan.injector_for(0);
        assert!(inj.is_slow());
        assert_eq!(inj.exec_multiplier(), plan.slow_multiplier);
        assert_eq!(inj.log().len(), 1);
        let other = plan.injector_for(1);
        assert!(!other.is_slow());
        assert_eq!(other.exec_multiplier(), 1.0);
    }

    #[test]
    fn rates_are_roughly_honoured() {
        let mut plan = FaultPlan::seeded(9);
        plan.oom_rate = 0.5;
        let mut inj = plan.injector_for(0);
        let fails = (0..1000).filter(|_| inj.on_alloc("b", 0.0)).count();
        assert!((350..650).contains(&fails), "got {fails} of ~500");
    }
}
