//! Device memory: atomic-backed buffers with traffic metering hooks.
//!
//! CUDA kernels freely race on global memory (disjoint writes, atomics,
//! last-write-wins). To model that soundly in Rust while still running
//! thread blocks in parallel on host threads, every [`DeviceBuffer`]
//! element is stored in an atomic cell (`AtomicU32`/`AtomicU64`) and
//! accessed with `Relaxed` ordering — which on x86 compiles to plain
//! loads and stores, so the functional simulation stays fast.
//!
//! Buffers are cheaply clonable handles (`Arc` internally), mirroring
//! how device pointers are copied into kernel parameters.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use crate::sanitizer::{BufferShadow, ShadowToken};
use crate::SimError;

/// An atomic storage cell for one device word.
///
/// Implemented by [`AtomicU32`] and [`AtomicU64`]; `Raw` is the plain
/// integer the cell holds. All operations use `Relaxed` ordering except
/// [`AtomicCell::fetch_add_sync`], which is `AcqRel` and used by the
/// "last block" pattern (see [`crate::exec::BlockCtx::mark_block_done`]).
pub trait AtomicCell: Default + Send + Sync + 'static {
    /// The plain integer type held by the cell.
    type Raw: Copy + Eq + Send + Sync + std::fmt::Debug + 'static;

    /// Relaxed load.
    fn load(&self) -> Self::Raw;
    /// Relaxed store.
    fn store(&self, v: Self::Raw);
    /// Relaxed wrapping fetch-add; returns the previous value.
    fn fetch_add(&self, v: Self::Raw) -> Self::Raw;
    /// Acquire-release fetch-add for cross-block synchronisation.
    fn fetch_add_sync(&self, v: Self::Raw) -> Self::Raw;
    /// Relaxed fetch-min (unsigned comparison); returns previous value.
    fn fetch_min(&self, v: Self::Raw) -> Self::Raw;
    /// Relaxed fetch-max (unsigned comparison); returns previous value.
    fn fetch_max(&self, v: Self::Raw) -> Self::Raw;
    /// Relaxed compare-exchange; returns `Ok(previous)` on success.
    fn compare_exchange(&self, current: Self::Raw, new: Self::Raw) -> Result<Self::Raw, Self::Raw>;
}

macro_rules! impl_atomic_cell {
    ($atomic:ty, $raw:ty) => {
        impl AtomicCell for $atomic {
            type Raw = $raw;

            #[inline(always)]
            fn load(&self) -> $raw {
                self.load(Ordering::Relaxed)
            }
            #[inline(always)]
            fn store(&self, v: $raw) {
                self.store(v, Ordering::Relaxed)
            }
            #[inline(always)]
            fn fetch_add(&self, v: $raw) -> $raw {
                self.fetch_add(v, Ordering::Relaxed)
            }
            #[inline(always)]
            fn fetch_add_sync(&self, v: $raw) -> $raw {
                self.fetch_add(v, Ordering::AcqRel)
            }
            #[inline(always)]
            fn fetch_min(&self, v: $raw) -> $raw {
                self.fetch_min(v, Ordering::Relaxed)
            }
            #[inline(always)]
            fn fetch_max(&self, v: $raw) -> $raw {
                self.fetch_max(v, Ordering::Relaxed)
            }
            #[inline(always)]
            fn compare_exchange(&self, current: $raw, new: $raw) -> Result<$raw, $raw> {
                self.compare_exchange(current, new, Ordering::AcqRel, Ordering::Acquire)
            }
        }
    };
}

impl_atomic_cell!(AtomicU32, u32);
impl_atomic_cell!(AtomicU64, u64);

/// A plain-old-data scalar that can live in simulated device memory.
///
/// Maps a value type (e.g. `f32`) to its atomic backing store and raw
/// bit representation. `BYTES` is the *logical* element size used for
/// traffic metering.
pub trait DeviceScalar: Copy + Send + Sync + std::fmt::Debug + 'static {
    /// Backing atomic cell type.
    type Atom: AtomicCell;
    /// Logical size in bytes (what a real GPU would move).
    const BYTES: usize;
    /// Convert to the raw bit representation.
    fn to_raw(self) -> <Self::Atom as AtomicCell>::Raw;
    /// Convert back from the raw bit representation.
    fn from_raw(raw: <Self::Atom as AtomicCell>::Raw) -> Self;
}

impl DeviceScalar for u32 {
    type Atom = AtomicU32;
    const BYTES: usize = 4;
    #[inline(always)]
    fn to_raw(self) -> u32 {
        self
    }
    #[inline(always)]
    fn from_raw(raw: u32) -> Self {
        raw
    }
}

impl DeviceScalar for i32 {
    type Atom = AtomicU32;
    const BYTES: usize = 4;
    #[inline(always)]
    fn to_raw(self) -> u32 {
        self as u32
    }
    #[inline(always)]
    fn from_raw(raw: u32) -> Self {
        raw as i32
    }
}

impl DeviceScalar for f32 {
    type Atom = AtomicU32;
    const BYTES: usize = 4;
    #[inline(always)]
    fn to_raw(self) -> u32 {
        self.to_bits()
    }
    #[inline(always)]
    fn from_raw(raw: u32) -> Self {
        f32::from_bits(raw)
    }
}

impl DeviceScalar for u64 {
    type Atom = AtomicU64;
    const BYTES: usize = 8;
    #[inline(always)]
    fn to_raw(self) -> u64 {
        self
    }
    #[inline(always)]
    fn from_raw(raw: u64) -> Self {
        raw
    }
}

impl DeviceScalar for i64 {
    type Atom = AtomicU64;
    const BYTES: usize = 8;
    #[inline(always)]
    fn to_raw(self) -> u64 {
        self as u64
    }
    #[inline(always)]
    fn from_raw(raw: u64) -> Self {
        raw as i64
    }
}

impl DeviceScalar for f64 {
    type Atom = AtomicU64;
    const BYTES: usize = 8;
    #[inline(always)]
    fn to_raw(self) -> u64 {
        self.to_bits()
    }
    #[inline(always)]
    fn from_raw(raw: u64) -> Self {
        f64::from_bits(raw)
    }
}

struct BufferInner<T: DeviceScalar> {
    cells: Box<[T::Atom]>,
    label: String,
    /// Sanitizer shadow state; present only when the buffer was
    /// allocated through a [`crate::Gpu`] with an armed sanitizer.
    shadow: Option<Arc<BufferShadow>>,
}

/// A buffer in simulated device memory.
///
/// Clonable handle (like a device pointer). Direct `get`/`set` methods
/// exist for host-side test convenience and are *not* metered; kernels
/// must go through [`crate::exec::BlockCtx`] accessors so traffic is
/// counted.
pub struct DeviceBuffer<T: DeviceScalar> {
    inner: Arc<BufferInner<T>>,
}

impl<T: DeviceScalar> Clone for DeviceBuffer<T> {
    fn clone(&self) -> Self {
        DeviceBuffer {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: DeviceScalar> DeviceBuffer<T> {
    /// Allocate a zero-initialised buffer. Prefer [`crate::Gpu::alloc`],
    /// which also charges the allocation against device memory.
    pub fn zeroed(label: &str, len: usize) -> Self {
        let cells: Box<[T::Atom]> = (0..len).map(|_| T::Atom::default()).collect();
        DeviceBuffer {
            inner: Arc::new(BufferInner {
                cells,
                label: label.to_string(),
                shadow: None,
            }),
        }
    }

    /// Allocate with sanitizer shadow state attached (the path
    /// [`crate::Gpu::alloc`] takes when a sanitizer is armed).
    pub(crate) fn zeroed_with_shadow(label: &str, len: usize, shadow: BufferShadow) -> Self {
        let cells: Box<[T::Atom]> = (0..len).map(|_| T::Atom::default()).collect();
        DeviceBuffer {
            inner: Arc::new(BufferInner {
                cells,
                label: label.to_string(),
                shadow: Some(Arc::new(shadow)),
            }),
        }
    }

    /// The attached sanitizer shadow, if any.
    #[inline(always)]
    pub(crate) fn shadow(&self) -> Option<&BufferShadow> {
        self.inner.shadow.as_deref()
    }

    /// A clonable handle onto this buffer's sanitizer shadow, or `None`
    /// when no sanitizer was armed at allocation. Lets owners of
    /// recycled memory (e.g. a scratch pool) mark the buffer freed for
    /// use-after-free detection after the typed handle is gone.
    pub fn sanitizer_token(&self) -> Option<ShadowToken> {
        self.inner
            .shadow
            .clone()
            .map(|shadow| ShadowToken { shadow })
    }

    /// Allocate and fill from a host slice (unmetered; see
    /// [`crate::Gpu::htod`] for the metered path).
    pub fn from_slice(label: &str, data: &[T]) -> Self {
        let buf = Self::zeroed(label, data.len());
        for (i, &v) in data.iter().enumerate() {
            buf.set(i, v);
        }
        buf
    }

    /// Number of elements.
    #[inline(always)]
    pub fn len(&self) -> usize {
        self.inner.cells.len()
    }

    /// True if the buffer holds no elements.
    #[inline(always)]
    pub fn is_empty(&self) -> bool {
        self.inner.cells.is_empty()
    }

    /// Logical size in bytes.
    #[inline(always)]
    pub fn size_bytes(&self) -> usize {
        self.len() * T::BYTES
    }

    /// Debug label given at allocation.
    pub fn label(&self) -> &str {
        &self.inner.label
    }

    /// Unmetered element read (host-side/testing). Panics with a
    /// labeled [`SimError::OutOfBounds`] description when `idx` is out
    /// of range; use [`DeviceBuffer::try_get`] to handle that case.
    #[inline(always)]
    pub fn get(&self, idx: usize) -> T {
        match self.try_get(idx) {
            Ok(v) => v,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible unmetered element read.
    #[inline(always)]
    pub fn try_get(&self, idx: usize) -> Result<T, SimError> {
        match self.inner.cells.get(idx) {
            Some(cell) => Ok(T::from_raw(cell.load())),
            None => Err(self.oob(idx)),
        }
    }

    /// Unmetered element write (host-side/testing). Panics with a
    /// labeled [`SimError::OutOfBounds`] description when `idx` is out
    /// of range; use [`DeviceBuffer::try_set`] to handle that case.
    #[inline(always)]
    pub fn set(&self, idx: usize, v: T) {
        if let Err(e) = self.try_set(idx, v) {
            panic!("{e}");
        }
    }

    /// Fallible unmetered element write.
    #[inline(always)]
    pub fn try_set(&self, idx: usize, v: T) -> Result<(), SimError> {
        match self.inner.cells.get(idx) {
            Some(cell) => {
                cell.store(v.to_raw());
                if let Some(sh) = self.shadow() {
                    sh.mark_valid(idx);
                }
                Ok(())
            }
            None => Err(self.oob(idx)),
        }
    }

    #[cold]
    fn oob(&self, idx: usize) -> SimError {
        SimError::OutOfBounds {
            buffer: self.inner.label.clone(),
            idx,
            len: self.len(),
        }
    }

    /// Direct access to the backing atomic cell (used by `BlockCtx`).
    #[inline(always)]
    pub(crate) fn cell(&self, idx: usize) -> &T::Atom {
        &self.inner.cells[idx]
    }

    /// Copy the whole buffer out to a host `Vec` (unmetered).
    pub fn to_vec(&self) -> Vec<T> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }

    /// Fill every element with `v` (unmetered host-side helper; the
    /// simulator's `cudaMemset`). Marks the whole buffer initialised
    /// for the sanitizer's initcheck analysis.
    pub fn fill(&self, v: T) {
        for c in self.inner.cells.iter() {
            c.store(v.to_raw());
        }
        if let Some(sh) = self.shadow() {
            sh.mark_valid_all();
        }
    }
}

impl<T: DeviceScalar> std::fmt::Debug for DeviceBuffer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "DeviceBuffer<{}>(label={:?}, len={})",
            std::any::type_name::<T>(),
            self.inner.label,
            self.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_scalars() {
        fn check<T: DeviceScalar + PartialEq>(v: T) {
            assert_eq!(T::from_raw(v.to_raw()), v);
        }
        check(0u32);
        check(u32::MAX);
        check(-5i32);
        check(1.5f32);
        check(-0.0f32);
        check(f32::INFINITY);
        check(u64::MAX);
        check(-7i64);
        check(2.25f64);
    }

    #[test]
    fn nan_roundtrips_bitwise() {
        let nan = f32::from_bits(0x7fc0_1234);
        assert_eq!(f32::from_raw(nan.to_raw()).to_bits(), nan.to_bits());
    }

    #[test]
    fn buffer_basics_set_get() {
        let b = DeviceBuffer::<f32>::zeroed("t", 8);
        assert_eq!(b.len(), 8);
        assert_eq!(b.size_bytes(), 32);
        assert_eq!(b.get(3), 0.0);
        b.set(3, 42.5);
        assert_eq!(b.get(3), 42.5);
        b.fill(-1.0);
        assert!(b.to_vec().iter().all(|&x| x == -1.0));
    }

    #[test]
    fn buffer_from_slice_and_clone_shares_storage() {
        let b = DeviceBuffer::from_slice("s", &[1u32, 2, 3]);
        let c = b.clone();
        c.set(0, 99);
        assert_eq!(b.get(0), 99, "clone must alias the same device memory");
        assert_eq!(b.label(), "s");
    }

    #[test]
    fn atomic_min_max_cells() {
        // Call through the trait: the inherent `AtomicU32` methods take
        // an Ordering argument and would otherwise shadow these.
        let b = DeviceBuffer::<u32>::zeroed("m", 1);
        AtomicCell::store(b.cell(0), 10);
        assert_eq!(AtomicCell::fetch_min(b.cell(0), 3), 10);
        assert_eq!(AtomicCell::load(b.cell(0)), 3);
        assert_eq!(AtomicCell::fetch_max(b.cell(0), 7), 3);
        assert_eq!(AtomicCell::load(b.cell(0)), 7);
    }

    #[test]
    fn empty_buffer() {
        let b = DeviceBuffer::<u32>::zeroed("e", 0);
        assert!(b.is_empty());
        assert_eq!(b.to_vec(), Vec::<u32>::new());
    }
}
