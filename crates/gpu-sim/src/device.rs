//! Device specifications.
//!
//! A [`DeviceSpec`] captures the handful of published hardware
//! parameters that the cost model needs: SM count, memory bandwidth,
//! compute throughput, kernel-launch overhead, and the PCIe link to the
//! host. Presets for the three GPUs used in the paper's evaluation
//! (A100 §5.1–5.3, H100 and A10 §5.4) are provided.

/// Warp width on every NVIDIA architecture the paper targets.
pub const WARP_SIZE: usize = 32;

/// Static description of a simulated GPU.
///
/// All bandwidth figures are *peak* values from public datasheets; the
/// cost model derates them by occupancy and coalescing efficiency (see
/// [`crate::cost`]). Times are in microseconds, bandwidths in GB/s
/// (= bytes/ns), compute throughput in Gop/s.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Marketing name, e.g. `"A100"`. Used in reports.
    pub name: &'static str,
    /// Number of streaming multiprocessors.
    pub sm_count: usize,
    /// Peak device (HBM/GDDR) memory bandwidth in GB/s.
    pub mem_bw_gbps: f64,
    /// Peak integer/float scalar op throughput in Gop/s. FP32 FMA peak
    /// on A100 is ~19.5 TFLOPS; scalar integer pipelines are roughly
    /// half that, and top-K kernels mix both, so presets use a blended
    /// figure.
    pub compute_gops: f64,
    /// Maximum resident warps per SM (64 on Ampere/Hopper).
    pub max_warps_per_sm: usize,
    /// Maximum threads per block (1024 on all modern parts).
    pub max_threads_per_block: usize,
    /// Shared memory available per block, bytes.
    pub shared_mem_per_block: usize,
    /// Total device memory, bytes. Allocations beyond this fail.
    pub device_mem_bytes: usize,
    /// Number of concurrently active warps needed to saturate the
    /// memory system. Derived from latency×bandwidth products; the
    /// presets use `sm_count × 16`, which reproduces the published
    /// behaviour that one block (≤ 32 warps) achieves roughly 1/100th
    /// of peak bandwidth — the utilisation gap behind GridSelect's
    /// speedup over BlockSelect (§5.3).
    pub warps_to_saturate: usize,
    /// Fixed CPU-side cost of launching one kernel, µs. Paid in full
    /// for a "cold" launch (first of a sequence, or after any host
    /// activity).
    pub kernel_launch_us: f64,
    /// GPU-side gap between back-to-back asynchronously launched
    /// kernels on one stream, µs. The CPU enqueues ahead, so
    /// consecutive launches with no intervening host work only pay
    /// this small pipeline bubble — which is why Fig. 8's AIR timeline
    /// shows gaps "too narrow to be observed" while RadixSelect's
    /// host-interrupted launches each pay the full overhead.
    pub kernel_gap_us: f64,
    /// Minimum duration of any kernel once running (ramp-up/drain), µs.
    pub kernel_floor_us: f64,
    /// Host-device PCIe bandwidth, GB/s (effective, not theoretical).
    pub pcie_bw_gbps: f64,
    /// One-way latency of a host↔device copy or event, µs.
    pub pcie_latency_us: f64,
    /// Cost of a host synchronisation (stream sync / blocking copy), µs.
    pub host_sync_us: f64,
    /// 32-byte memory transaction granularity (sectors).
    pub transaction_bytes: usize,
    /// Fraction of peak DRAM bandwidth a perfectly-streaming kernel
    /// actually achieves (refresh, row conflicts, ECC). ~0.92 on HBM
    /// parts — this is why Nsight reports ~90% Memory SOL for
    /// bandwidth-bound kernels (Table 3), not 100%.
    pub mem_efficiency: f64,
}

impl DeviceSpec {
    /// NVIDIA A100-SXM4-80GB — the paper's primary testbed (§5).
    ///
    /// 108 SMs, 1.555 TB/s HBM2e (the paper's §5.4 quotes 1.55 TB/s).
    pub fn a100() -> Self {
        DeviceSpec {
            name: "A100",
            sm_count: 108,
            mem_bw_gbps: 1555.0,
            compute_gops: 9700.0,
            max_warps_per_sm: 64,
            max_threads_per_block: 1024,
            shared_mem_per_block: 164 * 1024,
            device_mem_bytes: 80 * (1 << 30),
            warps_to_saturate: 108 * 16,
            kernel_launch_us: 3.0,
            kernel_gap_us: 0.8,
            kernel_floor_us: 2.0,
            pcie_bw_gbps: 25.0,
            pcie_latency_us: 8.0,
            host_sync_us: 10.0,
            transaction_bytes: 32,
            mem_efficiency: 0.92,
        }
    }

    /// NVIDIA H100-SXM5 — §5.4. 132 SMs, 3.35 TB/s HBM3.
    pub fn h100() -> Self {
        DeviceSpec {
            name: "H100",
            sm_count: 132,
            mem_bw_gbps: 3350.0,
            compute_gops: 16000.0,
            max_warps_per_sm: 64,
            max_threads_per_block: 1024,
            shared_mem_per_block: 228 * 1024,
            device_mem_bytes: 80 * (1 << 30),
            warps_to_saturate: 132 * 16,
            kernel_launch_us: 3.0,
            kernel_gap_us: 0.8,
            kernel_floor_us: 2.0,
            pcie_bw_gbps: 50.0,
            pcie_latency_us: 8.0,
            host_sync_us: 10.0,
            transaction_bytes: 32,
            mem_efficiency: 0.92,
        }
    }

    /// NVIDIA A10 — the inference part used in §5.4. 72 SMs, 0.6 TB/s
    /// GDDR6.
    pub fn a10() -> Self {
        DeviceSpec {
            name: "A10",
            sm_count: 72,
            mem_bw_gbps: 600.0,
            compute_gops: 4900.0,
            max_warps_per_sm: 48,
            max_threads_per_block: 1024,
            shared_mem_per_block: 100 * 1024,
            device_mem_bytes: 24 * (1 << 30),
            warps_to_saturate: 72 * 16,
            kernel_launch_us: 3.0,
            kernel_gap_us: 0.8,
            kernel_floor_us: 2.0,
            pcie_bw_gbps: 25.0,
            pcie_latency_us: 8.0,
            host_sync_us: 10.0,
            transaction_bytes: 32,
            mem_efficiency: 0.88,
        }
    }

    /// A tiny fictional device for unit tests: small saturation point
    /// and memory so edge conditions (allocation failure, occupancy
    /// clamping) are easy to hit.
    pub fn test_tiny() -> Self {
        DeviceSpec {
            name: "TestTiny",
            sm_count: 4,
            mem_bw_gbps: 100.0,
            compute_gops: 500.0,
            max_warps_per_sm: 8,
            max_threads_per_block: 256,
            shared_mem_per_block: 16 * 1024,
            device_mem_bytes: 64 * (1 << 20),
            warps_to_saturate: 16,
            kernel_launch_us: 3.0,
            kernel_gap_us: 0.8,
            kernel_floor_us: 2.0,
            pcie_bw_gbps: 10.0,
            pcie_latency_us: 8.0,
            host_sync_us: 10.0,
            transaction_bytes: 32,
            mem_efficiency: 1.0,
        }
    }

    /// Peak memory bandwidth in bytes/µs (1 GB/s == 1000 bytes/µs).
    #[inline]
    pub fn mem_bw_bytes_per_us(&self) -> f64 {
        self.mem_bw_gbps * 1_000.0
    }

    /// Peak compute throughput in ops/µs.
    #[inline]
    pub fn compute_ops_per_us(&self) -> f64 {
        self.compute_gops * 1_000.0
    }

    /// PCIe bandwidth in bytes/µs.
    #[inline]
    pub fn pcie_bw_bytes_per_us(&self) -> f64 {
        self.pcie_bw_gbps * 1_000.0
    }

    /// Maximum number of warps that can be resident device-wide.
    #[inline]
    pub fn max_resident_warps(&self) -> usize {
        self.sm_count * self.max_warps_per_sm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_consistent() {
        for spec in [
            DeviceSpec::a100(),
            DeviceSpec::h100(),
            DeviceSpec::a10(),
            DeviceSpec::test_tiny(),
        ] {
            assert!(spec.sm_count > 0);
            assert!(spec.mem_bw_gbps > 0.0);
            assert!(spec.warps_to_saturate <= spec.max_resident_warps());
            assert!(spec.kernel_floor_us <= spec.host_sync_us);
            assert!(spec.max_threads_per_block % WARP_SIZE == 0);
        }
    }

    #[test]
    fn bandwidth_ordering_matches_section_5_4() {
        // §5.4: performance differences align with memory bandwidth
        // A10 (0.6 TB/s) < A100 (1.55 TB/s) < H100 (3.35 TB/s).
        let a10 = DeviceSpec::a10();
        let a100 = DeviceSpec::a100();
        let h100 = DeviceSpec::h100();
        assert!(a10.mem_bw_gbps < a100.mem_bw_gbps);
        assert!(a100.mem_bw_gbps < h100.mem_bw_gbps);
        // Roughly 2.5x and 2.2x ratios quoted in the paper.
        assert!((a100.mem_bw_gbps / a10.mem_bw_gbps - 2.59).abs() < 0.1);
        assert!((h100.mem_bw_gbps / a100.mem_bw_gbps - 2.15).abs() < 0.1);
    }

    #[test]
    fn unit_conversions() {
        let a100 = DeviceSpec::a100();
        assert_eq!(a100.mem_bw_bytes_per_us(), 1_555_000.0);
        assert_eq!(a100.pcie_bw_bytes_per_us(), 25_000.0);
        assert_eq!(a100.max_resident_warps(), 108 * 64);
    }
}
