//! Host thread pool for executing thread blocks in parallel.
//!
//! The simulator's notion of time comes entirely from the cost model,
//! so block execution order never affects simulated timings — the pool
//! exists purely to speed up the *functional* computation on multi-core
//! hosts. Blocks are distributed in contiguous chunks over
//! `crossbeam::scope` workers; each worker accumulates its own
//! [`KernelStats`] which are merged when the scope joins.

use crate::cost::KernelStats;
use crate::device::DeviceSpec;
use crate::exec::{BlockCtx, LaunchConfig};
use crate::sanitizer::LaunchScope;
use crate::SimError;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Executes the blocks of a kernel launch on up to `workers` host
/// threads.
#[derive(Debug, Clone)]
pub struct BlockPool {
    workers: usize,
}

impl BlockPool {
    /// Pool with an explicit worker count (minimum 1).
    pub fn new(workers: usize) -> Self {
        BlockPool {
            workers: workers.max(1),
        }
    }

    /// Worker count from `GPU_SIM_THREADS`, falling back to the host's
    /// available parallelism.
    pub fn from_env() -> Self {
        let workers = std::env::var("GPU_SIM_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        BlockPool::new(workers)
    }

    /// Number of host worker threads used.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Run all `cfg.grid_dim` blocks of a kernel, returning the merged
    /// stats. The kernel closure is invoked once per block; `scope` is
    /// the launch's sanitizer context, if one is armed.
    ///
    /// A block that aborts with a [`SimError`] payload (labeled
    /// out-of-bounds, shared-memory overflow) surfaces as `Err`; any
    /// other panic (a kernel's own assertion, an injected worker panic)
    /// propagates unchanged.
    pub fn run<F>(
        &self,
        spec: &DeviceSpec,
        cfg: LaunchConfig,
        scope: Option<&LaunchScope<'_>>,
        kernel: F,
    ) -> Result<KernelStats, SimError>
    where
        F: Fn(&mut BlockCtx) + Sync,
    {
        let done = AtomicUsize::new(0);
        let grid = cfg.grid_dim;

        if self.workers == 1 || grid <= 1 {
            let mut total = KernelStats::default();
            for b in 0..grid {
                let mut ctx = BlockCtx::new(b, grid, cfg.block_dim, &done, spec, scope);
                match catch_unwind(AssertUnwindSafe(|| kernel(&mut ctx))) {
                    Ok(()) => {
                        if let Some(s) = scope {
                            s.note_block_barriers(ctx.barrier_count());
                        }
                        total.merge(&ctx.stats);
                    }
                    Err(payload) => match payload.downcast::<SimError>() {
                        Ok(e) => return Err(*e),
                        Err(other) => resume_unwind(other),
                    },
                }
            }
            return Ok(total);
        }

        let next = AtomicUsize::new(0);
        let workers = self.workers.min(grid);
        // Work-stealing by chunk: each worker grabs batches of blocks so
        // imbalanced kernels (e.g. a "last block" doing extra work)
        // don't serialize the whole launch.
        let chunk = (grid / (workers * 4)).max(1);
        let merged = parking_lot::Mutex::new(KernelStats::default());
        // First panic payload wins; later blocks bail out early.
        let failed = AtomicBool::new(false);
        let first_panic = parking_lot::Mutex::new(None::<Box<dyn std::any::Any + Send>>);

        crossbeam::scope(|s| {
            for _ in 0..workers {
                s.spawn(|_| {
                    let mut local = KernelStats::default();
                    loop {
                        if failed.load(Ordering::Relaxed) {
                            break;
                        }
                        let start = next.fetch_add(chunk, Ordering::Relaxed);
                        if start >= grid {
                            break;
                        }
                        let end = (start + chunk).min(grid);
                        for b in start..end {
                            let mut ctx = BlockCtx::new(b, grid, cfg.block_dim, &done, spec, scope);
                            match catch_unwind(AssertUnwindSafe(|| kernel(&mut ctx))) {
                                Ok(()) => {
                                    if let Some(s) = scope {
                                        s.note_block_barriers(ctx.barrier_count());
                                    }
                                    local.merge(&ctx.stats);
                                }
                                Err(payload) => {
                                    let mut slot = first_panic.lock();
                                    if slot.is_none() {
                                        *slot = Some(payload);
                                    }
                                    failed.store(true, Ordering::Relaxed);
                                    break;
                                }
                            }
                        }
                    }
                    merged.lock().merge(&local);
                });
            }
        })
        .expect("block pool worker panicked");

        if let Some(payload) = first_panic.into_inner() {
            return match payload.downcast::<SimError>() {
                Ok(e) => Err(*e),
                Err(other) => resume_unwind(other),
            };
        }
        Ok(merged.into_inner())
    }
}

impl Default for BlockPool {
    fn default() -> Self {
        BlockPool::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::DeviceBuffer;

    fn run_sum(workers: usize, grid: usize) -> (u32, KernelStats) {
        let spec = DeviceSpec::a100();
        let pool = BlockPool::new(workers);
        let n = grid * 64;
        let data: Vec<u32> = (0..n as u32).collect();
        let buf = DeviceBuffer::from_slice("in", &data);
        let out = DeviceBuffer::<u32>::zeroed("out", 1);
        let cfg = LaunchConfig::grid_1d(grid, 64);
        let stats = pool
            .run(&spec, cfg, None, |ctx| {
                let start = ctx.block_idx * 64;
                let mut acc = 0u32;
                for i in start..start + 64 {
                    acc = acc.wrapping_add(ctx.ld(&buf, i));
                }
                ctx.atomic_add(&out, 0, acc);
            })
            .unwrap();
        (out.get(0), stats)
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let (v1, s1) = run_sum(1, 37);
        let (v4, s4) = run_sum(4, 37);
        let expect: u32 = (0..37u32 * 64).fold(0, u32::wrapping_add);
        assert_eq!(v1, expect);
        assert_eq!(v4, expect);
        assert_eq!(s1.bytes_read, s4.bytes_read);
        assert_eq!(s1.atomic_ops, s4.atomic_ops);
    }

    #[test]
    fn stats_count_all_blocks() {
        let (_, stats) = run_sum(2, 10);
        assert_eq!(stats.bytes_read, 10 * 64 * 4);
        assert_eq!(stats.atomic_ops, 10);
    }

    #[test]
    fn last_block_fires_once_under_parallel_execution() {
        let spec = DeviceSpec::a100();
        let pool = BlockPool::new(8);
        let grid = 200;
        let fired = DeviceBuffer::<u32>::zeroed("fired", 1);
        let cfg = LaunchConfig::grid_1d(grid, 32);
        pool.run(&spec, cfg, None, |ctx| {
            if ctx.mark_block_done() {
                ctx.atomic_add(&fired, 0, 1);
            }
        })
        .unwrap();
        assert_eq!(fired.get(0), 1);
    }

    #[test]
    fn workers_minimum_one() {
        assert_eq!(BlockPool::new(0).workers(), 1);
    }

    #[test]
    fn sim_error_payload_becomes_err_sequential_and_parallel() {
        let spec = DeviceSpec::a100();
        let buf = DeviceBuffer::<u32>::zeroed("tiny", 8);
        for workers in [1, 8] {
            let pool = BlockPool::new(workers);
            let cfg = LaunchConfig::grid_1d(64, 32);
            let err = pool
                .run(&spec, cfg, None, |ctx| {
                    // Every block overruns the 8-element buffer.
                    let _ = ctx.ld(&buf, 8 + ctx.block_idx);
                })
                .unwrap_err();
            assert!(
                matches!(&err, SimError::OutOfBounds { buffer, len: 8, .. } if buffer == "tiny"),
                "workers={workers}: {err}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "deliberate")]
    fn non_sim_error_panic_propagates() {
        let spec = DeviceSpec::a100();
        let pool = BlockPool::new(4);
        let cfg = LaunchConfig::grid_1d(16, 32);
        let _ = pool.run(&spec, cfg, None, |ctx| {
            assert!(ctx.block_idx < 8, "deliberate");
        });
    }
}
