//! The simulator is the reference backend: it must pass its own
//! conformance contract, with and without the sanitizer armed.

use gpu_sim::{conformance, DeviceSpec, Gpu, SanitizerMode};

#[test]
fn gpu_sim_passes_backend_conformance() {
    let mut gpu = Gpu::new(DeviceSpec::test_tiny());
    conformance::run_all(&mut gpu);
}

#[test]
fn gpu_sim_passes_conformance_on_every_preset() {
    for spec in [DeviceSpec::a100(), DeviceSpec::h100(), DeviceSpec::a10()] {
        let mut gpu = Gpu::new(spec);
        conformance::run_all(&mut gpu);
    }
}

#[test]
fn conformance_holds_under_full_sanitizer() {
    // The contract checks deliberately include error paths (OOB loads,
    // failed allocations); the sanitizer must observe them without
    // changing the behaviour the contract asserts.
    let mut gpu = Gpu::new(DeviceSpec::test_tiny());
    gpu.enable_sanitizer(SanitizerMode::full());
    conformance::run_all(&mut gpu);
}
