//! Property-based tests of the cost model and simulator invariants.

use gpu_sim::cost::{kernel_cost, memcpy_cost, KernelStats};
use gpu_sim::{BlockPool, DeviceSpec, Gpu, LaunchConfig};
use proptest::prelude::*;

fn stats_strategy() -> impl Strategy<Value = KernelStats> {
    (
        0u64..1 << 34,
        0u64..1 << 32,
        0u64..1 << 30,
        0u64..1 << 20,
        0u64..1 << 34,
    )
        .prop_map(|(r, w, s, a, c)| KernelStats {
            bytes_read: r,
            bytes_written: w,
            bytes_scattered: s,
            atomic_ops: a,
            compute_ops: c,
            shared_mem_bytes: 0,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn kernel_time_bounded_below_by_floor(st in stats_strategy(),
                                          grid in 1usize..10_000,
                                          warps in 1usize..32) {
        let spec = DeviceSpec::a100();
        let c = kernel_cost(&spec, grid, warps * 32, &st);
        prop_assert!(c.exec_us >= spec.kernel_floor_us);
        prop_assert!(c.launch_us == spec.kernel_launch_us);
        prop_assert!(c.total_us() >= c.exec_us);
    }

    #[test]
    fn sol_metrics_are_fractions(st in stats_strategy(), grid in 1usize..10_000) {
        let c = kernel_cost(&DeviceSpec::a100(), grid, 256, &st);
        prop_assert!((0.0..=1.0).contains(&c.memory_sol));
        prop_assert!((0.0..=1.0).contains(&c.compute_sol));
        prop_assert!((0.0..=1.0).contains(&c.occupancy));
    }

    #[test]
    fn kernel_time_monotone_in_traffic(base in stats_strategy(),
                                       extra in 0u64..1 << 30,
                                       grid in 1usize..5_000) {
        let spec = DeviceSpec::a100();
        let mut more = base;
        more.bytes_read += extra;
        let t1 = kernel_cost(&spec, grid, 256, &base).exec_us;
        let t2 = kernel_cost(&spec, grid, 256, &more).exec_us;
        prop_assert!(t2 >= t1);
    }

    #[test]
    fn kernel_time_weakly_improves_with_parallelism(st in stats_strategy(),
                                                    g1 in 1usize..1_000) {
        let spec = DeviceSpec::a100();
        let g2 = g1 * 2;
        let t1 = kernel_cost(&spec, g1, 256, &st).exec_us;
        let t2 = kernel_cost(&spec, g2, 256, &st).exec_us;
        prop_assert!(t2 <= t1 + 1e-9, "more blocks never slow the same work");
    }

    #[test]
    fn memcpy_monotone_and_latency_floored(a in 0usize..1 << 30, b in 0usize..1 << 30) {
        let spec = DeviceSpec::a100();
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(memcpy_cost(&spec, lo) <= memcpy_cost(&spec, hi));
        prop_assert!(memcpy_cost(&spec, lo) >= spec.pcie_latency_us);
    }

    #[test]
    fn stats_merge_is_additive(a in stats_strategy(), b in stats_strategy()) {
        let mut m = a;
        m.merge(&b);
        prop_assert_eq!(m.bytes_read, a.bytes_read + b.bytes_read);
        prop_assert_eq!(m.compute_ops, a.compute_ops + b.compute_ops);
        prop_assert_eq!(
            m.total_mem_bytes(),
            a.total_mem_bytes() + b.total_mem_bytes()
        );
    }
}

#[test]
fn timeline_events_are_contiguous_and_cover_clock() {
    let mut gpu = Gpu::new(DeviceSpec::a100());
    let data: Vec<u32> = (0..4096).collect();
    let buf = gpu.htod("in", &data);
    let out = gpu.alloc::<u32>("out", 1);
    for round in 0..3 {
        gpu.launch("work", LaunchConfig::grid_1d(8, 128), |ctx| {
            let chunk = 4096 / 8;
            let start = ctx.block_idx * chunk;
            let mut acc = 0u32;
            for i in start..start + chunk {
                acc = acc.wrapping_add(ctx.ld(&buf, i));
            }
            ctx.atomic_add(&out, 0, acc);
        });
        if round == 1 {
            gpu.host_sync();
        }
    }
    let _ = gpu.dtoh(&out);

    let events = gpu.timeline().events();
    assert!(!events.is_empty());
    let mut t = 0.0f64;
    for e in events {
        assert!(
            (e.start_us - t).abs() < 1e-9,
            "event starts where the previous ended"
        );
        assert!(e.dur_us >= 0.0);
        t = e.end_us();
    }
    assert!((t - gpu.elapsed_us()).abs() < 1e-9, "clock equals span");
}

#[test]
fn parallel_pool_atomics_are_exact_under_contention() {
    // Many blocks hammering one counter must never lose increments,
    // whatever the worker count.
    for workers in [1usize, 2, 4, 8] {
        let spec = DeviceSpec::a100();
        let mut gpu = Gpu::with_pool(spec, BlockPool::new(workers));
        let counter = gpu.alloc::<u32>("ctr", 1);
        let grid = 500;
        gpu.launch("hammer", LaunchConfig::grid_1d(grid, 32), |ctx| {
            for _ in 0..100 {
                ctx.atomic_add(&counter, 0, 1);
            }
        });
        assert_eq!(counter.get(0), (grid * 100) as u32, "workers = {workers}");
    }
}

#[test]
fn pipelined_launches_cost_less_than_cold_ones() {
    let run = |sync_between: bool| {
        let mut gpu = Gpu::new(DeviceSpec::a100());
        for i in 0..5 {
            gpu.launch("k", LaunchConfig::grid_1d(1, 32), |_| {});
            if sync_between && i < 4 {
                gpu.host_sync();
            }
        }
        gpu.timeline()
            .events()
            .iter()
            .filter(|e| matches!(e.kind, gpu_sim::EventKind::LaunchOverhead))
            .map(|e| e.dur_us)
            .sum::<f64>()
    };
    let pipelined = run(false);
    let cold = run(true);
    let spec = DeviceSpec::a100();
    assert!((pipelined - (spec.kernel_launch_us + 4.0 * spec.kernel_gap_us)).abs() < 1e-9);
    assert!((cold - 5.0 * spec.kernel_launch_us).abs() < 1e-9);
}
