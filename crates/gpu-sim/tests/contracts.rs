//! Integration tests for kernel access contracts and the barrier-aware
//! synccheck: negative controls that MUST each produce exactly one
//! deduplicated finding (overlapping exclusive write footprints, an
//! out-of-bounds footprint, a contract narrower than the observed
//! accesses, a barrier-divergent kernel, an unsynchronised same-block
//! write pair) plus the positive controls (the same pair exonerated by
//! `block_sync()`, hard errors without a sanitizer, bit-identical cost
//! digests with contracts on vs off).

use gpu_sim::sanitizer::Analysis;
use gpu_sim::{
    AccessKind, Backend, BlockPool, DeviceSpec, Footprint, Gpu, KernelContract, LaunchConfig,
    SanitizerMode, SimError,
};

fn gpu_with(mode: SanitizerMode) -> Gpu {
    let mut g = Gpu::with_pool(DeviceSpec::a100(), BlockPool::new(1));
    g.enable_sanitizer(mode);
    g
}

// ---- negative controls: each MUST yield exactly one finding -----------

#[test]
fn overlapping_write_footprint_is_one_finding() {
    let mut g = gpu_with(SanitizerMode::full().with_contracts());
    let out = g.alloc::<u32>("overlap_out", 64);
    // An exclusive `.writes` claim with an `all` footprint cannot be
    // cross-block disjoint at grid 4: flagged statically, before the
    // kernel runs. The kernel itself writes disjointly so no *dynamic*
    // analysis fires — the finding is purely the contract's.
    let run = |g: &mut Gpu| {
        let c = KernelContract::new("overlap_kernel").writes(&out, Footprint::all());
        g.launch_checked(&c, LaunchConfig::grid_1d(4, 32), |ctx| {
            for i in 0..16 {
                ctx.st(&out, ctx.block_idx * 16 + i, 1);
            }
        });
    };
    run(&mut g);
    run(&mut g); // second launch must fold into the same finding
    let report = g.sanitizer_report().expect("sanitizer armed");
    let findings: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.analysis == Analysis::ContractViolation)
        .collect();
    assert_eq!(findings.len(), 1, "{:?}", report.findings);
    assert_eq!(findings[0].buffer, "overlap_out");
    assert_eq!(findings[0].kernel, "overlap_kernel");
    assert_eq!(findings[0].count, 2, "occurrences fold into one finding");
    assert!(findings[0].detail.contains("not cross-block disjoint"));
    assert_eq!(g.reports().len(), 2, "the launches still ran");
}

#[test]
fn oob_footprint_is_one_finding() {
    let mut g = gpu_with(SanitizerMode::full().with_contracts());
    let out = g.alloc::<u32>("short_out", 8);
    // per_block(8) reaches index 15 at grid 2 — past the 8-element
    // buffer. Static OOB, no execution needed; block 1 never actually
    // touches the buffer so memcheck stays silent.
    let run = |g: &mut Gpu| {
        let c = KernelContract::new("oob_kernel").writes(&out, Footprint::per_block(8));
        g.launch_checked(&c, LaunchConfig::grid_1d(2, 32), |ctx| {
            if ctx.block_idx == 0 {
                ctx.st(&out, 0, 1);
            }
        });
    };
    run(&mut g);
    run(&mut g);
    let report = g.sanitizer_report().unwrap();
    assert_eq!(report.counts.memcheck, 0, "no dynamic OOB occurred");
    let findings: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.analysis == Analysis::ContractViolation)
        .collect();
    assert_eq!(findings.len(), 1, "{:?}", report.findings);
    assert_eq!(findings[0].buffer, "short_out");
    assert!(
        findings[0].detail.contains("outside"),
        "{}",
        findings[0].detail
    );
}

#[test]
fn contract_narrower_than_observed_is_one_conformance_finding() {
    let mut g = gpu_with(SanitizerMode::full().with_contracts());
    let out = g.alloc::<u32>("narrow_out", 8);
    // The contract only admits writes to [0, 4); the kernel writes
    // index 5 repeatedly. Every occurrence is a conformance violation,
    // deduplicated to a single finding.
    let c = KernelContract::new("narrow_kernel").writes(&out, Footprint::fixed(0, 4));
    g.launch_checked(&c, LaunchConfig::grid_1d(1, 32), |ctx| {
        for _ in 0..3 {
            ctx.st(&out, 5, 7);
        }
        ctx.st(&out, 1, 7); // admitted: inside the declared range
    });
    let report = g.sanitizer_report().unwrap();
    let findings: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.analysis == Analysis::ContractConformance)
        .collect();
    assert_eq!(findings.len(), 1, "{:?}", report.findings);
    assert_eq!(findings[0].buffer, "narrow_out");
    assert_eq!(findings[0].index, 5);
    assert_eq!(findings[0].access, AccessKind::Write);
    assert_eq!(findings[0].count, 3, "occurrences fold into one finding");
    assert!(
        findings[0].detail.contains("outside every declared entry"),
        "{}",
        findings[0].detail
    );
}

#[test]
fn undeclared_buffer_access_is_a_conformance_finding() {
    let mut g = gpu_with(SanitizerMode::full().with_contracts());
    let declared = g.alloc::<u32>("declared", 8);
    let stowaway = g.alloc::<u32>("stowaway", 8);
    stowaway.fill(1);
    let c = KernelContract::new("stowaway_kernel").writes(&declared, Footprint::all());
    g.launch_checked(&c, LaunchConfig::grid_1d(1, 32), |ctx| {
        let v = ctx.ld(&stowaway, 0); // never declared
        ctx.st(&declared, 0, v);
    });
    let report = g.sanitizer_report().unwrap();
    let f = report
        .findings
        .iter()
        .find(|f| f.analysis == Analysis::ContractConformance)
        .expect("undeclared-buffer finding");
    assert_eq!(f.buffer, "stowaway");
    assert!(f.detail.contains("not declared"), "{}", f.detail);
}

#[test]
fn barrier_divergent_kernel_is_one_finding() {
    let mut g = gpu_with(SanitizerMode::full().with_synccheck());
    // Block 0 reaches one barrier, every other block reaches none — the
    // classic conditional-__syncthreads deadlock shape.
    g.launch("divergent_kernel", LaunchConfig::grid_1d(4, 32), |ctx| {
        if ctx.block_idx == 0 {
            ctx.block_sync();
        }
    });
    let report = g.sanitizer_report().unwrap();
    let findings: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.analysis == Analysis::Synccheck)
        .collect();
    assert_eq!(findings.len(), 1, "{:?}", report.findings);
    assert_eq!(findings[0].buffer, "<barrier>");
    assert_eq!(findings[0].kernel, "divergent_kernel");
    assert!(
        findings[0].detail.contains("barrier divergence"),
        "{}",
        findings[0].detail
    );
}

#[test]
fn same_block_write_pair_flagged_without_sync_and_exonerated_with_it() {
    // Without a barrier between them, two writes of the same word by
    // one block would race across that block's threads on real
    // hardware: exactly one deduplicated synccheck finding.
    let mut g = gpu_with(SanitizerMode::full().with_synccheck());
    let out = g.alloc::<u32>("unsynced", 4);
    g.launch("unsynced_kernel", LaunchConfig::grid_1d(2, 32), |ctx| {
        ctx.st(&out, ctx.block_idx, 1);
        ctx.st(&out, ctx.block_idx, 2); // no block_sync() in between
    });
    let report = g.sanitizer_report().unwrap();
    let findings: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.analysis == Analysis::Synccheck)
        .collect();
    assert_eq!(findings.len(), 1, "{:?}", report.findings);
    assert_eq!(findings[0].buffer, "unsynced");
    assert!(
        findings[0].detail.contains("no block_sync()"),
        "{}",
        findings[0].detail
    );

    // The same pair separated by block_sync() is the legitimate
    // multi-pass shape (bitonic stages): must stay clean.
    let mut g = gpu_with(SanitizerMode::full().with_synccheck());
    let out = g.alloc::<u32>("synced", 4);
    g.launch("synced_kernel", LaunchConfig::grid_1d(2, 32), |ctx| {
        ctx.st(&out, ctx.block_idx, 1);
        ctx.block_sync();
        ctx.st(&out, ctx.block_idx, 2);
    });
    let report = g.sanitizer_report().unwrap();
    assert!(report.is_clean(), "{:?}", report.findings);
}

#[test]
fn contract_violation_without_sanitizer_is_a_hard_error() {
    let mut g = Gpu::with_pool(DeviceSpec::a100(), BlockPool::new(1));
    let out = g.alloc::<u32>("out", 8);
    let c = KernelContract::new("bad_kernel").writes(&out, Footprint::per_block(8));
    let err = g
        .try_launch_checked(&c, LaunchConfig::grid_1d(4, 32), |ctx| {
            if ctx.block_idx == 0 {
                ctx.st(&out, 0, 1);
            }
        })
        .unwrap_err();
    assert!(
        matches!(&err, SimError::ContractViolation { kernel, .. } if kernel == "bad_kernel"),
        "{err}"
    );
    assert!(!err.is_device_fault(), "caller mistake, not a device fault");
    assert!(g.reports().is_empty(), "the kernel never ran");
}

// ---- positive controls ------------------------------------------------

#[test]
fn valid_contract_passes_and_conformance_stays_silent() {
    let mut g = gpu_with(SanitizerMode::full().with_contracts().with_synccheck());
    let input = g.htod("vals", &(0..128u32).collect::<Vec<_>>());
    let out = g.alloc::<u32>("out", 4);
    let c = KernelContract::new("tile_sum")
        .reads(&input, Footprint::per_block(32))
        .writes(&out, Footprint::per_block(1));
    g.launch_checked(&c, LaunchConfig::grid_1d(4, 32), |ctx| {
        let mut acc = 0;
        for i in 0..32 {
            acc += ctx.ld(&input, ctx.block_idx * 32 + i);
        }
        ctx.st(&out, ctx.block_idx, acc);
    });
    assert_eq!(out.get(0), (0..32).sum::<u32>());
    let report = g.sanitizer_report().unwrap();
    assert!(report.is_clean(), "{:?}", report.findings);
    assert!(g.verifies_contracts(), "capability probe");
}

/// Run an annotated pipeline and digest every cost-model quantity.
fn contract_digest(contracts: bool) -> Vec<u64> {
    let mut g = Gpu::with_pool(DeviceSpec::a100(), BlockPool::new(1));
    if contracts {
        g.enable_sanitizer(SanitizerMode::full().with_contracts().with_synccheck());
    }
    let data: Vec<u32> = (0..4096).collect();
    let input = g.htod("in", &data);
    let out = g.alloc::<u32>("out", 16);
    let c = KernelContract::new("tile_max")
        .reads(&input, Footprint::per_block(256))
        .writes(&out, Footprint::per_block(1));
    g.launch_checked(&c, LaunchConfig::grid_1d(16, 256), |ctx| {
        let mut m = 0;
        for i in 0..256 {
            m = m.max(ctx.ld(&input, ctx.block_idx * 256 + i));
        }
        ctx.block_sync();
        ctx.st(&out, ctx.block_idx, m);
    });
    let _ = g.dtoh(&out);
    let mut digest = vec![g.elapsed_us().to_bits()];
    for r in g.reports() {
        digest.extend([
            r.stats.bytes_read,
            r.stats.bytes_written,
            r.stats.atomic_ops,
            r.stats.compute_ops,
            r.cost.exec_us.to_bits(),
            r.cost.launch_us.to_bits(),
            r.start_us.to_bits(),
        ]);
    }
    digest
}

#[test]
fn contracts_never_perturb_the_cost_model() {
    let off = contract_digest(false);
    let on = contract_digest(true);
    assert_eq!(off, on, "cost digests must be bit-identical");
}
