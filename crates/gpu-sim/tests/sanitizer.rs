//! Integration tests for the sanitizer: negative controls that MUST be
//! flagged (a racy kernel, a stale-scratch read, a use-after-free, an
//! out-of-bounds access) and positive controls that MUST stay clean
//! (grid-sync patterns, initialised reads, identical cost digests with
//! the sanitizer on or off).

use gpu_sim::sanitizer::Analysis;
use gpu_sim::{AccessKind, BlockPool, DeviceSpec, Gpu, LaunchConfig, SanitizerMode, SimError};

fn gpu_with(mode: SanitizerMode) -> Gpu {
    let mut g = Gpu::with_pool(DeviceSpec::a100(), BlockPool::new(1));
    g.enable_sanitizer(mode);
    g
}

// ---- negative controls: these MUST be detected ------------------------

#[test]
fn racecheck_flags_unsynchronised_cross_block_writes() {
    let mut g = gpu_with(SanitizerMode::full());
    let out = g.alloc::<u32>("racy_out", 4);
    // Every block writes the same word non-atomically — the canonical
    // lost-update race. Detection must not depend on the schedule: the
    // shadow keeps the first block's record, so the second access
    // conflicts even under sequential block execution.
    g.launch("racy_kernel", LaunchConfig::grid_1d(8, 32), |ctx| {
        ctx.st(&out, 0, ctx.block_idx as u32);
    });
    let report = g.sanitizer_report().expect("sanitizer armed");
    assert!(report.counts.racecheck > 0, "race must be flagged");
    let f = report
        .findings
        .iter()
        .find(|f| f.analysis == Analysis::Racecheck)
        .expect("racecheck finding");
    assert_eq!(f.buffer, "racy_out", "buffer label attribution");
    assert_eq!(f.kernel, "racy_kernel", "kernel attribution");
    assert_eq!(f.launch, 1, "first launch on this device");
    assert_eq!(f.index, 0);
    assert_eq!(f.access, AccessKind::Write);
    // The per-launch delta lands on the report of the racy launch.
    assert!(g.reports()[0].sanitizer_findings > 0);
}

#[test]
fn racecheck_flags_mixed_atomic_and_plain_access() {
    let mut g = gpu_with(SanitizerMode::racecheck_only());
    let out = g.alloc::<u32>("counter", 1);
    g.launch("mixed_kernel", LaunchConfig::grid_1d(4, 32), |ctx| {
        if ctx.block_idx == 0 {
            ctx.st(&out, 0, 1); // plain write...
        } else {
            ctx.atomic_add(&out, 0, 1); // ...racing atomic RMWs
        }
    });
    let report = g.sanitizer_report().unwrap();
    assert!(report.counts.racecheck > 0);
}

#[test]
fn initcheck_flags_stale_scratch_read() {
    let mut g = gpu_with(SanitizerMode::full());
    // The stale-scratch shape: a kernel consumes a freshly allocated
    // workspace word that nothing ever wrote, silently relying on the
    // allocator zeroing (real cudaMalloc returns garbage).
    let scratch = g.alloc::<u32>("stale_scratch", 64);
    let sink = g.alloc::<u32>("sink", 64);
    g.launch("stale_read_kernel", LaunchConfig::grid_1d(1, 32), |ctx| {
        for i in 0..64 {
            let v = ctx.ld(&scratch, i);
            ctx.st(&sink, i, v);
        }
    });
    let report = g.sanitizer_report().unwrap();
    assert_eq!(
        report.counts.initcheck, 64,
        "all 64 reads are uninitialised"
    );
    let f = report
        .findings
        .iter()
        .find(|f| f.analysis == Analysis::Initcheck)
        .expect("initcheck finding");
    assert_eq!(f.buffer, "stale_scratch");
    assert_eq!(f.kernel, "stale_read_kernel");
    assert_eq!(f.launch, 1);
    assert_eq!(f.count, 64, "occurrences fold into one finding");
}

#[test]
fn memcheck_flags_use_after_free() {
    let mut g = gpu_with(SanitizerMode::full());
    let buf = g.alloc::<u32>("recycled", 16);
    buf.fill(7);
    g.free(&buf); // bytes returned; the handle still aliases them
    let sink = g.alloc::<u32>("sink", 1);
    g.launch("uaf_kernel", LaunchConfig::grid_1d(1, 32), |ctx| {
        let v = ctx.ld(&buf, 3);
        ctx.st(&sink, 0, v);
    });
    let report = g.sanitizer_report().unwrap();
    assert!(report.counts.memcheck > 0);
    let f = report
        .findings
        .iter()
        .find(|f| f.analysis == Analysis::MemcheckUseAfterFree)
        .expect("use-after-free finding");
    assert_eq!(f.buffer, "recycled");
    assert_eq!(f.kernel, "uaf_kernel");
}

#[test]
fn memcheck_flags_host_readback_of_freed_buffer() {
    let mut g = gpu_with(SanitizerMode::full());
    let buf = g.alloc::<u32>("freed_for_dtoh", 8);
    buf.fill(1);
    g.free(&buf);
    let _ = g.dtoh(&buf);
    let report = g.sanitizer_report().unwrap();
    assert!(report
        .findings
        .iter()
        .any(|f| f.analysis == Analysis::MemcheckUseAfterFree && f.buffer == "freed_for_dtoh"));
}

#[test]
fn memcheck_squashes_out_of_bounds_instead_of_panicking() {
    let mut g = gpu_with(SanitizerMode::full());
    let small = g.alloc::<u32>("small", 4);
    small.fill(9);
    let sink = g.alloc::<u32>("sink", 1);
    g.launch("oob_kernel", LaunchConfig::grid_1d(1, 32), |ctx| {
        let v = ctx.ld(&small, 100); // squashed: returns 0
        ctx.st(&small, 200, 5); // squashed: no-op
        ctx.st(&sink, 0, v);
    });
    assert_eq!(sink.get(0), 0, "squashed load reads zero");
    let report = g.sanitizer_report().unwrap();
    assert_eq!(report.counts.memcheck, 2);
    let f = report
        .findings
        .iter()
        .find(|f| f.analysis == Analysis::MemcheckOob)
        .expect("oob finding");
    assert_eq!(f.buffer, "small");
    assert_eq!(f.index, 100);
}

#[test]
fn without_sanitizer_oob_is_a_labeled_launch_error() {
    let mut g = Gpu::with_pool(DeviceSpec::a100(), BlockPool::new(1));
    let small = g.alloc::<u32>("small", 4);
    let err = g
        .try_launch("oob_kernel", LaunchConfig::grid_1d(1, 32), |ctx| {
            let _ = ctx.ld(&small, 100);
        })
        .unwrap_err();
    assert_eq!(
        err,
        SimError::OutOfBounds {
            buffer: "small".into(),
            idx: 100,
            len: 4,
        }
    );
    assert!(g.reports().is_empty(), "no report for an aborted launch");
}

#[test]
fn shared_mem_overflow_is_a_launch_error() {
    let mut g = Gpu::with_pool(DeviceSpec::a100(), BlockPool::new(1));
    let cap = g.spec().shared_mem_per_block;
    let err = g
        .try_launch("greedy_kernel", LaunchConfig::grid_1d(1, 32), |ctx| {
            let _: Vec<u8> = ctx.shared_alloc(cap + 1);
        })
        .unwrap_err();
    assert_eq!(
        err,
        SimError::SharedMemExceeded {
            used: 0,
            requested: cap + 1,
            capacity: cap,
        }
    );
}

// ---- positive controls: these MUST stay clean -------------------------

#[test]
fn grid_sync_last_block_pattern_is_not_a_race() {
    // AIR's fused-kernel shape: every block bumps a histogram with
    // atomics, the last block (after an AcqRel grid sync) reads the
    // whole histogram with plain loads. Racecheck must stay silent.
    let mut g = gpu_with(SanitizerMode::full());
    let hist = g.alloc::<u32>("hist", 16);
    hist.fill(0);
    let total = g.alloc::<u32>("total", 1);
    total.fill(0);
    g.launch("last_block_kernel", LaunchConfig::grid_1d(32, 32), |ctx| {
        ctx.atomic_add(&hist, ctx.block_idx % 16, 1);
        if ctx.mark_block_done() {
            let mut acc = 0;
            for i in 0..16 {
                acc += ctx.ld(&hist, i);
            }
            ctx.st(&total, 0, acc);
        }
    });
    assert_eq!(total.get(0), 32);
    let report = g.sanitizer_report().unwrap();
    assert!(
        report.is_clean(),
        "grid-synced reads must not be flagged: {:?}",
        report.findings
    );
}

#[test]
fn atomic_add_sync_exempts_subsequent_reads() {
    // The per-problem done-counter variant (AIR's batched kernel):
    // whoever observes the final count reads everyone's plain stores.
    let mut g = gpu_with(SanitizerMode::full());
    let partials = g.alloc::<u32>("partials", 8);
    partials.fill(0);
    let done = g.alloc::<u32>("done", 1);
    done.fill(0);
    let sum = g.alloc::<u32>("sum", 1);
    sum.fill(0);
    let grid = 8;
    g.launch(
        "sync_counter_kernel",
        LaunchConfig::grid_1d(grid, 32),
        |ctx| {
            ctx.st(&partials, ctx.block_idx, ctx.block_idx as u32);
            if ctx.atomic_add_sync(&done, 0, 1) == grid as u32 - 1 {
                let mut acc = 0;
                for i in 0..grid {
                    acc += ctx.ld(&partials, i);
                }
                ctx.st(&sum, 0, acc);
            }
        },
    );
    assert_eq!(sum.get(0), (0..8).sum::<u32>());
    let report = g.sanitizer_report().unwrap();
    assert!(report.is_clean(), "{:?}", report.findings);
}

#[test]
fn initialised_reads_are_clean_via_htod_fill_and_stores() {
    let mut g = gpu_with(SanitizerMode::full());
    let a = g.htod("uploaded", &[1u32, 2, 3, 4]); // H2D marks valid
    let b = g.alloc::<u32>("filled", 4);
    b.fill(0); // fill marks valid
    let c = g.alloc::<u32>("stored", 4);
    c.set(2, 9); // host set marks one word
    let sink = g.alloc::<u32>("sink", 4);
    g.launch("clean_kernel", LaunchConfig::grid_1d(1, 32), |ctx| {
        let v = ctx.ld(&a, 0) + ctx.ld(&b, 1) + ctx.ld(&c, 2);
        ctx.st(&sink, 0, v); // device store marks valid...
        let w = ctx.ld(&sink, 0); // ...so this read is fine
        ctx.st(&sink, 1, w);
    });
    let report = g.sanitizer_report().unwrap();
    assert!(report.is_clean(), "{:?}", report.findings);
}

#[test]
fn disjoint_block_writes_are_not_a_race() {
    let mut g = gpu_with(SanitizerMode::full());
    let out = g.alloc::<u32>("partitioned", 64);
    g.launch("disjoint_kernel", LaunchConfig::grid_1d(8, 32), |ctx| {
        for i in 0..8 {
            ctx.st(&out, ctx.block_idx * 8 + i, 1);
        }
    });
    let report = g.sanitizer_report().unwrap();
    assert!(report.is_clean(), "{:?}", report.findings);
}

// ---- zero-cost-when-off: identical cost digests -----------------------

/// Run the same little pipeline and digest every cost-model quantity.
fn cost_digest(sanitize: bool) -> Vec<u64> {
    let mut g = Gpu::with_pool(DeviceSpec::a100(), BlockPool::new(1));
    if sanitize {
        g.enable_sanitizer(SanitizerMode::full());
    }
    let data: Vec<u32> = (0..4096).collect();
    let input = g.htod("in", &data);
    let hist = g.alloc::<u32>("hist", 256);
    hist.fill(0);
    let out = g.alloc::<u32>("out", 256);
    g.launch("histogram", LaunchConfig::grid_1d(16, 256), |ctx| {
        for i in 0..256 {
            let v = ctx.ld(&input, ctx.block_idx * 256 + i);
            ctx.atomic_add(&hist, (v % 256) as usize, 1);
        }
        if ctx.mark_block_done() {
            for i in 0..256 {
                let h = ctx.ld(&hist, i);
                ctx.st(&out, i, h);
            }
        }
    });
    let _ = g.dtoh(&out);
    let mut digest = vec![g.elapsed_us().to_bits()];
    for r in g.reports() {
        digest.extend([
            r.stats.bytes_read,
            r.stats.bytes_written,
            r.stats.bytes_scattered,
            r.stats.atomic_ops,
            r.stats.compute_ops,
            r.stats.shared_mem_bytes,
            r.cost.exec_us.to_bits(),
            r.cost.launch_us.to_bits(),
            r.start_us.to_bits(),
        ]);
    }
    digest
}

#[test]
fn sanitizer_never_perturbs_the_cost_model() {
    let off = cost_digest(false);
    let on = cost_digest(true);
    assert_eq!(off, on, "cost digests must be bit-identical");
}
