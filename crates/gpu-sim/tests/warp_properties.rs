//! Property tests for the warp primitives: every collective is checked
//! against an independent scalar reference over many seeded random lane
//! vectors. The warp module's own unit tests pin down bit-order and
//! edge cases; these tests pin down the *algebra* (prefix-sum laws,
//! permutation invariants, rank uniqueness) that GridSelect's two-step
//! insertion and the WarpSelect sorting networks rely on.

use gpu_sim::warp::{
    ballot, bitonic_sort_lanes, exclusive_scan, inclusive_scan, lane_rank, reduce_max, reduce_min,
    reduce_sum, shfl, shfl_xor, Lanes,
};

const WARP: usize = 32;
const ROUNDS: usize = 200;

/// SplitMix64 — the same tiny deterministic generator the fault module
/// uses for seed-matrix tests; no external dependencies.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn lanes_u32(&mut self) -> Lanes<u32> {
        std::array::from_fn(|_| self.next() as u32)
    }

    fn lanes_bool(&mut self) -> Lanes<bool> {
        std::array::from_fn(|_| self.next() & 1 == 1)
    }
}

#[test]
fn ballot_matches_scalar_reference() {
    let mut rng = SplitMix64(0xB41107);
    for _ in 0..ROUNDS {
        let preds = rng.lanes_bool();
        let mask = ballot(&preds);
        let expect = preds
            .iter()
            .enumerate()
            .fold(0u32, |m, (i, &p)| m | ((p as u32) << i));
        assert_eq!(mask, expect);
        assert_eq!(
            mask.count_ones() as usize,
            preds.iter().filter(|&&p| p).count()
        );
    }
}

#[test]
fn lane_rank_is_a_bijection_onto_consecutive_slots() {
    // The invariant GridSelect's parallel two-step insertion depends
    // on (§4): qualified lanes receive exactly the ranks 0..count, each
    // once, in lane order.
    let mut rng = SplitMix64(0x7A9E);
    for _ in 0..ROUNDS {
        let preds = rng.lanes_bool();
        let mask = ballot(&preds);
        let ranks: Vec<u32> = (0..WARP)
            .filter(|&l| preds[l])
            .map(|l| lane_rank(mask, l))
            .collect();
        // Lane order already yields 0,1,2,... — strictly consecutive.
        let expect: Vec<u32> = (0..ranks.len() as u32).collect();
        assert_eq!(ranks, expect, "mask {mask:#034b}");
    }
}

#[test]
fn scans_obey_prefix_sum_laws() {
    let mut rng = SplitMix64(0x5CA4);
    for _ in 0..ROUNDS {
        let vals = rng.lanes_u32();
        let ex = exclusive_scan(&vals);
        let inc = inclusive_scan(&vals);
        // Scalar reference.
        let mut acc = 0u32;
        for i in 0..WARP {
            assert_eq!(ex[i], acc, "exclusive lane {i}");
            acc = acc.wrapping_add(vals[i]);
            assert_eq!(inc[i], acc, "inclusive lane {i}");
        }
        // Cross-law: inc = ex + vals, last inclusive = total sum.
        for i in 0..WARP {
            assert_eq!(inc[i], ex[i].wrapping_add(vals[i]));
        }
        assert_eq!(inc[WARP - 1], reduce_sum(&vals));
    }
}

#[test]
fn reductions_match_scalar_references() {
    let mut rng = SplitMix64(0xDEC0DE);
    for _ in 0..ROUNDS {
        let vals = rng.lanes_u32();
        assert_eq!(
            reduce_sum(&vals),
            vals.iter().copied().fold(0u32, u32::wrapping_add)
        );
        assert_eq!(reduce_min(&vals), *vals.iter().min().unwrap());
        assert_eq!(reduce_max(&vals), *vals.iter().max().unwrap());

        // Floats (finite): compare against the ordered extremes.
        let fvals: Lanes<f32> =
            std::array::from_fn(|i| (vals[i] as f32 / u32::MAX as f32) * 2000.0 - 1000.0);
        let mut sorted = fvals;
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(reduce_min(&fvals), sorted[0]);
        assert_eq!(reduce_max(&fvals), sorted[WARP - 1]);
    }
}

#[test]
fn shuffles_are_permutation_reads() {
    let mut rng = SplitMix64(0x5501F);
    for _ in 0..ROUNDS {
        let vals = rng.lanes_u32();
        let src = (rng.next() as usize) % (2 * WARP); // includes wrapping srcs
        assert_eq!(shfl(&vals, src), vals[src % WARP]);

        let mask = (rng.next() as usize) % WARP;
        let out = shfl_xor(&vals, mask);
        for i in 0..WARP {
            assert_eq!(out[i], vals[i ^ mask], "lane {i} mask {mask}");
        }
        // A butterfly is an involution: applying it twice is identity.
        assert_eq!(shfl_xor(&out, mask), vals);
    }
}

#[test]
fn bitonic_sort_matches_scalar_sort_with_payload() {
    let mut rng = SplitMix64(0xB170);
    for round in 0..ROUNDS {
        let keys_src = rng.lanes_u32();
        let ascending = round % 2 == 0;

        let mut keys = keys_src;
        let mut payload: Lanes<u32> = std::array::from_fn(|i| i as u32);
        let ops = bitonic_sort_lanes(&mut keys, &mut payload, ascending);
        assert_eq!(ops, 240, "full 32-lane network is fixed-size");

        // Keys equal the scalar-sorted reference.
        let mut expect = keys_src;
        expect.sort_unstable();
        if !ascending {
            expect.reverse();
        }
        assert_eq!(keys, expect);

        // Payload still pairs every key with its original lane.
        for (k, p) in keys.iter().zip(&payload) {
            assert_eq!(keys_src[*p as usize], *k, "payload must travel with key");
        }
        // And payload is a permutation of 0..32.
        let mut lanes: Vec<u32> = payload.to_vec();
        lanes.sort_unstable();
        assert_eq!(lanes, (0..WARP as u32).collect::<Vec<_>>());
    }
}

#[test]
fn bitonic_sort_handles_heavy_duplicates() {
    let mut rng = SplitMix64(0xD0B1E5);
    for _ in 0..ROUNDS {
        let keys_src: Lanes<u32> = std::array::from_fn(|_| (rng.next() % 4) as u32);
        let mut keys = keys_src;
        let mut payload: Lanes<u32> = std::array::from_fn(|i| i as u32);
        bitonic_sort_lanes(&mut keys, &mut payload, true);
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
        let mut expect = keys_src;
        expect.sort_unstable();
        assert_eq!(keys, expect);
    }
}
