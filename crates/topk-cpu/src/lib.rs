//! # topk-cpu — host-side top-K selection
//!
//! The paper's §1/§2.2 frame the CPU state of the art: "heap is the
//! typical data structure used for this purpose in a sequential
//! algorithm, however, heap operations are difficult to parallelize".
//! This crate supplies both sides of that sentence:
//!
//! * [`heap_topk`] — the classic sequential bounded max-heap select,
//!   `O(N log K)` with a tight inner loop (the algorithm every
//!   `std::collections::BinaryHeap`-based snippet implements);
//! * [`parallel_topk`] — the practical way around the
//!   hard-to-parallelise heap: chunk the input across threads, run a
//!   private heap per thread (scoped via `crossbeam`), and merge the
//!   per-thread results — the same decompose-and-merge shape as the
//!   GPU's GridSelect, at core rather than warp granularity.
//!
//! Both return `(values, indices)` with the same smallest-K multiset
//! contract as the GPU algorithms (ties by count, `-0.0 < +0.0`,
//! NaN-free input), so they double as fast host references for the
//! test-suite and as CPU baselines in examples.

use topk_core::keys::RadixKey;

/// One (ordered-bits key, input index) candidate.
type Entry<O> = (O, u32);

/// Sequential bounded-heap top-K: maintain a max-heap of the K
/// smallest seen; each new element is compared against the heap root.
///
/// Returns `(values, indices)` sorted ascending by value. `O(N log K)`
/// worst case, `O(N)` expected once the heap is warm (most elements
/// fail the root comparison).
///
/// ```
/// let data = [5.0f32, -1.0, 3.0, -1.0, 9.0];
/// let (values, indices) = topk_cpu::heap_topk(&data, 3);
/// assert_eq!(values, vec![-1.0, -1.0, 3.0]);
/// assert_eq!(data[indices[2] as usize], 3.0);
/// ```
///
/// # Panics
/// If `k == 0` or `k > input.len()`.
pub fn heap_topk<T: RadixKey>(input: &[T], k: usize) -> (Vec<T>, Vec<u32>) {
    assert!(k >= 1 && k <= input.len(), "invalid k = {k}");
    let mut heap: Vec<Entry<T::Ordered>> = Vec::with_capacity(k);

    for (i, &v) in input.iter().enumerate() {
        let key = v.to_ordered();
        if heap.len() < k {
            heap.push((key, i as u32));
            if heap.len() == k {
                build_max_heap(&mut heap);
            }
        } else if key < heap[0].0 {
            heap[0] = (key, i as u32);
            sift_down(&mut heap, 0);
        }
    }
    if heap.len() < k {
        // Unreached (k <= n), kept for clarity.
        build_max_heap(&mut heap);
    }

    // Heap-sort the survivors into ascending order.
    let mut entries = heap;
    let mut end = entries.len();
    while end > 1 {
        end -= 1;
        entries.swap(0, end);
        sift_down(&mut entries[..end], 0);
    }
    unpack::<T>(entries)
}

/// Parallel chunked top-K: split the input into per-thread chunks, run
/// [`heap_topk`] privately on each (no shared state, no locks), then
/// merge the `threads × K` survivors with one final heap pass.
///
/// `threads == 0` means "use available parallelism". Results are
/// identical (as a multiset) to the sequential algorithm.
pub fn parallel_topk<T: RadixKey>(input: &[T], k: usize, threads: usize) -> (Vec<T>, Vec<u32>) {
    assert!(k >= 1 && k <= input.len(), "invalid k = {k}");
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    };
    let chunk = input.len().div_ceil(threads).max(1);
    if threads == 1 || input.len() <= chunk {
        return heap_topk(input, k);
    }

    // Scoped threads: each worker selects within its chunk (taking at
    // most k survivors; a chunk shorter than k contributes everything).
    let partials: Vec<Vec<Entry<T::Ordered>>> = crossbeam::scope(|s| {
        let handles: Vec<_> = input
            .chunks(chunk)
            .enumerate()
            .map(|(ci, slice)| {
                s.spawn(move |_| {
                    let kk = k.min(slice.len());
                    let (vals, idxs) = heap_topk(slice, kk);
                    let base = (ci * chunk) as u32;
                    vals.into_iter()
                        .zip(idxs)
                        .map(|(v, i)| (v.to_ordered(), base + i))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
    .expect("worker panicked");

    // Merge: the survivors are few (≤ threads·k); one sort suffices.
    let mut all: Vec<Entry<T::Ordered>> = partials.into_iter().flatten().collect();
    all.sort_unstable();
    all.truncate(k);
    unpack::<T>(all)
}

fn unpack<T: RadixKey>(entries: Vec<Entry<T::Ordered>>) -> (Vec<T>, Vec<u32>) {
    let values = entries.iter().map(|&(o, _)| T::from_ordered(o)).collect();
    let indices = entries.iter().map(|&(_, i)| i).collect();
    (values, indices)
}

fn build_max_heap<O: Ord + Copy>(heap: &mut [Entry<O>]) {
    for i in (0..heap.len() / 2).rev() {
        sift_down(heap, i);
    }
}

fn sift_down<O: Ord + Copy>(heap: &mut [Entry<O>], mut i: usize) {
    let n = heap.len();
    loop {
        let (l, r) = (2 * i + 1, 2 * i + 2);
        let mut largest = i;
        if l < n && heap[l].0 > heap[largest].0 {
            largest = l;
        }
        if r < n && heap[r].0 > heap[largest].0 {
            largest = r;
        }
        if largest == i {
            return;
        }
        heap.swap(i, largest);
        i = largest;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{generate, Distribution};
    use proptest::prelude::*;
    use topk_core::verify::verify_topk;

    #[test]
    fn heap_matches_reference_on_all_distributions() {
        for dist in Distribution::benchmark_set() {
            let data = generate(dist, 10_000, 3);
            for k in [1usize, 7, 100, 9_999, 10_000] {
                let (v, i) = heap_topk(&data, k);
                verify_topk(&data, k, &v, &i).unwrap();
                assert!(
                    v.windows(2).all(|w| w[0].to_ordered() <= w[1].to_ordered()),
                    "ascending output"
                );
            }
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let data = generate(Distribution::Normal, 50_000, 9);
        for threads in [1usize, 2, 3, 8] {
            for k in [1usize, 64, 5000] {
                let (pv, pi) = parallel_topk(&data, k, threads);
                verify_topk(&data, k, &pv, &pi).unwrap();
                let (sv, _) = heap_topk(&data, k);
                let a: Vec<u32> = pv.iter().map(|x| x.to_ordered()).collect();
                let b: Vec<u32> = sv.iter().map(|x| x.to_ordered()).collect();
                assert_eq!(a, b, "threads={threads} k={k}");
            }
        }
    }

    #[test]
    fn ties_and_specials() {
        let data = vec![
            1.0f32,
            1.0,
            -0.0,
            0.0,
            f32::NEG_INFINITY,
            f32::INFINITY,
            1.0,
        ];
        for k in 1..=data.len() {
            let (v, i) = heap_topk(&data, k);
            verify_topk(&data, k, &v, &i).unwrap();
            let (v, i) = parallel_topk(&data, k, 3);
            verify_topk(&data, k, &v, &i).unwrap();
        }
    }

    #[test]
    fn integer_and_64_bit_keys() {
        let du: Vec<u64> = (0..5000u64)
            .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15))
            .collect();
        let (v, idx) = heap_topk(&du, 33);
        let mut expect = du.clone();
        expect.sort_unstable();
        expect.truncate(33);
        assert_eq!(v, expect);
        for (vv, ii) in v.iter().zip(idx) {
            assert_eq!(du[ii as usize], *vv);
        }
        let di: Vec<i32> = du.iter().map(|&x| x as i32).collect();
        let (v, _) = parallel_topk(&di, 17, 4);
        let mut expect = di.clone();
        expect.sort_unstable();
        expect.truncate(17);
        assert_eq!(v, expect);
    }

    #[test]
    fn chunk_boundary_indices_are_global() {
        // The smallest element sits in the last chunk; its index must
        // come back global, not chunk-relative.
        let mut data = vec![10.0f32; 1000];
        data[997] = -5.0;
        let (v, i) = parallel_topk(&data, 1, 4);
        assert_eq!(v, vec![-5.0]);
        assert_eq!(i, vec![997]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn heap_and_parallel_always_verify(
            data in prop::collection::vec(-1e30f32..1e30, 1..400),
            kf in 0.0f64..=1.0,
            threads in 1usize..5,
        ) {
            let k = ((data.len() as f64 * kf) as usize).clamp(1, data.len());
            let (v, i) = heap_topk(&data, k);
            prop_assert!(verify_topk(&data, k, &v, &i).is_ok());
            let (v, i) = parallel_topk(&data, k, threads);
            prop_assert!(verify_topk(&data, k, &v, &i).is_ok());
        }
    }
}
