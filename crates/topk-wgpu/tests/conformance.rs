//! The wgpu backend against the shared [`gpu_sim::conformance`]
//! contract, plus the WGSL-vs-golden-model device checks.
//!
//! Adapter-dependent tests *skip* (return early, with a note on
//! stderr) when no adapter exists — headless CI and the offline wgpu
//! shim — and run for real when one does. The sim-backed handle always
//! runs the trait contract, so plumbing regressions surface
//! everywhere.

use gpu_sim::{conformance, DeviceSpec};
use topk_wgpu::{kernels, WgpuBackend, WgpuError};

#[test]
fn sim_backed_wgpu_backend_passes_conformance() {
    let mut backend = WgpuBackend::sim_backed(DeviceSpec::test_tiny());
    conformance::run_all(&mut backend);
}

#[test]
fn adapter_backed_wgpu_backend_passes_conformance() {
    let mut backend = match WgpuBackend::new(DeviceSpec::test_tiny()) {
        Ok(b) => b,
        Err(WgpuError::NoAdapter) => {
            eprintln!("skipping: no wgpu adapter on this machine");
            return;
        }
        Err(e) => panic!("adapter probe failed: {e}"),
    };
    conformance::run_all(&mut backend);
}

#[test]
fn wgsl_radix_select_matches_golden_model() {
    let backend = match WgpuBackend::new(DeviceSpec::test_tiny()) {
        Ok(b) => b,
        Err(WgpuError::NoAdapter) => {
            eprintln!("skipping: no wgpu adapter on this machine");
            return;
        }
        Err(e) => panic!("adapter probe failed: {e}"),
    };

    // Deterministic pseudo-random inputs; values hand-rolled so the
    // test needs no RNG crate at the integration-test level.
    let mut state = 0x9E37_79B9u32;
    let values: Vec<f32> = (0..2048)
        .map(|_| {
            state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            (state as f32 / u32::MAX as f32) * 2.0 - 1.0
        })
        .collect();

    for k in [1usize, 7, 100, 512] {
        let device = backend
            .device_select_smallest(&values, k)
            .expect("device select");
        let golden = kernels::radix_select_smallest_host(&values, k);

        // The device's atomic-append order is schedule-dependent, so
        // compare as sorted multisets of (value bits, index).
        let norm = |mut v: Vec<(f32, u32)>| {
            v.sort_by_key(|&(val, id)| (val.to_bits(), id));
            v
        };
        assert_eq!(norm(device), norm(golden), "k={k}");
    }
}
