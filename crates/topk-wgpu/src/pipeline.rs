//! Device-side driver for the radix-select kernel set.
//!
//! [`RadixSelectPipeline`] owns the four compiled compute pipelines
//! and runs the host-driven pass loop from [`crate::kernels`] against
//! a real `wgpu` device: dispatch histogram, read back the 256-entry
//! digit table, pick the target digit on the host, dispatch the
//! partition, repeat at the next bit offset. This mirrors
//! [`kernels::radix_select_smallest_host`] exactly — that function is
//! the conformance oracle for this one.
//!
//! On the vendored offline `wgpu` shim no adapter exists, so nothing
//! here can execute; the module still compiles against the identical
//! API surface, which is what keeps it honest for a build against the
//! real crate.

use crate::kernels::{self, PASS_OFFSETS, RADIX, WORKGROUP_SIZE};
use crate::WgpuError;
use std::borrow::Cow;

/// Ceiling division for dispatch sizing.
fn workgroups_for(items: u32) -> u32 {
    items.div_ceil(WORKGROUP_SIZE)
}

/// Compile one WGSL source into a compute pipeline.
fn compile(device: &wgpu::Device, label: &str, source: &'static str) -> wgpu::ComputePipeline {
    let module = device.create_shader_module(wgpu::ShaderModuleDescriptor {
        label: Some(label),
        source: wgpu::ShaderSource::Wgsl(Cow::Borrowed(source)),
    });
    device.create_compute_pipeline(&wgpu::ComputePipelineDescriptor {
        label: Some(label),
        layout: None,
        module: &module,
        entry_point: "main",
    })
}

/// A storage buffer usable as copy source/destination.
fn storage_buffer(device: &wgpu::Device, label: &str, size: u64) -> wgpu::Buffer {
    device.create_buffer(&wgpu::BufferDescriptor {
        label: Some(label),
        size,
        usage: wgpu::BufferUsages::STORAGE
            | wgpu::BufferUsages::COPY_DST
            | wgpu::BufferUsages::COPY_SRC,
        mapped_at_creation: false,
    })
}

/// Synchronously read `count` u32 words back from `buffer`.
fn read_back_u32(
    device: &wgpu::Device,
    queue: &wgpu::Queue,
    buffer: &wgpu::Buffer,
    count: usize,
) -> Result<Vec<u32>, WgpuError> {
    let bytes = (count * 4) as u64;
    let staging = device.create_buffer(&wgpu::BufferDescriptor {
        label: Some("staging"),
        size: bytes,
        usage: wgpu::BufferUsages::COPY_DST | wgpu::BufferUsages::MAP_READ,
        mapped_at_creation: false,
    });
    let mut encoder = device.create_command_encoder(&wgpu::CommandEncoderDescriptor {
        label: Some("readback"),
    });
    encoder.copy_buffer_to_buffer(buffer, 0, &staging, 0, bytes);
    queue.submit(Some(encoder.finish()));

    let slice = staging.slice(..);
    let (tx, rx) = std::sync::mpsc::channel();
    slice.map_async(wgpu::MapMode::Read, move |r| {
        let _ = tx.send(r);
    });
    device.poll(wgpu::Maintain::Wait);
    match rx.recv() {
        Ok(Ok(())) => {}
        _ => return Err(WgpuError::Device("buffer mapping failed".into())),
    }
    let words = {
        let view = slice.get_mapped_range();
        view.chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect()
    };
    staging.unmap();
    Ok(words)
}

/// Bind `buffers` to slots `0..buffers.len()` of `pipeline`'s group 0.
fn bind(
    device: &wgpu::Device,
    pipeline: &wgpu::ComputePipeline,
    buffers: &[&wgpu::Buffer],
) -> wgpu::BindGroup {
    let entries: Vec<wgpu::BindGroupEntry> = buffers
        .iter()
        .enumerate()
        .map(|(i, buf)| wgpu::BindGroupEntry {
            binding: i as u32,
            resource: buf.as_entire_binding(),
        })
        .collect();
    device.create_bind_group(&wgpu::BindGroupDescriptor {
        label: None,
        layout: &pipeline.get_bind_group_layout(0),
        entries: &entries,
    })
}

/// Run `pipeline` over `workgroups` workgroups with `bind_group`.
fn dispatch(
    device: &wgpu::Device,
    queue: &wgpu::Queue,
    label: &str,
    pipeline: &wgpu::ComputePipeline,
    bind_group: &wgpu::BindGroup,
    workgroups: u32,
) {
    let mut encoder =
        device.create_command_encoder(&wgpu::CommandEncoderDescriptor { label: Some(label) });
    {
        let mut pass =
            encoder.begin_compute_pass(&wgpu::ComputePassDescriptor { label: Some(label) });
        pass.set_pipeline(pipeline);
        pass.set_bind_group(0, bind_group, &[]);
        pass.dispatch_workgroups(workgroups, 1, 1);
    }
    queue.submit(Some(encoder.finish()));
}

/// The four radix-select pipelines, compiled once per device.
pub struct RadixSelectPipeline {
    cast: wgpu::ComputePipeline,
    histogram: wgpu::ComputePipeline,
    scan: wgpu::ComputePipeline,
    partition: wgpu::ComputePipeline,
}

impl RadixSelectPipeline {
    /// Compile the kernel set for `device`.
    pub fn new(device: &wgpu::Device) -> Self {
        RadixSelectPipeline {
            cast: compile(device, "topk cast_keys", kernels::CAST_KEYS_WGSL),
            histogram: compile(device, "topk histogram", kernels::HISTOGRAM_WGSL),
            scan: compile(device, "topk scan", kernels::SCAN_WGSL),
            partition: compile(device, "topk partition", kernels::PARTITION_WGSL),
        }
    }

    /// Select the `k` smallest of `values` on the device, returning
    /// `(value, input position)` pairs — the device twin of
    /// [`kernels::radix_select_smallest_host`].
    pub fn select_smallest(
        &self,
        device: &wgpu::Device,
        queue: &wgpu::Queue,
        values: &[f32],
        k: usize,
    ) -> Result<Vec<(f32, u32)>, WgpuError> {
        if k == 0 || k > values.len() {
            return Err(WgpuError::Device(format!(
                "k={k} out of range for n={}",
                values.len()
            )));
        }
        let n = values.len() as u32;
        let elem_bytes = (values.len() * 4) as u64;

        // Device state: double-buffered candidates, winner region,
        // digit table, cursors.
        let values_buf = storage_buffer(device, "values", elem_bytes);
        let keys_a = storage_buffer(device, "keys_a", elem_bytes);
        let keys_b = storage_buffer(device, "keys_b", elem_bytes);
        let ids_a = storage_buffer(device, "ids_a", elem_bytes);
        let ids_b = storage_buffer(device, "ids_b", elem_bytes);
        let winner_keys = storage_buffer(device, "winner_keys", (k * 4) as u64);
        let winner_ids = storage_buffer(device, "winner_ids", (k * 4) as u64);
        let digit_counts = storage_buffer(device, "digit_counts", (RADIX * 4) as u64);
        let digit_offsets = storage_buffer(device, "digit_offsets", (RADIX * 4) as u64);
        let cursors = storage_buffer(device, "cursors", 8);
        let histo_args = storage_buffer(device, "histo_args", 8);
        let part_args = storage_buffer(device, "part_args", 12);

        let value_bits: Vec<u8> = values
            .iter()
            .flat_map(|v| v.to_bits().to_le_bytes())
            .collect();
        queue.write_buffer(&values_buf, 0, &value_bits);
        let id_init: Vec<u8> = (0..n).flat_map(|i| i.to_le_bytes()).collect();
        queue.write_buffer(&ids_a, 0, &id_init);
        queue.write_buffer(&cursors, 0, &[0u8; 8]);

        // Pass 0: cast f32 bits to monotone keys.
        let cast_bind = bind(device, &self.cast, &[&values_buf, &keys_a]);
        dispatch(
            device,
            queue,
            "cast",
            &self.cast,
            &cast_bind,
            workgroups_for(n),
        );

        let mut live = n;
        let mut remaining = k as u32;
        let mut flip = false; // false: A holds candidates, B receives
        for bit_offset in PASS_OFFSETS {
            let (keys_in, ids_in, keys_out, ids_out) = if flip {
                (&keys_b, &ids_b, &keys_a, &ids_a)
            } else {
                (&keys_a, &ids_a, &keys_b, &ids_b)
            };

            queue.write_buffer(&digit_counts, 0, &[0u8; RADIX * 4]);
            let mut args = Vec::with_capacity(8);
            args.extend_from_slice(&bit_offset.to_le_bytes());
            args.extend_from_slice(&live.to_le_bytes());
            queue.write_buffer(&histo_args, 0, &args);
            let histo_bind = bind(
                device,
                &self.histogram,
                &[&histo_args, keys_in, &digit_counts],
            );
            dispatch(
                device,
                queue,
                "histogram",
                &self.histogram,
                &histo_bind,
                workgroups_for(live.max(1)),
            );

            let scan_bind = bind(device, &self.scan, &[&digit_counts, &digit_offsets]);
            dispatch(device, queue, "scan", &self.scan, &scan_bind, 1);

            let offsets = read_back_u32(device, queue, &digit_offsets, RADIX)?;
            let target = kernels::target_digit(&offsets, remaining);

            // Zero the survivor cursor, keep the winner cursor.
            queue.write_buffer(&cursors, 0, &[0u8; 4]);
            let mut args = Vec::with_capacity(12);
            args.extend_from_slice(&bit_offset.to_le_bytes());
            args.extend_from_slice(&target.to_le_bytes());
            args.extend_from_slice(&live.to_le_bytes());
            queue.write_buffer(&part_args, 0, &args);
            let part_bind = bind(
                device,
                &self.partition,
                &[
                    &part_args,
                    keys_in,
                    ids_in,
                    keys_out,
                    ids_out,
                    &winner_keys,
                    &winner_ids,
                    &cursors,
                ],
            );
            dispatch(
                device,
                queue,
                "partition",
                &self.partition,
                &part_bind,
                workgroups_for(live.max(1)),
            );

            let cursor_now = read_back_u32(device, queue, &cursors, 2)?;
            live = cursor_now[0];
            remaining -= offsets[target as usize];
            flip = !flip;
        }

        // Winners plus enough threshold-tied survivors to fill k.
        let cursor_now = read_back_u32(device, queue, &cursors, 2)?;
        let winner_count = cursor_now[1] as usize;
        let mut out_keys = read_back_u32(device, queue, &winner_keys, winner_count)?;
        let mut out_ids = read_back_u32(device, queue, &winner_ids, winner_count)?;
        let (tie_keys_buf, tie_ids_buf) = if flip {
            (&keys_b, &ids_b)
        } else {
            (&keys_a, &ids_a)
        };
        let tie_keys = read_back_u32(device, queue, tie_keys_buf, remaining as usize)?;
        let tie_ids = read_back_u32(device, queue, tie_ids_buf, remaining as usize)?;
        out_keys.extend(tie_keys);
        out_ids.extend(tie_ids);

        Ok(out_keys
            .into_iter()
            .zip(out_ids)
            .map(|(key, id)| (kernels::key_to_f32(key), id))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workgroup_sizing_covers_all_items() {
        assert_eq!(workgroups_for(1), 1);
        assert_eq!(workgroups_for(256), 1);
        assert_eq!(workgroups_for(257), 2);
        assert_eq!(workgroups_for(0), 0);
    }
}
