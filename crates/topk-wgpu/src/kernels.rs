//! WGSL compute kernels for the radix-select family, plus exact host
//! golden models of each kernel's semantics.
//!
//! The kernel set implements the paper's partition-based top-K recipe
//! (§2.3: RadixSelect / RadiK) as a host-driven pass loop, the shape
//! every WebGPU radix pipeline takes because WGSL has no grid-wide
//! sync — each pass is one dispatch and the host reads back a 256-entry
//! digit table between passes:
//!
//! 1. [`CAST_KEYS_WGSL`] — map `f32` bit patterns to `u32` keys whose
//!    unsigned order matches the float order (ascending).
//! 2. [`HISTOGRAM_WGSL`] — count the 8-bit digit at the current bit
//!    offset over the live candidate range.
//! 3. [`SCAN_WGSL`] — exclusive prefix-sum of the 256 digit counts in
//!    one workgroup.
//! 4. [`PARTITION_WGSL`] — split candidates against the digit bucket
//!    holding the k-th key: smaller digits are emitted as winners,
//!    equal digits survive into the next (less significant) pass.
//!
//! Four passes over 8-bit digits cover the 32-bit key; survivors after
//! the last pass all equal the threshold key.
//!
//! The host functions here are not conveniences — they are the
//! reference the conformance suite holds the shaders to, and they are
//! what headless CI can still execute. Each mirrors its WGSL kernel
//! statement-for-statement so a divergence is a bug in exactly one
//! place.

/// Digit width in bits; 8 gives a 256-entry table, the classic choice
/// (RadiK uses 11 on CUDA; 8 keeps the WGSL scan a single workgroup).
pub const RADIX_BITS: u32 = 8;

/// Number of digit buckets per pass (`2^RADIX_BITS`).
pub const RADIX: usize = 1 << RADIX_BITS;

/// Workgroup size shared by all kernels — equal to [`RADIX`] so the
/// scan kernel owns exactly one digit per invocation.
pub const WORKGROUP_SIZE: u32 = RADIX as u32;

/// Bit offsets of the four passes, most-significant digit first.
pub const PASS_OFFSETS: [u32; 4] = [24, 16, 8, 0];

/// `(monotone key, input index)` pairs, the currency of the host
/// golden models.
pub type KeyIdPairs = Vec<(u32, u32)>;

/// Map `f32` bit patterns (bound as `u32`) to order-preserving keys.
pub const CAST_KEYS_WGSL: &str = r#"
// f32 -> monotone u32: flip all bits of negatives, set the sign bit of
// non-negatives. Unsigned compare on the result matches float order.

// [N] IEEE-754 bit patterns of the input values
@group(0) @binding(0) var<storage, read_write>
values: array<u32>;
// [N] order-preserving keys
@group(0) @binding(1) var<storage, read_write>
keys: array<u32>;

const WORKGROUP_SIZE: u32 = 256u;

@compute @workgroup_size(WORKGROUP_SIZE, 1, 1)
fn main(@builtin(global_invocation_id) global_id: vec3<u32>) {
    let index = global_id.x;
    if index < arrayLength(&values) {
        let bits = values[index];
        let mask = select(0x80000000u, 0xFFFFFFFFu, (bits >> 31u) == 1u);
        keys[index] = bits ^ mask;
    }
}
"#;

/// Count the digit at `radix_bit_offset` over the live candidates.
pub const HISTOGRAM_WGSL: &str = r#"
struct Arguments {
    // bit offset of this pass's digit (24, 16, 8, 0)
    radix_bit_offset: u32,
    // live candidate count (the buffer is reused across passes, so
    // arrayLength would over-read)
    count: u32,
}

@group(0) @binding(0) var<storage, read>
arguments: Arguments;
// [N] candidate keys
@group(0) @binding(1) var<storage, read_write>
keys: array<u32>;
// [2^R] digit counts, zeroed by the host before dispatch
@group(0) @binding(2) var<storage, read_write>
digit_counts: array<atomic<u32>, RADIX>;

// R
const RADIX_BIT_COUNT: u32 = 8u;
// 2^R
const RADIX: u32 = 1u << RADIX_BIT_COUNT;
// 2^R - 1
const RADIX_BIT_MASK: u32 = RADIX - 1u;

@compute @workgroup_size(RADIX, 1, 1)
fn main(@builtin(global_invocation_id) global_id: vec3<u32>) {
    let index = global_id.x;
    if index < arguments.count {
        let digit = (keys[index] >> arguments.radix_bit_offset) & RADIX_BIT_MASK;
        atomicAdd(&digit_counts[digit], 1u);
    }
}
"#;

/// Exclusive prefix-sum of the 256 digit counts, one workgroup.
pub const SCAN_WGSL: &str = r#"
// [2^R] this pass's digit counts
@group(0) @binding(0) var<storage, read_write>
digit_counts: array<u32, RADIX>;
// [2^R] exclusive prefix sums of digit_counts
@group(0) @binding(1) var<storage, read_write>
digit_offsets: array<u32, RADIX>;

const RADIX: u32 = 256u;

var<workgroup> scratch: array<u32, RADIX>;

@compute @workgroup_size(RADIX, 1, 1)
fn main(@builtin(local_invocation_id) local_id: vec3<u32>) {
    let i = local_id.x;
    scratch[i] = digit_counts[i];
    workgroupBarrier();

    // Hillis-Steele inclusive scan: log2(RADIX) rounds.
    for (var stride = 1u; stride < RADIX; stride = stride << 1u) {
        var v = scratch[i];
        if i >= stride {
            v = v + scratch[i - stride];
        }
        workgroupBarrier();
        scratch[i] = v;
        workgroupBarrier();
    }

    // Shift right to make it exclusive.
    if i == 0u {
        digit_offsets[0] = 0u;
    } else {
        digit_offsets[i] = scratch[i - 1u];
    }
}
"#;

/// Split candidates against the target digit: `< target` are winners,
/// `== target` survive into the next pass, `> target` are discarded.
pub const PARTITION_WGSL: &str = r#"
struct Arguments {
    // bit offset of this pass's digit
    radix_bit_offset: u32,
    // digit bucket holding the k-th smallest key
    target_digit: u32,
    // live candidate count
    count: u32,
}

@group(0) @binding(0) var<storage, read>
arguments: Arguments;
// [N] candidate keys in
@group(0) @binding(1) var<storage, read_write>
keys_input: array<u32>;
// [N] original input positions of the candidates
@group(0) @binding(2) var<storage, read_write>
ids_input: array<u32>;
// [N] surviving candidates (digit == target) out
@group(0) @binding(3) var<storage, read_write>
keys_output: array<u32>;
@group(0) @binding(4) var<storage, read_write>
ids_output: array<u32>;
// [K] keys already known to be in the top K (digit < target)
@group(0) @binding(5) var<storage, read_write>
winner_keys: array<u32>;
@group(0) @binding(6) var<storage, read_write>
winner_ids: array<u32>;
// [2] append cursors: [0] survivors (host zeroes it each pass),
// [1] winners (accumulates across passes)
@group(0) @binding(7) var<storage, read_write>
cursors: array<atomic<u32>, 2>;

// R
const RADIX_BIT_COUNT: u32 = 8u;
// 2^R
const RADIX: u32 = 1u << RADIX_BIT_COUNT;
// 2^R - 1
const RADIX_BIT_MASK: u32 = RADIX - 1u;

@compute @workgroup_size(RADIX, 1, 1)
fn main(@builtin(global_invocation_id) global_id: vec3<u32>) {
    let index = global_id.x;
    if index < arguments.count {
        let key = keys_input[index];
        let id = ids_input[index];
        let digit = (key >> arguments.radix_bit_offset) & RADIX_BIT_MASK;
        if digit < arguments.target_digit {
            let slot = atomicAdd(&cursors[1], 1u);
            winner_keys[slot] = key;
            winner_ids[slot] = id;
        } else if digit == arguments.target_digit {
            let slot = atomicAdd(&cursors[0], 1u);
            keys_output[slot] = key;
            ids_output[slot] = id;
        }
    }
}
"#;

// ---------------------------------------------------------------------
// Host golden models — the semantics the shaders are held to
// ---------------------------------------------------------------------

/// [`CAST_KEYS_WGSL`]'s per-element map: `f32` bits to a `u32` whose
/// unsigned order equals the float order. NaNs with a clear sign bit
/// land above `+inf` (and negative NaNs below `-inf`), the usual radix
/// convention.
pub fn monotone_key(v: f32) -> u32 {
    let bits = v.to_bits();
    let mask = if bits >> 31 == 1 {
        0xFFFF_FFFF
    } else {
        0x8000_0000
    };
    bits ^ mask
}

/// Inverse of [`monotone_key`].
pub fn key_to_f32(key: u32) -> f32 {
    let mask = if key >> 31 == 1 {
        0x8000_0000
    } else {
        0xFFFF_FFFF
    };
    f32::from_bits(key ^ mask)
}

/// [`HISTOGRAM_WGSL`]'s result: counts of the digit at `bit_offset`.
pub fn histogram_host(keys: &[u32], bit_offset: u32) -> Vec<u32> {
    let mut counts = vec![0u32; RADIX];
    for &key in keys {
        counts[((key >> bit_offset) as usize) & (RADIX - 1)] += 1;
    }
    counts
}

/// [`SCAN_WGSL`]'s result: exclusive prefix sums of `counts`.
pub fn exclusive_scan_host(counts: &[u32]) -> Vec<u32> {
    let mut offsets = Vec::with_capacity(counts.len());
    let mut running = 0u32;
    for &c in counts {
        offsets.push(running);
        running += c;
    }
    offsets
}

/// [`PARTITION_WGSL`]'s result: `(survivors, winners)` where survivors
/// carry digit `== target` and winners digit `< target` at
/// `bit_offset`. Order within each side is unspecified on the device
/// (atomic append); the host model keeps input order, which is one
/// valid interleaving.
pub fn partition_host(
    keys: &[u32],
    ids: &[u32],
    bit_offset: u32,
    target: u32,
) -> (KeyIdPairs, KeyIdPairs) {
    let mut survivors = Vec::new();
    let mut winners = Vec::new();
    for (&key, &id) in keys.iter().zip(ids) {
        let digit = (key >> bit_offset) & (RADIX as u32 - 1);
        if digit < target {
            winners.push((key, id));
        } else if digit == target {
            survivors.push((key, id));
        }
    }
    (survivors, winners)
}

/// The digit bucket holding the `k`-th smallest key (1-based `k`),
/// given this pass's exclusive digit offsets — the host-side decision
/// between dispatches.
pub fn target_digit(offsets: &[u32], k: u32) -> u32 {
    debug_assert!(k >= 1);
    // Largest digit whose exclusive offset is still below k.
    let mut digit = 0u32;
    for (d, &off) in offsets.iter().enumerate().skip(1) {
        if off < k {
            digit = d as u32;
        } else {
            break;
        }
    }
    digit
}

/// Full golden model of the device pipeline: the k smallest values of
/// `values` as `(value, input position)` pairs, via the same
/// cast → (histogram → scan → partition)×4 pass loop the shaders run.
/// Ties at the threshold resolve by input order, matching the device's
/// first-come atomic append up to schedule nondeterminism.
pub fn radix_select_smallest_host(values: &[f32], k: usize) -> Vec<(f32, u32)> {
    assert!(k >= 1 && k <= values.len(), "k out of range");
    let mut keys: Vec<u32> = values.iter().map(|&v| monotone_key(v)).collect();
    let mut ids: Vec<u32> = (0..values.len() as u32).collect();
    let mut winners: Vec<(u32, u32)> = Vec::with_capacity(k);
    let mut remaining = k as u32;

    for bit_offset in PASS_OFFSETS {
        let counts = histogram_host(&keys, bit_offset);
        let offsets = exclusive_scan_host(&counts);
        let target = target_digit(&offsets, remaining);
        let (survivors, mut pass_winners) = partition_host(&keys, &ids, bit_offset, target);
        winners.append(&mut pass_winners);
        remaining -= offsets[target as usize];
        (keys, ids) = survivors.into_iter().unzip();
    }

    // Everything left ties the threshold key exactly; take what's
    // needed to fill k.
    winners.extend(
        keys.iter()
            .zip(&ids)
            .take(remaining as usize)
            .map(|(&k, &i)| (k, i)),
    );
    winners
        .into_iter()
        .map(|(key, id)| (key_to_f32(key), id))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn monotone_key_preserves_order() {
        let vals = [
            f32::NEG_INFINITY,
            -3.5e30,
            -2.0,
            -1.0,
            -0.0,
            0.0,
            f32::MIN_POSITIVE,
            1.0,
            2.5,
            7.0e20,
            f32::INFINITY,
        ];
        for w in vals.windows(2) {
            assert!(
                monotone_key(w[0]) <= monotone_key(w[1]),
                "{} vs {}",
                w[0],
                w[1]
            );
        }
        // -0.0 and 0.0 map to adjacent keys, negatives below positives.
        assert!(monotone_key(-0.0) < monotone_key(0.0));
    }

    #[test]
    fn key_roundtrip_is_exact() {
        for v in [-7.25f32, -0.0, 0.0, 1.5, 3.0e12, f32::INFINITY] {
            let back = key_to_f32(monotone_key(v));
            assert_eq!(v.to_bits(), back.to_bits());
        }
    }

    #[test]
    fn histogram_counts_every_key_once() {
        let keys = [0x0100_0000u32, 0x01FF_0000, 0x0203_0405, 0xFF00_0000];
        let counts = histogram_host(&keys, 24);
        assert_eq!(counts[0x01], 2);
        assert_eq!(counts[0x02], 1);
        assert_eq!(counts[0xFF], 1);
        assert_eq!(counts.iter().sum::<u32>() as usize, keys.len());
    }

    #[test]
    fn exclusive_scan_matches_definition() {
        let counts = [3u32, 0, 5, 1];
        assert_eq!(exclusive_scan_host(&counts), vec![0, 3, 3, 8]);
    }

    #[test]
    fn target_digit_brackets_k() {
        // counts 3,0,5,1 -> offsets 0,3,3,8: k=3 sits in digit 0
        // (offsets[1]=3 is not < 3), k=4 in digit 2, k=9 in digit 3.
        let offsets = vec![0u32, 3, 3, 8];
        assert_eq!(target_digit(&offsets, 3), 0);
        assert_eq!(target_digit(&offsets, 4), 2);
        assert_eq!(target_digit(&offsets, 9), 3);
    }

    #[test]
    fn partition_splits_by_digit() {
        let keys = [0x0500_0000u32, 0x0300_0000, 0x0500_0001, 0x0900_0000];
        let ids = [0u32, 1, 2, 3];
        let (survivors, winners) = partition_host(&keys, &ids, 24, 5);
        assert_eq!(winners, vec![(0x0300_0000, 1)]);
        assert_eq!(survivors, vec![(0x0500_0000, 0), (0x0500_0001, 2)]);
    }

    #[test]
    fn golden_select_matches_sort_reference() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for &(n, k) in &[
            (1usize, 1usize),
            (100, 1),
            (100, 100),
            (1000, 7),
            (4096, 256),
        ] {
            let values: Vec<f32> = (0..n).map(|_| rng.gen::<f32>() * 2.0 - 1.0).collect();
            let got = radix_select_smallest_host(&values, k);
            assert_eq!(got.len(), k);

            let mut expect = values.clone();
            expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let mut got_sorted: Vec<f32> = got.iter().map(|&(v, _)| v).collect();
            got_sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            assert_eq!(got_sorted, expect[..k], "n={n} k={k}");

            // Reported indices must point at the reported values.
            for &(v, id) in &got {
                assert_eq!(values[id as usize].to_bits(), v.to_bits());
            }
        }
    }

    #[test]
    fn golden_select_handles_duplicate_threshold() {
        // 5 copies of the threshold value, k cuts through them.
        let values = [2.0f32, 1.0, 2.0, 2.0, 0.5, 2.0, 2.0, 9.0];
        let got = radix_select_smallest_host(&values, 4);
        let mut vs: Vec<f32> = got.iter().map(|&(v, _)| v).collect();
        vs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(vs, vec![0.5, 1.0, 2.0, 2.0]);
    }

    #[test]
    fn wgsl_sources_declare_expected_interfaces() {
        for (src, bindings) in [
            (CAST_KEYS_WGSL, 2usize),
            (HISTOGRAM_WGSL, 3),
            (SCAN_WGSL, 2),
            (PARTITION_WGSL, 8),
        ] {
            assert!(src.contains("@compute"), "missing @compute");
            assert!(src.contains("fn main"), "missing entry point");
            for b in 0..bindings {
                assert!(
                    src.contains(&format!("@binding({b})")),
                    "missing @binding({b})"
                );
            }
            assert!(
                !src.contains(&format!("@binding({bindings})")),
                "unexpected extra binding"
            );
        }
        // The digit width the host loop assumes.
        assert!(HISTOGRAM_WGSL.contains("RADIX_BIT_COUNT: u32 = 8u"));
        assert!(PARTITION_WGSL.contains("RADIX_BIT_COUNT: u32 = 8u"));
    }
}
