//! # topk-wgpu — WebGPU backend for the top-K workspace
//!
//! This crate carries the workspace's first real-device [`Backend`]
//! implementation: WGSL compute kernels for the radix-select family
//! ([`kernels`]), a device pipeline driver ([`pipeline`]), and
//! [`WgpuBackend`], which exposes both through the same
//! [`gpu_sim::Backend`] trait the simulator implements.
//!
//! Built behind the workspace's `wgpu` cargo feature. The build
//! environment vendors an offline `wgpu` stand-in (`shims/wgpu`) whose
//! adapter probe honestly returns `None`, so here:
//!
//! * everything **compiles** (the shim types mirror the real API), and
//! * adapter-dependent tests **skip** rather than fail, while the host
//!   golden models in [`kernels`] keep the shader semantics under test
//!   on every machine.
//!
//! [`Backend`]: gpu_sim::Backend

pub mod kernels;
pub mod pipeline;

mod backend;

pub use backend::WgpuBackend;

/// Errors from the WebGPU layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WgpuError {
    /// No usable adapter on this machine (headless CI, or the offline
    /// `wgpu` shim). Treated as "skip", never "fail".
    NoAdapter,
    /// The device rejected an operation.
    Device(String),
}

impl std::fmt::Display for WgpuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WgpuError::NoAdapter => f.write_str("no usable wgpu adapter on this machine"),
            WgpuError::Device(detail) => write!(f, "wgpu device error: {detail}"),
        }
    }
}

impl std::error::Error for WgpuError {}
