//! [`WgpuBackend`] — the [`Backend`] implementation over a WebGPU
//! device.
//!
//! The backend pairs two executors:
//!
//! * a full [`gpu_sim::Gpu`] that runs every closure kernel (closure
//!   kernels are host code by construction — they cannot be shipped to
//!   a GPU) and keeps the metering, cost model, sanitizer and fault
//!   machinery of the reference backend, and
//! * an optional real `wgpu` device, present when an adapter was found
//!   at construction, which the WGSL radix-select pipeline
//!   ([`crate::pipeline::RadixSelectPipeline`]) executes on.
//!
//! This split keeps the trait honest on headless machines: allocation,
//! transfer and launch accounting always work, `backend_name` tells
//! consumers whether a physical device backs the handle, and the
//! conformance suite compares the WGSL pipeline against the golden
//! models only when [`WgpuBackend::has_adapter`] is true.

use crate::pipeline::RadixSelectPipeline;
use crate::WgpuError;
use gpu_sim::{
    AllocGrant, Backend, BlockCtx, DeviceSpec, FaultEvent, FaultInjector, Gpu, KernelReport,
    LaunchConfig, SanitizerMode, SanitizerReport, ShadowToken, SimError, Timeline,
};

/// Live WebGPU device state (only constructible when an adapter
/// exists).
struct DeviceState {
    device: wgpu::Device,
    queue: wgpu::Queue,
    adapter_name: String,
    radix_select: RadixSelectPipeline,
}

/// Probe for a usable adapter and open a device on it.
fn probe_device() -> Option<(wgpu::Device, wgpu::Queue, String)> {
    let instance = wgpu::Instance::new(wgpu::InstanceDescriptor::default());
    let adapter = instance.request_adapter(&wgpu::RequestAdapterOptions {
        power_preference: wgpu::PowerPreference::HighPerformance,
        ..Default::default()
    })?;
    let name = adapter.get_info().name;
    let (device, queue) = adapter
        .request_device(&wgpu::DeviceDescriptor::default(), None)
        .ok()?;
    Some((device, queue, name))
}

/// A [`Backend`] over WebGPU. See the module docs for the execution
/// split between the embedded simulator and the physical device.
pub struct WgpuBackend {
    sim: Gpu,
    device: Option<DeviceState>,
}

impl WgpuBackend {
    /// Open the backend on a physical adapter; fails with
    /// [`WgpuError::NoAdapter`] on headless machines (tests treat that
    /// as a skip, not a failure). `spec` parameterises the embedded
    /// cost model, which keeps pricing plans comparable across
    /// backends.
    pub fn new(spec: DeviceSpec) -> Result<Self, WgpuError> {
        let (device, queue, adapter_name) = probe_device().ok_or(WgpuError::NoAdapter)?;
        let radix_select = RadixSelectPipeline::new(&device);
        Ok(WgpuBackend {
            sim: Gpu::new(spec),
            device: Some(DeviceState {
                device,
                queue,
                adapter_name,
                radix_select,
            }),
        })
    }

    /// A backend with no physical device: every operation runs on the
    /// embedded simulator. Useful for exercising the `WgpuBackend`
    /// plumbing (trait dispatch, engine pooling) on headless CI.
    pub fn sim_backed(spec: DeviceSpec) -> Self {
        WgpuBackend {
            sim: Gpu::new(spec),
            device: None,
        }
    }

    /// Whether a physical adapter backs this handle.
    pub fn has_adapter(&self) -> bool {
        self.device.is_some()
    }

    /// The adapter's driver-reported name, when one exists.
    pub fn adapter_name(&self) -> Option<&str> {
        self.device.as_ref().map(|d| d.adapter_name.as_str())
    }

    /// Run the WGSL radix-select pipeline on the physical device: the
    /// `k` smallest of `values` as `(value, input position)` pairs.
    /// Fails with [`WgpuError::NoAdapter`] on a sim-backed handle —
    /// callers fall back to the portable kernels through the trait.
    pub fn device_select_smallest(
        &self,
        values: &[f32],
        k: usize,
    ) -> Result<Vec<(f32, u32)>, WgpuError> {
        let state = self.device.as_ref().ok_or(WgpuError::NoAdapter)?;
        state
            .radix_select
            .select_smallest(&state.device, &state.queue, values, k)
    }
}

impl Backend for WgpuBackend {
    fn backend_name(&self) -> &'static str {
        if self.device.is_some() {
            "wgpu"
        } else {
            "wgpu-sim"
        }
    }

    fn spec(&self) -> &DeviceSpec {
        self.sim.spec()
    }

    fn elapsed_us(&self) -> f64 {
        self.sim.elapsed_us()
    }

    fn host_compute(&mut self, what: &str, us: f64) {
        self.sim.host_compute(what, us);
    }

    fn host_sync(&mut self) {
        self.sim.host_sync();
    }

    fn reset_profile(&mut self) {
        self.sim.reset_profile();
    }

    fn grant_alloc(
        &mut self,
        label: &str,
        len: usize,
        elem_bytes: usize,
    ) -> Result<AllocGrant, SimError> {
        Backend::grant_alloc(&mut self.sim, label, len, elem_bytes)
    }

    fn note_buffer(&mut self, label: &str, bytes: usize, token: Option<ShadowToken>) {
        Backend::note_buffer(&mut self.sim, label, bytes, token);
    }

    fn free_bytes(&mut self, bytes: usize) {
        self.sim.free_bytes(bytes);
    }

    fn mem_allocated(&self) -> usize {
        self.sim.mem_allocated()
    }

    fn mem_high_water(&self) -> usize {
        self.sim.mem_high_water()
    }

    fn charge_htod(&mut self, label: &str, bytes: usize, fallible: bool) -> Result<(), SimError> {
        Backend::charge_htod(&mut self.sim, label, bytes, fallible)
    }

    fn charge_dtoh(
        &mut self,
        label: &str,
        bytes: usize,
        fallible: bool,
        token: Option<&ShadowToken>,
    ) -> Result<(), SimError> {
        Backend::charge_dtoh(&mut self.sim, label, bytes, fallible, token)
    }

    fn launch_dyn(
        &mut self,
        name: &str,
        cfg: LaunchConfig,
        kernel: &(dyn Fn(&mut BlockCtx) + Sync),
    ) -> Result<&KernelReport, SimError> {
        Backend::launch_dyn(&mut self.sim, name, cfg, kernel)
    }

    fn set_span(&mut self, span: u64) {
        self.sim.set_span(span);
    }

    fn clear_span(&mut self) {
        self.sim.clear_span();
    }

    fn current_span(&self) -> u64 {
        self.sim.current_span()
    }

    fn reports(&self) -> &[KernelReport] {
        self.sim.reports()
    }

    fn timeline(&self) -> Option<&Timeline> {
        Backend::timeline(&self.sim)
    }

    fn enable_sanitizer(&mut self, mode: SanitizerMode) {
        self.sim.enable_sanitizer(mode);
    }

    fn sanitizer_mode(&self) -> SanitizerMode {
        Backend::sanitizer_mode(&self.sim)
    }

    fn sanitizer_report(&self) -> Option<SanitizerReport> {
        self.sim.sanitizer_report()
    }

    fn run_leakcheck(&mut self) {
        self.sim.run_leakcheck();
    }

    fn set_fault_injector(&mut self, injector: FaultInjector) {
        self.sim.set_fault_injector(injector);
    }

    fn fault_events(&self) -> &[FaultEvent] {
        self.sim.fault_events()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::BackendExt;

    #[test]
    fn headless_construction_reports_no_adapter() {
        match WgpuBackend::new(DeviceSpec::test_tiny()) {
            Err(WgpuError::NoAdapter) => {}
            Ok(b) => {
                // A real adapter exists (running outside the shim):
                // the backend must say so.
                assert_eq!(b.backend_name(), "wgpu");
                assert!(b.has_adapter());
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }

    #[test]
    fn sim_backed_handle_runs_kernels_through_the_trait() {
        let mut backend = WgpuBackend::sim_backed(DeviceSpec::test_tiny());
        assert_eq!(backend.backend_name(), "wgpu-sim");
        assert!(!backend.has_adapter());

        let dev: &mut dyn Backend = &mut backend;
        let buf = dev.htod("xs", &[5u32, 1, 4, 2]);
        dev.launch("inc", LaunchConfig::grid_1d(1, 32), |ctx| {
            for i in 0..4 {
                let v = ctx.ld(&buf, i);
                ctx.st(&buf, i, v + 1);
            }
        });
        assert_eq!(dev.dtoh(&buf), vec![6, 2, 5, 3]);
        assert!(dev.elapsed_us() > 0.0);
        assert_eq!(dev.reports().len(), 1);
        dev.free(&buf);
        assert_eq!(dev.mem_allocated(), 0);
    }

    #[test]
    fn device_select_requires_an_adapter() {
        let backend = WgpuBackend::sim_backed(DeviceSpec::test_tiny());
        assert!(matches!(
            backend.device_select_smallest(&[3.0, 1.0, 2.0], 2),
            Err(WgpuError::NoAdapter)
        ));
    }
}
