//! Algorithm-level instrumentation: process-wide atomic counters for
//! the runtime decisions the paper's figures are built on.
//!
//! AIR Top-K's adaptive strategy (§3.2) and early stopping (§3.3) are
//! *runtime* decisions taken by the last finishing block of each pass —
//! invisible from outside the kernel unless counted where they happen.
//! The same goes for GridSelect's queue flushes (§4): how often the
//! shared queue actually forces a bitonic sort + merge is exactly the
//! quantity its design minimises. This module counts those events with
//! relaxed atomics (kernel blocks run on a host thread pool, so the
//! counters must be shareable across threads; the increments cost
//! nothing next to the simulation itself).
//!
//! The counters are process-wide and monotonic. Consumers that want
//! per-run numbers take a [`AlgoCounters::snapshot`] before and after
//! and diff with [`AlgoSnapshot::delta_since`] — that is what
//! `topk-engine` does per drain. Under concurrent engines the delta is
//! a process-wide total over the window, which is what an engine-wide
//! metrics endpoint wants anyway.
//!
//! ```
//! use topk_core::obs;
//!
//! let before = obs::counters().snapshot();
//! // ... run selections ...
//! let delta = obs::counters().snapshot().delta_since(&before);
//! assert!(delta.air_passes >= before.air_passes.saturating_sub(before.air_passes));
//! ```

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// The global algorithm-event counters (see module docs).
#[derive(Debug)]
pub struct AlgoCounters {
    /// AIR: radix digit passes completed (one per problem per pass,
    /// counted when the last finishing block runs the on-device prefix
    /// sum; includes the early-stop copy-out pass).
    pub air_passes: AtomicU64,
    /// AIR: passes that decided to *write* the candidate buffer for the
    /// next pass (`C·α < N`, §3.2).
    pub air_buffer_writes: AtomicU64,
    /// AIR: passes where the adaptive strategy *skipped* buffering
    /// (`C·α ≥ N`): the next pass re-reads the input instead.
    pub air_adaptive_skips: AtomicU64,
    /// AIR: early-stop triggers (`K == C`, §3.3).
    pub air_early_stops: AtomicU64,
    /// AIR: problems solved by the one-block shared-memory fast path.
    pub air_one_block_selections: AtomicU64,
    /// GridSelect: shared-queue flushes (bitonic sort + merge into the
    /// maintained top-K list) — the expensive event the shared queue
    /// exists to make rare (§4).
    pub gridselect_queue_merges: AtomicU64,
    /// GridSelect: list-vs-list merges (cross-warp merges inside a
    /// block plus the tree-merge kernel's folds).
    pub gridselect_list_merges: AtomicU64,
    /// RadiK: radix rounds completed (one per problem per round,
    /// counted by the last finishing block).
    pub radik_rounds: AtomicU64,
    /// RadiK: total key bits skipped by adaptive digit ordering — the
    /// shared-prefix bits the sketch pass and per-round min/max
    /// tracking let the selector jump over instead of histogramming.
    pub radik_skipped_bits: AtomicU64,
    /// RowWise: shared-memory candidate-buffer compactions (the fused
    /// row-wise path's only non-streaming work).
    pub rowwise_compactions: AtomicU64,
    /// Bucketed: approximate single-pass selections launched.
    pub bucketed_selections: AtomicU64,
    /// Two-stage: exact candidate reduces launched (one per
    /// approximate two-stage selection).
    pub twostage_reduces: AtomicU64,
    /// Tuner: dispatches served from a cached plan.
    pub tuner_plan_hits: AtomicU64,
    /// Tuner: dispatches that had to run the offline planner first.
    pub tuner_plan_misses: AtomicU64,
    /// Tuner: plans re-planned because observed latency contradicted
    /// the cost model's prediction.
    pub tuner_refinements: AtomicU64,
}

impl AlgoCounters {
    const fn new() -> Self {
        AlgoCounters {
            air_passes: AtomicU64::new(0),
            air_buffer_writes: AtomicU64::new(0),
            air_adaptive_skips: AtomicU64::new(0),
            air_early_stops: AtomicU64::new(0),
            air_one_block_selections: AtomicU64::new(0),
            gridselect_queue_merges: AtomicU64::new(0),
            gridselect_list_merges: AtomicU64::new(0),
            radik_rounds: AtomicU64::new(0),
            radik_skipped_bits: AtomicU64::new(0),
            rowwise_compactions: AtomicU64::new(0),
            bucketed_selections: AtomicU64::new(0),
            twostage_reduces: AtomicU64::new(0),
            tuner_plan_hits: AtomicU64::new(0),
            tuner_plan_misses: AtomicU64::new(0),
            tuner_refinements: AtomicU64::new(0),
        }
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> AlgoSnapshot {
        AlgoSnapshot {
            air_passes: self.air_passes.load(Relaxed),
            air_buffer_writes: self.air_buffer_writes.load(Relaxed),
            air_adaptive_skips: self.air_adaptive_skips.load(Relaxed),
            air_early_stops: self.air_early_stops.load(Relaxed),
            air_one_block_selections: self.air_one_block_selections.load(Relaxed),
            gridselect_queue_merges: self.gridselect_queue_merges.load(Relaxed),
            gridselect_list_merges: self.gridselect_list_merges.load(Relaxed),
            radik_rounds: self.radik_rounds.load(Relaxed),
            radik_skipped_bits: self.radik_skipped_bits.load(Relaxed),
            rowwise_compactions: self.rowwise_compactions.load(Relaxed),
            bucketed_selections: self.bucketed_selections.load(Relaxed),
            twostage_reduces: self.twostage_reduces.load(Relaxed),
            tuner_plan_hits: self.tuner_plan_hits.load(Relaxed),
            tuner_plan_misses: self.tuner_plan_misses.load(Relaxed),
            tuner_refinements: self.tuner_refinements.load(Relaxed),
        }
    }
}

static COUNTERS: AlgoCounters = AlgoCounters::new();

/// The process-wide counter instance.
pub fn counters() -> &'static AlgoCounters {
    &COUNTERS
}

/// Plain-integer snapshot of [`AlgoCounters`]; subtract two with
/// [`AlgoSnapshot::delta_since`] to get the events inside a window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AlgoSnapshot {
    /// See [`AlgoCounters::air_passes`].
    pub air_passes: u64,
    /// See [`AlgoCounters::air_buffer_writes`].
    pub air_buffer_writes: u64,
    /// See [`AlgoCounters::air_adaptive_skips`].
    pub air_adaptive_skips: u64,
    /// See [`AlgoCounters::air_early_stops`].
    pub air_early_stops: u64,
    /// See [`AlgoCounters::air_one_block_selections`].
    pub air_one_block_selections: u64,
    /// See [`AlgoCounters::gridselect_queue_merges`].
    pub gridselect_queue_merges: u64,
    /// See [`AlgoCounters::gridselect_list_merges`].
    pub gridselect_list_merges: u64,
    /// See [`AlgoCounters::radik_rounds`].
    pub radik_rounds: u64,
    /// See [`AlgoCounters::radik_skipped_bits`].
    pub radik_skipped_bits: u64,
    /// See [`AlgoCounters::rowwise_compactions`].
    pub rowwise_compactions: u64,
    /// See [`AlgoCounters::bucketed_selections`].
    pub bucketed_selections: u64,
    /// See [`AlgoCounters::twostage_reduces`].
    pub twostage_reduces: u64,
    /// See [`AlgoCounters::tuner_plan_hits`].
    pub tuner_plan_hits: u64,
    /// See [`AlgoCounters::tuner_plan_misses`].
    pub tuner_plan_misses: u64,
    /// See [`AlgoCounters::tuner_refinements`].
    pub tuner_refinements: u64,
}

impl AlgoSnapshot {
    /// Counter increments between `earlier` and `self` (saturating, so
    /// snapshots taken out of order yield zeros instead of wrapping).
    pub fn delta_since(&self, earlier: &AlgoSnapshot) -> AlgoSnapshot {
        AlgoSnapshot {
            air_passes: self.air_passes.saturating_sub(earlier.air_passes),
            air_buffer_writes: self
                .air_buffer_writes
                .saturating_sub(earlier.air_buffer_writes),
            air_adaptive_skips: self
                .air_adaptive_skips
                .saturating_sub(earlier.air_adaptive_skips),
            air_early_stops: self.air_early_stops.saturating_sub(earlier.air_early_stops),
            air_one_block_selections: self
                .air_one_block_selections
                .saturating_sub(earlier.air_one_block_selections),
            gridselect_queue_merges: self
                .gridselect_queue_merges
                .saturating_sub(earlier.gridselect_queue_merges),
            gridselect_list_merges: self
                .gridselect_list_merges
                .saturating_sub(earlier.gridselect_list_merges),
            radik_rounds: self.radik_rounds.saturating_sub(earlier.radik_rounds),
            radik_skipped_bits: self
                .radik_skipped_bits
                .saturating_sub(earlier.radik_skipped_bits),
            rowwise_compactions: self
                .rowwise_compactions
                .saturating_sub(earlier.rowwise_compactions),
            bucketed_selections: self
                .bucketed_selections
                .saturating_sub(earlier.bucketed_selections),
            twostage_reduces: self
                .twostage_reduces
                .saturating_sub(earlier.twostage_reduces),
            tuner_plan_hits: self.tuner_plan_hits.saturating_sub(earlier.tuner_plan_hits),
            tuner_plan_misses: self
                .tuner_plan_misses
                .saturating_sub(earlier.tuner_plan_misses),
            tuner_refinements: self
                .tuner_refinements
                .saturating_sub(earlier.tuner_refinements),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_delta_is_saturating_and_fieldwise() {
        let a = AlgoSnapshot {
            air_passes: 10,
            air_buffer_writes: 3,
            ..Default::default()
        };
        let b = AlgoSnapshot {
            air_passes: 14,
            air_buffer_writes: 3,
            air_early_stops: 2,
            ..Default::default()
        };
        let d = b.delta_since(&a);
        assert_eq!(d.air_passes, 4);
        assert_eq!(d.air_buffer_writes, 0);
        assert_eq!(d.air_early_stops, 2);
        // Out-of-order snapshots saturate to zero.
        assert_eq!(a.delta_since(&b).air_passes, 0);
    }

    #[test]
    fn real_selections_bump_the_counters() {
        use crate::traits::TopKAlgorithm;
        use gpu_sim::{DeviceSpec, Gpu};
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let data: Vec<f32> = (0..40_000).map(|i| ((i * 131) % 7919) as f32).collect();
        let input = gpu.htod("obs_in", &data);
        let before = counters().snapshot();
        let _ = crate::AirTopK::default()
            .try_select(&mut gpu, &input, 32)
            .unwrap();
        let _ = crate::GridSelect::default()
            .try_select(&mut gpu, &input, 32)
            .unwrap();
        let d = counters().snapshot().delta_since(&before);
        // Tests run in parallel, so the deltas are lower bounds: at
        // least one AIR digit pass and one GridSelect queue flush must
        // have happened in this window.
        assert!(d.air_passes >= 1, "no AIR passes counted");
        assert!(
            d.gridselect_queue_merges >= 1,
            "no GridSelect queue merges counted"
        );
        assert!(
            d.gridselect_list_merges >= 1,
            "no GridSelect list merges counted"
        );
    }

    #[test]
    fn global_counters_are_shared_and_monotonic() {
        let before = counters().snapshot();
        counters().air_passes.fetch_add(3, Relaxed);
        counters().gridselect_queue_merges.fetch_add(1, Relaxed);
        let delta = counters().snapshot().delta_since(&before);
        assert!(delta.air_passes >= 3);
        assert!(delta.gridselect_queue_merges >= 1);
    }
}
