//! Tests for [`super`] — split out to keep the implementation file
//! readable (the suite is as long as the algorithm itself).

use super::*;
use crate::verify::verify_topk;
use datagen::{generate, Distribution};
use gpu_sim::{DeviceSpec, Gpu};

fn gpu() -> Gpu {
    Gpu::new(DeviceSpec::a100())
}

fn run_case(alg: &GridSelect, data: &[f32], k: usize) {
    let mut g = gpu();
    let input = g.htod("in", data);
    let out = alg.select(&mut g, &input, k);
    verify_topk(data, k, &out.values.to_vec(), &out.indices.to_vec())
        .unwrap_or_else(|e| panic!("GridSelect failed: {e} (n = {}, k = {k})", data.len()));
}

#[test]
fn small_hand_case() {
    run_case(
        &GridSelect::default(),
        &[5.0, 1.0, 4.0, 1.5, -2.0, 8.0, 0.0],
        3,
    );
}

#[test]
fn all_distributions_many_shapes() {
    let alg = GridSelect::default();
    for dist in [
        Distribution::Uniform,
        Distribution::Normal,
        Distribution::RadixAdversarial { m_bits: 20 },
    ] {
        for (n, k) in [
            (1usize, 1usize),
            (50, 3),
            (1000, 7),
            (10_000, 100),
            (20_000, 2048),
            (4096, 1),
        ] {
            let data = generate(dist, n, 42);
            run_case(&alg, &data, k);
        }
    }
}

#[test]
fn descending_input_worst_case_for_queues() {
    // Strictly descending input: every element beats the threshold,
    // maximal queue churn.
    let data: Vec<f32> = (0..5000).map(|i| 5000.0 - i as f32).collect();
    run_case(&GridSelect::default(), &data, 100);
}

#[test]
fn ascending_input_best_case() {
    let data: Vec<f32> = (0..5000).map(|i| i as f32).collect();
    run_case(&GridSelect::default(), &data, 100);
}

#[test]
fn ties_and_specials() {
    let mut data = vec![1.0f32; 300];
    data.extend([-0.0, 0.0, f32::NEG_INFINITY, f32::INFINITY]);
    run_case(&GridSelect::default(), &data, 302);
}

#[test]
fn per_thread_queue_variant_is_correct() {
    let cfg = GridSelectConfig {
        queue: QueueKind::PerThread { len: 2 },
        ..GridSelectConfig::default()
    };
    let alg = GridSelect::new(cfg);
    for seed in 0..3 {
        let data = generate(Distribution::Normal, 8000, seed);
        run_case(&alg, &data, 64);
    }
}

#[test]
fn single_block_shape_is_correct() {
    // BlockSelect-like: one block per problem, direct output path.
    let cfg = GridSelectConfig {
        max_blocks_per_problem: 1,
        ..GridSelectConfig::default()
    };
    let data = generate(Distribution::Uniform, 9000, 2);
    run_case(&GridSelect::new(cfg), &data, 33);
}

#[test]
fn batch_is_correct() {
    let mut g = gpu();
    let alg = GridSelect::default();
    let datas: Vec<Vec<f32>> = (0..4)
        .map(|i| generate(Distribution::Uniform, 5000, i))
        .collect();
    let inputs: Vec<_> = datas
        .iter()
        .enumerate()
        .map(|(i, d)| g.htod(&format!("in{i}"), d))
        .collect();
    let outs = alg.select_batch(&mut g, &inputs, 17);
    for (d, o) in datas.iter().zip(&outs) {
        verify_topk(d, 17, &o.values.to_vec(), &o.indices.to_vec()).unwrap();
    }
}

#[test]
fn max_k_enforced() {
    assert_eq!(GridSelect::default().max_k(), Some(2048));
    let mut g = gpu();
    let data = generate(Distribution::Uniform, 10_000, 1);
    let input = g.htod("in", &data);
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        GridSelect::default().select(&mut g, &input, 4096)
    }));
    assert!(r.is_err());
}

#[test]
fn shared_queue_flushes_less_than_per_thread() {
    // §4: "If qualified elements are centralized in a certain
    // thread queue, WarpSelect must frequently call these expensive
    // operations even if other thread queues are empty." Build that
    // adversarial layout: qualifying (ever-smaller) values land on
    // lane 0 only, everything else is huge.
    let n = 100_000;
    let data: Vec<f32> = (0..n)
        .map(|i| {
            if i % 32 == 0 {
                1_000_000.0 - i as f32
            } else {
                f32::MAX
            }
        })
        .collect();
    let count_ops = |queue: QueueKind| -> u64 {
        let mut g = gpu();
        let input = g.htod("in", &data);
        g.reset_profile();
        let cfg = GridSelectConfig {
            queue,
            ..GridSelectConfig::default()
        };
        let out = GridSelect::new(cfg).select(&mut g, &input, 256);
        verify_topk(&data, 256, &out.values.to_vec(), &out.indices.to_vec()).unwrap();
        g.reports().iter().map(|r| r.stats.compute_ops).sum()
    };
    let shared = count_ops(QueueKind::Shared { len: 32 });
    let per_thread = count_ops(QueueKind::PerThread { len: 2 });
    assert!(
        shared < per_thread,
        "shared {shared} should do less flush work than per-thread {per_thread}"
    );
}

#[test]
fn on_the_fly_matches_buffered_selection() {
    // Producing values inside the kernel must give the same answer
    // as selecting over a materialised buffer — with zero input
    // traffic for the produced values.
    let n = 50_000;
    let k = 77;
    let score = |i: usize| ((i as f32) * 0.7531).sin() * 1000.0;
    let data: Vec<f32> = (0..n).map(score).collect();

    let mut g = gpu();
    g.reset_profile();
    let out = GridSelect::default()
        .select_on_the_fly(
            &mut g,
            n,
            k,
            |ctx, i| {
                ctx.ops(4); // the producer's own compute
                score(i)
            },
            |c| c, // the producer reads no device buffers
        )
        .unwrap();
    verify_topk(&data, k, &out.values.to_vec(), &out.indices.to_vec()).unwrap();
    // No N-sized input buffer was ever read.
    let read: u64 = g.reports().iter().map(|r| r.stats.bytes_read).sum();
    assert!(
        read < (n * 4 / 4) as u64,
        "fused path read {read} bytes; expected far less than {}",
        n * 4
    );
}

#[test]
fn sixty_four_bit_keys_work() {
    let mut g = gpu();
    let data: Vec<f64> = (0..40_000u64)
        .map(|i| {
            let h = i.wrapping_mul(0x9E3779B97F4A7C15);
            (h as f64 / u64::MAX as f64) * 2.0 - 1.0
        })
        .collect();
    let input = g.htod("in64", &data);
    let k = 123;
    let (vals, idxs) = GridSelect::default()
        .run_batch_typed(&mut g, &[input], k)
        .unwrap()
        .pop()
        .unwrap();
    let mut got = vals.to_vec();
    got.sort_by(f64::total_cmp);
    let mut expect = data.clone();
    expect.sort_by(f64::total_cmp);
    expect.truncate(k);
    assert_eq!(got, expect);
    for (v, i) in vals.to_vec().iter().zip(idxs.to_vec()) {
        assert_eq!(data[i as usize].to_bits(), v.to_bits());
    }
}

#[test]
fn u64_keys_single_block_shape() {
    let mut g = gpu();
    let data: Vec<u64> = (0..3000u64).map(|i| i.wrapping_mul(0x9E3779B9)).collect();
    let input = g.htod("inu64", &data);
    let cfg = GridSelectConfig {
        max_blocks_per_problem: 1,
        ..GridSelectConfig::default()
    };
    let (vals, _) = GridSelect::new(cfg)
        .run_batch_typed(&mut g, &[input], 50)
        .unwrap()
        .pop()
        .unwrap();
    let mut got = vals.to_vec();
    got.sort_unstable();
    let mut expect = data.clone();
    expect.sort_unstable();
    expect.truncate(50);
    assert_eq!(got, expect);
}

#[test]
fn uses_two_kernel_types() {
    let mut g = gpu();
    let data = generate(Distribution::Uniform, 200_000, 1);
    let input = g.htod("in", &data);
    g.reset_profile();
    let _ = GridSelect::default().select(&mut g, &input, 128);
    let names: std::collections::HashSet<_> = g.reports().iter().map(|r| r.name.clone()).collect();
    assert!(names.contains("gridselect_kernel"));
    assert!(names.contains("gridselect_merge_kernel"));
    assert_eq!(g.timeline().memcpy_us(), 0.0);
}
