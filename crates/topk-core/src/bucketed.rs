//! Bucketed single-pass approximate top-K ("Approximate Top-k for
//! Increased Parallelism", PAPERS.md).
//!
//! The input is cut into `B = ⌈K / c⌉` contiguous buckets and every
//! bucket independently keeps its `c` smallest elements (the last
//! bucket keeps the remainder so the outputs total exactly K). One
//! launch, one block per bucket, no cross-block traffic at all — the
//! sequential dependency that makes exact selection hard is simply
//! deleted, and what it cost is recall: a true top-K member is lost
//! whenever more than `c` of them land in the same bucket. For
//! i.i.d. inputs that loss is exactly the binomial shortfall priced
//! by [`crate::recall::expected_recall_parts`]; callers pick `c` with
//! [`plan_bucketed`](crate::recall::plan_bucketed) to clear a recall
//! target.
//!
//! Each bucket reuses the [`crate::rowwise`] streaming kernel shape:
//! a shared-memory candidate buffer with a running Kth-smallest
//! admission threshold, compacted by an in-block partial selection
//! when it fills. `c = K` (one bucket) degenerates to the exact
//! row-wise path.

use crate::air::Rows;
use crate::error::TopKError;
use crate::keys::{OrderedBits, RadixKey};
use crate::obs;
use crate::recall::{expected_recall_parts, BucketedPlan};
use crate::scratch::ScratchGuard;
use crate::traits::{check_args, check_batch, Category, TopKAlgorithm, TopKOutput};
use gpu_sim::{Backend, BackendExt, DeviceBuffer, Footprint, KernelContract, LaunchConfig};
use std::sync::atomic::Ordering::Relaxed;

/// The bucketed approximate selector (see module docs).
///
/// ```
/// use gpu_sim::{Gpu, DeviceSpec};
/// use topk_core::{BucketedTopK, TopKAlgorithm};
///
/// let mut gpu = Gpu::new(DeviceSpec::a100());
/// let data: Vec<f32> = (0..8192).map(|i| ((i * 97) % 8192) as f32).collect();
/// let input = gpu.htod("scores", &data);
/// let out = BucketedTopK::new(8).select(&mut gpu, &input, 64);
/// assert_eq!(out.values.len(), 64);
/// ```
#[derive(Debug, Clone)]
pub struct BucketedTopK {
    /// Winners each bucket keeps (`c`); the bucket count follows as
    /// `⌈K / c⌉` per query.
    per_bucket: usize,
    /// Threads per block.
    block_dim: usize,
}

impl Default for BucketedTopK {
    fn default() -> Self {
        BucketedTopK::new(16)
    }
}

impl BucketedTopK {
    /// Selector keeping `per_bucket` winners per bucket.
    pub fn new(per_bucket: usize) -> Self {
        assert!(per_bucket >= 1, "per_bucket must be >= 1");
        BucketedTopK {
            per_bucket,
            block_dim: 256,
        }
    }

    /// The cheapest selector whose expected recall on i.i.d. inputs of
    /// this shape clears `target`.
    pub fn for_recall(n: usize, k: usize, target: f64) -> Self {
        BucketedTopK::new(crate::recall::plan_bucketed(n, k, target).per_bucket)
    }

    /// Winners kept per bucket.
    pub fn per_bucket(&self) -> usize {
        self.per_bucket
    }

    /// The partitioning this selector uses for a given K.
    pub fn plan(&self, k: usize) -> BucketedPlan {
        BucketedPlan {
            buckets: k.div_ceil(self.per_bucket),
            per_bucket: self.per_bucket.min(k),
        }
    }

    /// Expected recall on i.i.d. inputs for a given K (exact in
    /// expectation, see [`crate::recall`]).
    pub fn expected_recall(&self, k: usize) -> f64 {
        let plan = self.plan(k);
        expected_recall_parts(k, &plan.takes(k))
    }

    /// Shared-memory bytes one block needs (largest bucket keep).
    pub fn shared_bytes_for<T: RadixKey>(&self, k: usize) -> usize {
        let take = self.per_bucket.min(k);
        (2 * take).max(64) * (std::mem::size_of::<T::Ordered>() + 4)
    }

    /// One fused launch over the whole batch: `batch · buckets`
    /// blocks, each streaming its bucket through a top-`take`
    /// candidate filter, packed `batch × k` outputs.
    pub(crate) fn run_rows<T: RadixKey>(
        &self,
        gpu: &mut dyn Backend,
        inputs: Rows<'_, T>,
        k: usize,
    ) -> Result<(DeviceBuffer<T>, DeviceBuffer<u32>), TopKError> {
        let n = inputs.n();
        check_args(self, n, k)?;
        let plan = self.plan(k);
        let (buckets, per_bucket) = (plan.buckets, plan.per_bucket);
        if n / buckets < per_bucket {
            return Err(TopKError::UnsupportedShape {
                algorithm: self.name(),
                detail: format!(
                    "{buckets} buckets of {n} elements cannot each yield {per_bucket} winners"
                ),
            });
        }
        let shared_needed = self.shared_bytes_for::<T>(k);
        if shared_needed > gpu.spec().shared_mem_per_block {
            return Err(TopKError::UnsupportedShape {
                algorithm: self.name(),
                detail: format!(
                    "candidate buffer needs {shared_needed} shared bytes, device offers {}",
                    gpu.spec().shared_mem_per_block
                ),
            });
        }
        let batch = inputs.batch();
        let cap = (2 * per_bucket).max(64);

        let mut outs = ScratchGuard::new();
        let out_val = outs.alloc::<T>(gpu, "bucketed_out_val", batch * k)?;
        let out_idx = match outs.alloc::<u32>(gpu, "bucketed_out_idx", batch * k) {
            Ok(b) => b,
            Err(e) => {
                outs.release(gpu);
                return Err(e);
            }
        };

        let (ov, oi) = (out_val.clone(), out_idx.clone());
        // The `buckets` blocks of one row partition that row's k output
        // slots by a static take-split; group-affine, not block-affine,
        // so the write is declared row-coordinated.
        let contract = inputs
            .declare_reads(KernelContract::new("bucketed_topk_kernel"))
            .writes_shared(&ov, Footprint::per_group(buckets, k))
            .writes_shared(&oi, Footprint::per_group(buckets, k))
            .uses_shared_mem(shared_needed);
        let launched = gpu.try_launch_checked(
            &contract,
            LaunchConfig::grid_1d(batch * buckets, self.block_dim),
            move |ctx| {
                let row = ctx.block_idx / buckets;
                let bucket = ctx.block_idx % buckets;
                // Contiguous even split; the last bucket keeps the
                // remainder winners so row outputs total exactly k.
                let lo = bucket * n / buckets;
                let hi = (bucket + 1) * n / buckets;
                let take = if bucket + 1 == buckets {
                    k - (buckets - 1) * per_bucket
                } else {
                    per_bucket
                };
                let mut cand_bits = ctx.shared_alloc::<T::Ordered>(cap);
                let mut cand_idx = ctx.shared_alloc::<u32>(cap);
                let mut len = 0usize;
                let mut thr = T::Ordered::MAX;
                let mut have_thr = false;

                let compact = |ctx: &mut gpu_sim::BlockCtx,
                               bits: &mut [T::Ordered],
                               idx: &mut [u32],
                               len: usize|
                 -> T::Ordered {
                    let mut pairs: Vec<(T::Ordered, u32)> =
                        (0..len).map(|i| (bits[i], idx[i])).collect();
                    pairs.select_nth_unstable(take - 1);
                    for (i, (b, x)) in pairs.iter().take(take).enumerate() {
                        bits[i] = *b;
                        idx[i] = *x;
                    }
                    ctx.ops(2 * len as u64);
                    pairs[take - 1].0
                };

                for i in lo..hi {
                    let bits = inputs.ld(ctx, row, i).to_ordered();
                    ctx.ops(2); // ordered-bit transform + threshold compare
                    if !have_thr || bits < thr {
                        cand_bits[len] = bits;
                        cand_idx[len] = i as u32;
                        len += 1;
                        ctx.ops(1);
                        if len == cap {
                            thr = compact(ctx, &mut cand_bits, &mut cand_idx, len);
                            len = take;
                            have_thr = true;
                        }
                    }
                }
                if len > take {
                    compact(ctx, &mut cand_bits, &mut cand_idx, len);
                    len = take;
                }
                debug_assert_eq!(len, take, "bucket covers >= take elements");
                let base = row * k + bucket * per_bucket;
                for j in 0..take {
                    ctx.st(&ov, base + j, T::from_ordered(cand_bits[j]));
                    ctx.st(&oi, base + j, cand_idx[j]);
                }
            },
        );
        if let Err(e) = launched {
            outs.release(gpu);
            return Err(e.into());
        }
        obs::counters().bucketed_selections.fetch_add(1, Relaxed);
        Ok((out_val, out_idx))
    }
}

impl TopKAlgorithm for BucketedTopK {
    fn name(&self) -> &'static str {
        "Bucketed Top-K (approx)"
    }

    fn category(&self) -> Category {
        Category::PartitionBased
    }

    fn try_select(
        &self,
        gpu: &mut dyn Backend,
        input: &DeviceBuffer<f32>,
        k: usize,
    ) -> Result<TopKOutput, TopKError> {
        let (v, i) = self.run_rows(gpu, Rows::Slices(std::slice::from_ref(input)), k)?;
        Ok(TopKOutput::new(v, i))
    }

    fn try_select_batch(
        &self,
        gpu: &mut dyn Backend,
        inputs: &[DeviceBuffer<f32>],
        k: usize,
    ) -> Result<Vec<TopKOutput>, TopKError> {
        let n = check_batch(self, inputs)?;
        check_args(self, n, k)?;
        let batch = inputs.len();
        let (out_val, out_idx) = self.run_rows(gpu, Rows::Slices(inputs), k)?;
        Ok((0..batch)
            .map(|p| {
                TopKOutput::new(
                    crate::air::slice_buffer(&out_val, p * k, k, "bucketed_values"),
                    crate::air::slice_buffer(&out_idx, p * k, k, "bucketed_indices"),
                )
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recall::measured_recall;
    use crate::verify::verify_topk;
    use datagen::Distribution;
    use gpu_sim::{DeviceSpec, Gpu};

    #[test]
    fn outputs_are_real_input_elements() {
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let data = datagen::generate(Distribution::Normal, 1 << 14, 3);
        let input = gpu.htod("in", &data);
        let out = BucketedTopK::new(8).select(&mut gpu, &input, 100);
        assert_eq!(out.k, 100);
        let vals = out.values.to_vec();
        let idxs = out.indices.to_vec();
        for (v, i) in vals.iter().zip(&idxs) {
            assert_eq!(data[*i as usize], *v, "index {i} does not hold {v}");
        }
        // 100 distinct input positions.
        let uniq: std::collections::HashSet<u32> = idxs.iter().copied().collect();
        assert_eq!(uniq.len(), 100);
    }

    #[test]
    fn one_bucket_degenerates_to_exact() {
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let data = datagen::generate(Distribution::Uniform, 4096, 7);
        let input = gpu.htod("in", &data);
        let alg = BucketedTopK::new(64);
        assert_eq!(alg.plan(64).buckets, 1);
        assert_eq!(alg.expected_recall(64), 1.0);
        let out = alg.select(&mut gpu, &input, 64);
        verify_topk(&data, 64, &out.values.to_vec(), &out.indices.to_vec()).unwrap();
    }

    #[test]
    fn batch_is_one_launch_and_recall_tracks_the_model() {
        let (n, k, batch) = (1 << 14, 128, 6);
        let alg = BucketedTopK::for_recall(n, k, 0.9);
        let expected = alg.expected_recall(k);
        assert!(expected >= 0.9);
        let datas: Vec<Vec<f32>> = (0..batch)
            .map(|i| datagen::generate(Distribution::Uniform, n, 100 + i as u64))
            .collect();
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let inputs: Vec<_> = datas
            .iter()
            .enumerate()
            .map(|(i, d)| gpu.htod(&format!("p{i}"), d))
            .collect();
        gpu.reset_profile();
        let outs = alg.select_batch(&mut gpu, &inputs, k);
        assert_eq!(gpu.timeline().kernel_count(), 1, "fused: one launch");
        let mean: f64 = datas
            .iter()
            .zip(&outs)
            .map(|(d, o)| measured_recall(d, k, &o.values.to_vec()))
            .sum::<f64>()
            / batch as f64;
        assert!(
            mean >= expected - 0.05,
            "measured {mean:.3} vs expected {expected:.3}"
        );
    }

    #[test]
    fn faster_than_exact_rowwise_at_loose_recall() {
        let (n, k) = (1 << 16, 1024);
        let time = |run: &dyn Fn(&mut dyn Backend, &DeviceBuffer<f32>)| {
            let mut gpu = Gpu::new(DeviceSpec::a100());
            let data = datagen::generate(Distribution::Uniform, n, 1);
            let input = gpu.htod("in", &data);
            gpu.reset_profile();
            run(&mut gpu, &input);
            gpu.elapsed_us()
        };
        let approx = time(&|gpu, input| {
            BucketedTopK::for_recall(n, k, 0.9)
                .try_select(gpu, input, k)
                .map(|_| ())
                .unwrap();
        });
        let exact = time(&|gpu, input| {
            crate::RowWiseTopK::default()
                .try_select(gpu, input, k)
                .map(|_| ())
                .unwrap();
        });
        assert!(
            approx < exact,
            "bucketed ({approx:.1} us) should beat exact row-wise ({exact:.1} us)"
        );
    }

    #[test]
    fn rejects_starved_buckets_and_tiny_shared_memory() {
        let mut gpu = Gpu::new(DeviceSpec::a100());
        // K = N = 100 with 3 winners per bucket needs 34 buckets of
        // >= 3 elements each — but 100 elements only feed 2 apiece.
        let data: Vec<f32> = (0..100).map(|i| i as f32).collect();
        let input = gpu.htod("in", &data);
        let err = BucketedTopK::new(3)
            .try_select(&mut gpu, &input, 100)
            .unwrap_err();
        assert!(matches!(err, TopKError::UnsupportedShape { .. }), "{err}");

        let mut tiny = Gpu::new(DeviceSpec::test_tiny());
        let data: Vec<f32> = (0..8192).map(|i| i as f32).collect();
        let input = tiny.htod("in", &data);
        let err = BucketedTopK::new(2048)
            .try_select(&mut tiny, &input, 4096)
            .unwrap_err();
        assert!(matches!(err, TopKError::UnsupportedShape { .. }), "{err}");
    }

    #[test]
    fn selection_counter_moves() {
        let before = obs::counters().snapshot();
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let data = datagen::generate(Distribution::Uniform, 8192, 5);
        let input = gpu.htod("in", &data);
        let _ = BucketedTopK::new(4).select(&mut gpu, &input, 64);
        let d = obs::counters().snapshot().delta_since(&before);
        assert!(d.bucketed_selections >= 1);
    }
}
